"""Tests for every baseline SpGEMM implementation."""

import numpy as np
import pytest

from repro.baselines import available_algorithms, flops_of_product, get_algorithm
from repro.baselines._expand import (
    compress_sorted,
    expand_pattern,
    expand_products,
    row_upper_bounds,
)
from repro.baselines.esc import BIN_BOUNDS, bin_rows
from repro.baselines.hash_spgemm import expected_probes, hash_table_sizes
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr, scipy_product

ALL_METHODS = available_algorithms()


class TestRegistry:
    def test_expected_methods_present(self):
        assert set(ALL_METHODS) >= {
            "gustavson",
            "cusparse_spa",
            "bhsparse_esc",
            "nsparse_hash",
            "speck",
            "heap_merge",
            "tsparse",
            "tilespgemm",
        }

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            get_algorithm("does_not_exist")

    def test_duplicate_registration_rejected(self):
        from repro.baselines.base import register

        with pytest.raises(ValueError):
            register("gustavson")(lambda a, b: None)


@pytest.mark.parametrize("method", ALL_METHODS)
class TestCorrectnessAllMethods:
    def test_matches_scipy(self, method, small_pair):
        a, b = small_pair
        res = get_algorithm(method)(a, b)
        assert res.c.allclose(scipy_product(a, b))

    def test_square(self, method):
        a = random_csr(90, 90, 0.08, seed=91)
        res = get_algorithm(method)(a, a)
        assert res.c.allclose(scipy_product(a, a))

    def test_empty(self, method):
        e = CSRMatrix.empty((20, 25))
        f = CSRMatrix.empty((25, 10))
        res = get_algorithm(method)(e, f)
        assert res.c.nnz == 0
        assert res.c.shape == (20, 10)

    def test_identity(self, method):
        a = random_csr(48, 48, 0.15, seed=92)
        i = CSRMatrix.identity(48)
        assert get_algorithm(method)(i, a).c.allclose(a)

    def test_dimension_mismatch(self, method):
        a = random_csr(10, 10, 0.5, seed=93)
        b = random_csr(11, 11, 0.5, seed=94)
        with pytest.raises(ValueError):
            get_algorithm(method)(a, b)

    def test_result_metadata(self, method, small_pair):
        a, b = small_pair
        res = get_algorithm(method)(a, b)
        assert res.method == method
        assert res.flops == flops_of_product(a, b)
        assert res.stats["nnz_c"] == res.c.nnz
        assert res.timer.total > 0
        assert res.alloc.peak_bytes > 0
        assert res.gflops() > 0


class TestExpansionHelpers:
    def test_row_upper_bounds(self, small_pair):
        a, b = small_pair
        ub = row_upper_bounds(a, b)
        assert ub.shape == (a.shape[0],)
        assert int(ub.sum()) * 2 == flops_of_product(a, b)

    def test_expand_products_covers_product(self, small_pair):
        a, b = small_pair
        rows, cols, vals = expand_products(a, b)
        dense = np.zeros((a.shape[0], b.shape[1]))
        np.add.at(dense, (rows, cols), vals)
        assert np.allclose(dense, a.to_dense() @ b.to_dense())

    def test_expand_pattern_matches_products(self, small_pair):
        a, b = small_pair
        r1, c1 = expand_pattern(a, b)
        r2, c2, _ = expand_products(a, b)
        assert np.array_equal(r1, r2)
        assert np.array_equal(c1, c2)

    def test_compress_sorted_sums_duplicates(self):
        rows = np.array([0, 0, 1, 0])
        cols = np.array([1, 1, 0, 2])
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        c = compress_sorted(rows, cols, vals, (2, 3))
        assert c.to_dense()[0, 1] == 3.0
        assert c.nnz == 3

    def test_compress_assume_sorted(self):
        rows = np.array([0, 0, 1])
        cols = np.array([0, 1, 0])
        vals = np.array([1.0, 2.0, 3.0])
        c1 = compress_sorted(rows, cols, vals, (2, 2), assume_sorted=True)
        c2 = compress_sorted(rows, cols, vals, (2, 2))
        assert c1.allclose(c2)


class TestESCSpecifics:
    def test_bin_rows_boundaries(self):
        bins = bin_rows(np.array([0, 1, 32, 33, 64, 65, 1024, 10**6]))
        assert bins.tolist() == [0, 1, 32, 33, 33, 34, 37, 38]
        assert BIN_BOUNDS.size == 38

    def test_intermediate_allocation_dominates(self):
        # The defining ESC behaviour: the intermediate buffer scales with
        # the products, not with nnz(C).
        a = random_csr(80, 80, 0.2, seed=95)
        res = get_algorithm("bhsparse_esc")(a, a)
        inter = res.stats["intermediate_bytes"]
        c_bytes = res.c.nnz * 12
        assert inter > c_bytes
        assert res.alloc.peak_bytes >= inter

    def test_peak_larger_than_other_methods(self):
        a = random_csr(100, 100, 0.15, seed=96)
        esc = get_algorithm("bhsparse_esc")(a, a)
        tile = get_algorithm("tilespgemm")(a, a)
        speck = get_algorithm("speck")(a, a)
        assert esc.alloc.peak_bytes > tile.alloc.peak_bytes
        assert esc.alloc.peak_bytes > speck.alloc.peak_bytes


class TestHashSpecifics:
    def test_table_sizes_power_of_two(self):
        sizes = hash_table_sizes(np.array([1, 3, 5, 100, 1000]))
        assert np.all((sizes & (sizes - 1)) == 0)
        assert np.all(sizes >= 2 * np.array([1, 3, 5, 100, 1000]))

    def test_expected_probes_grow_with_load(self):
        table = np.array([64, 64, 64])
        probes = expected_probes(np.array([8, 32, 60]), table)
        assert probes[0] < probes[1] < probes[2]
        assert probes[0] >= 1.0

    def test_symbolic_numeric_agree(self, small_pair):
        # The implementation asserts internally; just exercise the path.
        a, b = small_pair
        res = get_algorithm("nsparse_hash")(a, b)
        assert res.stats["hash_table_sizes"].shape == (a.shape[0],)


class TestTSparseSpecifics:
    def test_half_precision_mode_runs(self):
        a = random_csr(64, 64, 0.1, seed=97)
        res = get_algorithm("tsparse")(a, a, dtype=np.float16)
        ref = scipy_product(a, a)
        # Half precision: loose tolerance only.
        assert res.c.nnz >= ref.prune(1e-2).nnz * 0.8

    def test_chunking_invariant(self):
        a = random_csr(96, 96, 0.1, seed=98)
        c1 = get_algorithm("tsparse")(a, a, chunk_pairs=4).c
        c2 = get_algorithm("tsparse")(a, a).c
        assert c1.allclose(c2)

    def test_dense_macs_exceed_sparse_flops(self, small_pair):
        # The waste the paper's Figure 13 exposes: dense tile GEMMs do
        # T^3 MACs per pair regardless of sparsity.
        a, b = small_pair
        res = get_algorithm("tsparse")(a, b)
        assert res.stats["dense_macs"] > res.stats["num_products"]


class TestCrossMethodAgreement:
    def test_all_methods_identical_values(self):
        a = random_csr(110, 70, 0.09, seed=99)
        b = random_csr(70, 130, 0.09, seed=100)
        results = {m: get_algorithm(m)(a, b).c for m in ALL_METHODS if m != "tsparse"}
        ref = results.pop("gustavson")
        for name, c in results.items():
            assert c.allclose(ref), name
