"""Integration tests: multi-module pipelines a downstream user would run."""

import io

import numpy as np
import pytest

from repro import TileMatrix, read_mtx, tile_spgemm, write_mtx
from repro.apps import build_hierarchy, galerkin_product
from repro.baselines import get_algorithm
from repro.formats.csr import CSRMatrix
from repro.gpu import RTX3060, RTX3090, estimate_run
from repro.matrices import generators
from tests.conftest import random_csr, scipy_product


class TestFileToProductPipeline:
    """The artifact workflow: load .mtx -> tile -> multiply -> export."""

    def test_full_roundtrip(self, tmp_path):
        a_csr = random_csr(100, 100, 0.08, seed=141)
        src = tmp_path / "a.mtx"
        write_mtx(src, a_csr)

        loaded = read_mtx(src).to_csr()
        tiled = TileMatrix.from_csr(loaded)
        res = tile_spgemm(tiled, tiled)

        dst = tmp_path / "c.mtx"
        write_mtx(dst, res.c.to_coo().prune(0.0))
        back = read_mtx(dst).to_csr()
        assert back.allclose(scipy_product(a_csr, a_csr))

    def test_symmetric_mtx_through_spgemm(self):
        # Symmetric storage expands then multiplies correctly.
        text = io.StringIO(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 4\n1 1 2\n2 1 1\n3 2 4\n3 3 1\n"
        )
        a = read_mtx(text).to_csr()
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.allclose(res.c.to_dense(), a.to_dense() @ a.to_dense())


class TestResidentTiledChains:
    """The paper's AMG argument: SpGEMM output feeds the next SpGEMM while
    staying in the tiled format (no CSR round-trips)."""

    def test_matrix_powers_stay_tiled(self):
        a_csr = generators.banded(120, 3, seed=151).to_csr()
        tiled = TileMatrix.from_csr(a_csr)
        power = tiled
        dense = a_csr.to_dense()
        expected = dense.copy()
        for _ in range(3):
            power = tile_spgemm(power, tiled).c.drop_empty_tiles()
            power.validate()
            expected = expected @ dense
        assert np.allclose(power.to_dense(), expected, rtol=1e-9, atol=1e-6)

    def test_galerkin_chain_consistent_across_methods(self):
        a = generators.stencil_2d(12, 12).to_csr()
        from repro.apps import aggregation_prolongator

        p = aggregation_prolongator(a, seed=5)
        via_tile = galerkin_product(a, p, method="tilespgemm")
        via_hash = galerkin_product(a, p, method="nsparse_hash")
        assert via_tile.allclose(via_hash)

    def test_amg_hierarchy_operators_symmetric(self):
        a = generators.stencil_2d(14, 14).to_csr()
        h = build_hierarchy(a, max_levels=4)
        for level in h.levels:
            d = level.a.to_dense()
            assert np.allclose(d, d.T, atol=1e-9)


class TestEstimationPipeline:
    """Run -> estimate -> compare devices, end to end for every method."""

    @pytest.mark.parametrize(
        "method", ["tilespgemm", "speck", "nsparse_hash", "bhsparse_esc", "cusparse_spa", "tsparse"]
    )
    def test_estimate_consistency(self, method):
        a = generators.banded(400, 8, fill=0.9, seed=161).to_csr()
        res = get_algorithm(method)(a, a)
        e90 = estimate_run(res, RTX3090)
        e60 = estimate_run(res, RTX3060)
        assert 0 < e90.seconds < e60.seconds
        assert 1.0 < e90.gflops / e60.gflops < 4.0
        bd = e90.breakdown()
        assert abs(sum(bd.values()) - e90.seconds) < 1e-12

    def test_more_work_costs_more(self):
        small = generators.banded(300, 4, seed=162).to_csr()
        large = generators.banded(300, 16, seed=162).to_csr()
        t_small = estimate_run(get_algorithm("tilespgemm")(small, small), RTX3090).seconds
        t_large = estimate_run(get_algorithm("tilespgemm")(large, large), RTX3090).seconds
        assert t_large > t_small

    def test_imbalanced_workload_penalised(self):
        # Same flops, different distribution: a planted hub must cost a
        # row-row method more than a uniform matrix of equal work.
        uniform = generators.random_uniform(2000, 8.0, seed=163).to_csr()
        hubby = generators.powerlaw(
            2000, 8.0, exponent=2.4, max_degree=1500, hubs=2, seed=163
        ).to_csr()
        res_u = get_algorithm("speck")(uniform, uniform)
        res_h = get_algorithm("speck")(hubby, hubby)
        gf_u = estimate_run(res_u, RTX3090).gflops
        gf_h = estimate_run(res_h, RTX3090).gflops
        assert gf_h < gf_u


class TestAdapterConsistency:
    def test_adapter_matches_direct_call(self):
        a = random_csr(90, 90, 0.1, seed=171)
        tiled = TileMatrix.from_csr(a)
        direct = tile_spgemm(tiled, tiled)
        adapted = get_algorithm("tilespgemm")(a, a, a_tiled=tiled, b_tiled=tiled)
        assert adapted.c.allclose(direct.c.to_csr())
        assert adapted.stats["nnz_c"] == direct.stats["nnz_c"]
        assert adapted.stats["tile_result"].c.nnz == direct.c.nnz

    def test_adapter_converts_when_needed(self):
        a = random_csr(70, 70, 0.1, seed=172)
        res = get_algorithm("tilespgemm")(a, a)
        assert "format_conversion" in res.timer.seconds
