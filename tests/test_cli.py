"""Tests for the artifact-style command line interface."""

import pytest

from repro.cli import main
from repro.core import TileMatrix, tile_spgemm
from repro.errors import (
    EXIT_EXHAUSTED,
    EXIT_FILE_NOT_FOUND,
    EXIT_INVALID_INPUT,
    EXIT_OOM,
)
from repro.formats.mtx import read_mtx, write_mtx
from tests.conftest import random_csr


@pytest.fixture
def mtx_file(tmp_path):
    path = tmp_path / "a.mtx"
    write_mtx(path, random_csr(60, 60, 0.1, seed=191))
    return str(path)


class TestCLI:
    def test_a_squared_succeeds(self, mtx_file, capsys):
        assert main(["-d", "0", "-aat", "0", mtx_file]) == 0
        out = capsys.readouterr().out
        assert "rows = 60, cols = 60" in out
        assert "tile size: 16 x 16" in out
        assert "check passed: yes" in out
        assert "step3 time:" in out
        assert "number of nonzeros of C:" in out

    def test_aat_mode(self, mtx_file, capsys):
        assert main(["-aat", "1", mtx_file]) == 0
        assert "check passed: yes" in capsys.readouterr().out

    def test_device_selection(self, mtx_file, capsys):
        assert main(["-d", "1", mtx_file]) == 0
        assert "RTX 3090" in capsys.readouterr().out

    def test_bad_device(self, mtx_file):
        assert main(["-d", "7", mtx_file]) == 2

    def test_module_invocation(self, mtx_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", mtx_file],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0
        assert "check passed: yes" in proc.stdout


class TestCLIErrorHandling:
    """One distinct exit code and a one-line stderr message per error class."""

    def _assert_one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) <= 2  # error line (+ faults note)
        return err

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.mtx")]) == EXIT_FILE_NOT_FOUND
        err = self._assert_one_line_error(capsys)
        assert "not found" in err

    def test_malformed_header(self, tmp_path, capsys):
        path = tmp_path / "bad.mtx"
        path.write_text("not a MatrixMarket file\n1 1 1\n1 1 1.0\n")
        assert main([str(path)]) == EXIT_INVALID_INPUT
        err = self._assert_one_line_error(capsys)
        assert "MatrixMarket" in err

    def test_garbage_entries(self, tmp_path, capsys):
        path = tmp_path / "garbage.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\nx y z\n"
        )
        assert main([str(path)]) == EXIT_INVALID_INPUT
        self._assert_one_line_error(capsys)

    def test_truncated_entries(self, tmp_path, capsys):
        path = tmp_path / "short.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n")
        assert main([str(path)]) == EXIT_INVALID_INPUT
        self._assert_one_line_error(capsys)

    def test_dimension_mismatch(self, tmp_path, capsys):
        path = tmp_path / "rect.mtx"
        write_mtx(path, random_csr(40, 30, 0.1, seed=7))
        assert main([str(path)]) == EXIT_INVALID_INPUT
        err = self._assert_one_line_error(capsys)
        assert "dimension mismatch" in err

    def test_rectangular_ok_with_aat(self, tmp_path, capsys):
        path = tmp_path / "rect.mtx"
        write_mtx(path, random_csr(40, 30, 0.1, seed=7))
        assert main(["-aat", "1", str(path)]) == 0
        assert "check passed: yes" in capsys.readouterr().out

    def test_budget_oom_exit_code(self, mtx_file, capsys):
        assert main(["--memory-budget", "1K", mtx_file]) == EXIT_OOM
        err = self._assert_one_line_error(capsys)
        assert "OOM" in err

    def test_bad_budget_is_usage_error(self, mtx_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["--memory-budget", "lots", mtx_file])
        assert excinfo.value.code == 2

    def test_resilient_exhausted_exit_code(self, tmp_path, capsys):
        # A budget too small for even a single tile row defeats chunking
        # and the fallbacks alike.
        path = tmp_path / "a.mtx"
        write_mtx(path, random_csr(60, 60, 0.1, seed=191))
        assert main(["--memory-budget", "64", "--resilient", str(path)]) == EXIT_EXHAUSTED
        self._assert_one_line_error(capsys)


class TestCLIObservability:
    def test_trace_flag_writes_valid_chrome_trace(self, mtx_file, tmp_path, capsys):
        from repro.analysis.profiling import breakdown_from_trace, load_chrome_trace

        trace = tmp_path / "t.json"
        assert main(["--trace", str(trace), mtx_file]) == 0
        doc = load_chrome_trace(str(trace))  # validates the schema
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"tile_spgemm", "step1", "step2", "step3"} <= names
        bd = breakdown_from_trace(doc)
        assert sum(bd.values()) > 0

    def test_metrics_flag_writes_prometheus(self, mtx_file, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        assert main(["--metrics", str(prom), mtx_file]) == 0
        text = prom.read_text()
        assert "# TYPE atomic_add_ops_total counter" in text
        assert "accumulator_tiles_total{kind=" in text
        # the main run plus the cost-model adapter's run
        assert "tilespgemm_runs_total 2" in text

    def test_trace_written_even_when_run_fails(self, mtx_file, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["--memory-budget", "1K", "--trace", str(trace), mtx_file]) == EXIT_OOM
        from repro.analysis.profiling import load_chrome_trace

        assert load_chrome_trace(str(trace))["traceEvents"]

    def test_profile_flag_prints_report(self, mtx_file, capsys):
        assert main(["--profile", mtx_file]) == 0
        out = capsys.readouterr().out
        assert "top spans by total wall time:" in out
        assert "tile_spgemm" in out

    def test_json_output(self, mtx_file, capsys):
        import json

        assert main(["--json", mtx_file]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # stdout is pure JSON
        assert doc["check_passed"] is True
        assert doc["rows"] == 60 and doc["nnz"] > 0
        for phase in ("step1", "step2", "step3"):
            assert doc["phases"][phase]["count"] >= 1
            assert doc["phases"][phase]["seconds"] >= 0

    def test_json_resilient_tallies(self, mtx_file, capsys):
        import json

        assert main(["--json", "--resilient", mtx_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        res = doc["resilience"]
        assert res["method"] == "tilespgemm"
        assert res["attempts"] >= 1
        assert res["failed_attempts"] == 0
        assert res["retries"] == 0 and res["fallbacks"] == 0
        assert res["degraded"] is False

    def test_json_with_metrics_embeds_snapshot(self, mtx_file, tmp_path, capsys):
        import json

        prom = tmp_path / "m.prom"
        assert main(["--json", "--metrics", str(prom), mtx_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["metrics"]["counters"]["tilespgemm_runs_total"] >= 1


class TestCLIResilient:
    def test_resilient_no_faults(self, mtx_file, capsys):
        assert main(["--resilient", mtx_file]) == 0
        out = capsys.readouterr().out
        assert "resilient run: method=tilespgemm" in out
        assert "degraded=no" in out
        assert "check passed: yes" in out

    def test_resilient_recovers_from_budget(self, mtx_file, capsys):
        # Measure the unbudgeted peak, then re-run under ~60 % of it: the
        # resilient runtime must chunk and still pass the cross-check.
        a = TileMatrix.from_csr(read_mtx(mtx_file).to_csr())
        peak = tile_spgemm(a, a).alloc.peak_bytes
        budget = str(int(peak * 0.6))
        assert main(["--memory-budget", budget, "--resilient", mtx_file]) == 0
        out = capsys.readouterr().out
        assert "resilient run: method=tilespgemm" in out
        assert "batches=" in out
        assert "degraded=no" in out
        assert "check passed: yes" in out
