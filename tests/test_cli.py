"""Tests for the artifact-style command line interface."""

import pytest

from repro.cli import main
from repro.formats.mtx import write_mtx
from tests.conftest import random_csr


@pytest.fixture
def mtx_file(tmp_path):
    path = tmp_path / "a.mtx"
    write_mtx(path, random_csr(60, 60, 0.1, seed=191))
    return str(path)


class TestCLI:
    def test_a_squared_succeeds(self, mtx_file, capsys):
        assert main(["-d", "0", "-aat", "0", mtx_file]) == 0
        out = capsys.readouterr().out
        assert "rows = 60, cols = 60" in out
        assert "tile size: 16 x 16" in out
        assert "check passed: yes" in out
        assert "step3 time:" in out
        assert "number of nonzeros of C:" in out

    def test_aat_mode(self, mtx_file, capsys):
        assert main(["-aat", "1", mtx_file]) == 0
        assert "check passed: yes" in capsys.readouterr().out

    def test_device_selection(self, mtx_file, capsys):
        assert main(["-d", "1", mtx_file]) == 0
        assert "RTX 3090" in capsys.readouterr().out

    def test_bad_device(self, mtx_file):
        assert main(["-d", "7", mtx_file]) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main([str(tmp_path / "missing.mtx")])

    def test_module_invocation(self, mtx_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", mtx_file],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0
        assert "check passed: yes" in proc.stdout
