"""Tests for the Krylov solvers and SpGEMM-based similarity graphs."""

import numpy as np
import pytest

from repro.apps import (
    AMGSolver,
    amg_preconditioned_cg,
    conjugate_gradient,
    cooccurrence,
    cosine_similarity,
    top_k_neighbors,
)
from repro.core.spmv import csr_spmv
from repro.formats.csr import CSRMatrix
from repro.matrices import generators


@pytest.fixture(scope="module")
def poisson():
    a = generators.stencil_2d(22, 22).to_csr()
    rng = np.random.default_rng(31)
    x_true = rng.normal(size=a.shape[0])
    return a, csr_spmv(a, x_true), x_true


class TestConjugateGradient:
    def test_solves_spd_system(self, poisson):
        a, b, x_true = poisson
        res = conjugate_gradient(a, b, tol=1e-10, max_iters=2000)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-7

    def test_residual_history_tracked(self, poisson):
        a, b, _ = poisson
        res = conjugate_gradient(a, b, tol=1e-8, max_iters=1000)
        assert res.residual_history[0] == pytest.approx(1.0)
        assert res.final_relative_residual < 1e-8

    def test_zero_rhs(self, poisson):
        a, _, _ = poisson
        res = conjugate_gradient(a, np.zeros(a.shape[0]))
        assert res.converged and res.iterations == 0

    def test_exact_initial_guess(self, poisson):
        a, b, x_true = poisson
        res = conjugate_gradient(a, b, x0=x_true, tol=1e-8)
        assert res.converged
        assert res.iterations == 0

    def test_non_spd_breaks_down_honestly(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))  # indefinite
        res = conjugate_gradient(a, np.array([1.0, -1.0]), max_iters=50)
        assert not res.converged

    def test_rectangular_rejected(self):
        from tests.conftest import random_csr

        with pytest.raises(ValueError):
            conjugate_gradient(random_csr(4, 5, 0.5, seed=0), np.ones(4))

    def test_rhs_length_checked(self, poisson):
        a, _, _ = poisson
        with pytest.raises(ValueError):
            conjugate_gradient(a, np.ones(3))


class TestAMGPreconditionedCG:
    def test_fewer_iterations_than_plain(self, poisson):
        a, b, _ = poisson
        plain = conjugate_gradient(a, b, tol=1e-10, max_iters=2000)
        pcg = amg_preconditioned_cg(a, b, tol=1e-10, max_iters=200)
        assert pcg.converged
        assert pcg.iterations < plain.iterations / 2

    def test_reuses_prebuilt_solver(self, poisson):
        a, b, x_true = poisson
        solver = AMGSolver(a)
        res1 = amg_preconditioned_cg(a, b, solver=solver)
        res2 = amg_preconditioned_cg(a, 2.0 * b, solver=solver)
        assert res1.converged and res2.converged
        assert np.allclose(res2.x, 2.0 * res1.x, atol=1e-5)


class TestSimilarity:
    @pytest.fixture(scope="class")
    def incidence(self):
        rng = np.random.default_rng(32)
        return CSRMatrix.from_dense(
            (rng.random((25, 40)) < 0.25).astype(float)
        )

    def test_cooccurrence_counts_shared_features(self, incidence):
        counts = cooccurrence(incidence).to_dense()
        d = incidence.to_dense()
        assert np.allclose(counts, d @ d.T)

    def test_cosine_matches_dense(self, incidence):
        s = cosine_similarity(incidence).to_dense()
        d = incidence.to_dense()
        norm = d / np.maximum(np.linalg.norm(d, axis=1, keepdims=True), 1e-300)
        ref = norm @ norm.T
        np.fill_diagonal(ref, 0.0)
        assert np.allclose(s, ref, atol=1e-12)

    def test_values_bounded(self, incidence):
        s = cosine_similarity(incidence)
        if s.nnz:
            assert s.val.max() <= 1.0 + 1e-12
            assert s.val.min() >= -1.0 - 1e-12

    def test_duplicate_rows_have_similarity_one(self):
        d = np.zeros((4, 6))
        d[0, [1, 3]] = 1.0
        d[2, [1, 3]] = 1.0
        s = cosine_similarity(CSRMatrix.from_dense(d)).to_dense()
        assert s[0, 2] == pytest.approx(1.0)

    def test_keep_self_option(self, incidence):
        s = cosine_similarity(incidence, drop_self=False).to_dense()
        assert np.allclose(np.diag(s), 1.0)

    def test_empty_rows_handled(self):
        d = np.zeros((3, 5))
        d[0, 2] = 1.0
        s = cosine_similarity(CSRMatrix.from_dense(d))
        assert s.nnz == 0  # single populated row has no neighbours

    def test_top_k_limits_degree(self, incidence):
        s = cosine_similarity(incidence)
        knn = top_k_neighbors(s, 4)
        assert knn.row_lengths().max() <= 4
        # Kept entries are each row's strongest.
        for i in range(s.nrows):
            cols_all, vals_all = s.row(i)
            cols_k, vals_k = knn.row(i)
            if cols_all.size > 4:
                threshold = np.sort(vals_all)[-4]
                assert vals_k.min() >= threshold - 1e-12

    def test_top_k_zero(self, incidence):
        s = cosine_similarity(incidence)
        assert top_k_neighbors(s, 0).nnz == 0

    def test_top_k_negative_rejected(self, incidence):
        with pytest.raises(ValueError):
            top_k_neighbors(cosine_similarity(incidence), -1)
