"""The machine-readable bench runner, schema, roofline join and CLI.

The smoke suite (two tiny generated matrices, two methods) keeps these
tests fast while exercising the full measurement path: instrumented
counter collection, warmup/repeat timing, per-device cost-model estimates
and document validation.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import schema
from repro.bench.cli import bench_main
from repro.bench.roofline import render_roofline, roofline_points
from repro.bench.runner import BenchConfig, BenchRunner, available_suites
from repro.errors import EXIT_OK, InvalidInputError


@pytest.fixture(scope="module")
def smoke_doc():
    config = BenchConfig(suite="smoke", label="unit", warmup=1, repeats=3, seed=0)
    return BenchRunner(config).run()


class TestRunner:
    def test_smoke_run_is_schema_valid(self, smoke_doc):
        schema.validate_document(smoke_doc)
        assert smoke_doc["schema"] == schema.SCHEMA_VERSION
        assert smoke_doc["meta"]["suite"] == "smoke"
        assert smoke_doc["environment"]["python"]

    def test_series_carry_samples_counters_and_estimates(self, smoke_doc):
        assert len(smoke_doc["series"]) == 4  # 2 matrices x 2 methods x 1 op
        for s in smoke_doc["series"]:
            assert len(s["wall_seconds"]) == 3
            assert all(t >= 0 for t in s["wall_seconds"])
            assert s["gflops"] > 0 and s["flops"] > 0 and s["nnz_c"] > 0
            assert set(s["estimates"]) == {"rtx3060", "rtx3090"}
            for est in s["estimates"].values():
                assert est["kernels"], s["key"]
        tile = [s for s in smoke_doc["series"] if s["method"] == "tilespgemm"]
        assert tile and all(s["counters"] for s in tile)
        assert all("step2" in s.get("phases", {}) for s in tile)

    def test_unknown_suite_raises_invalid_input(self):
        with pytest.raises(InvalidInputError):
            BenchRunner(BenchConfig(suite="nope"))

    def test_available_suites_lists_all(self):
        names = available_suites()
        assert {"smoke", "ext", "representative", "fig6", "tsparse"} <= set(names)

    def test_max_matrices_env_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MAX_MATRICES", "1")
        doc = BenchRunner(
            BenchConfig(suite="smoke", warmup=0, repeats=1)
        ).run()
        assert len({s["matrix"] for s in doc["series"]}) == 1


class TestSchema:
    def test_corrupted_key_rejected(self, smoke_doc):
        bad = json.loads(json.dumps(smoke_doc))
        bad["series"][0]["key"] = "wrong|key|oops"
        with pytest.raises(InvalidInputError, match=r"\$\.series\[0\]\.key"):
            schema.validate_document(bad)

    def test_negative_duration_rejected(self, smoke_doc):
        bad = json.loads(json.dumps(smoke_doc))
        bad["series"][1]["wall_seconds"] = [-1.0]
        with pytest.raises(InvalidInputError, match="negative"):
            schema.validate_document(bad)

    def test_load_rejects_truncated_json(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text('{"schema": "repro.bench/1", "meta"')
        with pytest.raises(InvalidInputError, match="not valid JSON"):
            schema.load_document(path)


class TestRoofline:
    def test_points_join_estimates(self, smoke_doc):
        points = roofline_points(smoke_doc)
        assert len(points) == 8  # 4 series x 2 devices
        for p in points:
            assert p.bound in ("compute", "memory")
            assert p.arithmetic_intensity > 0
            assert 0 < p.achieved_gflops <= p.peak_gflops
            # max(compute, memory) roofline: the binding fraction is largest
            assert max(p.compute_fraction, p.bandwidth_fraction) <= 1.0 + 1e-9

    def test_device_filter_and_render(self, smoke_doc):
        points = roofline_points(smoke_doc, device="rtx3090")
        assert len(points) == 4 and all(p.device == "rtx3090" for p in points)
        text = render_roofline(points)
        assert "ridge" in text and "rtx3090" in text


class TestCli:
    def test_run_report_compare_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "runs" / "a.json"
        hist = tmp_path / "history"
        argv = [
            "run", "--suite", "smoke", "--warmup", "0", "--repeats", "2",
            "--out", str(out), "--history-dir", str(hist), "--quiet",
        ]
        assert bench_main(argv) == EXIT_OK
        doc = schema.load_document(out)
        assert doc["meta"]["suite"] == "smoke"
        assert len(list(hist.glob("*.json"))) == 1

        assert bench_main(["report", str(out), "--roofline"]) == EXIT_OK
        text = capsys.readouterr().out
        assert "series summary" in text and "roofline" in text

        assert bench_main(["compare", str(out), str(out), "--json"]) == EXIT_OK
        verdicts = json.loads(capsys.readouterr().out)
        assert all(s["classification"] == "unchanged" for s in verdicts["series"])
        assert verdicts["geomean_speedup"] == pytest.approx(1.0, rel=0.15)

    def test_report_attribute_diffs_traces(self, tmp_path, capsys):
        def trace(step2_us):
            return {
                "traceEvents": [
                    {"ph": "X", "name": "step1", "cat": "step", "pid": 1,
                     "tid": 1, "ts": 0, "dur": 100},
                    {"ph": "X", "name": "step2", "cat": "step", "pid": 1,
                     "tid": 1, "ts": 100, "dur": step2_us},
                ]
            }

        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(trace(1000)))
        cur.write_text(json.dumps(trace(5000)))
        code = bench_main(["report", "--attribute", str(base), str(cur)])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        # step2 moved most, so attribution lists it first.
        assert out.index("step2") < out.index("step1")
        assert "5.00x" in out


class TestTraceDiff:
    def test_diff_traces_orders_by_absolute_delta(self):
        from repro.analysis.profiling import diff_traces, render_trace_diff

        def doc(events):
            return {
                "traceEvents": [
                    {"ph": "X", "name": n, "cat": "step", "pid": 1, "tid": 1,
                     "ts": 0, "dur": d}
                    for n, d in events
                ]
            }

        a = doc([("alloc", 50), ("step2", 1000)])
        b = doc([("alloc", 60), ("step2", 4000), ("new_phase", 500)])
        diff = diff_traces(a, b)
        assert list(diff) == ["step2", "new_phase", "alloc"]
        assert diff["step2"]["ratio"] == pytest.approx(4.0)
        assert diff["new_phase"]["ratio"] == float("inf")
        text = render_trace_diff(diff)
        assert "new" in text and "step2" in text
