"""The workload profiler and the calibration layer on top of it.

Contracts under test:

* recording — one ``tile_spgemm`` run inside a profiling context fills
  phases, totals, tnnz decisions and tile-row bands;
* serialisation — the full ``repro.profile/1`` artifact round-trips
  through plain ``json.dumps`` (no custom ``default=``), and
  :func:`validate_profile` rejects malformed documents naming the path;
* merging — worker payloads absorbed across the **spawned** process-pool
  boundary sum to the serial run's workload byte for byte;
* calibration — every estimator family exercised through
  :func:`repro.gpu.estimate_run` shows up in the prediction-error
  report, drift against a baseline raises
  :class:`~repro.errors.CalibrationDriftError` (exit code 13), and the
  report exports to Prometheus gauges and Perfetto counter tracks;
* tile-cache telemetry — lookups feed the ambient metrics registry;
* the ``repro obs profile`` / ``obs calibrate`` CLI family.
"""

from __future__ import annotations

import copy
import json
import multiprocessing

import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.errors import EXIT_CALIBRATION, CalibrationDriftError, InvalidInputError, exit_code_for
from repro.obs import (
    MetricsRegistry,
    Tracer,
    WorkloadProfiler,
    current_row_offset,
    load_profile,
    obs_context,
    profile_row_offset,
    render_profile,
    validate_profile,
    write_profile,
)
from repro.obs.profile import NULL_PROFILER
from repro.runtime.parallel import parallel_tile_spgemm
from tests.conftest import random_csr


def _tiled(n=96, density=0.06, seed=11):
    return TileMatrix.from_csr(random_csr(n, n, density, seed=seed))


def _workload_bytes(profiler: WorkloadProfiler) -> bytes:
    return json.dumps(profiler.workload(), sort_keys=True).encode()


# ------------------------------------------------------------------ record
class TestRecording:
    def test_one_run_fills_every_section(self):
        a = _tiled()
        profiler = WorkloadProfiler()
        with obs_context(profile=profiler):
            result = tile_spgemm(a, a)
        assert profiler.runs == 1
        assert set(profiler.phases) >= {"step1", "step2", "step3"}
        assert profiler.totals["products"] == int(result.stats["num_products"])
        assert profiler.totals["nnz_c"] == int(result.stats["nnz_c"])
        assert profiler.bands, "tile-row bands attributed"
        # Band counts sum back to the totals (no work lost or invented).
        assert sum(b["products"] for b in profiler.bands.values()) == (
            profiler.totals["products"]
        )
        assert sum(b["nnz_c"] for b in profiler.bands.values()) == (
            profiler.totals["nnz_c"]
        )
        # The tnnz threshold decision was captured.
        assert profiler.tnnz
        (decision,) = profiler.tnnz.values()
        assert decision["sparse_tiles"] + decision["dense_tiles"] == (
            profiler.totals["num_c_tiles"]
        )

    def test_disabled_context_records_nothing(self):
        a = _tiled(n=48)
        before = NULL_PROFILER.to_payload()
        tile_spgemm(a, a)  # default ambient context: the null profiler
        assert before is None and NULL_PROFILER.to_payload() is None

    def test_row_offset_shifts_bands(self):
        a = _tiled(n=64)
        base, shifted = WorkloadProfiler(), WorkloadProfiler()
        with obs_context(profile=base):
            tile_spgemm(a, a)
        offset_bands = 3  # 3 bands * 4 tile rows = 12 tile rows
        with obs_context(profile=shifted):
            with profile_row_offset(offset_bands * shifted.band_tile_rows):
                tile_spgemm(a, a)
        assert current_row_offset() == 0  # restored on exit
        assert {b + offset_bands for b in base.bands} == set(shifted.bands)
        for band, counts in base.bands.items():
            assert shifted.bands[band + offset_bands] == counts

    def test_merge_is_additive(self):
        a = _tiled(n=80, seed=3)
        twice, once_a, once_b = (WorkloadProfiler() for _ in range(3))
        with obs_context(profile=twice):
            tile_spgemm(a, a)
            tile_spgemm(a, a)
        with obs_context(profile=once_a):
            tile_spgemm(a, a)
        with obs_context(profile=once_b):
            tile_spgemm(a, a)
        once_a.merge(once_b, worker="peer")
        assert _workload_bytes(once_a) == _workload_bytes(twice)
        assert once_a.runs == twice.runs == 2
        assert [s["worker"] for s in once_a.shards] == ["peer"]

    def test_band_width_mismatch_is_rejected(self):
        wide = WorkloadProfiler(band_tile_rows=8)
        payload = wide.to_payload()
        payload["runs"] = 1
        with pytest.raises(ValueError, match="band width"):
            WorkloadProfiler(band_tile_rows=4).absorb_payload(payload)


# -------------------------------------------------------------- serialise
class TestArtifact:
    def test_full_artifact_roundtrips_without_custom_default(self, tmp_path):
        """Satellite contract: plain ``json.dumps``, no ``default=``."""
        from repro.gpu import DEVICES, estimate_run

        a_csr = random_csr(96, 96, 0.06, seed=11)
        profiler = WorkloadProfiler()
        with obs_context(profile=profiler):
            from repro.baselines import get_algorithm

            result = get_algorithm("tilespgemm")(a_csr, a_csr)
            estimate_run(result, DEVICES["rtx3090"])
        doc = profiler.to_dict()
        text = json.dumps(doc)  # would raise TypeError on any numpy scalar
        assert json.loads(text) == doc
        path = tmp_path / "profile.json"
        write_profile(doc, path)
        loaded = load_profile(path)
        assert loaded == doc
        assert "workload profile" in render_profile(loaded)

    def test_validate_rejects_bad_documents(self):
        a = _tiled(n=48)
        profiler = WorkloadProfiler()
        with obs_context(profile=profiler):
            tile_spgemm(a, a)
        good = profiler.to_dict()
        validate_profile(good)

        bad = copy.deepcopy(good)
        bad["schema"] = "repro.profile/999"
        with pytest.raises(InvalidInputError, match=r"\$\.schema"):
            validate_profile(bad)

        bad = copy.deepcopy(good)
        del bad["totals"]["products"]
        with pytest.raises(InvalidInputError, match=r"\$\.totals\.products"):
            validate_profile(bad)

        bad = copy.deepcopy(good)
        bad["bands"][0]["tile_rows"] = [0]
        with pytest.raises(InvalidInputError, match=r"tile_rows"):
            validate_profile(bad)


# ---------------------------------------------------------------- spawn
class TestSpawnBoundaryMerge:
    def test_spawned_pool_profiles_sum_to_serial_byte_for_byte(self):
        """The satellite contract: profile merge crosses the *spawn*
        boundary and loses nothing — a spawned worker shares no memory
        with the coordinator, so the workload arrives purely through the
        ``WorkerTelemetry.profile`` payload."""
        a = _tiled(n=128, density=0.05, seed=7)
        serial = WorkloadProfiler()
        with obs_context(profile=serial):
            tile_spgemm(a, a)

        spawn = multiprocessing.get_context("spawn")
        merged = WorkloadProfiler()
        with obs_context(profile=merged):
            parallel_tile_spgemm(
                a, a, workers=2, shards=3, executor="process", mp_context=spawn
            )
        assert merged.runs == 3  # one per shard, absorbed once each
        assert len(merged.shards) == 3
        assert all(s["worker"].startswith("worker-pid-") for s in merged.shards)
        assert _workload_bytes(merged) == _workload_bytes(serial)

    def test_thread_pool_profiles_sum_to_serial(self):
        a = _tiled(n=96, seed=5)
        serial, merged = WorkloadProfiler(), WorkloadProfiler()
        with obs_context(profile=serial):
            tile_spgemm(a, a)
        with obs_context(profile=merged):
            parallel_tile_spgemm(a, a, workers=2, shards=2, executor="thread")
        assert _workload_bytes(merged) == _workload_bytes(serial)


# ------------------------------------------------------------ calibration
def _profiled_run(methods=("tilespgemm",), devices=("rtx3090",), n=96):
    from repro.baselines import get_algorithm
    from repro.gpu import DEVICES, estimate_run

    a_csr = random_csr(n, n, 0.06, seed=11)
    profiler = WorkloadProfiler()
    with obs_context(profile=profiler):
        for method in methods:
            result = get_algorithm(method)(a_csr, a_csr)
            for dev in devices:
                estimate_run(result, DEVICES[dev])
    return profiler


class TestCalibration:
    def test_every_exercised_family_is_reported(self):
        from repro.analysis.calibration import calibrate_profile
        from repro.gpu.costmodel import estimate_family

        methods = ("tilespgemm", "nsparse_hash", "cusparse_spa", "gustavson")
        profiler = _profiled_run(methods, devices=("rtx3060", "rtx3090"))
        report = calibrate_profile(profiler.to_dict())
        expected = {estimate_family(m) for m in methods}
        assert set(report["families"]) == expected
        for family, rep in report["families"].items():
            assert rep["devices"] == ["RTX 3060", "RTX 3090"]
            assert rep["total"]["samples"] == 2
            assert rep["total"]["measured_s"] > 0
            assert rep["total"]["abs_error_s"] >= abs(rep["total"]["bias_s"]) - 1e-12
        # The TileSpGEMM estimator's kernels line up with the measured
        # phase timer, so its phase join is non-empty.
        assert {"step1", "step2", "step3"} <= set(
            report["families"]["tilespgemm"]["phases"]
        )
        assert report["families"]["tilespgemm"]["compression_bands"]

    def test_check_passes_structurally_and_on_stable_baseline(self):
        from repro.analysis.calibration import calibrate_profile, check_calibration

        report = calibrate_profile(_profiled_run().to_dict())
        assert check_calibration(report) == []
        assert check_calibration(report, baseline=copy.deepcopy(report)) == []

    def test_drift_raises_with_exit_code_13(self):
        from repro.analysis.calibration import calibrate_profile, check_calibration

        report = calibrate_profile(_profiled_run().to_dict())
        baseline = copy.deepcopy(report)
        baseline["families"]["tilespgemm"]["total"]["ratio"] = (
            report["families"]["tilespgemm"]["total"]["ratio"] * 100.0
        )
        with pytest.raises(CalibrationDriftError, match="drifted") as err:
            check_calibration(report, baseline=baseline)
        assert exit_code_for(err.value) == EXIT_CALIBRATION == 13

    def test_no_samples_is_a_structural_failure(self):
        from repro.analysis.calibration import calibrate_profile, check_calibration

        empty = WorkloadProfiler().to_dict()
        report = calibrate_profile(empty)
        with pytest.raises(CalibrationDriftError, match="no joinable"):
            check_calibration(report)

    def test_exports_to_gauges_and_counter_tracks(self):
        from repro.analysis.calibration import (
            calibrate_profile,
            calibration_to_metrics,
            emit_calibration_counters,
        )

        report = calibrate_profile(_profiled_run().to_dict())
        registry = MetricsRegistry()
        calibration_to_metrics(report, registry)
        samples = registry.gauge_samples("costmodel_bias_seconds")
        assert {"family": "tilespgemm", "phase": "total"} in [s[0] for s in samples]
        text = registry.to_prometheus()
        assert "costmodel_error_ratio" in text

        tracer = Tracer()
        emit_calibration_counters(report, tracer)
        counter_names = {e.name for e in tracer.events if e.ph == "C"}
        assert "costmodel/tilespgemm/bias_s" in counter_names


# -------------------------------------------------------------- tilecache
class TestTileCacheTelemetry:
    def test_lookups_feed_the_ambient_registry(self):
        from repro.runtime.tilecache import TileCache

        a = random_csr(64, 64, 0.08, seed=2)
        b = random_csr(64, 64, 0.08, seed=3)
        registry = MetricsRegistry()
        cache = TileCache(capacity=1)
        with obs_context(metrics=registry):
            cache.tile(a)  # miss
            cache.tile(a)  # hit
            cache.tile(b)  # miss + evicts a
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 2
        assert cache.stats()["evictions"] == 1
        assert registry.counter_value("tilecache_hits_total") == 1.0
        assert registry.counter_value("tilecache_misses_total") == 2.0
        assert registry.counter_value("tilecache_evictions_total") == 1.0
        def gauge_value(name):
            samples = registry.gauge_samples(name)
            assert samples, name
            return samples[0][1]

        assert gauge_value("tilecache_entries") == 1.0
        assert gauge_value("tilecache_evictions") == 1.0
        assert gauge_value("tilecache_resident_bytes") > 0
        assert cache.stats()["resident_bytes"] > 0

    def test_disabled_context_exports_nothing(self):
        from repro.runtime.tilecache import TileCache

        a = random_csr(32, 32, 0.1, seed=4)
        cache = TileCache()
        cache.tile(a)
        cache.tile(a)
        assert cache.stats()["hits"] == 1  # local counters still work


# -------------------------------------------------------------------- CLI
class TestObsProfileCli:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("prof") / "profile.json"
        write_profile(_profiled_run().to_dict(), path)
        return path

    def test_profile_renders_artifact(self, artifact, capsys):
        from repro.obs.cli import obs_main

        assert obs_main(["profile", str(artifact), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "workload profile" in out
        assert "tile-row bands" in out

    def test_profile_json_is_the_artifact(self, artifact, capsys):
        from repro.obs.cli import obs_main

        assert obs_main(["profile", str(artifact), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == validate_profile(doc)

    def test_profile_requires_artifact_or_suite(self, capsys):
        from repro.errors import EXIT_USAGE
        from repro.obs.cli import obs_main

        assert obs_main(["profile"]) == EXIT_USAGE

    def test_profile_missing_artifact_exit_code(self, tmp_path):
        from repro.errors import EXIT_FILE_NOT_FOUND
        from repro.obs.cli import obs_main

        assert obs_main(["profile", str(tmp_path / "no.json")]) == EXIT_FILE_NOT_FOUND

    def test_calibrate_report_check_and_baseline_flow(self, artifact, tmp_path, capsys):
        from repro.obs.cli import obs_main

        calib = tmp_path / "calib.json"
        prom = tmp_path / "calib.prom"
        trace = tmp_path / "calib_trace.json"
        code = obs_main(
            [
                "calibrate", str(artifact),
                "--out", str(calib),
                "--metrics", str(prom),
                "--trace", str(trace),
                "--check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost-model calibration" in out
        assert "costmodel_bias_seconds" in prom.read_text()
        trace_doc = json.loads(trace.read_text())
        events = trace_doc["traceEvents"] if isinstance(trace_doc, dict) else trace_doc
        assert any(e.get("ph") == "C" for e in events)
        # The written report gates itself cleanly as a baseline.
        assert obs_main(
            ["calibrate", str(artifact), "--check", "--baseline", str(calib)]
        ) == 0

    def test_calibrate_drift_exits_13(self, artifact, tmp_path, capsys):
        from repro.analysis.calibration import load_calibration, write_calibration
        from repro.obs.cli import obs_main

        calib = tmp_path / "baseline.json"
        assert obs_main(["calibrate", str(artifact), "--out", str(calib)]) == 0
        capsys.readouterr()
        doc = load_calibration(calib)
        doc["families"]["tilespgemm"]["total"]["ratio"] *= 1000.0
        write_calibration(doc, calib)
        code = obs_main(
            ["calibrate", str(artifact), "--check", "--baseline", str(calib)]
        )
        assert code == EXIT_CALIBRATION
        assert "drifted" in capsys.readouterr().err
