"""The warp-semantics interpreter must agree with the vectorised pipeline."""

import numpy as np
import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.core.pairs import enumerate_pairs_expand
from repro.core.step2 import step2_symbolic
from repro.core.warp_reference import warp_step2_symbolic, warp_step3_numeric
from tests.conftest import random_csr


@pytest.fixture(scope="module", params=[0, 1, 2])
def setup(request):
    seeds = {0: (60, 0.12), 1: (90, 0.06), 2: (48, 0.3)}
    n, d = seeds[request.param]
    a = TileMatrix.from_csr(random_csr(n, n, d, seed=280 + request.param))
    b = TileMatrix.from_csr(random_csr(n, n, d, seed=290 + request.param))
    pairs = enumerate_pairs_expand(a, b)
    return a, b, pairs


class TestWarpStep2:
    def test_masks_identical_to_vectorised(self, setup):
        a, b, pairs = setup
        warp_masks, _ = warp_step2_symbolic(a, b, pairs)
        sym = step2_symbolic(a, b, pairs)
        assert np.array_equal(warp_masks, sym.mask)

    def test_or_ops_equal_symbolic_op_count(self, setup):
        a, b, pairs = setup
        _, stats = warp_step2_symbolic(a, b, pairs)
        sym = step2_symbolic(a, b, pairs)
        assert stats.mask_or_ops == sym.symbolic_ops

    def test_wave_count_matches_ceil_formula(self, setup):
        a, b, pairs = setup
        _, stats = warp_step2_symbolic(a, b, pairs)
        a_counts = a.tile_nnz_counts()
        expected = int(np.ceil(a_counts[pairs.pair_a] / 32.0).sum())
        assert stats.waves == expected


class TestWarpStep3:
    def test_values_identical_to_vectorised(self, setup):
        a, b, pairs = setup
        sym = step2_symbolic(a, b, pairs)
        dense_c, _ = warp_step3_numeric(a, b, pairs, sym.mask)
        result = tile_spgemm(a, b)
        # Compact the warp interpreter's dense tiles through the masks and
        # compare against the pipeline's value array.
        for t in range(pairs.num_c_tiles):
            lo, hi = sym.tilennz[t], sym.tilennz[t + 1]
            r = result.c.rowidx[lo:hi].astype(int)
            c = result.c.colidx[lo:hi].astype(int)
            assert np.allclose(dense_c[t, r, c], result.c.val[lo:hi])

    def test_product_count_matches_flops(self, setup):
        a, b, pairs = setup
        sym = step2_symbolic(a, b, pairs)
        _, stats = warp_step3_numeric(a, b, pairs, sym.mask)
        result = tile_spgemm(a, b)
        assert stats.products == result.stats["num_products"]

    def test_conflicts_bounded_by_products(self, setup):
        a, b, pairs = setup
        sym = step2_symbolic(a, b, pairs)
        _, stats = warp_step3_numeric(a, b, pairs, sym.mask)
        assert 0 <= stats.atomic_conflicts <= stats.products
