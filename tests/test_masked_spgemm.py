"""Tests for the masked-SpGEMM extension (GraphBLAS-style C = (A B) .* M)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileMatrix, masked_tile_spgemm, tile_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr


def tiled(csr: CSRMatrix) -> TileMatrix:
    return TileMatrix.from_csr(csr)


def masked_dense(a, b, m):
    return (a.to_dense() @ b.to_dense()) * (m.to_dense() != 0)


class TestMaskedCorrectness:
    def test_matches_dense_masking(self):
        a = random_csr(120, 90, 0.08, seed=201)
        b = random_csr(90, 110, 0.08, seed=202)
        m = random_csr(120, 110, 0.15, seed=203)
        res = masked_tile_spgemm(tiled(a), tiled(b), tiled(m))
        assert np.allclose(res.c.to_dense(), masked_dense(a, b, m))
        res.c.validate()

    def test_full_mask_equals_plain_spgemm(self):
        a = random_csr(80, 80, 0.1, seed=204)
        full = CSRMatrix.from_dense(np.ones((80, 80)))
        masked = masked_tile_spgemm(tiled(a), tiled(a), tiled(full))
        plain = tile_spgemm(tiled(a), tiled(a))
        assert masked.c.to_csr().allclose(plain.c.to_csr().prune(0.0))

    def test_empty_mask_gives_empty_c(self):
        a = random_csr(64, 64, 0.2, seed=205)
        empty = CSRMatrix.empty((64, 64))
        res = masked_tile_spgemm(tiled(a), tiled(a), tiled(empty))
        assert res.c.nnz == 0
        assert res.c.num_tiles == 0

    def test_mask_values_ignored_pattern_only(self):
        a = random_csr(50, 50, 0.15, seed=206)
        m = random_csr(50, 50, 0.2, seed=207)
        m_scaled = CSRMatrix(m.shape, m.indptr, m.indices, m.val * 1e6)
        r1 = masked_tile_spgemm(tiled(a), tiled(a), tiled(m))
        r2 = masked_tile_spgemm(tiled(a), tiled(a), tiled(m_scaled))
        assert r1.c.to_csr().allclose(r2.c.to_csr())

    def test_diagonal_mask_extracts_diagonal(self):
        a = random_csr(60, 60, 0.2, seed=208)
        eye = CSRMatrix.identity(60)
        res = masked_tile_spgemm(tiled(a), tiled(a), tiled(eye))
        expected = np.diag(np.diag(a.to_dense() @ a.to_dense()))
        assert np.allclose(res.c.to_dense(), expected)

    def test_mask_sparser_than_product_saves_space(self):
        a = random_csr(100, 100, 0.15, seed=209)
        m = random_csr(100, 100, 0.01, seed=210)
        plain = tile_spgemm(tiled(a), tiled(a))
        masked = masked_tile_spgemm(tiled(a), tiled(a), tiled(m))
        assert masked.c.nnz < plain.c.nnz
        assert masked.stats["masked"] is True


class TestMaskedValidation:
    def test_wrong_mask_shape(self):
        a = random_csr(32, 32, 0.2, seed=211)
        m = random_csr(48, 48, 0.2, seed=212)
        with pytest.raises(ValueError, match="mask shape"):
            masked_tile_spgemm(tiled(a), tiled(a), tiled(m))

    def test_mismatched_inner_dims(self):
        a = random_csr(32, 32, 0.2, seed=213)
        b = random_csr(48, 48, 0.2, seed=214)
        m = random_csr(32, 48, 0.2, seed=215)
        with pytest.raises(ValueError, match="dimension"):
            masked_tile_spgemm(tiled(a), tiled(b), tiled(m))

    def test_mismatched_tile_sizes(self):
        a = random_csr(32, 32, 0.2, seed=216)
        with pytest.raises(ValueError, match="tile size"):
            masked_tile_spgemm(
                tiled(a), tiled(a), TileMatrix.from_csr(a, 8)
            )


class TestMaskedTriangleCounting:
    def test_fused_triangle_count_matches_two_phase(self):
        import networkx as nx

        from repro.apps import lower_triangle, triangle_count

        g = nx.gnp_random_graph(140, 0.07, seed=6)
        adj = CSRMatrix.from_scipy(nx.to_scipy_sparse_array(g).tocsr().astype(float))
        l = lower_triangle(adj)
        fused = masked_tile_spgemm(tiled(l), tiled(l), tiled(l))
        assert int(round(fused.c.val.sum())) == triangle_count(adj)
        assert int(round(fused.c.val.sum())) == sum(nx.triangles(g).values()) // 3


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 40), st.integers(0, 3))
def test_property_masked_equals_dense(n, seed):
    rng = np.random.default_rng(seed * 1000 + n)
    a = CSRMatrix.from_dense(rng.random((n, n)) * (rng.random((n, n)) < 0.2))
    b = CSRMatrix.from_dense(rng.random((n, n)) * (rng.random((n, n)) < 0.2))
    m = CSRMatrix.from_dense((rng.random((n, n)) < 0.3).astype(float))
    res = masked_tile_spgemm(tiled(a), tiled(b), tiled(m))
    assert np.allclose(res.c.to_dense(), masked_dense(a, b, m), atol=1e-12)
