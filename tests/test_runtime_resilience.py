"""Tests of the resilient execution runtime (repro.runtime, repro.errors).

Covers the memory-budget enforcement in the allocation tracker, the
execution-context plumbing, the deterministic fault plan, chunked
re-execution under a budget, the retry/backoff/fallback policy engine and
the SUMMA communication-fault path — including the acceptance criteria of
the resilience issue (bit-identical chunked recovery with ``batches > 1``;
degraded-but-correct fallback on exhausted retries).
"""

import numpy as np
import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.distributed.grid import ProcessGrid
from repro.distributed.summa import summa_spgemm
from repro.errors import (
    CommFailure,
    DeviceOOMError,
    InvalidInputError,
    ResilienceExhausted,
    TransientKernelError,
    exit_code_for,
)
from repro.gpu.device import RTX3060, RTX3090
from repro.gpu.memtracker import memory_curve
from repro.runtime import (
    FaultPlan,
    RetryPolicy,
    execution_context,
    current_budget_bytes,
    run_resilient,
)
from repro.runtime.chunked import chunked_tile_spgemm, slice_tile_rows
from repro.util.alloc import AllocationTracker
from tests.conftest import random_csr


def _tiled(seed=11, n=96, density=0.08, tile_size=16):
    return TileMatrix.from_csr(random_csr(n, n, density, seed=seed), tile_size)


class TestErrorTaxonomy:
    def test_backwards_compatible_bases(self):
        assert issubclass(InvalidInputError, ValueError)
        assert issubclass(DeviceOOMError, MemoryError)
        assert issubclass(TransientKernelError, RuntimeError)
        assert issubclass(CommFailure, TransientKernelError)

    def test_exit_codes_are_distinct(self):
        excs = [
            InvalidInputError("x"),
            FileNotFoundError("x"),
            DeviceOOMError("b", 1, 0, None),
            TransientKernelError("s"),
            CommFailure("s"),
            ResilienceExhausted("x"),
        ]
        codes = [exit_code_for(e) for e in excs]
        assert len(set(codes)) == len(codes)
        assert all(c != 0 for c in codes)

    def test_oom_carries_context(self):
        err = DeviceOOMError("val_C", 4096, 1024, 2048)
        assert err.label == "val_C"
        assert err.requested_bytes == 4096
        assert err.live_bytes == 1024
        assert err.budget_bytes == 2048
        assert "val_C" in str(err)


class TestBudgetedTracker:
    def test_within_budget_ok(self):
        t = AllocationTracker(budget_bytes=100)
        t.alloc("a", 60)
        t.alloc("b", 40)
        assert t.live_bytes == 100

    def test_exceeding_budget_raises_at_offending_alloc(self):
        t = AllocationTracker(budget_bytes=100)
        t.alloc("a", 60)
        with pytest.raises(DeviceOOMError) as excinfo:
            t.alloc("b", 41)
        assert excinfo.value.label == "b"
        assert excinfo.value.live_bytes == 60
        # State untouched by the failed allocation.
        assert t.live_bytes == 60
        assert t.peak_bytes == 60
        assert t.live_labels() == ("a",)

    def test_free_makes_room(self):
        t = AllocationTracker(budget_bytes=100)
        t.alloc("a", 60)
        t.free("a")
        t.alloc("b", 90)
        assert t.live_bytes == 90

    def test_budget_inherited_from_context(self):
        with execution_context(budget_bytes=50):
            t = AllocationTracker()
            assert t.budget_bytes == 50
            with pytest.raises(DeviceOOMError):
                t.alloc("a", 51)

    def test_explicit_budget_wins_over_context(self):
        with execution_context(budget_bytes=50):
            t = AllocationTracker(budget_bytes=500)
            t.alloc("a", 400)

    def test_use_context_false_detaches(self):
        with execution_context(budget_bytes=50):
            t = AllocationTracker(use_context=False)
            t.alloc("a", 10_000)
            assert t.budget_bytes is None


class TestExecutionContext:
    def test_nesting_inherits_unset_fields(self):
        plan = FaultPlan()
        with execution_context(budget_bytes=10, fault_plan=plan) as outer:
            with execution_context() as inner:
                assert inner.budget_bytes == 10
                assert inner.fault_plan is plan
            with execution_context(budget_bytes=20) as override:
                assert override.budget_bytes == 20
                assert override.fault_plan is plan
            assert outer.budget_bytes == 10
        assert current_budget_bytes() is None

    def test_context_restored_after_error(self):
        with pytest.raises(RuntimeError):
            with execution_context(budget_bytes=10):
                raise RuntimeError("boom")
        assert current_budget_bytes() is None


class TestDeviceCapacity:
    def test_table1_capacities(self):
        assert RTX3060.dram_capacity_bytes == 12_000_000_000
        assert RTX3090.dram_capacity_bytes == 24_000_000_000

    def test_scaled_memory_scales_capacity(self):
        tiny = RTX3090.scaled_memory(1e-9)
        assert tiny.dram_capacity_bytes == 24

    def test_memory_curve_oom_from_capacity(self):
        a = _tiled()
        result = tile_spgemm(a, a)
        from repro.baselines.base import SpGEMMResult

        wrapper = SpGEMMResult(
            c=None, method="tilespgemm", timer=result.timer,
            alloc=result.alloc, stats=dict(result.stats),
        )
        fits = memory_curve(wrapper, RTX3090)
        assert not fits.oom
        # Shrink DRAM below the run's peak: the curve must flag OOM.
        factor = result.alloc.peak_bytes / (2 * RTX3090.dram_capacity_bytes)
        ooms = memory_curve(wrapper, RTX3090.scaled_memory(factor))
        assert ooms.oom
        assert np.isnan(ooms.total_seconds) or ooms.total_seconds > 0


class TestFaultPlanSemantics:
    def test_at_is_one_based_and_one_shot(self):
        plan = FaultPlan().inject("transient", "step", at=2)
        plan.on_step("a")  # 1st: no fire
        with pytest.raises(TransientKernelError):
            plan.on_step("b")  # 2nd: fires
        plan.on_step("c")  # one-shot: never again
        assert plan.num_fired == 1

    def test_every_fires_repeatedly(self):
        plan = FaultPlan().inject("transient", "step", every=2)
        plan.on_step("a")
        with pytest.raises(TransientKernelError):
            plan.on_step("a")
        plan.on_step("a")
        with pytest.raises(TransientKernelError):
            plan.on_step("a")
        assert plan.num_fired == 2

    def test_match_filters_events(self):
        plan = FaultPlan().inject("oom", "alloc", at=1, match="val")
        plan.on_alloc("rowPtr_C", 10)
        with pytest.raises(DeviceOOMError):
            plan.on_alloc("val_C", 10)

    def test_reset_replays(self):
        plan = FaultPlan(seed=3).inject("transient", "step", at=1)
        with pytest.raises(TransientKernelError):
            plan.on_step("x")
        plan.reset()
        assert plan.num_fired == 0
        with pytest.raises(TransientKernelError):
            plan.on_step("x")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().inject("nonsense", "step", at=1)
        with pytest.raises(ValueError):
            FaultPlan().inject("oom", "nowhere", at=1)


class TestSliceTileRows:
    def test_slices_partition_the_matrix(self):
        a = _tiled(seed=5, n=130)
        rows = a.num_tile_rows
        mid = rows // 2
        top, bottom = slice_tile_rows(a, 0, mid), slice_tile_rows(a, mid, rows)
        assert top.num_tiles + bottom.num_tiles == a.num_tiles
        assert top.nnz + bottom.nnz == a.nnz
        assert top.shape[0] + bottom.shape[0] == a.shape[0]

    def test_out_of_range_rejected(self):
        a = _tiled()
        with pytest.raises(InvalidInputError):
            slice_tile_rows(a, 0, a.num_tile_rows + 1)


class TestBudgetDrivenChunking:
    """Acceptance criterion: under an injected DeviceOOMError the resilient
    runtime produces a TileMatrix bit-identical (pattern and values) to the
    unbudgeted tile_spgemm result, with batches > 1."""

    def test_budget_forces_batches_and_bit_identity(self):
        a = _tiled(seed=19, n=160, density=0.1)
        clean = tile_spgemm(a, a)
        budget = int(clean.alloc.peak_bytes * 0.6)
        # Sanity: the budget genuinely makes the single-shot run OOM.
        with pytest.raises(DeviceOOMError):
            tile_spgemm(a, a, budget_bytes=budget)
        rr = run_resilient(a, a, budget_bytes=budget)
        assert rr.report.batches > 1
        assert not rr.report.degraded
        assert rr.report.method == "tilespgemm"
        c1, c2 = clean.c, rr.c
        for name in ("tileptr", "tilecolidx", "tilennz", "rowptr", "rowidx", "colidx", "mask"):
            assert np.array_equal(getattr(c1, name), getattr(c2, name)), name
        assert np.array_equal(c1.val, c2.val)

    def test_chunked_run_respects_budget(self):
        a = _tiled(seed=19, n=160, density=0.1)
        clean = tile_spgemm(a, a)
        budget = int(clean.alloc.peak_bytes * 0.6)
        rr = run_resilient(a, a, budget_bytes=budget)
        assert rr.result.alloc.peak_bytes <= budget

    def test_impossible_budget_exhausts(self):
        a = _tiled()
        with pytest.raises(ResilienceExhausted) as excinfo:
            run_resilient(a, a, budget_bytes=16)
        assert isinstance(excinfo.value.__cause__, DeviceOOMError)

    def test_chunked_respects_explicit_batches(self):
        a = _tiled(seed=2, n=128)
        res = chunked_tile_spgemm(a, a, num_batches=4)
        assert res.stats["batches"] == 4
        assert res.timer.count("step2") == 4


class TestFallbackLadder:
    """Acceptance criterion: under injected transient faults with exhausted
    retries, run_resilient returns a correct result via the fallback ladder
    with degraded=True."""

    def test_exhausted_retries_degrade_correctly(self):
        a = _tiled()
        clean = tile_spgemm(a, a)
        plan = FaultPlan().transient_at_step("step1", every=1)
        policy = RetryPolicy(max_retries=2)
        rr = run_resilient(a, a, fault_plan=plan, policy=policy)
        assert rr.report.degraded is True
        assert rr.report.method != "tilespgemm"
        assert rr.c_csr().allclose(clean.c.to_csr())
        # max_retries + 1 failed tile attempts, then the fallback.
        tile_attempts = [r for r in rr.report.attempts if r.method == "tilespgemm"]
        assert len(tile_attempts) == policy.max_retries + 1

    def test_backoff_is_exponential_and_charged(self):
        a = _tiled()
        plan = FaultPlan().transient_at_step("step1", every=1)
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.5, backoff_factor=2.0, max_backoff_s=10.0)
        rr = run_resilient(a, a, fault_plan=plan, policy=policy)
        assert rr.report.backoff_s == pytest.approx(0.5 + 1.0 + 2.0)
        assert rr.result.timer.seconds["backoff"] == pytest.approx(3.5)

    def test_custom_ladder(self):
        a = _tiled()
        plan = FaultPlan().transient_at_step("step1", every=1)
        rr = run_resilient(
            a, a, fault_plan=plan,
            policy=RetryPolicy(max_retries=0, ladder=("tilespgemm", "gustavson")),
        )
        assert rr.report.method == "gustavson"

    def test_invalid_input_never_retried(self):
        a = _tiled(n=96)
        b = _tiled(n=64, seed=5)
        with pytest.raises(InvalidInputError):
            run_resilient(a, b)

    def test_csr_inputs_accepted(self):
        a_csr = random_csr(80, 80, 0.1, seed=31)
        rr = run_resilient(a_csr, a_csr)
        ref = tile_spgemm(TileMatrix.from_csr(a_csr), TileMatrix.from_csr(a_csr))
        assert rr.c_csr().allclose(ref.c.to_csr())

    def test_report_estimates_with_device(self):
        a = _tiled()
        rr = run_resilient(a, a, device=RTX3090)
        assert rr.estimate is not None
        assert rr.estimated_seconds > 0
        assert np.isfinite(rr.estimated_seconds)
        # The device's DRAM capacity becomes the default budget.
        assert rr.report.budget_bytes == RTX3090.dram_capacity_bytes


class TestSUMMACommFaults:
    def _operand(self):
        return random_csr(96, 96, 0.08, seed=23)

    def test_comm_failure_raises_without_retransmit(self):
        a = self._operand()
        plan = FaultPlan().comm_at_broadcast(1)
        with pytest.raises(CommFailure):
            summa_spgemm(a, a, ProcessGrid(2, 2, 16), fault_plan=plan)

    def test_retransmit_recovers_and_charges_comm(self):
        a = self._operand()
        grid = ProcessGrid(2, 2, 16)
        base = summa_spgemm(a, a, grid)
        plan = FaultPlan().comm_at_broadcast(3)
        res = summa_spgemm(a, a, grid, fault_plan=plan, max_retransmits=2)
        assert res.retransmits == 1
        assert res.comm_s.sum() > base.comm_s.sum()
        assert res.c.allclose(base.c)

    def test_repeated_loss_exhausts_retransmits(self):
        a = self._operand()
        plan = FaultPlan().inject("comm", "broadcast", every=1)
        with pytest.raises(CommFailure):
            summa_spgemm(a, a, ProcessGrid(2, 2, 16), fault_plan=plan, max_retransmits=3)

    def test_plan_flows_from_context(self):
        a = self._operand()
        plan = FaultPlan().comm_at_broadcast(1)
        with execution_context(fault_plan=plan):
            with pytest.raises(CommFailure):
                summa_spgemm(a, a, ProcessGrid(1, 2, 16))
