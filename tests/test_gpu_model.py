"""Tests for the GPU execution model: devices, scheduler, cost model."""

import numpy as np
import pytest

from repro.baselines import get_algorithm
from repro.gpu import (
    RTX3060,
    RTX3090,
    DeviceModel,
    estimate_run,
    greedy_makespan,
    imbalance_factor,
    memory_curve,
)
from tests.conftest import random_csr


class TestDevices:
    def test_table1_specs(self):
        assert RTX3060.cuda_cores == 3584
        assert RTX3090.cuda_cores == 10496
        assert RTX3060.dram_bw_gbs == 360.0
        assert RTX3090.dram_bw_gbs == 936.2
        assert RTX3090.dram_gb == 24.0

    def test_derived_quantities(self):
        assert RTX3090.warp_slots == 82 * 32
        assert RTX3090.issue_slots == 82 * 4
        assert RTX3090.flop_rate > RTX3060.flop_rate

    def test_malloc_model_monotone(self):
        d = RTX3090
        assert d.malloc_seconds(1e6) < d.malloc_seconds(1e8)
        assert d.malloc_seconds(1e6, 1) < d.malloc_seconds(1e6, 10)

    def test_scaled_memory(self):
        small = RTX3090.scaled_memory(0.001)
        assert small.dram_gb == pytest.approx(0.024)
        assert small.dram_bw_gbs == RTX3090.dram_bw_gbs  # only capacity scales


class TestScheduler:
    def test_empty(self):
        assert greedy_makespan(np.array([]), 8) == 0.0

    def test_fewer_tasks_than_workers(self):
        assert greedy_makespan(np.array([3.0, 7.0]), 8) == 7.0

    def test_perfect_balance(self):
        ms = greedy_makespan(np.full(100, 2.0), 10)
        assert ms == pytest.approx(20.0)

    def test_single_giant_task_dominates(self):
        d = np.concatenate([[1000.0], np.ones(50)])
        assert greedy_makespan(d, 10) >= 1000.0

    def test_greedy_exact_small_case(self):
        # tasks [4,3,3] on 2 workers in order: w1=4, w2=3+3=6.
        assert greedy_makespan(np.array([4.0, 3.0, 3.0]), 2) == 6.0

    def test_analytic_fallback_close_to_exact(self):
        rng = np.random.default_rng(0)
        d = rng.uniform(1, 5, size=5000)
        exact = greedy_makespan(d, 64)
        approx = greedy_makespan(d, 64, exact_limit=10)
        assert approx <= exact <= approx + d.max()

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            greedy_makespan(np.array([-1.0]), 4)

    def test_imbalance_factor(self):
        assert imbalance_factor(np.full(64, 1.0), 8) == pytest.approx(1.0)
        skewed = np.concatenate([[640.0], np.ones(63)])
        assert imbalance_factor(skewed, 8) > 5.0


class TestCostModel:
    @pytest.fixture(scope="class")
    def runs(self):
        a = random_csr(200, 200, 0.06, seed=101)
        methods = ["tilespgemm", "cusparse_spa", "bhsparse_esc", "nsparse_hash", "speck", "tsparse"]
        return {m: get_algorithm(m)(a, a) for m in methods}

    def test_all_methods_estimable(self, runs):
        for method, res in runs.items():
            est = estimate_run(res, RTX3090)
            assert est.seconds > 0, method
            assert est.gflops > 0, method
            assert est.flops == res.flops

    def test_faster_device_is_faster(self, runs):
        for method, res in runs.items():
            fast = estimate_run(res, RTX3090).seconds
            slow = estimate_run(res, RTX3060).seconds
            assert fast < slow, method

    def test_breakdown_sums_to_total(self, runs):
        for res in runs.values():
            est = estimate_run(res, RTX3090)
            assert sum(est.breakdown().values()) == pytest.approx(est.seconds)

    def test_tilespgemm_kernels_named_steps(self, runs):
        est = estimate_run(runs["tilespgemm"], RTX3090)
        assert [k.name for k in est.kernels] == ["step1", "step2", "step3"]

    def test_kernel_bound_labels(self, runs):
        est = estimate_run(runs["tilespgemm"], RTX3090)
        assert all(k.bound in ("compute", "memory") for k in est.kernels)

    def test_unknown_method_rejected(self, runs):
        from dataclasses import replace

        res = runs["speck"]
        res2 = type(res)(c=res.c, method="mystery", timer=res.timer, alloc=res.alloc, stats=res.stats)
        with pytest.raises(KeyError):
            estimate_run(res2, RTX3090)

    def test_oom_detection(self, runs):
        tiny = RTX3090.scaled_memory(1e-9)
        est = estimate_run(runs["bhsparse_esc"], tiny)
        assert est.oom
        assert est.gflops == 0.0
        assert est.seconds == float("inf")

    def test_esc_oom_before_tilespgemm(self, runs):
        """Shrink memory until ESC fails; TileSpGEMM must still fit (the
        paper's TSOPF/gupta3 scenario)."""
        esc_peak = runs["bhsparse_esc"].alloc.peak_bytes
        tile_peak = runs["tilespgemm"].alloc.peak_bytes
        capacity = (esc_peak + tile_peak) / 2 / 1e9  # between the two peaks
        dev = DeviceModel(
            name="tiny", num_sms=82, cuda_cores=10496, clock_ghz=1.7,
            dram_bw_gbs=936.2, dram_gb=capacity, shared_mem_kb_per_sm=100,
        )
        assert estimate_run(runs["bhsparse_esc"], dev).oom
        assert not estimate_run(runs["tilespgemm"], dev).oom


class TestMemoryCurve:
    def test_curve_matches_ledger(self):
        a = random_csr(150, 150, 0.08, seed=102)
        res = get_algorithm("bhsparse_esc")(a, a)
        curve = memory_curve(res, RTX3090)
        assert curve.peak_bytes == res.alloc.peak_bytes
        assert max(b for _, b in curve.points) == curve.peak_bytes
        assert curve.total_seconds > 0
        assert curve.points[-1][0] == pytest.approx(curve.total_seconds)

    def test_peak_mb_units(self):
        a = random_csr(100, 100, 0.1, seed=103)
        res = get_algorithm("speck")(a, a)
        curve = memory_curve(res, RTX3090)
        assert curve.peak_mb == pytest.approx(curve.peak_bytes / 1e6)
