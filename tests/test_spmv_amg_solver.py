"""Tests for tiled SpMV and the end-to-end AMG solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import AMGSolver, smoothed_prolongator, aggregation_prolongator
from repro.core import TileMatrix
from repro.core.spmv import csr_spmv, tile_spmv
from repro.matrices import generators
from tests.conftest import random_csr


class TestSpMV:
    def test_tile_matches_dense(self):
        a = random_csr(90, 70, 0.1, seed=221)
        x = np.random.default_rng(1).normal(size=70)
        got = tile_spmv(TileMatrix.from_csr(a), x)
        assert np.allclose(got, a.to_dense() @ x)

    def test_csr_matches_dense(self):
        a = random_csr(60, 80, 0.1, seed=222)
        x = np.random.default_rng(2).normal(size=80)
        assert np.allclose(csr_spmv(a, x), a.to_dense() @ x)

    def test_tile_equals_csr(self):
        a = random_csr(128, 128, 0.08, seed=223)
        x = np.random.default_rng(3).normal(size=128)
        assert np.allclose(tile_spmv(TileMatrix.from_csr(a), x), csr_spmv(a, x))

    def test_empty_matrix(self):
        from repro.formats.csr import CSRMatrix

        a = CSRMatrix.empty((10, 12))
        assert np.allclose(tile_spmv(TileMatrix.from_csr(a), np.ones(12)), 0.0)

    def test_length_mismatch(self):
        a = TileMatrix.from_csr(random_csr(10, 12, 0.5, seed=224))
        with pytest.raises(ValueError):
            tile_spmv(a, np.ones(10))
        with pytest.raises(ValueError):
            csr_spmv(random_csr(10, 12, 0.5, seed=224), np.ones(10))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 50), st.integers(0, 5))
    def test_property_matches_dense(self, n, seed):
        rng = np.random.default_rng(seed * 100 + n)
        dense = rng.random((n, n)) * (rng.random((n, n)) < 0.25)
        from repro.formats.csr import CSRMatrix

        a = CSRMatrix.from_dense(dense)
        x = rng.normal(size=n)
        assert np.allclose(tile_spmv(TileMatrix.from_csr(a), x), dense @ x)


class TestSmoothedAggregation:
    def test_smoothed_prolongator_shape(self):
        a = generators.stencil_2d(10, 10).to_csr()
        tent = aggregation_prolongator(a, seed=1)
        p = smoothed_prolongator(a, tent)
        assert p.shape == tent.shape
        assert p.nnz >= tent.nnz  # smoothing widens the support

    def test_smoothed_prolongator_matches_dense_formula(self):
        a = generators.stencil_2d(8, 8).to_csr()
        tent = aggregation_prolongator(a, seed=2)
        p = smoothed_prolongator(a, tent, omega=0.5)
        d = np.diag(a.to_dense())
        expected = (np.eye(a.shape[0]) - 0.5 * np.diag(1.0 / d) @ a.to_dense()) @ tent.to_dense()
        assert np.allclose(p.to_dense(), expected, atol=1e-12)

    def test_zero_diagonal_rejected(self):
        from repro.formats.csr import CSRMatrix

        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            smoothed_prolongator(a, aggregation_prolongator(a))


class TestAMGSolver:
    @pytest.fixture(scope="class")
    def poisson(self):
        a = generators.stencil_2d(24, 24).to_csr()
        rng = np.random.default_rng(7)
        x_true = rng.normal(size=a.shape[0])
        b = csr_spmv(a, x_true)
        return a, b, x_true

    def test_solves_poisson(self, poisson):
        a, b, x_true = poisson
        res = AMGSolver(a).solve(b, tol=1e-8, max_cycles=60)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-6

    def test_residual_monotone_decreasing(self, poisson):
        a, b, _ = poisson
        res = AMGSolver(a).solve(b, tol=1e-10, max_cycles=30)
        h = res.residual_history
        assert all(h[i + 1] < h[i] for i in range(len(h) - 1))

    def test_smoothed_beats_plain_aggregation(self, poisson):
        a, b, _ = poisson
        plain = AMGSolver(a, smoothed_aggregation=False).solve(b, tol=1e-8, max_cycles=25)
        smooth = AMGSolver(a, smoothed_aggregation=True).solve(b, tol=1e-8, max_cycles=25)
        assert smooth.convergence_factor() < plain.convergence_factor()

    def test_zero_rhs(self, poisson):
        a, _, _ = poisson
        res = AMGSolver(a).solve(np.zeros(a.shape[0]))
        assert res.converged
        assert np.allclose(res.x, 0.0)

    def test_initial_guess_respected(self, poisson):
        a, b, x_true = poisson
        res = AMGSolver(a).solve(b, x0=x_true.copy(), tol=1e-8, max_cycles=5)
        assert res.converged
        assert res.iterations <= 2

    def test_rhs_length_checked(self, poisson):
        a, _, _ = poisson
        with pytest.raises(ValueError):
            AMGSolver(a).solve(np.ones(3))

    def test_solver_with_other_spgemm_method(self, poisson):
        a, b, x_true = poisson
        res = AMGSolver(a, spgemm_method="speck").solve(b, tol=1e-8, max_cycles=60)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-6
