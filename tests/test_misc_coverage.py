"""Coverage for the smaller utilities and less-travelled code paths."""

import numpy as np
import pytest

from repro.util.validation import check_dims_match, check_square, require_dtype
from tests.conftest import random_csr


class TestValidationHelpers:
    def test_check_dims_match(self):
        check_dims_match((3, 4), (4, 5))
        with pytest.raises(ValueError, match="dimension mismatch"):
            check_dims_match((3, 4), (5, 5))

    def test_check_square(self):
        check_square((7, 7))
        with pytest.raises(ValueError, match="square"):
            check_square((7, 8))

    def test_require_dtype_casts_only_when_needed(self):
        a = np.arange(4, dtype=np.int32)
        out = require_dtype(a, np.float64, "a")
        assert out.dtype == np.float64
        b = np.arange(4, dtype=np.float64)
        assert require_dtype(b, np.float64, "b").dtype == np.float64


class TestTileAdapterStats:
    def test_tiled_result_attached(self):
        from repro.baselines import get_algorithm

        a = random_csr(64, 64, 0.15, seed=261)
        res = get_algorithm("tilespgemm")(a, a)
        tiled_c = res.stats["c_tiled"]
        assert tiled_c.to_csr().allclose(res.c)
        assert res.stats["tile_result"].c is tiled_c


class TestSuiteIntegrity:
    def test_full_dataset_small_members_build(self):
        """Build a sample from each family of the Figure 6 sweep."""
        from repro.matrices import full_dataset, matrix_stats

        by_category = {}
        for spec in full_dataset():
            by_category.setdefault(spec.category, spec)
        assert len(by_category) == 7
        for spec in by_category.values():
            m = spec.matrix()
            st = matrix_stats(m)
            assert st.nnz > 0 and st.flops > 0, spec.name

    def test_tsparse_16_members_distinct_objects(self):
        from repro.matrices import tsparse_16

        specs = tsparse_16()
        assert len({s.name for s in specs}) == 16

    def test_paper_stats_fields(self):
        from repro.matrices import representative_18

        for spec in representative_18():
            p = spec.paper
            assert p.n > 0 and p.nnz > 0 and p.flops > 0
            assert p.compression_rate == pytest.approx(
                p.compression_rate, rel=0
            )


class TestMemoryCurveEdge:
    def test_oom_curve_uses_wall_time(self):
        from repro.baselines import get_algorithm
        from repro.gpu import RTX3090, memory_curve

        a = random_csr(80, 80, 0.2, seed=262)
        res = get_algorithm("bhsparse_esc")(a, a)
        tiny = RTX3090.scaled_memory(1e-12)
        curve = memory_curve(res, tiny)
        assert curve.oom
        assert curve.total_seconds > 0  # falls back to measured wall time


class TestReportingEdge:
    def test_format_table_non_float_cells(self):
        from repro.analysis import format_table

        out = format_table(["a"], [[None], [True], [12]])
        assert "None" in out and "True" in out

    def test_ascii_scatter_flat_y(self):
        from repro.analysis import ascii_scatter

        out = ascii_scatter([1.0, 10.0], [5.0, 5.0])
        assert "o" in out


class TestGeneratorsEdge:
    def test_block_dense_requires_one_block(self):
        from repro.matrices import generators

        with pytest.raises(ValueError):
            generators.block_dense(4, 8)

    def test_rmat_probabilities_skewed_quadrant(self):
        from repro.matrices import generators

        m = generators.rmat(9, edge_factor=8, a=0.7, b=0.1, c=0.1, seed=77).to_csr()
        n = m.shape[0]
        top_left = m.submatrix((0, n // 2), (0, n // 2)).nnz
        bottom_right = m.submatrix((n // 2, n), (n // 2, n)).nnz
        assert top_left > 2 * bottom_right

    def test_hypersparse_deterministic(self):
        from repro.matrices import generators

        a = generators.hypersparse(500, 2.0, seed=3).to_csr()
        b = generators.hypersparse(500, 2.0, seed=3).to_csr()
        assert a.allclose(b)


class TestCSBEdge:
    def test_one_by_one_matrix(self):
        from repro.formats.coo import COOMatrix
        from repro.formats.csb import CSBMatrix

        m = COOMatrix((1, 1), np.array([0]), np.array([0]), np.array([5.0]))
        for variant in ("M", "I"):
            csb = CSBMatrix(m, beta=16, variant=variant)
            assert csb.to_dense()[0, 0] == 5.0

    def test_empty_matrix_both_variants(self):
        from repro.formats.coo import COOMatrix
        from repro.formats.csb import CSBMatrix

        m = COOMatrix.empty((40, 40))
        for variant in ("M", "I"):
            csb = CSBMatrix(m, beta=16, variant=variant)
            assert csb.nnz == 0
            assert csb.memory_bytes() > 0  # structure still costs space


class TestMCLEdge:
    def test_empty_graph_all_singletons(self):
        from repro.apps import markov_clustering
        from repro.formats.csr import CSRMatrix

        res = markov_clustering(CSRMatrix.empty((5, 5)), max_iters=5)
        assert sorted(v for c in res.clusters for v in c) == list(range(5))

    def test_inflation_extremes(self):
        import networkx as nx

        from repro.apps import markov_clustering
        from repro.formats.csr import CSRMatrix

        g = nx.gnp_random_graph(24, 0.3, seed=9)
        adj = CSRMatrix.from_scipy(nx.to_scipy_sparse_array(g).tocsr().astype(float))
        gentle = markov_clustering(adj, inflation=1.4, max_iters=25)
        harsh = markov_clustering(adj, inflation=6.0, max_iters=25)
        assert len(harsh.clusters) >= len(gentle.clusters)
