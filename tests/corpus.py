"""The shared edge-case corpus: one place to add a case, every suite runs it.

Historically the conformance harness and the differential edge-case
suite each built their own copies of the same matrices (empty operands,
the fully dense 16x16 tile, duplicate COO entries, ragged shapes, the
fp16 value mode...).  This module is the single source: the backend
conformance suites (both tiers), the differential suite and the
property suite all parametrise over :data:`CORPUS`, so a new entry here
is exercised everywhere with zero copy-paste.

Each case carries *tags* the suites filter on:

* ``"fp16"`` — runs the pipeline in the half-precision value mode
  (``value_dtype=np.float16``); the differential suite substitutes its
  own fp16 comparison for these.
* ``"stress"`` — tolerance-stress cases added for the tier-2 (fast-math)
  contract: catastrophic cancellation and 10^6-scale magnitude spreads,
  where plain relative error is meaningless and comparisons must be
  scaled by ``Σ|products|`` (see :mod:`repro.analysis.ulp`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr

__all__ = [
    "CorpusCase",
    "CORPUS",
    "corpus_names",
    "corpus_case",
    "dup_coo",
    "cancelling_coo",
    "dense_16x16",
    "dense_tile_in_larger",
    "outer_product",
    "cancellation_tile_pair",
    "magnitude_spread",
]


@dataclass(frozen=True)
class CorpusCase:
    """One named (A, B, tile_spgemm kwargs) corpus entry."""

    name: str
    a: CSRMatrix
    b: CSRMatrix
    kwargs: Dict[str, object] = field(default_factory=dict)
    tags: FrozenSet[str] = frozenset()

    def has(self, tag: str) -> bool:
        return tag in self.tags


def _dense(d) -> CSRMatrix:
    return CSRMatrix.from_dense(np.asarray(d, dtype=np.float64))


# ------------------------------------------------------------- builders
def dup_coo() -> CSRMatrix:
    """Duplicate COO entries that must be pre-summed."""
    rows = np.array([0, 0, 1, 1, 1, 2])
    cols = np.array([1, 1, 2, 2, 2, 0])
    vals = np.array([1.0, 2.0, 0.5, 0.5, 1.0, 4.0])
    return COOMatrix((3, 3), rows, cols, vals).to_csr()


def cancelling_coo() -> CSRMatrix:
    """+v/-v duplicates summing to an explicit stored zero."""
    rows = np.array([0, 0, 1])
    cols = np.array([1, 1, 0])
    vals = np.array([2.5, -2.5, 1.0])
    return COOMatrix((18, 18), rows, cols, vals).to_csr()


def dense_16x16() -> CSRMatrix:
    """One completely full tile: the uint8 rowptr offset-256 boundary."""
    rng = np.random.default_rng(302)
    return _dense(rng.uniform(0.5, 1.5, size=(16, 16)))


def dense_tile_in_larger() -> CSRMatrix:
    rng = np.random.default_rng(303)
    d = np.zeros((40, 40))
    d[16:32, 16:32] = rng.uniform(0.5, 1.5, size=(16, 16))
    d[0, 39] = 2.0
    return _dense(d)


def outer_product() -> Tuple[CSRMatrix, CSRMatrix]:
    col = np.zeros((20, 20))
    col[:, 3] = np.arange(1, 21)
    row = np.zeros((20, 20))
    row[3, :] = np.arange(1, 21)[::-1]
    return _dense(col), _dense(row)


def cancellation_tile_pair() -> Tuple[CSRMatrix, CSRMatrix]:
    """Catastrophic-cancellation tiles: every output element sums large
    paired products of opposite sign down to an O(1) remainder.

    ``Σ|products|`` per element is ~1e8 while the true value is ~1, so
    any reassociating accumulation is *relatively* far off the result
    while staying well inside the reordered-summation bound — exactly
    the case a scale-blind comparator gets wrong in both directions.
    """
    rng = np.random.default_rng(412)
    k = 16
    a = np.zeros((16, k))
    big = rng.uniform(1.0, 2.0, size=(16, k // 2)) * 1e8
    # Interleave +big and -big in the inner dimension so the running
    # partial sums swing to 1e8 magnitudes before cancelling.
    a[:, 0::2] = big
    a[:, 1::2] = -big
    a += rng.uniform(-1.0, 1.0, size=a.shape)  # O(1) remainder
    b = np.zeros((k, 16))
    b[0::2, :] = 1.0
    b[1::2, :] = 1.0
    return _dense(a), _dense(b)


def magnitude_spread(seed: int, n: int = 48, decades: int = 6) -> CSRMatrix:
    """Random pattern with values spanning ``10^±decades``."""
    rng = np.random.default_rng(seed)
    base = random_csr(n, n, 0.12, seed=seed)
    exponents = rng.integers(-decades, decades + 1, size=base.val.size)
    signs = rng.choice([-1.0, 1.0], size=base.val.size)
    vals = signs * rng.uniform(1.0, 9.9, size=base.val.size) * 10.0 ** exponents
    return CSRMatrix(base.shape, base.indptr, base.indices, vals)


def _build_corpus() -> Dict[str, CorpusCase]:
    dup = dup_coo()
    cancel = cancelling_coo()
    full = dense_16x16()
    embedded = dense_tile_in_larger()
    outer_a, outer_b = outer_product()
    cancel_a, cancel_b = cancellation_tile_pair()
    cases = [
        CorpusCase("empty_square", _dense(np.zeros((20, 20))), _dense(np.zeros((20, 20)))),
        CorpusCase(
            "empty_times_random",
            _dense(np.zeros((24, 24))),
            random_csr(24, 24, 0.3, seed=301),
        ),
        CorpusCase("dense_16x16_offset_boundary", full, full),
        CorpusCase("dense_tile_in_larger", embedded, embedded),
        CorpusCase("duplicate_coo", dup, dup),
        CorpusCase("cancelling_duplicates", cancel, cancel),
        CorpusCase(
            "ragged_17x19",
            random_csr(17, 19, 0.15, seed=321),
            random_csr(19, 17, 0.15, seed=322),
        ),
        CorpusCase(
            "ragged_31x33",
            random_csr(31, 33, 0.15, seed=335),
            random_csr(33, 31, 0.15, seed=338),
        ),
        CorpusCase(
            "ragged_50x47",
            random_csr(50, 47, 0.15, seed=354),
            random_csr(47, 50, 0.15, seed=352),
        ),
        CorpusCase(
            "rectangular_8x32",
            random_csr(8, 32, 0.25, seed=361),
            random_csr(32, 8, 0.25, seed=362),
        ),
        CorpusCase("outer_product", outer_a, outer_b),
        CorpusCase(
            "fp16_value_mode",
            full,
            full,
            kwargs={"value_dtype": np.float16},
            tags=frozenset({"fp16"}),
        ),
        CorpusCase(
            "moderate_random",
            random_csr(96, 96, 0.06, seed=371),
            random_csr(96, 96, 0.06, seed=372),
        ),
        # Tier-2 tolerance-stress cases.
        CorpusCase(
            "cancellation_tile",
            cancel_a,
            cancel_b,
            tags=frozenset({"stress"}),
        ),
        CorpusCase(
            "magnitude_spread_1e6",
            magnitude_spread(421),
            magnitude_spread(422),
            tags=frozenset({"stress"}),
        ),
        # decades=1 keeps every fp16-rounded product far from the
        # 65504 half-precision overflow threshold.
        CorpusCase(
            "fp16_magnitude_spread",
            magnitude_spread(431, n=32, decades=1),
            magnitude_spread(432, n=32, decades=1),
            kwargs={"value_dtype": np.float16},
            tags=frozenset({"fp16", "stress"}),
        ),
    ]
    return {case.name: case for case in cases}


#: name -> CorpusCase.  Sizes stay small enough that the pure-Python
#: oracle backend finishes the whole corpus in seconds.
CORPUS: Dict[str, CorpusCase] = _build_corpus()


def corpus_names(exclude_tags: Tuple[str, ...] = ()) -> List[str]:
    """Sorted case names, optionally excluding tagged cases."""
    return sorted(
        name
        for name, case in CORPUS.items()
        if not any(case.has(t) for t in exclude_tags)
    )


def corpus_case(name: str) -> CorpusCase:
    return CORPUS[name]
