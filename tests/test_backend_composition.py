"""Backend × execution-engine composition: tier-2 kernels everywhere.

The conformance harness (:mod:`tests.test_backend_conformance`) judges
each backend through the *serial* pipeline.  This suite proves the same
two-tier contract composes with every execution engine the runtime
offers — the thread and spawned-process parallel pools, the chunked
batcher, and a full serve-tier request — and that each engine records
the real backend name and tier in its stats/metrics.  Because chunk and
shard boundaries align with C tile rows, the engines add *no* extra
floating-point error: the merged tier-2 result must match the serial
tier-2 result byte-for-byte, and match the serial numpy reference
within the backend's declared tolerance.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analysis.ulp import accumulation_scale, conformance_report
from repro.backend import ConformanceTier, backend_tier, backend_tolerance, list_backends
from repro.core import TileMatrix, tile_spgemm
from repro.runtime.chunked import chunked_tile_spgemm
from repro.runtime.parallel import parallel_tile_spgemm
from tests.corpus import CORPUS
from tests.test_parallel_runtime import assert_bytes_identical

FAST_BACKENDS = [
    n for n in list_backends() if backend_tier(n) is ConformanceTier.FAST_MATH
]

CASE = "moderate_random"


@pytest.fixture(scope="module")
def operands():
    case = CORPUS[CASE]
    return TileMatrix.from_csr(case.a), TileMatrix.from_csr(case.b)


@pytest.fixture(scope="module")
def reference(operands):
    a_t, b_t = operands
    return tile_spgemm(a_t, b_t, backend="numpy")


@pytest.fixture(scope="module")
def scale(reference):
    case = CORPUS[CASE]
    return accumulation_scale(case.a, case.b, reference.c)


def _assert_tier2_conformant(backend, got, reference, scale):
    report = conformance_report(
        reference.c, got.c, backend_tolerance(backend), scale=scale
    )
    assert report["ok"], report


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_fast_backend_through_parallel_pools(
    backend, executor, operands, reference, scale
):
    a_t, b_t = operands
    serial = tile_spgemm(a_t, b_t, backend=backend)
    got = parallel_tile_spgemm(
        a_t, b_t, workers=2, executor=executor, backend=backend
    )
    assert got.stats["backend"] == backend
    assert got.stats["backend_tier"] == "fast-math"
    assert got.stats["executor"] == executor
    # Sharding on tile-row boundaries reorders no accumulation: the
    # pooled result is bit-identical to the same backend run serially.
    assert_bytes_identical(serial.c, got.c)
    _assert_tier2_conformant(backend, got, reference, scale)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_fast_backend_through_chunked_engine(backend, operands, reference, scale):
    a_t, b_t = operands
    serial = tile_spgemm(a_t, b_t, backend=backend)
    got = chunked_tile_spgemm(a_t, b_t, num_batches=3, backend=backend)
    assert got.stats["backend"] == backend
    assert got.stats["backend_tier"] == "fast-math"
    assert_bytes_identical(serial.c, got.c)
    _assert_tier2_conformant(backend, got, reference, scale)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_fast_backend_through_serve_tier(backend, reference, scale):
    from repro.serve.service import SpGEMMService

    case = CORPUS[CASE]

    async def run():
        async with SpGEMMService(
            max_queue_depth=4, workers=2, backend=backend
        ) as svc:
            resp = await svc.submit(case.a, case.b)
            return resp, svc.varz()

    resp, varz = asyncio.run(run())
    assert resp.ok and resp.outcome == "served"
    assert varz["backend"] == backend
    assert varz["backend_tier"] == "fast-math"
    _assert_tier2_conformant(backend, resp, reference, scale)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_serve_exact_request_shed_by_fast_math_service(backend):
    from repro.errors import ServiceOverloadError
    from repro.obs.context import make_obs, obs_context
    from repro.serve.service import SpGEMMService

    case = CORPUS[CASE]
    obs = make_obs(metrics=True)

    async def run():
        with obs_context(metrics=obs.metrics):
            async with SpGEMMService(
                max_queue_depth=4, workers=2, backend=backend
            ) as svc:
                shed = await svc.submit(case.a, case.b, exact=True)
                # The gate holds in wait-mode backpressure too: tier is
                # a conformance decision, not a capacity decision.
                shed_wait = await svc.submit(
                    case.a, case.b, exact=True, backpressure="wait"
                )
                served = await svc.submit(case.a, case.b)  # opt-out works
                return shed, shed_wait, served, svc.varz()

    shed, shed_wait, served, varz = asyncio.run(run())
    for resp in (shed, shed_wait):
        assert resp.outcome == "shed" and not resp.ok
        assert isinstance(resp.error, ServiceOverloadError)
        assert resp.error.reason == "backend_tier"
        with pytest.raises(ServiceOverloadError):
            resp.result_or_raise()
    assert served.ok
    assert varz["sheds_total"] == {"backend_tier": 2}
    assert varz["outcomes_total"]["default"]["shed"] == 2
    assert varz["outcomes_total"]["default"]["served"] == 1


def test_serve_exact_request_served_by_exact_service():
    from repro.serve.service import SpGEMMService

    case = CORPUS[CASE]

    async def run():
        async with SpGEMMService(
            max_queue_depth=4, workers=2, backend="numpy"
        ) as svc:
            return await svc.submit(case.a, case.b, exact=True), svc.varz()

    resp, varz = asyncio.run(run())
    assert resp.ok and resp.outcome == "served"
    assert varz["backend"] == "numpy"
    assert varz["backend_tier"] == "exact"


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_fast_backend_engines_agree_with_each_other(backend, operands):
    """Seed-pinned determinism across engines: serial, thread pool and
    chunked runs of the same tier-2 backend produce byte-identical
    results (structure *and* values) run after run."""
    a_t, b_t = operands
    runs = [
        tile_spgemm(a_t, b_t, backend=backend),
        tile_spgemm(a_t, b_t, backend=backend),
        parallel_tile_spgemm(a_t, b_t, workers=2, executor="thread", backend=backend),
        chunked_tile_spgemm(a_t, b_t, num_batches=3, backend=backend),
    ]
    first = runs[0]
    for other in runs[1:]:
        assert_bytes_identical(first.c, other.c)
    assert np.asarray(first.c.val).dtype == np.float64
