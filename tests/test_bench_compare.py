"""Statistical comparison engine and regression gate (repro.analysis.bench_compare).

The three contracted behaviours from the issue:

* an injected 2x slowdown is flagged as a significant regression;
* two identical runs compare as unchanged at the default noise threshold;
* gate exit codes follow the ``repro.errors`` taxonomy (9 regression,
  4 missing file, 3 malformed document, 0 pass).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench_compare import (
    DEFAULT_NOISE_THRESHOLD,
    bootstrap_median_ci,
    classify_samples,
    compare_documents,
    mann_whitney_u,
    render_comparison,
)
from repro.bench.history import append_run, gate_documents, latest_run
from repro.bench.schema import make_series, new_document, write_document
from repro.errors import (
    EXIT_FILE_NOT_FOUND,
    EXIT_INVALID_INPUT,
    EXIT_OK,
    EXIT_REGRESSION,
    BenchRegressionError,
    exit_code_for,
)

BASE_SAMPLES = [1.00, 1.01, 0.99, 1.02, 0.98]


def _doc(series, label="t"):
    doc = new_document(label=label, suite="unit", warmup=0, repeats=5, seed=0,
                       created_unix=1_000.0)
    doc["series"] = series
    return doc


def _series(samples, matrix="m", method="tilespgemm", op="aa", **kw):
    return make_series(matrix, method, op, wall_seconds=samples, **kw)


class TestStatistics:
    def test_mann_whitney_separated_samples_significant(self):
        _, p = mann_whitney_u(BASE_SAMPLES, [2 * s for s in BASE_SAMPLES])
        assert p < 0.05

    def test_mann_whitney_identical_samples_not_significant(self):
        _, p = mann_whitney_u(BASE_SAMPLES, BASE_SAMPLES)
        assert p > 0.5

    def test_mann_whitney_fully_tied_is_p_one(self):
        assert mann_whitney_u([1, 1, 1], [1, 1, 1])[1] == 1.0

    def test_bootstrap_ci_brackets_median_and_is_deterministic(self):
        lo, hi = bootstrap_median_ci(BASE_SAMPLES, seed=7)
        assert lo <= 1.00 <= hi
        assert (lo, hi) == bootstrap_median_ci(BASE_SAMPLES, seed=7)


class TestClassification:
    def test_2x_slowdown_flagged_as_regression(self):
        d = classify_samples(BASE_SAMPLES, [2 * s for s in BASE_SAMPLES])
        assert d.classification == "regressed"
        assert d.significant
        assert d.p_value < 0.05
        assert d.ratio == pytest.approx(2.0, rel=0.05)

    def test_identical_runs_unchanged_at_default_threshold(self):
        d = classify_samples(BASE_SAMPLES, list(BASE_SAMPLES))
        assert d.classification == "unchanged"
        assert not d.significant

    def test_drift_below_noise_threshold_is_unchanged(self):
        shifted = [s * (1 + DEFAULT_NOISE_THRESHOLD / 2) for s in BASE_SAMPLES]
        assert classify_samples(BASE_SAMPLES, shifted).classification == "unchanged"

    def test_speedup_classifies_improved(self):
        d = classify_samples(BASE_SAMPLES, [s / 2 for s in BASE_SAMPLES])
        assert d.classification == "improved" and d.significant
        assert d.speedup == pytest.approx(2.0, rel=0.05)


class TestCompareDocuments:
    def test_regression_and_geomean(self):
        base = _doc([_series(BASE_SAMPLES)], label="seed")
        cur = _doc([_series([2 * s for s in BASE_SAMPLES])], label="pr")
        report = compare_documents(base, cur)
        assert [d.key for d in report.regressions] == ["m|tilespgemm|aa"]
        assert report.geomean_speedup() == pytest.approx(0.5, rel=0.05)
        text = render_comparison(report)
        assert "regressed" in text and "m|tilespgemm|aa" in text

    def test_added_and_removed_series_never_gate(self):
        base = _doc([_series(BASE_SAMPLES, matrix="a")])
        cur = _doc([_series(BASE_SAMPLES, matrix="b")])
        report = compare_documents(base, cur)
        kinds = {d.key: d.classification for d in report.deltas}
        assert kinds == {"a|tilespgemm|aa": "removed", "b|tilespgemm|aa": "added"}
        assert not report.regressions

    def test_scalar_gflops_fallback(self):
        """Sample-free series (the fig6 sweep) still gate on the scalar."""
        base = _doc([make_series("m", "tilespgemm", "aa", gflops=10.0)])
        cur = _doc([make_series("m", "tilespgemm", "aa", gflops=4.0)])
        (d,) = compare_documents(base, cur).deltas
        assert d.classification == "regressed" and d.significant
        assert d.p_value is None
        assert d.speedup == pytest.approx(0.4)


class TestGate:
    def test_gate_raises_on_regression_with_exit_9(self):
        base = _doc([_series(BASE_SAMPLES)])
        cur = _doc([_series([2 * s for s in BASE_SAMPLES])])
        with pytest.raises(BenchRegressionError) as exc_info:
            gate_documents(base, cur)
        exc = exc_info.value
        assert exit_code_for(exc) == EXIT_REGRESSION == 9
        assert "m|tilespgemm|aa" in str(exc)
        assert exc.report.regressions

    def test_gate_passes_identical_documents(self):
        base = _doc([_series(BASE_SAMPLES)])
        report = gate_documents(base, _doc([_series(list(BASE_SAMPLES))]))
        assert not report.regressions

    def test_history_append_and_latest(self, tmp_path):
        hist = tmp_path / "history"
        seed = _doc([_series(BASE_SAMPLES)], label="seed")
        later = new_document("pr", "unit", 0, 5, 0, created_unix=2_000.0)
        later["series"] = [_series(BASE_SAMPLES)]
        seed_path = append_run(seed, hist)
        append_run(later, hist)
        assert latest_run(hist).name.startswith("unit-2000")
        assert latest_run(hist, exclude=seed_path).name.startswith("unit-2000")


class TestCliExitCodes:
    """`repro bench` exit codes follow the repro.errors taxonomy."""

    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        write_document(doc, path)
        return str(path)

    def test_gate_exit_9_on_2x_slowdown(self, tmp_path, capsys):
        from repro.bench.cli import bench_main

        base = self._write(tmp_path, "base.json", _doc([_series(BASE_SAMPLES)]))
        cur = self._write(
            tmp_path, "cur.json", _doc([_series([2 * s for s in BASE_SAMPLES])])
        )
        assert bench_main(["gate", "--baseline", base, "--candidate", cur]) == 9
        assert "regressed" in capsys.readouterr().out
        # --soft downgrades the failure to a warning.
        assert (
            bench_main(["gate", "--baseline", base, "--candidate", cur, "--soft"])
            == EXIT_OK
        )

    def test_gate_exit_0_on_identical_rerun(self, tmp_path, capsys):
        from repro.bench.cli import bench_main

        base = self._write(tmp_path, "base.json", _doc([_series(BASE_SAMPLES)]))
        cur = self._write(tmp_path, "cur.json", _doc([_series(list(BASE_SAMPLES))]))
        assert bench_main(["gate", "--baseline", base, "--candidate", cur]) == EXIT_OK
        assert "gate passed" in capsys.readouterr().out

    def test_missing_file_exits_4(self, tmp_path, capsys):
        from repro.bench.cli import bench_main

        base = self._write(tmp_path, "base.json", _doc([_series(BASE_SAMPLES)]))
        code = bench_main(["gate", "--baseline", base, "--candidate", "/nope.json"])
        assert code == EXIT_FILE_NOT_FOUND == 4

    def test_malformed_document_exits_3(self, tmp_path, capsys):
        from repro.bench.cli import bench_main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "wrong"}))
        base = self._write(tmp_path, "base.json", _doc([_series(BASE_SAMPLES)]))
        code = bench_main(["compare", base, str(bad)])
        assert code == EXIT_INVALID_INPUT == 3

    def test_usage_error_exits_2(self, capsys):
        from repro.bench.cli import bench_main

        assert bench_main(["run", "--suite", "no-such-suite"]) == 2
