"""Tests for the CSB formats and the MatrixMarket reader/writer."""

import io

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.csb import CSBMatrix, default_block_size
from repro.formats.mtx import read_mtx, write_mtx
from tests.conftest import random_csr


class TestCSB:
    @pytest.mark.parametrize("variant", ["M", "I"])
    @pytest.mark.parametrize("beta", [16, 64, 256])
    def test_roundtrip(self, variant, beta):
        m = random_csr(100, 80, 0.08, seed=21).to_coo()
        csb = CSBMatrix(m, beta=beta, variant=variant)
        assert np.allclose(csb.to_dense(), m.to_dense())

    def test_default_block_size_power_of_two(self):
        for shape in [(100, 100), (5000, 100), (1, 1), (10**6, 10**6)]:
            beta = default_block_size(shape)
            assert beta & (beta - 1) == 0
            assert 16 <= beta <= 1 << 16

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            CSBMatrix(COOMatrix.empty((4, 4)), variant="X")

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            CSBMatrix(COOMatrix.empty((4, 4)), beta=24)

    def test_variant_i_smaller_on_hypersparse(self):
        # Very sparse matrix: the dense block-pointer grid of CSB-M costs
        # more than CSB-I's indexed non-empty block list.
        m = random_csr(2048, 2048, 0.0005, seed=22).to_coo()
        csb_m = CSBMatrix(m, beta=16, variant="M")
        csb_i = CSBMatrix(m, beta=16, variant="I")
        assert csb_i.memory_bytes() < csb_m.memory_bytes()

    def test_variant_m_smaller_when_blocks_full(self):
        dense = COOMatrix.from_dense(np.ones((64, 64)))
        csb_m = CSBMatrix(dense, beta=16, variant="M")
        csb_i = CSBMatrix(dense, beta=16, variant="I")
        assert csb_m.memory_bytes() <= csb_i.memory_bytes()

    def test_local_index_width_grows_with_beta(self):
        m = random_csr(3000, 3000, 0.002, seed=23).to_coo()
        small = CSBMatrix(m, beta=16)
        large = CSBMatrix(m, beta=1024)
        assert small.local.dtype.itemsize < large.local.dtype.itemsize

    def test_num_nonempty_blocks_consistent_between_variants(self):
        m = random_csr(500, 500, 0.01, seed=24).to_coo()
        assert (
            CSBMatrix(m, beta=32, variant="M").num_nonempty_blocks
            == CSBMatrix(m, beta=32, variant="I").num_nonempty_blocks
        )

    def test_duplicates_summed(self):
        m = COOMatrix(
            (20, 20), np.array([3, 3]), np.array([4, 4]), np.array([1.0, 2.0])
        )
        csb = CSBMatrix(m, beta=16)
        assert csb.nnz == 1
        assert csb.to_dense()[3, 4] == 3.0


class TestMTX:
    def test_roundtrip(self):
        m = random_csr(30, 40, 0.1, seed=25)
        buf = io.StringIO()
        write_mtx(buf, m, comment="test matrix")
        buf.seek(0)
        back = read_mtx(buf).to_csr()
        assert back.allclose(m)

    def test_pattern_matrix(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        m = read_mtx(io.StringIO(text))
        assert np.array_equal(m.to_dense(), np.eye(2))

    def test_symmetric_expansion(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 5\n2 1 3\n"
        dense = read_mtx(io.StringIO(text)).to_dense()
        assert np.array_equal(dense, np.array([[5.0, 3.0], [3.0, 0.0]]))

    def test_skew_symmetric_expansion(self):
        text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n"
        dense = read_mtx(io.StringIO(text)).to_dense()
        assert np.array_equal(dense, np.array([[0.0, -3.0], [3.0, 0.0]]))

    def test_comments_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n%another\n\n"
            "2 3 1\n1 3 9.5\n"
        )
        m = read_mtx(io.StringIO(text))
        assert m.shape == (2, 3)
        assert m.to_dense()[0, 2] == 9.5

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            read_mtx(io.StringIO("1 1 0\n"))

    def test_unsupported_field_rejected(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
        with pytest.raises(ValueError, match="field"):
            read_mtx(io.StringIO(text))

    def test_unsupported_format_rejected(self):
        text = "%%MatrixMarket matrix array real general\n1 1\n1.0\n"
        with pytest.raises(ValueError):
            read_mtx(io.StringIO(text))

    def test_entry_count_mismatch_rejected(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(ValueError, match="entries"):
            read_mtx(io.StringIO(text))

    def test_file_path_roundtrip(self, tmp_path):
        m = random_csr(12, 12, 0.3, seed=26)
        path = tmp_path / "m.mtx"
        write_mtx(path, m)
        assert read_mtx(path).to_csr().allclose(m)

    def test_empty_matrix(self):
        text = "%%MatrixMarket matrix coordinate real general\n5 5 0\n"
        m = read_mtx(io.StringIO(text))
        assert m.nnz == 0 and m.shape == (5, 5)
