"""Tests for SpTRSV, the Gauss-Seidel smoother, and algebraic BFS."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import AMGSolver, bfs_levels
from repro.core import level_schedule, sptrsv
from repro.core.spmv import csr_spmv
from repro.formats.csr import CSRMatrix
from repro.matrices import generators
from tests.conftest import random_csr


def random_lower(n, density, seed, unit=False):
    rng = np.random.default_rng(seed)
    dense = np.tril(rng.random((n, n)) * (rng.random((n, n)) < density), k=-1)
    np.fill_diagonal(dense, 1.0 if unit else rng.uniform(1.0, 2.0, n))
    return CSRMatrix.from_dense(dense), dense


class TestLevelSchedule:
    def test_diagonal_matrix_single_level(self):
        l = CSRMatrix.from_dense(np.diag(np.arange(1.0, 6.0)))
        levels, stats = level_schedule(l)
        assert stats.num_levels == 1
        assert levels[0].size == 5

    def test_bidiagonal_fully_sequential(self):
        n = 6
        dense = np.eye(n) + np.eye(n, k=-1)
        levels, stats = level_schedule(CSRMatrix.from_dense(dense))
        assert stats.num_levels == n
        assert stats.max_parallelism == 1

    def test_levels_partition_unknowns(self):
        l, _ = random_lower(60, 0.2, seed=321)
        levels, stats = level_schedule(l)
        seen = np.sort(np.concatenate(levels))
        assert np.array_equal(seen, np.arange(60))
        assert stats.level_sizes.sum() == 60

    def test_levels_respect_dependencies(self):
        l, _ = random_lower(50, 0.25, seed=322)
        levels, _ = level_schedule(l)
        rank = np.empty(50, dtype=int)
        for k, lv in enumerate(levels):
            rank[lv] = k
        rows = l.row_indices_expanded()
        off = l.indices < rows
        assert np.all(rank[l.indices[off]] < rank[rows[off]])

    def test_upper_entries_rejected(self):
        with pytest.raises(ValueError, match="above the diagonal"):
            level_schedule(CSRMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 1.0]])))


class TestSpTRSV:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_solves_system(self, seed):
        l, dense = random_lower(80, 0.3, seed=seed)
        b = np.random.default_rng(seed).normal(size=80)
        x = sptrsv(l, b)
        assert np.allclose(dense @ x, b, atol=1e-9)

    def test_unit_diagonal_mode(self):
        l, dense = random_lower(40, 0.2, seed=4, unit=True)
        b = np.random.default_rng(4).normal(size=40)
        x = sptrsv(l, b, unit_diagonal=True)
        assert np.allclose(dense @ x, b, atol=1e-10)

    def test_zero_diagonal_rejected(self):
        dense = np.tril(np.ones((3, 3)))
        dense[1, 1] = 0.0
        with pytest.raises(ValueError, match="singular"):
            sptrsv(CSRMatrix.from_dense(dense), np.ones(3))

    def test_rhs_length_checked(self):
        l, _ = random_lower(5, 0.3, seed=5)
        with pytest.raises(ValueError):
            sptrsv(l, np.ones(4))

    def test_matches_scipy(self):
        import scipy.sparse.linalg as spl

        l, dense = random_lower(100, 0.15, seed=6)
        b = np.random.default_rng(6).normal(size=100)
        ref = spl.spsolve_triangular(l.to_scipy().tocsr(), b, lower=True)
        assert np.allclose(sptrsv(l, b), ref, atol=1e-9)


class TestGaussSeidelSmoother:
    def test_converges_faster_than_jacobi(self):
        a = generators.stencil_2d(20, 20).to_csr()
        b = csr_spmv(a, np.random.default_rng(7).normal(size=a.shape[0]))
        jac = AMGSolver(a, smoother="jacobi").solve(b, tol=1e-9, max_cycles=50)
        gs = AMGSolver(a, smoother="gauss_seidel").solve(b, tol=1e-9, max_cycles=50)
        assert gs.converged
        assert gs.convergence_factor() < jac.convergence_factor()

    def test_unknown_smoother_rejected(self):
        a = generators.stencil_2d(6, 6).to_csr()
        with pytest.raises(ValueError, match="smoother"):
            AMGSolver(a, smoother="sor")


class TestBFS:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_networkx(self, seed):
        g = nx.gnp_random_graph(90, 0.04, seed=seed)
        adj = CSRMatrix.from_scipy(nx.to_scipy_sparse_array(g).tocsr().astype(float))
        dist = bfs_levels(adj, 0)
        ref = nx.single_source_shortest_path_length(g, 0)
        for v in range(90):
            assert dist[v] == ref.get(v, -1), v

    def test_path_graph(self):
        g = nx.path_graph(10)
        adj = CSRMatrix.from_scipy(nx.to_scipy_sparse_array(g).tocsr().astype(float))
        assert np.array_equal(bfs_levels(adj, 0), np.arange(10))

    def test_disconnected_unreachable(self):
        d = np.zeros((6, 6))
        d[0, 1] = d[1, 0] = 1.0
        dist = bfs_levels(CSRMatrix.from_dense(d), 0)
        assert dist.tolist() == [0, 1, -1, -1, -1, -1]

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_levels(random_csr(5, 5, 0.5, seed=0), 9)
