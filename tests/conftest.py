"""Shared fixtures: random sparse matrices, SciPy oracles, small suites."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.csr import CSRMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_csr(
    nrows: int,
    ncols: int,
    density: float = 0.05,
    seed: int = 0,
    explicit_zeros: bool = False,
) -> CSRMatrix:
    """A random CSRMatrix built through SciPy (values in [-1, 1])."""
    rs = np.random.default_rng(seed)
    m = sp.random(nrows, ncols, density=density, random_state=rs, format="csr")
    m.data = rs.uniform(-1.0, 1.0, size=m.data.size)
    if explicit_zeros and m.data.size:
        zero_at = rs.integers(0, m.data.size, size=max(m.data.size // 10, 1))
        m.data[zero_at] = 0.0
    return CSRMatrix.from_scipy(m)


def scipy_product(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Oracle product via SciPy."""
    return CSRMatrix.from_scipy((a.to_scipy() @ b.to_scipy()).tocsr())


@pytest.fixture
def small_pair():
    """A compatible (A, B) pair of moderately sparse random matrices."""
    return random_csr(120, 90, 0.08, seed=7), random_csr(90, 140, 0.08, seed=8)


@pytest.fixture(params=[0, 1, 2, 3])
def random_square(request):
    """A selection of random square matrices of varied size/density."""
    n, d, s = [(60, 0.10, 11), (130, 0.05, 12), (257, 0.03, 13), (33, 0.30, 14)][
        request.param
    ]
    return random_csr(n, n, d, seed=s)
