"""Tests for the ASCII scatter renderer and the fp16 numeric mode."""

import numpy as np
import pytest

from repro.analysis import ascii_scatter
from repro.core import TileMatrix, tile_spgemm
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr


class TestAsciiScatter:
    def test_basic_render(self):
        out = ascii_scatter([1, 10, 100], [1.0, 2.0, 3.0], title="T", xlabel="xx", ylabel="yy")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert any("o" in l for l in lines)
        assert "xx" in lines[-1]
        assert any("yy" in l for l in lines)

    def test_empty_points(self):
        assert "(no points)" in ascii_scatter([], [])

    def test_nonpositive_x_dropped_with_logx(self):
        out = ascii_scatter([-1, 0, 10], [1, 2, 3])
        assert out.count("o") == 1

    def test_collision_marker(self):
        out = ascii_scatter([10, 10], [5.0, 5.0], width=10, height=5)
        assert "#" in out

    def test_linear_x(self):
        out = ascii_scatter([0.0, 1.0], [0.0, 1.0], logx=False)
        assert out.count("o") == 2

    def test_too_small_area(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1], width=2, height=2)

    def test_single_point(self):
        out = ascii_scatter([5.0], [7.0])
        assert "o" in out

    def test_dimensions_respected(self):
        out = ascii_scatter(np.arange(1, 50), np.arange(49.0), width=30, height=8)
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 8
        assert all(len(l.split("|", 1)[1]) <= 30 for l in body)


class TestHalfPrecisionMode:
    def test_fp16_close_to_fp64(self):
        a = random_csr(80, 80, 0.1, seed=231)
        t = TileMatrix.from_csr(a)
        full = tile_spgemm(t, t).c.to_dense()
        half = tile_spgemm(t, t, value_dtype=np.float16).c.to_dense()
        assert np.allclose(half, full, rtol=5e-3, atol=1e-3)

    def test_fp16_exact_on_small_integers(self):
        # Integer values up to 2048 are exact in fp16.
        rng = np.random.default_rng(232)
        d = (rng.integers(0, 4, size=(40, 40)) * (rng.random((40, 40)) < 0.2)).astype(float)
        a = TileMatrix.from_csr(CSRMatrix.from_dense(d))
        half = tile_spgemm(a, a, value_dtype=np.float16).c.to_dense()
        assert np.array_equal(half, d @ d)

    def test_fp16_actually_rounds(self):
        # A value that fp16 cannot represent exactly must round.
        d = np.zeros((4, 4))
        d[0, 1] = 1.0009765625  # 1 + 2^-10: exactly one fp16 ulp above 1
        d[1, 2] = 1.0009765625
        a = TileMatrix.from_csr(CSRMatrix.from_dense(d))
        full = tile_spgemm(a, a).c.to_dense()[0, 2]
        half = tile_spgemm(a, a, value_dtype=np.float16).c.to_dense()[0, 2]
        assert full != half
        assert abs(full - half) < 1e-2

    def test_fp32_mode(self):
        a = random_csr(50, 50, 0.15, seed=233)
        t = TileMatrix.from_csr(a)
        f32 = tile_spgemm(t, t, value_dtype=np.float32).c.to_dense()
        f64 = tile_spgemm(t, t).c.to_dense()
        assert np.allclose(f32, f64, rtol=1e-4, atol=1e-6)
