"""End-to-end serving telemetry: the acceptance scenario of the layer.

A chaos-flavoured serve run on a 2-worker **process** pool must yield:

* one merged Chrome trace whose worker-recorded shard spans carry the
  request trace ids and whose parent links all resolve;
* a live mid-run ``/metrics`` scrape whose ``serve_outcomes_total``
  accounts for 100 % of submissions once the run drains;
* a JSON-lines event log that replays into exactly the same outcome
  tally the metrics counters report;
* per-tenant SLO gauges derived from the same traffic;
* a ``/varz`` document consistent with all of the above.
"""

from __future__ import annotations

import asyncio
import json
import urllib.request

import pytest

from repro.obs import (
    EventLog,
    MetricsRegistry,
    Tracer,
    load_events,
    obs_context,
    replay_outcomes,
    SLOPolicy,
)
from repro.obs.http import TelemetryServer
from repro.runtime.faults import FaultPlan
from repro.serve import SpGEMMService
from tests.conftest import random_csr

REQUESTS = 6
TENANTS = 2


def _operands(seed):
    a = random_csr(96, 96, 0.06, seed=seed)
    b = random_csr(96, 96, 0.06, seed=seed + 100)
    return a, b


async def _chaos_burst(service, *, mid_run=None):
    """Submit REQUESTS multiplies, one carrying an injected OOM."""
    tasks = []
    for i in range(REQUESTS):
        a, b = _operands(seed=40 + i)
        plan = FaultPlan(seed=i).oom_at_alloc(at=1) if i == 2 else None
        tasks.append(
            asyncio.ensure_future(
                service.submit(
                    a, b,
                    tenant=f"tenant{i % TENANTS}",
                    fault_plan=plan,
                    backpressure="wait",
                )
            )
        )
    if mid_run is not None:
        await mid_run()
    return await asyncio.gather(*tasks)


def _scrape(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.read().decode()


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """One process-pool chaos run; every test inspects its artifacts."""
    tmp = tmp_path_factory.mktemp("serve-telemetry")
    log_path = tmp / "events.jsonl"
    tracer, metrics = Tracer(), MetricsRegistry()
    log = EventLog(path=log_path)
    scrapes = {}

    with TelemetryServer(metrics=metrics) as server:
        url = server.url

        async def drive():
            service = SpGEMMService(
                workers=2,
                executor="process",
                max_queue_depth=16,
                slo_policy=SLOPolicy(latency_target_s=0.5, objective=0.9),
            )

            async def mid_run():
                # Let the submissions land, then scrape while requests
                # are genuinely in flight.
                await asyncio.sleep(0.05)
                scrapes["mid"] = await asyncio.get_running_loop().run_in_executor(
                    None, _scrape, url + "/metrics"
                )

            async with service:
                responses = await _chaos_burst(service, mid_run=mid_run)
                varz = service.varz()
            return responses, varz

        with obs_context(tracer=tracer, metrics=metrics, log=log):
            responses, varz = asyncio.run(drive())
        scrapes["final"] = _scrape(url + "/metrics")
    log.close()
    return {
        "responses": responses,
        "varz": varz,
        "tracer": tracer,
        "metrics": metrics,
        "log_path": log_path,
        "scrapes": scrapes,
    }


def _counter_total(metrics, name):
    return sum(v for _, v in metrics.counter_samples(name))


class TestMergedTrace:
    def test_every_request_has_a_trace_id_and_span(self, chaos_run):
        responses = chaos_run["responses"]
        assert len(responses) == REQUESTS
        trace_ids = {r.trace_id for r in responses}
        assert len(trace_ids) == REQUESTS and "" not in trace_ids
        tracer = chaos_run["tracer"]
        request_spans = [
            sp for sp in tracer.spans if sp.cat == "serve.request"
        ]
        assert {sp.args["trace_id"] for sp in request_spans} == trace_ids

    def test_worker_spans_carry_request_trace_ids(self, chaos_run):
        tracer = chaos_run["tracer"]
        worker_spans = [sp for sp in tracer.spans if sp.pid == "serve.workers"]
        assert worker_spans, "process workers shipped spans back"
        request_ids = {r.trace_id for r in chaos_run["responses"]}
        assert {sp.args["trace_id"] for sp in worker_spans} <= request_ids
        # Real subprocess tracks.
        assert all(
            sp.tid.startswith("worker-pid-") for sp in worker_spans
        )

    def test_all_parent_links_resolve(self, chaos_run):
        tracer = chaos_run["tracer"]
        known = {
            sp.args["span_id"] for sp in tracer.spans if "span_id" in sp.args
        }
        dangling = [
            sp.args["parent_span_id"]
            for sp in tracer.spans
            if sp.args.get("parent_span_id")
            and sp.args["parent_span_id"] not in known
        ]
        assert dangling == []

    def test_trace_file_is_valid_and_merged(self, chaos_run, tmp_path):
        from repro.analysis.profiling import validate_chrome_trace

        path = tmp_path / "trace.json"
        chaos_run["tracer"].write(path)
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        pids = {
            e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        assert "serve.workers" in pids and "serve" in pids


class TestLiveScrape:
    def test_final_scrape_accounts_for_all_submissions(self, chaos_run):
        from repro.analysis.slo import parse_prometheus_text

        samples = parse_prometheus_text(chaos_run["scrapes"]["final"])
        submitted = sum(
            v for n, _, v in samples if n == "serve_requests_total"
        )
        outcomes = sum(
            v for n, _, v in samples if n == "serve_outcomes_total"
        )
        assert submitted == REQUESTS
        assert outcomes == REQUESTS

    def test_mid_run_scrape_saw_the_burst(self, chaos_run):
        from repro.analysis.slo import parse_prometheus_text

        samples = parse_prometheus_text(chaos_run["scrapes"]["mid"])
        submitted = sum(
            v for n, _, v in samples if n == "serve_requests_total"
        )
        outcomes = sum(
            v for n, _, v in samples if n == "serve_outcomes_total"
        )
        # The scrape raced the burst: whatever it saw must be internally
        # consistent (outcomes never outrun submissions) — partial counts
        # are the point of a *live* endpoint.
        assert 0 <= outcomes <= submitted <= REQUESTS


class TestEventLogReplay:
    def test_log_replays_into_the_counter_tally(self, chaos_run):
        events = load_events(chaos_run["log_path"])
        tally = replay_outcomes(events)
        counters = {
            (lk["tenant"], lk["outcome"]): int(v)
            for lk, v in chaos_run["metrics"].counter_samples(
                "serve_outcomes_total"
            )
        }
        assert tally == counters

    def test_lifecycle_events_are_correlated_by_trace_id(self, chaos_run):
        events = load_events(chaos_run["log_path"])
        by_kind = {}
        for ev in events:
            by_kind.setdefault(ev["event"], []).append(ev)
        request_ids = {r.trace_id for r in chaos_run["responses"]}
        assert {
            e["trace_id"] for e in by_kind["request_submitted"]
        } == request_ids
        assert {e["trace_id"] for e in by_kind["request_done"]} == request_ids
        # The injected OOM left its re-split marker, tied to its request.
        assert by_kind["shard_oom_resplit"][0]["trace_id"] in request_ids

    def test_timestamps_are_monotone_per_request(self, chaos_run):
        events = load_events(chaos_run["log_path"])
        per_trace = {}
        for ev in events:
            if "trace_id" in ev:
                per_trace.setdefault(ev["trace_id"], []).append(ev["ts"])
        for times in per_trace.values():
            assert times == sorted(times)


class TestSLOAndVarz:
    def test_slo_gauges_per_tenant(self, chaos_run):
        gauges = {
            lk["tenant"]: v
            for lk, v in chaos_run["metrics"].gauge_samples("slo_attainment")
        }
        assert set(gauges) == {f"tenant{i}" for i in range(TENANTS)}
        assert all(0.0 <= v <= 1.0 for v in gauges.values())
        burns = list(
            chaos_run["metrics"].gauge_samples("slo_error_budget_burn_rate")
        )
        assert len(burns) == TENANTS

    def test_varz_document(self, chaos_run):
        varz = chaos_run["varz"]
        assert varz["workers"] == 2
        assert varz["executor"] == "process"
        assert sum(varz["requests_total"].values()) == REQUESTS
        outcome_total = sum(
            v
            for per_tenant in varz["outcomes_total"].values()
            for v in per_tenant.values()
        )
        assert outcome_total == REQUESTS
        assert set(varz["slo"]) == {f"tenant{i}" for i in range(TENANTS)}
        json.dumps(varz)  # native types end to end

    def test_offline_report_agrees_with_live_gauges(self, chaos_run):
        from repro.analysis.slo import slo_report_from_text

        report = slo_report_from_text(
            chaos_run["scrapes"]["final"],
            latency_target_s=0.5,
            objective=0.9,
        )
        live = chaos_run["varz"]["slo"]
        for tenant, row in report.items():
            assert row["attainment"] == pytest.approx(
                live[tenant]["attainment"]
            )
