"""Tests for the bit-mask utilities underlying the tiled format."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    POPCOUNT16,
    columns_to_mask,
    mask_nonzero_columns,
    masks_to_rowptr,
    nth_set_bit,
    popcount16,
    prefix_popcount,
)


class TestPopcount:
    def test_table_size(self):
        assert POPCOUNT16.shape == (1 << 16,)

    def test_known_values(self):
        assert POPCOUNT16[0] == 0
        assert POPCOUNT16[0xFFFF] == 16
        assert POPCOUNT16[0b1010101010101010] == 8
        assert POPCOUNT16[1] == 1

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_matches_python_bit_count(self, value):
        assert int(POPCOUNT16[value]) == bin(value).count("1")

    def test_vectorised(self):
        masks = np.array([0, 1, 3, 0xFFFF, 0x8000], dtype=np.uint16)
        assert popcount16(masks).tolist() == [0, 1, 2, 16, 1]

    def test_preserves_shape(self):
        masks = np.arange(12, dtype=np.uint16).reshape(3, 4)
        assert popcount16(masks).shape == (3, 4)


class TestPrefixPopcount:
    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=15),
    )
    def test_matches_manual_rank(self, mask, col):
        expected = bin(mask & ((1 << col) - 1)).count("1")
        assert int(prefix_popcount(np.array([mask]), np.array([col]))[0]) == expected

    def test_column_zero_is_always_zero(self):
        masks = np.arange(0, 1 << 16, 997, dtype=np.uint32)
        ranks = prefix_popcount(masks, np.zeros_like(masks))
        assert not ranks.any()

    def test_rank_is_position_in_compacted_row(self):
        # mask 0b0110_0101: set bits at columns 0, 2, 5, 6.
        mask = 0b01100101
        cols = np.array([0, 2, 5, 6])
        ranks = prefix_popcount(np.full(4, mask), cols)
        assert ranks.tolist() == [0, 1, 2, 3]


class TestNthSetBit:
    @given(st.integers(min_value=1, max_value=(1 << 16) - 1))
    def test_enumerates_set_bits_in_order(self, mask):
        pc = bin(mask).count("1")
        got = nth_set_bit(np.full(pc, mask), np.arange(pc))
        expected = [c for c in range(16) if mask & (1 << c)]
        assert got.tolist() == expected

    def test_out_of_range_rank_returns_sentinel(self):
        assert int(nth_set_bit(np.array([0b1]), np.array([1]))[0]) == 255

    def test_inverse_of_prefix_popcount(self):
        mask = 0b1011001110001011
        cols = np.array([c for c in range(16) if mask & (1 << c)])
        ranks = prefix_popcount(np.full(cols.size, mask), cols)
        back = nth_set_bit(np.full(cols.size, mask), ranks)
        assert np.array_equal(back, cols)


class TestMaskHelpers:
    def test_mask_nonzero_columns(self):
        assert mask_nonzero_columns(0).tolist() == []
        assert mask_nonzero_columns(0b101).tolist() == [0, 2]
        assert mask_nonzero_columns(0x8000).tolist() == [15]

    def test_columns_to_mask_roundtrip(self):
        rows = np.array([0, 0, 3, 15])
        cols = np.array([1, 5, 0, 15])
        masks = columns_to_mask(rows, cols)
        assert masks[0] == (1 << 1) | (1 << 5)
        assert masks[3] == 1
        assert masks[15] == 1 << 15
        assert masks[1] == 0

    def test_masks_to_rowptr_simple(self):
        masks = np.zeros((1, 16), dtype=np.uint16)
        masks[0, 0] = 0b111  # 3 nonzeros in row 0
        masks[0, 2] = 0b1  # 1 nonzero in row 2
        ptr = masks_to_rowptr(masks)
        assert ptr[0].tolist() == [0, 3, 3, 4] + [4] * 12

    def test_masks_to_rowptr_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            masks_to_rowptr(np.zeros((4, 8), dtype=np.uint16))

    def test_masks_to_rowptr_full_tile(self):
        masks = np.full((1, 16), 0xFFFF, dtype=np.uint16)
        ptr = masks_to_rowptr(masks)
        assert ptr[0].tolist() == list(range(0, 256, 16))

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=16, max_size=16))
    def test_rowptr_matches_cumulative_popcount(self, row_masks):
        masks = np.array([row_masks], dtype=np.uint16)
        if int(popcount16(masks).astype(int).sum()) > 256:
            return  # cannot exceed one tile's capacity
        ptr = masks_to_rowptr(masks)[0].astype(int)
        expected = np.concatenate([[0], np.cumsum([bin(m).count("1") for m in row_masks])[:-1]])
        assert np.array_equal(ptr, expected)
