"""The estimation layer, the tnnz clamp, admission pricing, the gate."""

import numpy as np
import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.core.step3 import DEFAULT_TNNZ, default_tnnz
from repro.errors import ServiceOverloadError
from tests.conftest import random_csr, scipy_product

from repro.analysis.estimate import (
    MultiplyEstimate,
    estimate_multiply,
    row_products,
    tile_row_products,
)


class TestEstimator:
    def test_full_sample_is_exact(self):
        # Every row sampled -> products and nnz(C) are exact.
        a = random_csr(60, 60, 0.08, seed=11)
        est = estimate_multiply(a, a, sample_rows=60)
        assert est.rows_sampled == 60
        c = scipy_product(a, a)
        assert est.est_nnz_c == c.nnz
        assert est.products == int(row_products(a, a).sum())

    def test_csr_and_tiled_forms_agree(self):
        a = random_csr(200, 200, 0.05, seed=12)
        b = random_csr(200, 200, 0.05, seed=13)
        at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
        e_csr = estimate_multiply(a, b)
        e_tiled = estimate_multiply(at, bt)
        assert e_csr.products == e_tiled.products
        assert e_csr.est_nnz_c == e_tiled.est_nnz_c
        assert np.array_equal(
            tile_row_products(a, b, tile_size=16), e_tiled.tile_row_products
        )

    def test_tile_row_products_partition_total(self):
        a = random_csr(150, 150, 0.06, seed=14)
        per_band = tile_row_products(a, a, tile_size=16)
        assert per_band.sum() == row_products(a, a).sum()
        assert len(per_band) == TileMatrix.from_csr(a).num_tile_rows

    def test_compression_bands(self):
        # A permutation matrix has compression exactly 1 (band "1-2");
        # squaring a dense-ish matrix lands in a higher band.
        n = 64
        from repro.formats.csr import CSRMatrix

        eye = CSRMatrix(
            (n, n),
            np.arange(n + 1, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n),
        )
        est = estimate_multiply(eye, eye)
        assert est.compression == 1.0
        assert est.band == "1-2"
        dense = random_csr(80, 80, 0.4, seed=15)
        assert estimate_multiply(dense, dense).band == "8+"

    def test_estimate_to_dict_native(self):
        import json

        a = random_csr(100, 100, 0.05, seed=16)
        est = estimate_multiply(a, a)
        assert isinstance(est, MultiplyEstimate)
        json.dumps(est.to_dict())  # no numpy scalars / arrays


class TestTnnzClamp:
    def test_clamped_at_tiny_tile_sizes(self):
        assert default_tnnz(1) == 1  # was 0 before the clamp
        assert default_tnnz(2) == 3
        assert default_tnnz(16) == DEFAULT_TNNZ

    def test_clamp_holds_for_all_tile_sizes(self):
        # The GPU cost model derives its dense/sparse split from the
        # same default_tnnz (repro.gpu.costmodel imports it), so the
        # clamp keeps both sides agreeing by construction.
        thresholds = [default_tnnz(ts) for ts in range(1, 33)]
        assert all(t >= 1 for t in thresholds)
        assert thresholds == sorted(thresholds)

    @pytest.mark.parametrize("tile_size", [1, 2])
    def test_differential_against_raw_formula(self, tile_size):
        # The pre-clamp formula (3*T*T)//4 returns 0 at T=1 — a dead
        # threshold that marks every nonzero tile dense (tile_nnz > 0 is
        # always true).  The clamp only ever lifts it to 1; everywhere
        # the formula is already positive the two agree exactly.
        raw = (3 * tile_size * tile_size) // 4
        assert default_tnnz(tile_size) == max(1, raw)
        if tile_size == 1:
            assert raw == 0 and default_tnnz(tile_size) == 1

    @pytest.mark.parametrize("tile_size", [4, 8])
    def test_engine_differential_at_small_tiles(self, tile_size):
        # The smallest engine-supported tile sizes run the same clamped
        # threshold; the product must match scipy exactly and the planned
        # threshold must equal the serial default.
        a = random_csr(48, 48, 0.12, seed=17)
        at = TileMatrix.from_csr(a, tile_size)
        res = tile_spgemm(at, at)
        assert res.c.to_csr().allclose(scipy_product(a, a))
        ref = tile_spgemm(at, at, tnnz=default_tnnz(tile_size))
        assert np.array_equal(res.c.val, ref.c.val)


class TestAdmissionAggregate:
    def _controller(self, **kw):
        from repro.serve.admission import AdmissionController

        return AdmissionController(max_queue_depth=8, **kw)

    def _estimate(self, total_bytes):
        from repro.serve.admission import CostEstimate

        return CostEstimate(
            products=1, flops=2, operand_bytes=0, c_upper_bytes=total_bytes
        )

    def test_no_budget_reserves_nothing(self):
        ctrl = self._controller()
        assert ctrl.admit_memory(self._estimate(10**9)) == 0
        assert ctrl.inflight_bytes == 0

    def test_aggregate_gate_sheds_second_request(self):
        # Two requests at 60% of budget: each fits alone, not together.
        ctrl = self._controller(budget_bytes=1000)
        reserved = ctrl.admit_memory(self._estimate(600))
        assert reserved == 600 and ctrl.inflight_bytes == 600
        with pytest.raises(ServiceOverloadError) as exc:
            ctrl.admit_memory(self._estimate(600))
        assert exc.value.reason == "memory_inflight"
        ctrl.release_memory(reserved)
        assert ctrl.inflight_bytes == 0
        assert ctrl.admit_memory(self._estimate(600)) == 600

    def test_oversized_request_sheds_alone(self):
        ctrl = self._controller(budget_bytes=1000)
        with pytest.raises(ServiceOverloadError) as exc:
            ctrl.admit_memory(self._estimate(2000))
        assert exc.value.reason == "memory_estimate"
        assert ctrl.inflight_bytes == 0  # nothing reserved on shed

    def test_release_clamps_at_zero(self):
        ctrl = self._controller(budget_bytes=1000)
        ctrl.release_memory(500)
        assert ctrl.inflight_bytes == 0

    def test_calibrated_pricing_tightens_bound(self):
        from repro.core.tile_matrix import TileMatrix as TM

        a = TM.from_csr(random_csr(200, 200, 0.05, seed=18))
        uncal = self._controller()
        cal = self._controller(calibration={"families": {}})
        upper = uncal.price(a, a)
        tight = cal.price(a, a)
        assert tight.c_upper_bytes <= upper.c_upper_bytes
        assert tight.products == upper.products


class TestPlannerComparison:
    def _doc(self, planned_samples, static_samples):
        from repro.bench import schema

        doc = schema.new_document(
            label="t", suite="planner", warmup=0, repeats=3, seed=0
        )
        for method, samples in [
            ("tilespgemm_planned", planned_samples),
            ("tilespgemm", static_samples),
        ]:
            doc["series"].append(
                schema.make_series(
                    matrix="m1",
                    method=method,
                    op="aa",
                    wall_seconds=samples,
                    n=10,
                    nnz=10,
                    nnz_c=10,
                    flops=20,
                )
            )
        schema.validate_document(doc)
        return doc

    def test_gate_passes_when_planner_wins(self):
        from repro.analysis.bench_compare import (
            planner_comparison,
            render_planner_comparison,
        )

        doc = self._doc([0.5] * 5, [1.0] * 5)
        report = planner_comparison(doc)
        assert report["passed"]
        cfg = report["configs"]["tilespgemm"]
        assert cfg["geomean_speedup"] == pytest.approx(2.0)
        assert "PASS" in render_planner_comparison(report)

    def test_gate_fails_on_significant_regression(self):
        from repro.analysis.bench_compare import planner_comparison

        doc = self._doc([2.0, 2.1, 2.0, 2.1, 2.0], [1.0, 1.1, 1.0, 1.1, 1.0])
        report = planner_comparison(doc)
        assert not report["passed"]
        assert report["configs"]["tilespgemm"]["regressions"] == ["m1:aa"]

    def test_geomean_below_one_fails_without_regression(self):
        from repro.analysis.bench_compare import planner_comparison

        # 10% slower: inside the noise threshold (no regression verdict)
        # but the geomean gate still refuses to call the planner a win.
        doc = self._doc([1.1] * 5, [1.0] * 5)
        report = planner_comparison(doc)
        cfg = report["configs"]["tilespgemm"]
        assert not cfg["regressions"]
        assert cfg["geomean_speedup"] < 1.0
        assert not report["passed"]

    def test_missing_planned_series_raises(self):
        from repro.analysis.bench_compare import planner_comparison
        from repro.bench import schema

        doc = schema.new_document(
            label="t", suite="planner", warmup=0, repeats=1, seed=0
        )
        with pytest.raises(ValueError):
            planner_comparison(doc)

    def test_planned_adapter_registered_and_identical(self):
        from repro.baselines import get_algorithm

        a = random_csr(128, 128, 0.06, seed=19)
        ref = get_algorithm("tilespgemm")(a, a)
        got = get_algorithm("tilespgemm_planned")(a, a)
        assert got.method == "tilespgemm_planned"
        assert ref.c.allclose(got.c)
        assert got.stats["plan"]["mode"] in ("serial", "chunked", "parallel")
