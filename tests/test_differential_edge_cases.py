"""Differential edge-case suite: the tile pipeline vs every baseline.

Each case runs the tiled pipeline and pins its output against all
registered CSR baselines *and* a dense NumPy reference on inputs chosen
to hit representation boundaries: empty operands, a fully dense 16x16
tile (the uint8 row-pointer offset-256 boundary), duplicate COO entries,
ragged non-multiple-of-16 shapes, rectangular operands and the
half-precision value mode.

Also home of the accumulator-threshold regression tests: the step-3
default ``tnnz`` must scale as 75 % of the tile's capacity, exactly the
rule the GPU cost model uses to predict the sparse/dense split.

The shared corpus (:mod:`tests.corpus`) is run in full at the bottom:
every named case the backend-conformance harness judges also goes
through every CSR baseline here, with the tolerance-stress cases held
to a ``Σ|products|``-scaled bound (a dense reference reassociates the
accumulation, so plain elementwise tolerances are meaningless there).
"""

import numpy as np
import pytest

from repro.baselines import available_algorithms, get_algorithm
from repro.core import TileMatrix, tile_spgemm
from repro.core.step3 import DEFAULT_TNNZ, default_tnnz
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr
from tests.corpus import CORPUS, corpus_names, dense_16x16, dup_coo

#: Every registered CSR-level method; tsparse runs in half precision by
#: design, so it is compared with a loose tolerance below.
ALL_METHODS = list(available_algorithms())
EXACT_METHODS = [m for m in ALL_METHODS if m != "tsparse"]


def _dense_reference(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    return a.to_dense() @ b.to_dense()


def _assert_all_methods_agree(a: CSRMatrix, b: CSRMatrix, **tile_kwargs):
    """Tiled pipeline == dense reference == every baseline."""
    ref = _dense_reference(a, b)
    at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
    tiled = tile_spgemm(at, bt, **tile_kwargs).c.to_dense()
    np.testing.assert_allclose(tiled, ref, rtol=1e-12, atol=1e-12)
    for method in EXACT_METHODS:
        got = get_algorithm(method)(a, b).c.to_dense()
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12, err_msg=method)
    if "tsparse" in ALL_METHODS:
        got = get_algorithm("tsparse")(a, b).c.to_dense()
        np.testing.assert_allclose(got, ref, rtol=5e-2, atol=5e-2, err_msg="tsparse")


class TestEmptyMatrices:
    def test_empty_square(self):
        a = CSRMatrix.from_dense(np.zeros((20, 20)))
        _assert_all_methods_agree(a, a)

    def test_empty_times_nonempty(self):
        empty = CSRMatrix.from_dense(np.zeros((24, 24)))
        full = random_csr(24, 24, 0.3, seed=301)
        _assert_all_methods_agree(empty, full)
        _assert_all_methods_agree(full, empty)

    def test_empty_result_from_disjoint_patterns(self):
        # A's columns never meet B's rows: every method must produce an
        # all-zero C without inventing spurious entries.
        d_a = np.zeros((20, 20))
        d_a[:, :10] = np.eye(20, 10)
        d_b = np.zeros((20, 20))
        d_b[10:, :] = np.eye(10, 20, k=0)
        a, b = CSRMatrix.from_dense(d_a), CSRMatrix.from_dense(d_b)
        _assert_all_methods_agree(a, b)


class TestFullyDenseTile:
    def test_dense_16x16_tile_offset_boundary(self):
        # One completely full 16x16 tile: 256 nonzeros, so the low-level
        # row pointers span offsets 0..256 — the exact boundary of the
        # uint8 row-pointer representation.  The pattern also drives the
        # accumulator to its dense branch (256 > tnnz = 192).
        a = dense_16x16()
        _assert_all_methods_agree(a, a)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert res.stats["dense_tiles"] == 1 and res.stats["sparse_tiles"] == 0

    def test_dense_tile_inside_larger_matrix(self):
        rng = np.random.default_rng(303)
        d = np.zeros((48, 48))
        d[16:32, 16:32] = rng.uniform(0.5, 1.5, size=(16, 16))  # full middle tile
        d[0, 0] = 2.0
        d[47, 47] = 3.0
        a = CSRMatrix.from_dense(d)
        _assert_all_methods_agree(a, a)


class TestDuplicateCOOEntries:
    def test_duplicates_summed_before_multiply(self):
        a = dup_coo()
        expected = np.array([[0.0, 3.0, 0.0], [0.0, 0.0, 2.0], [4.0, 0.0, 0.0]])
        np.testing.assert_allclose(a.to_dense(), expected)
        _assert_all_methods_agree(a, a)

    def test_duplicates_cancelling_to_zero(self):
        # +v and -v at the same coordinate: the summed entry is an
        # explicit zero, which no method may treat as structurally special.
        rows = np.array([0, 0, 1])
        cols = np.array([1, 1, 0])
        vals = np.array([2.5, -2.5, 1.0])
        a = COOMatrix((18, 18), rows, cols, vals).to_csr()
        _assert_all_methods_agree(a, a)


class TestRaggedShapes:
    @pytest.mark.parametrize("shape", [(17, 19), (31, 33), (50, 47)])
    def test_non_multiple_of_16(self, shape):
        n, m = shape
        a = random_csr(n, m, 0.15, seed=304 + n)
        b = random_csr(m, n, 0.15, seed=305 + m)
        _assert_all_methods_agree(a, b)

    def test_last_tile_single_row_and_column(self):
        a = random_csr(33, 33, 0.2, seed=306)  # ragged final tile row/col
        _assert_all_methods_agree(a, a)


class TestRectangular:
    def test_8x32_times_32x8(self):
        a = random_csr(8, 32, 0.4, seed=307)
        b = random_csr(32, 8, 0.4, seed=308)
        _assert_all_methods_agree(a, b)

    def test_outer_product_shape(self):
        a = random_csr(40, 5, 0.5, seed=309)
        b = random_csr(5, 40, 0.5, seed=310)
        _assert_all_methods_agree(a, b)


class TestHalfPrecisionValues:
    def test_float16_close_to_dense_reference(self):
        a = random_csr(48, 48, 0.15, seed=311)
        ref = _dense_reference(a, a)
        at = TileMatrix.from_csr(a)
        res = tile_spgemm(at, at, value_dtype=np.float16)
        # Reduced-precision multiply, wider accumulate: the stored values
        # are float64 but each product was rounded through fp16.
        assert res.c.val.dtype == np.float64
        np.testing.assert_allclose(res.c.to_dense(), ref, rtol=5e-3, atol=1e-3)
        full = tile_spgemm(at, at)
        assert not np.array_equal(res.c.val, full.c.val)  # rounding happened

    def test_float16_structure_matches_float64(self):
        # Precision changes values, never the symbolic structure.
        a = random_csr(64, 64, 0.1, seed=312)
        at = TileMatrix.from_csr(a)
        full = tile_spgemm(at, at)
        half = tile_spgemm(at, at, value_dtype=np.float16)
        assert np.array_equal(full.c.colidx, half.c.colidx)
        assert np.array_equal(full.c.rowidx, half.c.rowidx)
        assert np.array_equal(full.c.tilennz, half.c.tilennz)


class TestAccumulatorThreshold:
    """Regression: default tnnz scales with tile size, like the cost model."""

    @pytest.mark.parametrize(
        "tile_size,expected", [(4, 12), (8, 48), (16, 192), (32, 768)]
    )
    def test_default_tnnz_is_75_percent_of_capacity(self, tile_size, expected):
        assert default_tnnz(tile_size) == expected
        assert default_tnnz(tile_size) == (3 * tile_size * tile_size) // 4

    def test_paper_value_for_16x16(self):
        assert DEFAULT_TNNZ == 192
        assert default_tnnz(16) == DEFAULT_TNNZ

    @pytest.mark.parametrize("tile_size", [4, 8, 16])  # kernels cap T at 16
    def test_split_matches_cost_model_rule(self, tile_size):
        # The run's sparse/dense accumulator decision must equal the cost
        # model's prediction (costmodel.py derives it from default_tnnz)
        # when the caller does not override tnnz.
        a = random_csr(96, 96, 0.35, seed=313 + tile_size)
        at = TileMatrix.from_csr(a, tile_size)
        res = tile_spgemm(at, at)
        tile_nnz = np.asarray(res.stats["tile_nnz_counts"])
        predicted_dense = tile_nnz > default_tnnz(tile_size)
        assert res.stats["dense_tiles"] == int(predicted_dense.sum())
        assert res.stats["sparse_tiles"] == int((~predicted_dense).sum())
        assert np.array_equal(np.asarray(res.stats["tile_use_dense"]), predicted_dense)

    def test_explicit_tnnz_still_honoured(self):
        a = random_csr(64, 64, 0.4, seed=314)
        at = TileMatrix.from_csr(a)
        forced_sparse = tile_spgemm(at, at, tnnz=10**9)
        assert forced_sparse.stats["dense_tiles"] == 0
        forced_dense = tile_spgemm(at, at, tnnz=-1)
        assert forced_dense.stats["sparse_tiles"] == 0
        assert np.array_equal(forced_sparse.c.val, forced_dense.c.val)


class TestSharedCorpus:
    """The full shared corpus through every CSR baseline."""

    @pytest.mark.parametrize(
        "case_name", corpus_names(exclude_tags=("fp16", "stress"))
    )
    def test_all_methods_agree_on_corpus(self, case_name):
        case = CORPUS[case_name]
        _assert_all_methods_agree(case.a, case.b, **case.kwargs)

    @pytest.mark.parametrize(
        "case_name",
        [
            n
            for n in corpus_names(exclude_tags=("fp16",))
            if CORPUS[n].has("stress")
        ],
    )
    def test_stress_cases_within_accumulation_bound(self, case_name):
        # Catastrophic cancellation / 10^6 magnitude spreads: the dense
        # reference reassociates the sums, so the honest elementwise
        # bound is relative to Σ|products|, not to the result.
        case = CORPUS[case_name]
        ref = case.a.to_dense() @ case.b.to_dense()
        scale = np.abs(case.a.to_dense()) @ np.abs(case.b.to_dense())
        bound = 1e-12 + 1e-10 * scale
        at, bt = TileMatrix.from_csr(case.a), TileMatrix.from_csr(case.b)
        tiled = tile_spgemm(at, bt, **case.kwargs).c.to_dense()
        assert np.all(np.abs(tiled - ref) <= bound)
        for method in EXACT_METHODS:
            got = get_algorithm(method)(case.a, case.b).c.to_dense()
            assert np.all(np.abs(got - ref) <= bound), method
        # tsparse runs its products in fp16 and would overflow on the
        # 1e8-magnitude inputs, so it is deliberately excluded here.

    @pytest.mark.parametrize(
        "case_name",
        [n for n in corpus_names() if CORPUS[n].has("fp16")],
    )
    def test_fp16_cases_structure_matches_float64(self, case_name):
        # The half-precision value mode perturbs values only: symbolic
        # structure must be identical to the float64 run, and values
        # must sit within an fp16-rounding bound of it, scaled by the
        # accumulation magnitude.
        case = CORPUS[case_name]
        at, bt = TileMatrix.from_csr(case.a), TileMatrix.from_csr(case.b)
        full = tile_spgemm(at, bt)
        half = tile_spgemm(at, bt, **case.kwargs)
        assert np.array_equal(full.c.colidx, half.c.colidx)
        assert np.array_equal(full.c.rowidx, half.c.rowidx)
        assert np.array_equal(full.c.tilennz, half.c.tilennz)
        assert half.c.val.dtype == np.float64
        ref = full.c.to_dense()
        scale = np.abs(case.a.to_dense()) @ np.abs(case.b.to_dense())
        assert np.all(np.abs(half.c.to_dense() - ref) <= 1e-3 + 1e-2 * scale)
