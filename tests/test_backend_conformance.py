"""Cross-backend conformance harness for :mod:`repro.backend` — both tiers.

Every registered, available backend is judged against the numpy
reference on the shared edge-case corpus (:mod:`tests.corpus`), per its
declared :class:`~repro.backend.ConformanceTier`:

* **Tier 1 (EXACT)** — all eight output arrays of the
  ``TileSpGEMMResult`` must be *byte-identical* (dtype, shape, raw
  bytes) to the reference, as before.
* **Tier 2 (FAST_MATH)** — the seven structural arrays (tile pointers,
  row/column indices, masks — which between them pin the dense/sparse
  accumulator split) must still be byte-identical, while ``val`` is
  judged by the ULP/relative comparator (:mod:`repro.analysis.ulp`)
  against the backend's declared tolerance, scaled per element by
  ``Σ|products|`` so the catastrophic-cancellation and magnitude-spread
  stress cases are held to the honest reordered-summation bound.

Both tiers must also hold when the backend crosses the 2-worker process
pool's spawn boundary by registry name; tier 2 additionally proves its
structure deterministic across repeat runs.  Each tier-2 comparison's
machine-readable report is aggregated and written as a JSON artifact to
``$REPRO_ULP_REPORT`` (default ``benchmarks/results/tier2_ulp_report.json``).

The harness parametrises over :func:`repro.backend.list_backends`, so a
newly registered backend is picked up with zero test changes — that is
the conformance contract: register (with a tier), and this file judges
you.
"""

from __future__ import annotations

import importlib.machinery
import json
import os
import sys
import types

import numpy as np
import pytest

from repro.analysis.ulp import (
    STRUCTURE_ARRAYS,
    accumulation_scale,
    compare_values,
    conformance_report,
    ulp_diff,
)
from repro.backend import (
    ConformanceTier,
    DEFAULT_FAST_MATH_TOLERANCE,
    EXACT_TOLERANCE,
    KernelSet,
    ValueTolerance,
    backend_available,
    backend_tier,
    backend_tolerance,
    default_backend_name,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    resolve_backend_name,
    set_default_backend,
    unregister_backend,
    use_backend,
)
from repro.core import TileMatrix, tile_spgemm
from repro.errors import ConfigurationError, InvalidInputError
from tests.corpus import CORPUS, corpus_names
from tests.test_parallel_runtime import assert_bytes_identical

BACKENDS = list_backends()
EXACT_BACKENDS = [n for n in BACKENDS if backend_tier(n) is ConformanceTier.EXACT]
FAST_BACKENDS = [n for n in BACKENDS if backend_tier(n) is ConformanceTier.FAST_MATH]
NON_REFERENCE = [name for name in BACKENDS if name != "numpy"]

CASES = corpus_names()

#: Aggregated tier-2 reports, written as the session's JSON artifact.
_ULP_REPORTS: dict = {}


def _tiled(csr):
    return TileMatrix.from_csr(csr)


def _run(backend, case_name, **extra):
    case = CORPUS[case_name]
    return tile_spgemm(
        _tiled(case.a), _tiled(case.b), backend=backend, **{**case.kwargs, **extra}
    )


@pytest.fixture(scope="module")
def references():
    """The numpy-backend result for every corpus case, computed once."""
    return {name: _run("numpy", name) for name in CASES}


@pytest.fixture(scope="module")
def scales(references):
    """Per-case ``Σ|products|`` yardsticks aligned with ``c.val``."""
    return {
        name: accumulation_scale(CORPUS[name].a, CORPUS[name].b, references[name].c)
        for name in CASES
    }


@pytest.fixture(scope="session", autouse=True)
def _write_ulp_artifact():
    """Dump every tier-2 comparison report at session end."""
    yield
    if not _ULP_REPORTS:
        return
    path = os.environ.get(
        "REPRO_ULP_REPORT",
        os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "results",
            "tier2_ulp_report.json",
        ),
    )
    doc = {
        "schema": "repro.tier2-ulp-report/1",
        "tolerances": {
            name: backend_tolerance(name).to_dict() for name in FAST_BACKENDS
        },
        "reports": _ULP_REPORTS,
    }
    try:
        with open(os.path.abspath(path), "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    except OSError:
        pass  # read-only checkout: the artifact is best-effort


def _record_report(backend, case, report):
    _ULP_REPORTS.setdefault(backend, {})[case] = report


# ---------------------------------------------------------------------------
# Tier 1: byte identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
@pytest.mark.parametrize("case", CASES)
def test_exact_backend_matches_numpy_reference(backend, case, references):
    """Byte-identity of all eight output arrays against the reference."""
    got = _run(backend, case)
    assert got.stats["backend"] == backend
    assert got.stats["backend_tier"] == "exact"
    assert_bytes_identical(references[case].c, got.c)


@pytest.mark.parametrize("backend", NON_REFERENCE)
def test_backend_kernels_actually_ran(backend):
    """Per-kernel call counters prove the backend executed its kernels —
    a backend silently delegating to numpy would still be conformant,
    so identity alone is not proof of execution."""
    kernels = get_backend(backend)
    kernels.reset_calls()
    case = CORPUS["moderate_random"]
    tile_spgemm(_tiled(case.a), _tiled(case.a), backend=kernels)
    assert kernels.total_calls > 0
    assert kernels.calls["mask_or_into"] > 0
    assert kernels.calls["popcount"] > 0
    assert kernels.calls["scatter_add_into"] > 0


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
def test_exact_backend_through_process_pool(backend, references):
    """Backends cross the spawn boundary by registry name: the 2-worker
    process pool must resolve the same backend in each child and return
    bytes identical to the serial numpy reference."""
    from repro.runtime.parallel import parallel_tile_spgemm

    case = CORPUS["moderate_random"]
    got = parallel_tile_spgemm(
        _tiled(case.a), _tiled(case.b), workers=2, executor="process",
        backend=backend,
    )
    assert got.stats["backend"] == backend
    assert_bytes_identical(references["moderate_random"].c, got.c)


# ---------------------------------------------------------------------------
# Tier 2: byte-identical structure, tolerance-judged values
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("case", CASES)
def test_fast_math_backend_structure_and_values(backend, case, references, scales):
    """The tier-2 contract on the full shared corpus: structure arrays
    byte-identical, values within the backend's declared tolerance
    (scaled by per-element ``Σ|products|``)."""
    got = _run(backend, case)
    assert got.stats["backend"] == backend
    assert got.stats["backend_tier"] == "fast-math"
    report = conformance_report(
        references[case].c,
        got.c,
        backend_tolerance(backend),
        scale=scales[case],
    )
    _record_report(backend, case, report)
    assert report["structure_identical"], {
        k: v for k, v in report["structure"].items() if not v
    }
    assert report["values"]["within"], report["values"]
    assert report["ok"]


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("case", ["moderate_random", "cancellation_tile"])
def test_fast_math_backend_through_process_pool(backend, case, references, scales):
    """Identity-of-structure must survive the spawn boundary too: the
    2-worker process pool resolves the tier-2 backend by name in each
    child and the stitched result keeps byte-identical structure with
    in-tolerance values."""
    from repro.runtime.parallel import parallel_tile_spgemm

    c = CORPUS[case]
    got = parallel_tile_spgemm(
        _tiled(c.a), _tiled(c.b), workers=2, executor="process", backend=backend,
    )
    assert got.stats["backend"] == backend
    assert got.stats["backend_tier"] == "fast-math"
    report = conformance_report(
        references[case].c, got.c, backend_tolerance(backend), scale=scales[case]
    )
    _record_report(backend, f"{case}@process-pool", report)
    assert report["ok"], report


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_fast_math_structure_deterministic_across_runs(backend):
    """Seed-pinned repeat runs: tier-2 structure never jitters.  The
    in-tree tier-2 backends pack deterministically (stable sort, fixed
    fragment width), so their values repeat too — but only structure is
    contract."""
    first = _run(backend, "moderate_random")
    second = _run(backend, "moderate_random")
    for name in STRUCTURE_ARRAYS:
        assert (
            np.asarray(getattr(first.c, name)).tobytes()
            == np.asarray(getattr(second.c, name)).tobytes()
        ), name
    assert first.c.val.tobytes() == second.c.val.tobytes()


class TestUlpComparator:
    """The reusable comparator itself (:mod:`repro.analysis.ulp`)."""

    def test_ulp_diff_adjacent_floats(self):
        a = np.array([1.0, -1.0, 0.0, 1.0])
        b = np.array([np.nextafter(1.0, 2.0), -np.nextafter(1.0, 2.0), -0.0, 1.0])
        assert ulp_diff(a, b).tolist() == [1, 1, 0, 0]

    def test_ulp_diff_across_zero(self):
        tiny = np.array([5e-324])  # smallest subnormal
        assert ulp_diff(tiny, -tiny)[0] == 2

    def test_non_finite_never_passes_by_tolerance(self):
        ref = np.array([1.0, np.nan, np.inf])
        got = np.array([np.nan, np.nan, -np.inf])
        d = ulp_diff(ref, got)
        assert d[1] == 0  # identical NaN patterns are bit-equal
        assert d[0] > 10**15 and d[2] > 10**15
        cmp = compare_values(ref, got, ValueTolerance(max_ulp=10**9, rtol=1e-3))
        assert not cmp.within and cmp.failures == 2

    def test_scale_rescues_catastrophic_cancellation(self):
        # ref ~ 0 after cancelling 1e8 products; an absolute error of
        # 1e-9 is hopeless relative to ref but honest relative to scale.
        ref = np.array([1.0e-16])
        got = np.array([1.0e-9])
        tol = ValueTolerance(max_ulp=4, rtol=1e-11)
        assert not compare_values(ref, got, tol).within
        scale = np.array([2.0e8])  # Σ|products| for this element
        assert compare_values(ref, got, tol, scale=scale).within

    def test_report_is_json_serialisable(self, references, scales):
        got = _run("fragment", "moderate_random")
        rep = conformance_report(
            references["moderate_random"].c,
            got.c,
            backend_tolerance("fragment"),
            scale=scales["moderate_random"],
        )
        parsed = json.loads(json.dumps(rep))
        assert parsed["ok"] is True
        assert set(parsed["structure"]) == set(STRUCTURE_ARRAYS)
        assert parsed["values"]["size"] == references["moderate_random"].c.nnz

    def test_shape_mismatch_fails_wholesale(self):
        cmp = compare_values(
            np.ones(3), np.ones(4), ValueTolerance(max_ulp=10, rtol=1.0)
        )
        assert not cmp.within


# ---------------------------------------------------------------------------
# Spawn-boundary resolution semantics (unchanged by the tier split)
# ---------------------------------------------------------------------------


class TestProcessPoolBackendResolution:
    """Regression tests for the spawn boundary: module-level defaults do
    not survive into process-pool children, so the coordinator resolves
    the backend to a registry *name* and ships it with each shard, and a
    child with no explicit name re-reads ``REPRO_BACKEND`` from the
    environment it inherited."""

    def _operands(self):
        case = CORPUS["moderate_random"]
        return _tiled(case.a), _tiled(case.b)

    def test_process_default_reaches_children(self, references):
        from repro.runtime.parallel import parallel_tile_spgemm

        at, bt = self._operands()
        prev = set_default_backend("pyloops")
        try:
            got = parallel_tile_spgemm(at, bt, workers=2, executor="process")
        finally:
            set_default_backend(prev)
        assert got.stats["backend"] == "pyloops"
        assert_bytes_identical(references["moderate_random"].c, got.c)

    def test_env_var_reaches_children(self, references, monkeypatch):
        from repro.runtime.parallel import parallel_tile_spgemm

        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        at, bt = self._operands()
        got = parallel_tile_spgemm(at, bt, workers=2, executor="process")
        assert got.stats["backend"] == "pyloops"
        assert_bytes_identical(references["moderate_random"].c, got.c)

    def test_explicit_backend_beats_env(self, references, monkeypatch):
        from repro.runtime.parallel import parallel_tile_spgemm

        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        at, bt = self._operands()
        got = parallel_tile_spgemm(
            at, bt, workers=2, executor="process", backend="numpy"
        )
        assert got.stats["backend"] == "numpy"
        assert_bytes_identical(references["moderate_random"].c, got.c)


# ---------------------------------------------------------------------------
# Registry API
# ---------------------------------------------------------------------------


class TestRegistryAPI:
    def test_numpy_always_first_and_available(self):
        names = list_backends()
        assert names[0] == "numpy"
        assert backend_available("numpy")

    def test_pyloops_registered(self):
        assert "pyloops" in list_backends()

    def test_fragment_always_available(self):
        assert "fragment" in list_backends()
        assert backend_available("fragment")

    def test_numba_backends_listed_only_when_usable(self):
        from repro.backend.accel import numba_available

        everything = list_backends(available_only=False)
        assert "numba" in everything
        assert "numba-par" in everything
        has_numba = numba_available()
        assert backend_available("numba") == has_numba
        assert backend_available("numba-par") == has_numba
        assert ("numba" in list_backends()) == has_numba
        assert ("numba-par" in list_backends()) == has_numba

    def test_get_backend_unknown_name_lists_alternatives(self):
        with pytest.raises(InvalidInputError, match="numpy"):
            get_backend("no-such-backend")

    def test_get_backend_caches_instances(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_resolve_precedence_explicit_beats_default(self):
        with use_backend("pyloops"):
            assert resolve_backend_name("numpy") == "numpy"
            assert resolve_backend_name(None) == "pyloops"
        assert resolve_backend_name(None) == default_backend_name()

    def test_resolve_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        assert default_backend_name() == "pyloops"
        assert resolve_backend(None).name == "pyloops"
        monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
        with pytest.raises(InvalidInputError):
            resolve_backend(None)

    def test_use_backend_restores_previous(self):
        before = default_backend_name()
        with use_backend("pyloops"):
            assert default_backend_name() == "pyloops"
        assert default_backend_name() == before

    def test_set_default_backend_validates(self):
        with pytest.raises(InvalidInputError):
            set_default_backend("no-such-backend")

    def test_resolve_accepts_kernelset_instance(self):
        inst = get_backend("pyloops")
        assert resolve_backend(inst) is inst
        assert resolve_backend_name(inst) == "pyloops"

    def test_register_and_unregister_custom_backend(self):
        class Custom(KernelSet):
            pass

        register_backend("custom-test", Custom, description="test stub")
        try:
            assert "custom-test" in list_backends()
            assert isinstance(get_backend("custom-test"), Custom)
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in list_backends(available_only=False)

    def test_duplicate_registration_requires_replace(self):
        class Custom(KernelSet):
            pass

        register_backend("custom-dup", Custom)
        try:
            with pytest.raises(InvalidInputError):
                register_backend("custom-dup", Custom)
            register_backend("custom-dup", Custom, replace=True)
        finally:
            unregister_backend("custom-dup")

    def test_numpy_cannot_be_unregistered(self):
        with pytest.raises(InvalidInputError):
            unregister_backend("numpy")


class TestConformanceTierAPI:
    """The tier subsystem: declaration, listing, and the exact-mode gate."""

    def test_builtin_tiers(self):
        assert backend_tier("numpy") is ConformanceTier.EXACT
        assert backend_tier("pyloops") is ConformanceTier.EXACT
        assert backend_tier("numba") is ConformanceTier.EXACT
        assert backend_tier("numba-par") is ConformanceTier.FAST_MATH
        assert backend_tier("fragment") is ConformanceTier.FAST_MATH

    def test_tier_is_stamped_on_instances(self):
        assert get_backend("numpy").tier is ConformanceTier.EXACT
        inst = get_backend("fragment")
        assert inst.tier is ConformanceTier.FAST_MATH
        assert inst.tolerance == DEFAULT_FAST_MATH_TOLERANCE

    def test_exact_tolerance_is_all_zero(self):
        assert backend_tolerance("numpy") == EXACT_TOLERANCE
        assert EXACT_TOLERANCE.max_ulp == 0 and EXACT_TOLERANCE.rtol == 0.0

    def test_list_backends_tier_filter(self):
        exact = list_backends(tier=ConformanceTier.EXACT)
        fast = list_backends(tier="fast-math")
        assert "numpy" in exact and "fragment" not in exact
        assert "fragment" in fast and "numpy" not in fast
        assert set(exact) | set(fast) == set(list_backends())

    def test_tier_coercion_accepts_strings(self):
        assert ConformanceTier.coerce("exact") is ConformanceTier.EXACT
        assert ConformanceTier.coerce("fast-math") is ConformanceTier.FAST_MATH
        with pytest.raises(ValueError, match="fast-math"):
            ConformanceTier.coerce("fastmath")

    def test_exact_caller_refuses_explicit_fast_math(self):
        with pytest.raises(InvalidInputError, match="fast-math"):
            resolve_backend("fragment", tier=ConformanceTier.EXACT)
        with pytest.raises(InvalidInputError, match="exact"):
            resolve_backend_name("fragment", tier="exact")

    def test_exact_caller_refuses_env_fast_math_as_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fragment")
        with pytest.raises(ConfigurationError, match="REPRO_BACKEND"):
            resolve_backend(None, tier=ConformanceTier.EXACT)

    def test_exact_caller_refuses_default_fast_math(self):
        prev = set_default_backend("fragment")
        try:
            with pytest.raises(InvalidInputError):
                resolve_backend(None, tier=ConformanceTier.EXACT)
        finally:
            set_default_backend(prev)

    def test_exact_caller_refuses_fast_math_instance(self):
        inst = get_backend("fragment")
        with pytest.raises(InvalidInputError):
            resolve_backend(inst, tier=ConformanceTier.EXACT)

    def test_opt_in_resolves_fast_math(self):
        assert resolve_backend("fragment").name == "fragment"
        assert resolve_backend("fragment", tier=None).name == "fragment"
        assert (
            resolve_backend("fragment", tier=ConformanceTier.FAST_MATH).name
            == "fragment"
        )

    def test_exact_requirement_accepts_exact(self):
        assert resolve_backend("numpy", tier=ConformanceTier.EXACT).name == "numpy"
        assert resolve_backend("pyloops", tier="exact").name == "pyloops"

    def test_register_custom_fast_math_backend(self):
        from repro.backend.numpy_backend import NumpyKernelSet

        tol = ValueTolerance(max_ulp=7, rtol=1e-9)
        register_backend(
            "custom-fast",
            NumpyKernelSet,
            tier="fast-math",
            tolerance=tol,
        )
        try:
            assert backend_tier("custom-fast") is ConformanceTier.FAST_MATH
            assert backend_tolerance("custom-fast") == tol
            assert get_backend("custom-fast").tier is ConformanceTier.FAST_MATH
            with pytest.raises(InvalidInputError):
                resolve_backend("custom-fast", tier="exact")
        finally:
            unregister_backend("custom-fast")

    def test_planner_records_tier_and_gates(self):
        from repro.runtime.planner import plan_execution

        case = CORPUS["moderate_random"]
        plan = plan_execution(case.a, case.b, backend="fragment")
        assert plan.backend == "fragment"
        assert plan.backend_tier == "fast-math"
        assert plan.to_dict()["backend_tier"] == "fast-math"
        with pytest.raises(InvalidInputError):
            plan_execution(case.a, case.b, backend="fragment", tier="exact")


# ---------------------------------------------------------------------------
# numba availability probe
# ---------------------------------------------------------------------------


class TestNumbaAvailabilityProbe:
    """``numba_available`` must survive broken installs: it probes an
    actual njit compile, caches the verdict, and a package that imports
    but cannot compile reads as absent instead of erroring mid-run."""

    def test_broken_numba_import_reads_as_unavailable(self, monkeypatch):
        import repro.backend.accel as accel

        broken = types.ModuleType("numba")
        # A module object with a spec but no njit: find_spec succeeds,
        # ``from numba import njit`` raises — the half-installed shape.
        broken.__spec__ = importlib.machinery.ModuleSpec("numba", loader=None)
        monkeypatch.setitem(sys.modules, "numba", broken)
        accel._reset_numba_probe()
        try:
            assert accel.numba_available() is False
            assert not backend_available("numba")
            assert not backend_available("numba-par")
            assert "numba" not in list_backends()
        finally:
            accel._reset_numba_probe()

    def test_probe_failing_compile_reads_as_unavailable(self, monkeypatch):
        import repro.backend.accel as accel

        broken = types.ModuleType("numba")
        broken.__spec__ = importlib.machinery.ModuleSpec("numba", loader=None)

        def njit(*args, **kwargs):
            raise RuntimeError("llvmlite ABI mismatch")

        broken.njit = njit
        monkeypatch.setitem(sys.modules, "numba", broken)
        accel._reset_numba_probe()
        try:
            assert accel.numba_available() is False
        finally:
            accel._reset_numba_probe()

    def test_verdict_is_cached(self, monkeypatch):
        import repro.backend.accel as accel

        accel._reset_numba_probe(False)
        calls = []
        monkeypatch.setattr(
            importlib.util,
            "find_spec",
            lambda name: calls.append(name) or None,
        )
        try:
            assert accel.numba_available() is False
            assert calls == []  # cached verdict, no re-probe
        finally:
            accel._reset_numba_probe()

    def test_missing_package_reads_as_unavailable(self, monkeypatch):
        import repro.backend.accel as accel

        accel._reset_numba_probe()
        monkeypatch.setattr(importlib.util, "find_spec", lambda name: None)
        try:
            assert accel.numba_available() is False
        finally:
            accel._reset_numba_probe()


# ---------------------------------------------------------------------------
# Kernel-level unit conformance
# ---------------------------------------------------------------------------


def _scatter_inputs(seed=9, out_size=7, n=64):
    rng = np.random.default_rng(seed)
    pos = rng.integers(0, out_size, size=n)
    w = rng.uniform(-1, 1, size=n) * 10.0 ** rng.integers(-8, 8, size=n)
    return pos, w


class TestKernelUnitConformance:
    """The five kernels, compared numpy-vs-each-backend on raw arrays.

    Integer kernels (popcount, rank, compaction, mask OR) must be
    byte-identical in *both* tiers — only the float scatter-add may
    drift, and only for fast-math backends."""

    @pytest.mark.parametrize(
        "backend", [n for n in NON_REFERENCE if n in EXACT_BACKENDS]
    )
    def test_scatter_add_bit_identity_with_cancellation(self, backend):
        # Catastrophic-cancellation inputs: any reordering of the
        # accumulation shows up in the low bits of the result.
        ref_k = get_backend("numpy")
        got_k = get_backend(backend)
        pos, w = _scatter_inputs()
        ref = np.zeros(7)
        got = np.zeros(7)
        ref_k.scatter_add_into(ref, pos, w)
        got_k.scatter_add_into(got, pos, w)
        assert ref.tobytes() == got.tobytes()

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_scatter_add_within_declared_tolerance(self, backend):
        ref_k = get_backend("numpy")
        got_k = get_backend(backend)
        pos, w = _scatter_inputs()
        ref = np.zeros(7)
        got = np.zeros(7)
        ref_k.scatter_add_into(ref, pos, w)
        got_k.scatter_add_into(got, pos, w)
        scale = np.bincount(pos, weights=np.abs(w), minlength=7)
        cmp = compare_values(ref, got, backend_tolerance(backend), scale=scale)
        assert cmp.within, cmp.to_dict()

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    def test_mask_popcount_rank_roundtrip(self, backend):
        ref_k = get_backend("numpy")
        got_k = get_backend(backend)
        rng = np.random.default_rng(10)
        masks = rng.integers(0, 2**16, size=(6, 16)).astype(np.uint16)
        ref_pc = ref_k.popcount(masks)
        got_pc = got_k.popcount(masks)
        assert ref_pc.dtype == got_pc.dtype
        assert ref_pc.tobytes() == got_pc.tobytes()
        cols = rng.integers(0, 16, size=masks.shape[0])
        assert (
            ref_k.prefix_popcount(masks[:, 0], cols).tobytes()
            == got_k.prefix_popcount(masks[:, 0], cols).tobytes()
        )
        ranks = np.minimum(ref_pc[:, 0].astype(np.int64), 1)
        assert (
            ref_k.nth_set_bit(masks[:, 0], ranks).tobytes()
            == got_k.nth_set_bit(masks[:, 0], ranks).tobytes()
        )

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    def test_mask_or_duplicate_positions(self, backend):
        ref_k = get_backend("numpy")
        got_k = get_backend(backend)
        pos = np.array([0, 2, 0, 2, 1], dtype=np.int64)
        masks = np.array([1, 2, 4, 8, 16], dtype=np.uint16)
        ref = np.zeros(3, dtype=np.uint16)
        got = np.zeros(3, dtype=np.uint16)
        ref_k.mask_or_into(ref, pos, masks)
        got_k.mask_or_into(got, pos, masks)
        assert ref.tobytes() == got.tobytes()
