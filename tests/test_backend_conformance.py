"""Cross-backend conformance harness for :mod:`repro.backend`.

Every registered, available kernel backend must produce a
``TileSpGEMMResult`` whose eight output arrays are *byte-identical*
(dtype, shape and raw bytes) to the numpy reference backend, on a corpus
of edge cases mirroring the differential suite: empty operands, the
fully dense 16x16 tile (the uint8 row-pointer offset-256 boundary),
duplicate COO entries, ragged and rectangular shapes, the half-precision
value mode and moderate random matrices.  The same identity must hold
when the backend is selected through the sharded parallel engine's
2-worker process pool, where the backend crosses a spawn boundary by
name.

The harness parametrises over :func:`repro.backend.list_backends`, so a
newly registered backend is picked up with zero test changes — that is
the conformance contract: register, and this file judges you.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    KernelSet,
    backend_available,
    default_backend_name,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    resolve_backend_name,
    set_default_backend,
    unregister_backend,
    use_backend,
)
from repro.core import TileMatrix, tile_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.errors import InvalidInputError
from tests.conftest import random_csr
from tests.test_parallel_runtime import assert_bytes_identical

BACKENDS = list_backends()
NON_REFERENCE = [name for name in BACKENDS if name != "numpy"]


def _dense(d):
    return CSRMatrix.from_dense(np.asarray(d, dtype=np.float64))


def _dup_coo():
    rows = np.array([0, 0, 1, 1, 1, 2])
    cols = np.array([1, 1, 2, 2, 2, 0])
    vals = np.array([1.0, 2.0, 0.5, 0.5, 1.0, 4.0])
    return COOMatrix((3, 3), rows, cols, vals).to_csr()


def _cancelling_coo():
    rows = np.array([0, 0, 1])
    cols = np.array([1, 1, 0])
    vals = np.array([2.5, -2.5, 1.0])
    return COOMatrix((18, 18), rows, cols, vals).to_csr()


def _dense_16x16():
    rng = np.random.default_rng(302)
    return _dense(rng.uniform(0.5, 1.5, size=(16, 16)))


def _dense_tile_in_larger():
    rng = np.random.default_rng(303)
    d = np.zeros((40, 40))
    d[16:32, 16:32] = rng.uniform(0.5, 1.5, size=(16, 16))
    d[0, 39] = 2.0
    return _dense(d)


def _outer_product():
    col = np.zeros((20, 20))
    col[:, 3] = np.arange(1, 21)
    row = np.zeros((20, 20))
    row[3, :] = np.arange(1, 21)[::-1]
    return _dense(col), _dense(row)


#: name -> (A, B, tile_spgemm kwargs).  Sizes stay small enough that the
#: pure-Python oracle backend finishes the whole corpus in seconds.
def _corpus():
    dup = _dup_coo()
    cancel = _cancelling_coo()
    full = _dense_16x16()
    embedded = _dense_tile_in_larger()
    outer_a, outer_b = _outer_product()
    cases = {
        "empty_square": (_dense(np.zeros((20, 20))), _dense(np.zeros((20, 20))), {}),
        "empty_times_random": (
            _dense(np.zeros((24, 24))),
            random_csr(24, 24, 0.3, seed=301),
            {},
        ),
        "dense_16x16_offset_boundary": (full, full, {}),
        "dense_tile_in_larger": (embedded, embedded, {}),
        "duplicate_coo": (dup, dup, {}),
        "cancelling_duplicates": (cancel, cancel, {}),
        "ragged_17x19": (
            random_csr(17, 19, 0.15, seed=321),
            random_csr(19, 17, 0.15, seed=322),
            {},
        ),
        "ragged_31x33": (
            random_csr(31, 33, 0.15, seed=335),
            random_csr(33, 31, 0.15, seed=338),
            {},
        ),
        "ragged_50x47": (
            random_csr(50, 47, 0.15, seed=354),
            random_csr(47, 50, 0.15, seed=352),
            {},
        ),
        "rectangular_8x32": (
            random_csr(8, 32, 0.25, seed=361),
            random_csr(32, 8, 0.25, seed=362),
            {},
        ),
        "outer_product": (outer_a, outer_b, {}),
        "fp16_value_mode": (full, full, {"value_dtype": np.float16}),
        "moderate_random": (
            random_csr(96, 96, 0.06, seed=371),
            random_csr(96, 96, 0.06, seed=372),
            {},
        ),
    }
    return cases


CORPUS = _corpus()


def _run(backend, a, b, **kwargs):
    at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
    return tile_spgemm(at, bt, backend=backend, **kwargs)


@pytest.fixture(scope="module")
def references():
    """The numpy-backend result for every corpus case, computed once."""
    return {
        name: _run("numpy", a, b, **kw) for name, (a, b, kw) in CORPUS.items()
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(CORPUS))
def test_backend_matches_numpy_reference(backend, case, references):
    """Byte-identity of all eight output arrays against the reference."""
    a, b, kw = CORPUS[case]
    got = _run(backend, a, b, **kw)
    assert got.stats["backend"] == backend
    assert_bytes_identical(references[case].c, got.c)


@pytest.mark.parametrize("backend", NON_REFERENCE)
def test_backend_kernels_actually_ran(backend):
    """Per-kernel call counters prove the backend executed its kernels —
    a backend silently delegating to numpy would still be byte-identical,
    so identity alone is not proof of execution."""
    kernels = get_backend(backend)
    kernels.reset_calls()
    a, _, _ = CORPUS["moderate_random"]
    _run(kernels, a, a)
    assert kernels.total_calls > 0
    assert kernels.calls["mask_or_into"] > 0
    assert kernels.calls["popcount"] > 0
    assert kernels.calls["scatter_add_into"] > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_through_process_pool(backend, references):
    """Backends cross the spawn boundary by registry name: the 2-worker
    process pool must resolve the same backend in each child and return
    bytes identical to the serial numpy reference."""
    from repro.runtime.parallel import parallel_tile_spgemm

    a, b, kw = CORPUS["moderate_random"]
    at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
    got = parallel_tile_spgemm(
        at, bt, workers=2, executor="process", backend=backend, **kw
    )
    assert got.stats["backend"] == backend
    assert_bytes_identical(references["moderate_random"].c, got.c)


class TestProcessPoolBackendResolution:
    """Regression tests for the spawn boundary: module-level defaults do
    not survive into process-pool children, so the coordinator resolves
    the backend to a registry *name* and ships it with each shard, and a
    child with no explicit name re-reads ``REPRO_BACKEND`` from the
    environment it inherited."""

    def _operands(self):
        a, b, _ = CORPUS["moderate_random"]
        return TileMatrix.from_csr(a), TileMatrix.from_csr(b)

    def test_process_default_reaches_children(self, references):
        from repro.runtime.parallel import parallel_tile_spgemm

        at, bt = self._operands()
        prev = set_default_backend("pyloops")
        try:
            got = parallel_tile_spgemm(at, bt, workers=2, executor="process")
        finally:
            set_default_backend(prev)
        assert got.stats["backend"] == "pyloops"
        assert_bytes_identical(references["moderate_random"].c, got.c)

    def test_env_var_reaches_children(self, references, monkeypatch):
        from repro.runtime.parallel import parallel_tile_spgemm

        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        at, bt = self._operands()
        got = parallel_tile_spgemm(at, bt, workers=2, executor="process")
        assert got.stats["backend"] == "pyloops"
        assert_bytes_identical(references["moderate_random"].c, got.c)

    def test_explicit_backend_beats_env(self, references, monkeypatch):
        from repro.runtime.parallel import parallel_tile_spgemm

        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        at, bt = self._operands()
        got = parallel_tile_spgemm(
            at, bt, workers=2, executor="process", backend="numpy"
        )
        assert got.stats["backend"] == "numpy"
        assert_bytes_identical(references["moderate_random"].c, got.c)


class TestRegistryAPI:
    def test_numpy_always_first_and_available(self):
        names = list_backends()
        assert names[0] == "numpy"
        assert backend_available("numpy")

    def test_pyloops_registered(self):
        assert "pyloops" in list_backends()

    def test_numba_listed_only_when_importable(self):
        import importlib.util

        everything = list_backends(available_only=False)
        assert "numba" in everything
        has_numba = importlib.util.find_spec("numba") is not None
        assert backend_available("numba") == has_numba
        assert ("numba" in list_backends()) == has_numba

    def test_get_backend_unknown_name_lists_alternatives(self):
        with pytest.raises(InvalidInputError, match="numpy"):
            get_backend("no-such-backend")

    def test_get_backend_caches_instances(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_resolve_precedence_explicit_beats_default(self):
        with use_backend("pyloops"):
            assert resolve_backend_name("numpy") == "numpy"
            assert resolve_backend_name(None) == "pyloops"
        assert resolve_backend_name(None) == default_backend_name()

    def test_resolve_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        assert default_backend_name() == "pyloops"
        assert resolve_backend(None).name == "pyloops"
        monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
        with pytest.raises(InvalidInputError):
            resolve_backend(None)

    def test_use_backend_restores_previous(self):
        before = default_backend_name()
        with use_backend("pyloops"):
            assert default_backend_name() == "pyloops"
        assert default_backend_name() == before

    def test_set_default_backend_validates(self):
        with pytest.raises(InvalidInputError):
            set_default_backend("no-such-backend")

    def test_resolve_accepts_kernelset_instance(self):
        inst = get_backend("pyloops")
        assert resolve_backend(inst) is inst
        assert resolve_backend_name(inst) == "pyloops"

    def test_register_and_unregister_custom_backend(self):
        class Custom(KernelSet):
            pass

        register_backend("custom-test", Custom, description="test stub")
        try:
            assert "custom-test" in list_backends()
            assert isinstance(get_backend("custom-test"), Custom)
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in list_backends(available_only=False)

    def test_duplicate_registration_requires_replace(self):
        class Custom(KernelSet):
            pass

        register_backend("custom-dup", Custom)
        try:
            with pytest.raises(InvalidInputError):
                register_backend("custom-dup", Custom)
            register_backend("custom-dup", Custom, replace=True)
        finally:
            unregister_backend("custom-dup")

    def test_numpy_cannot_be_unregistered(self):
        with pytest.raises(InvalidInputError):
            unregister_backend("numpy")


class TestKernelUnitConformance:
    """The five kernels, compared numpy-vs-each-backend on raw arrays."""

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    def test_scatter_add_bit_identity_with_cancellation(self, backend):
        # Catastrophic-cancellation inputs: any reordering of the
        # accumulation shows up in the low bits of the result.
        ref_k = get_backend("numpy")
        got_k = get_backend(backend)
        rng = np.random.default_rng(9)
        pos = rng.integers(0, 7, size=64)
        w = rng.uniform(-1, 1, size=64) * 10.0 ** rng.integers(-8, 8, size=64)
        ref = np.zeros(7)
        got = np.zeros(7)
        ref_k.scatter_add_into(ref, pos, w)
        got_k.scatter_add_into(got, pos, w)
        assert ref.tobytes() == got.tobytes()

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    def test_mask_popcount_rank_roundtrip(self, backend):
        ref_k = get_backend("numpy")
        got_k = get_backend(backend)
        rng = np.random.default_rng(10)
        masks = rng.integers(0, 2**16, size=(6, 16)).astype(np.uint16)
        ref_pc = ref_k.popcount(masks)
        got_pc = got_k.popcount(masks)
        assert ref_pc.dtype == got_pc.dtype
        assert ref_pc.tobytes() == got_pc.tobytes()
        cols = rng.integers(0, 16, size=masks.shape[0])
        assert (
            ref_k.prefix_popcount(masks[:, 0], cols).tobytes()
            == got_k.prefix_popcount(masks[:, 0], cols).tobytes()
        )
        ranks = np.minimum(ref_pc[:, 0].astype(np.int64), 1)
        assert (
            ref_k.nth_set_bit(masks[:, 0], ranks).tobytes()
            == got_k.nth_set_bit(masks[:, 0], ranks).tobytes()
        )

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    def test_mask_or_duplicate_positions(self, backend):
        ref_k = get_backend("numpy")
        got_k = get_backend(backend)
        pos = np.array([0, 2, 0, 2, 1], dtype=np.int64)
        masks = np.array([1, 2, 4, 8, 16], dtype=np.uint16)
        ref = np.zeros(3, dtype=np.uint16)
        got = np.zeros(3, dtype=np.uint16)
        ref_k.mask_or_into(ref, pos, masks)
        got_k.mask_or_into(got, pos, masks)
        assert ref.tobytes() == got.tobytes()
