"""Run the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.util.arrays
import repro.util.timing

MODULES = [repro.util.arrays, repro.util.timing]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0
