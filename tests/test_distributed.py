"""Tests for the distributed SUMMA extension."""

import numpy as np
import pytest

from repro.distributed import ProcessGrid, summa_spgemm
from repro.distributed.summa import csr_wire_bytes
from repro.formats.csr import CSRMatrix
from repro.matrices import generators
from tests.conftest import random_csr, scipy_product

GRIDS = [(1, 1), (2, 2), (1, 3), (3, 1), (2, 3), (4, 4)]


class TestProcessGrid:
    def test_block_partition_covers_everything(self):
        grid = ProcessGrid(3, 2)
        blocks = grid.row_blocks(100)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 100
        for (a0, a1), (b0, b1) in zip(blocks, blocks[1:]):
            assert a1 == b0

    def test_blocks_are_tile_aligned(self):
        grid = ProcessGrid(4, 4, tile_size=16)
        for lo, hi in grid.row_blocks(1000)[:-1]:
            assert lo % 16 == 0

    def test_owner_lookup(self):
        grid = ProcessGrid(2, 2)
        blocks_r = grid.row_blocks(64)
        assert grid.owner(0, 0, (64, 64)) == (0, 0)
        assert grid.owner(63, 63, (64, 64)) == (1, 1)
        mid = blocks_r[1][0]
        assert grid.owner(mid, 0, (64, 64))[0] == 1

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 2)

    def test_num_processes(self):
        assert ProcessGrid(3, 5).num_processes == 15


class TestSummaCorrectness:
    @pytest.mark.parametrize("shape", GRIDS)
    def test_matches_single_node(self, shape):
        a = random_csr(150, 150, 0.06, seed=251)
        res = summa_spgemm(a, a, ProcessGrid(*shape))
        assert res.c.allclose(scipy_product(a, a)), shape

    def test_rectangular_operands(self):
        a = random_csr(90, 120, 0.08, seed=252)
        b = random_csr(120, 70, 0.08, seed=253)
        res = summa_spgemm(a, b, ProcessGrid(2, 3))
        assert res.c.allclose(scipy_product(a, b))

    def test_empty_inputs(self):
        e = CSRMatrix.empty((64, 64))
        res = summa_spgemm(e, e, ProcessGrid(2, 2))
        assert res.c.nnz == 0

    def test_other_local_method(self):
        a = random_csr(80, 80, 0.1, seed=254)
        res = summa_spgemm(a, a, ProcessGrid(2, 2), method="nsparse_hash")
        assert res.c.allclose(scipy_product(a, a))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            summa_spgemm(
                random_csr(10, 10, 0.5, seed=0),
                random_csr(11, 11, 0.5, seed=0),
                ProcessGrid(2, 2),
            )


class TestCommunicationAccounting:
    @pytest.fixture(scope="class")
    def fem(self):
        return generators.banded(600, 8, fill=0.9, seed=255).to_csr()

    def test_single_process_no_communication(self, fem):
        res = summa_spgemm(fem, fem, ProcessGrid(1, 1))
        assert res.total_comm_volume == 0
        assert res.comm_s.sum() == 0.0
        assert res.comm_fraction == 0.0

    def test_ledger_balances(self, fem):
        for shape in [(2, 2), (2, 3), (4, 4)]:
            res = summa_spgemm(fem, fem, ProcessGrid(*shape))
            assert res.sent_bytes.sum() == pytest.approx(res.recv_bytes.sum())

    def test_volume_grows_with_grid(self, fem):
        v = [
            summa_spgemm(fem, fem, ProcessGrid(p, p)).total_comm_volume
            for p in (1, 2, 4)
        ]
        assert v[0] < v[1] < v[2]

    def test_comm_fraction_grows_with_grid(self, fem):
        f2 = summa_spgemm(fem, fem, ProcessGrid(2, 2)).comm_fraction
        f4 = summa_spgemm(fem, fem, ProcessGrid(4, 4)).comm_fraction
        assert 0 < f2 <= f4 < 1

    def test_stage_volumes_recorded(self, fem):
        res = summa_spgemm(fem, fem, ProcessGrid(2, 2))
        assert len(res.per_stage_volume) == res.stages
        assert sum(res.per_stage_volume) == res.total_comm_volume

    def test_slower_interconnect_costs_more(self, fem):
        fast = summa_spgemm(fem, fem, ProcessGrid(2, 2))
        slow = summa_spgemm(
            fem, fem, ProcessGrid(2, 2), beta_s_per_byte=1.0 / 1e9
        )
        assert slow.critical_path_s > fast.critical_path_s

    def test_compute_imbalance_reported(self, fem):
        res = summa_spgemm(fem, fem, ProcessGrid(2, 2))
        assert res.compute_imbalance() >= 1.0

    def test_wire_bytes_formula(self):
        m = random_csr(10, 10, 0.3, seed=256)
        assert csr_wire_bytes(m) == 4 * (11 + m.nnz) + 8 * m.nnz


class TestSubmatrix:
    def test_submatrix_matches_dense_slice(self):
        a = random_csr(40, 50, 0.2, seed=257)
        blk = a.submatrix((10, 30), (5, 45))
        assert np.array_equal(blk.to_dense(), a.to_dense()[10:30, 5:45])

    def test_empty_range(self):
        a = random_csr(20, 20, 0.3, seed=258)
        blk = a.submatrix((5, 5), (0, 20))
        assert blk.shape == (0, 20)
        assert blk.nnz == 0

    def test_out_of_bounds_rejected(self):
        a = random_csr(10, 10, 0.3, seed=259)
        with pytest.raises(ValueError):
            a.submatrix((0, 11), (0, 10))
        with pytest.raises(ValueError):
            a.submatrix((5, 3), (0, 10))

    def test_blocks_tile_back_to_whole(self):
        a = random_csr(64, 64, 0.15, seed=260)
        grid = ProcessGrid(2, 2)
        dense = np.zeros((64, 64))
        for (r0, r1) in grid.row_blocks(64):
            for (c0, c1) in grid.col_blocks(64):
                dense[r0:r1, c0:c1] = a.submatrix((r0, r1), (c0, c1)).to_dense()
        assert np.array_equal(dense, a.to_dense())


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=12, deadline=None)
@given(
    st.integers(1, 3),
    st.integers(1, 3),
    st.integers(8, 60),
    st.integers(0, 3),
)
def test_property_summa_matches_reference(p_rows, p_cols, n, seed):
    """Any grid shape on any small random matrix: SUMMA == single node."""
    a = random_csr(n, n, 0.15, seed=1000 + seed * 60 + n)
    res = summa_spgemm(a, a, ProcessGrid(p_rows, p_cols))
    assert res.c.allclose(scipy_product(a, a))
