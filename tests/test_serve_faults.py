"""Fault paths under the serving tier, ending in the chaos acceptance test.

Every recovery behaviour the service promises is pinned here with
deterministic injection: a shard that blows its budget is re-split along
``batch_bounds`` and requeued (never serialised) and the served product
stays byte-identical; transient faults retry with the policy's awaited
backoff schedule; a worker pool that breaks mid-shard is replaced and
only the lost shard re-runs; deadlines cancel cooperatively; one
tenant's fault plan never leaks into a sibling's request.

The chaos test at the bottom is the issue's acceptance criterion: 32+
concurrent requests with mixed fault injection, tight deadlines and an
undersized memory budget — every request must terminate with either a
byte-identical-to-serial result or a typed error, the queue must never
exceed its bound, and the Prometheus export must account for 100% of
submissions.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.errors import (
    DeadlineExceededError,
    ResilienceExhausted,
    ServiceOverloadError,
)
from repro.obs.context import make_obs, obs_context
from repro.runtime.faults import FaultPlan
from repro.runtime.policy import ParallelPolicy, RetryPolicy, backoff_wait
from repro.serve import OUTCOMES, SpGEMMService
from repro.serve.worker import BrokenExecutor, default_run_shard
from tests.conftest import random_csr


def _pair(seed=61, n=96, density=0.06):
    return random_csr(n, n, density, seed=seed), random_csr(n, n, density, seed=seed + 1)


def _serial_c(a, b):
    return tile_spgemm(
        TileMatrix.from_csr(a), TileMatrix.from_csr(b), keep_empty_tiles=True
    ).c


def _assert_same_product(got, ref):
    for field in ("tileptr", "tilecolidx", "tilennz", "rowidx", "colidx", "val"):
        np.testing.assert_array_equal(
            getattr(got, field), getattr(ref, field), err_msg=field
        )


def _faulty_run_fn(a_shard, b, opts):
    """Shard body honouring test-only markers stashed on the fault plan.

    ``_test_slow_s`` delays the shard (deadline tests); a true
    ``_test_break_once`` raises :class:`BrokenExecutor` exactly once
    (worker-death tests).  Everything else delegates to the real body,
    so faults injected via the plan proper still flow through the engine.
    """
    plan = opts.get("fault_plan")
    if plan is not None:
        slow = getattr(plan, "_test_slow_s", 0.0)
        if slow:
            time.sleep(slow)
        if getattr(plan, "_test_break_once", False):
            plan._test_break_once = False
            raise BrokenExecutor("worker died mid-shard (injected)")
    return default_run_shard(a_shard, b, opts)


class TestOOMResplit:
    def test_injected_oom_resplits_and_stays_byte_identical(self):
        a, b = _pair(seed=63, n=128)
        plan = FaultPlan(seed=1).oom_at_alloc(at=1)

        async def run():
            async with SpGEMMService(max_queue_depth=4, workers=2) as svc:
                return await svc.submit(a, b, fault_plan=plan)

        resp = asyncio.run(run())
        assert resp.ok
        assert resp.resplits == 1  # the blown shard split in two...
        assert resp.shards_run == 2  # ...and both halves ran on the pool
        _assert_same_product(resp.result_or_raise(), _serial_c(a, b))

    def test_repeated_oom_keeps_splitting(self):
        a, b = _pair(seed=65, n=128)
        plan = FaultPlan(seed=2).oom_at_alloc(at=1).oom_at_alloc(at=2)

        async def run():
            async with SpGEMMService(max_queue_depth=4, workers=2) as svc:
                return await svc.submit(a, b, fault_plan=plan)

        resp = asyncio.run(run())
        assert resp.ok and resp.resplits == 2
        _assert_same_product(resp.result_or_raise(), _serial_c(a, b))

    def test_unsplittable_tile_row_exhausts(self):
        a, b = _pair(seed=67, n=64)
        plan = FaultPlan(seed=3).oom_at_alloc(every=1)  # every alloc OOMs

        async def run():
            async with SpGEMMService(max_queue_depth=4, workers=2) as svc:
                return await svc.submit(a, b, fault_plan=plan)

        resp = asyncio.run(run())
        assert resp.outcome == "exhausted"
        assert isinstance(resp.error, ResilienceExhausted)
        assert "cannot split further" in str(resp.error)

    def test_real_budget_oom_resplits_without_injection(self):
        a, b = _pair(seed=69, n=160, density=0.08)
        whole = tile_spgemm(
            TileMatrix.from_csr(a), TileMatrix.from_csr(b), keep_empty_tiles=True
        )
        # A budget below the whole run's peak but comfortably above one
        # tile row's needs: the first shard must blow it for real and the
        # re-split halves must fit.
        budget = int(whole.alloc.peak_bytes * 0.75)

        async def run():
            async with SpGEMMService(max_queue_depth=4, workers=2) as svc:
                return await svc.submit(a, b, budget_bytes=budget)

        resp = asyncio.run(run())
        assert resp.ok and resp.resplits >= 1
        _assert_same_product(resp.result_or_raise(), whole.c)


class TestTransientRetry:
    def test_transient_fault_retries_with_backoff_schedule(self):
        a, b = _pair(seed=71, n=96)
        plan = FaultPlan(seed=4).transient_at_step("step2", at=1)
        slept = []

        async def fake_sleep(s):
            slept.append(s)

        policy = RetryPolicy(
            backoff_base_s=0.25, backoff_factor=2.0, jitter_frac=0.5, jitter_seed=11
        )

        async def run():
            async with SpGEMMService(
                max_queue_depth=4, workers=2, retry_policy=policy, sleep=fake_sleep
            ) as svc:
                return await svc.submit(a, b, fault_plan=plan)

        resp = asyncio.run(run())
        assert resp.ok and resp.retries == 1
        # The awaited wait is exactly the policy's seeded schedule.
        assert slept == [backoff_wait(policy, 0)]
        _assert_same_product(resp.result_or_raise(), _serial_c(a, b))

    def test_retries_exhausted_terminates_typed(self):
        a, b = _pair(seed=73, n=64)
        plan = FaultPlan(seed=5).transient_at_step("step2", every=1)

        async def fake_sleep(s):
            pass

        async def run():
            async with SpGEMMService(
                max_queue_depth=4,
                workers=2,
                retry_policy=RetryPolicy(max_retries=2),
                sleep=fake_sleep,
            ) as svc:
                return await svc.submit(a, b, fault_plan=plan)

        resp = asyncio.run(run())
        assert resp.outcome == "exhausted"
        assert resp.retries == 2
        assert "still failing after 2 retries" in str(resp.error)


class TestWorkerDeath:
    def test_broken_pool_is_replaced_and_shard_rerun(self):
        a, b = _pair(seed=75, n=96)
        plan = FaultPlan(seed=6)
        plan._test_break_once = True

        async def run():
            async with SpGEMMService(
                max_queue_depth=4,
                workers=2,
                run_fn=_faulty_run_fn,
                parallel_policy=ParallelPolicy(on_worker_failure="serial"),
            ) as svc:
                resp = await svc.submit(a, b, fault_plan=plan)
                sibling = await svc.submit(a, b)  # pool must still work
                return resp, sibling

        resp, sibling = asyncio.run(run())
        assert resp.ok and resp.pool_replacements == 1
        _assert_same_product(resp.result_or_raise(), _serial_c(a, b))
        assert sibling.ok and sibling.pool_replacements == 0

    def test_raise_policy_turns_broken_pool_into_exhausted(self):
        a, b = _pair(seed=77, n=64)
        plan = FaultPlan(seed=7)
        plan._test_break_once = True

        async def run():
            async with SpGEMMService(
                max_queue_depth=4,
                workers=2,
                run_fn=_faulty_run_fn,
                parallel_policy=ParallelPolicy(on_worker_failure="raise"),
            ) as svc:
                return await svc.submit(a, b, fault_plan=plan)

        resp = asyncio.run(run())
        assert resp.outcome == "exhausted"
        assert "worker pool broken" in str(resp.error)


class TestDeadlines:
    def test_slow_shard_expires_and_is_cancelled(self):
        a, b = _pair(seed=79, n=96)
        plan = FaultPlan(seed=8)
        plan._test_slow_s = 0.2

        async def run():
            async with SpGEMMService(
                max_queue_depth=4, workers=2, run_fn=_faulty_run_fn
            ) as svc:
                t0 = time.perf_counter()
                resp = await svc.submit(a, b, fault_plan=plan, deadline_s=0.05)
                waited = time.perf_counter() - t0
                return resp, waited

        resp, waited = asyncio.run(run())
        assert resp.outcome == "deadline"
        assert isinstance(resp.error, DeadlineExceededError)
        assert resp.error.deadline_s == pytest.approx(0.05)

    def test_queued_past_deadline_never_computes(self):
        a, b = _pair(seed=81, n=96)
        slow_plan = FaultPlan(seed=9)
        slow_plan._test_slow_s = 0.15

        async def run():
            async with SpGEMMService(
                max_queue_depth=8, workers=1, max_inflight=1, run_fn=_faulty_run_fn
            ) as svc:
                first = asyncio.ensure_future(
                    svc.submit(a, b, fault_plan=slow_plan)
                )
                await asyncio.sleep(0.01)  # first occupies the only worker
                second = asyncio.ensure_future(
                    svc.submit(a, b, deadline_s=0.02)
                )
                return await asyncio.gather(first, second)

        first, second = asyncio.run(run())
        assert first.ok
        assert second.outcome == "deadline"
        assert second.shards_run == 0  # expired in the queue: zero compute

    def test_sibling_requests_unaffected_by_expiry(self):
        a, b = _pair(seed=83, n=96)
        slow_plan = FaultPlan(seed=10)
        slow_plan._test_slow_s = 0.2

        async def run():
            async with SpGEMMService(
                max_queue_depth=8, workers=2, run_fn=_faulty_run_fn
            ) as svc:
                doomed = asyncio.ensure_future(
                    svc.submit(a, b, fault_plan=slow_plan, deadline_s=0.05)
                )
                healthy = [
                    asyncio.ensure_future(svc.submit(a, b, tenant="healthy"))
                    for _ in range(3)
                ]
                return await asyncio.gather(doomed, *healthy)

        doomed, *healthy = asyncio.run(run())
        assert doomed.outcome == "deadline"
        ref = _serial_c(a, b)
        for resp in healthy:
            assert resp.ok
            _assert_same_product(resp.result_or_raise(), ref)


class TestFaultIsolation:
    def test_one_tenants_plan_never_leaks_into_siblings(self):
        a, b = _pair(seed=85, n=96)
        plan = FaultPlan(seed=11).oom_at_alloc(at=1).transient_at_step(
            "step2", at=1
        )

        async def fake_sleep(s):
            pass

        async def run():
            async with SpGEMMService(
                max_queue_depth=8, workers=2, sleep=fake_sleep
            ) as svc:
                faulted = asyncio.ensure_future(
                    svc.submit(a, b, tenant="faulted", fault_plan=plan)
                )
                clean = [
                    asyncio.ensure_future(svc.submit(a, b, tenant="clean"))
                    for _ in range(4)
                ]
                return await asyncio.gather(faulted, *clean)

        faulted, *clean = asyncio.run(run())
        ref = _serial_c(a, b)
        assert faulted.ok and faulted.resplits >= 1
        for resp in clean:
            assert resp.ok
            assert resp.resplits == 0 and resp.retries == 0  # no leakage
            _assert_same_product(resp.result_or_raise(), ref)


class TestChaosAcceptance:
    """The issue's acceptance test: 32+ concurrent requests, mixed faults,
    tight deadlines, undersized budgets — all contracts hold at once."""

    def test_chaos(self):
        num_requests = 36
        pairs = [_pair(seed=100 + 2 * k, n=96) for k in range(4)]
        refs = [_serial_c(a, b) for a, b in pairs]
        obs = make_obs(trace=True, metrics=True)

        def spec(k):
            """Request k's flavour: a deterministic mix of trouble."""
            a, b = pairs[k % len(pairs)]
            kind = k % 6
            deadline = None
            budget = None
            plan = None
            backpressure = "wait"
            if kind == 1:  # injected OOM: must re-split and serve
                plan = FaultPlan(seed=200 + k).oom_at_alloc(at=1)
            elif kind == 2:  # transient fault: must retry and serve
                plan = FaultPlan(seed=300 + k).transient_at_step("step2", at=1)
            elif kind == 3:  # tight deadline: deadline or served, never hangs
                deadline = 0.002
            elif kind == 4:  # hopeless budget: exhausted, never wrong
                plan = FaultPlan(seed=400 + k).oom_at_alloc(every=1)
            elif kind == 5:  # fail-fast submitter against the bounded queue
                backpressure = "shed"
            return a, b, plan, deadline, budget, backpressure, k % len(pairs)

        async def fake_sleep(s):
            await asyncio.sleep(0)

        async def run():
            with obs_context(tracer=obs.tracer, metrics=obs.metrics):
                svc = SpGEMMService(
                    max_queue_depth=8,
                    workers=4,
                    retry_policy=RetryPolicy(
                        max_retries=2, jitter_frac=0.3, jitter_seed=17
                    ),
                    sleep=fake_sleep,
                )
                async with svc:
                    tasks = []
                    for k in range(num_requests):
                        a, b, plan, deadline, budget, bp, ref_idx = spec(k)
                        tasks.append(
                            asyncio.ensure_future(
                                svc.submit(
                                    a,
                                    b,
                                    tenant=f"tenant{k % 3}",
                                    fault_plan=plan,
                                    deadline_s=deadline,
                                    budget_bytes=budget,
                                    backpressure=bp,
                                )
                            )
                        )
                    responses = await asyncio.gather(*tasks)
                    return responses, svc.queue_high_water, svc.queue_bound

        responses, high_water, bound = asyncio.run(run())

        # 1. Every request terminated, each with a typed outcome.
        assert len(responses) == num_requests
        for resp in responses:
            assert resp.outcome in OUTCOMES
            if not resp.ok:
                assert isinstance(
                    resp.error,
                    (
                        ServiceOverloadError,
                        DeadlineExceededError,
                        ResilienceExhausted,
                    ),
                )

        # 2. Served results are byte-identical to the serial engine.
        for k, resp in enumerate(responses):
            if resp.ok:
                _assert_same_product(resp.c, refs[k % len(pairs)])

        # 3. The flavours got the outcomes they were built to provoke.
        outcomes = [r.outcome for r in responses]
        oom_served = [responses[k] for k in range(num_requests) if k % 6 == 1]
        assert all(r.ok and r.resplits >= 1 for r in oom_served)
        transient_served = [
            responses[k] for k in range(num_requests) if k % 6 == 2
        ]
        assert all(r.ok and r.retries >= 1 for r in transient_served)
        hopeless = [responses[k] for k in range(num_requests) if k % 6 == 4]
        assert all(r.outcome == "exhausted" for r in hopeless)
        tight = [responses[k] for k in range(num_requests) if k % 6 == 3]
        assert all(r.outcome in ("served", "deadline") for r in tight)

        # 4. The queue never exceeded its bound.
        assert high_water <= bound

        # 5. Prometheus accounting: outcomes sum to submissions, and the
        #    export carries the serving metric families.
        snap = obs.metrics.snapshot()["counters"]
        submitted = sum(
            v for k, v in snap.items() if k.startswith("serve_requests_total")
        )
        finished = sum(
            v for k, v in snap.items() if k.startswith("serve_outcomes_total")
        )
        assert submitted == num_requests
        assert finished == num_requests  # 100% of submissions accounted
        prom = obs.metrics.to_prometheus()
        for family in (
            "serve_requests_total",
            "serve_outcomes_total",
            "serve_latency_seconds",
            "serve_queue_high_water",
        ):
            assert family in prom
        # One trace span per request, whatever its fate.
        spans = [s for s in obs.tracer.spans if s.cat == "serve.request"]
        assert len(spans) == num_requests
