"""Tests for the application layer: sparse ops, AMG, graphs, MCL."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    add,
    aggregation_prolongator,
    build_hierarchy,
    column_sums,
    elementwise_power,
    galerkin_product,
    hadamard,
    lower_triangle,
    markov_clustering,
    normalize_columns,
    scale_columns,
    triangle_count,
    two_hop_frontier,
)
from repro.formats.csr import CSRMatrix
from repro.matrices import generators as gen
from tests.conftest import random_csr


def graph_csr(g) -> CSRMatrix:
    return CSRMatrix.from_scipy(nx.to_scipy_sparse_array(g).tocsr().astype(float))


class TestSparseOps:
    def test_hadamard_matches_dense(self):
        a = random_csr(40, 30, 0.2, seed=121)
        b = random_csr(40, 30, 0.25, seed=122)
        got = hadamard(a, b).to_dense()
        assert np.allclose(got, a.to_dense() * b.to_dense())

    def test_hadamard_disjoint_patterns(self):
        a = CSRMatrix.from_dense(np.diag([1.0, 2.0]))
        b = CSRMatrix.from_dense(np.array([[0.0, 3.0], [4.0, 0.0]]))
        assert hadamard(a, b).nnz == 0

    def test_hadamard_shape_mismatch(self):
        with pytest.raises(ValueError):
            hadamard(random_csr(3, 3, 0.5, seed=0), random_csr(4, 4, 0.5, seed=0))

    def test_add_matches_dense(self):
        a = random_csr(25, 25, 0.2, seed=123)
        b = random_csr(25, 25, 0.2, seed=124)
        assert np.allclose(add(a, b).to_dense(), a.to_dense() + b.to_dense())

    def test_column_sums(self):
        a = random_csr(20, 15, 0.3, seed=125)
        assert np.allclose(column_sums(a), a.to_dense().sum(axis=0))

    def test_scale_columns(self):
        a = random_csr(10, 12, 0.3, seed=126)
        s = np.arange(1.0, 13.0)
        assert np.allclose(scale_columns(a, s).to_dense(), a.to_dense() @ np.diag(s))

    def test_normalize_columns_stochastic(self):
        a = random_csr(30, 30, 0.2, seed=127)
        a = CSRMatrix(a.shape, a.indptr, a.indices, np.abs(a.val) + 0.1)
        sums = column_sums(normalize_columns(a))
        nonempty = sums > 0
        assert np.allclose(sums[nonempty], 1.0)

    def test_elementwise_power(self):
        a = random_csr(10, 10, 0.4, seed=128)
        a = CSRMatrix(a.shape, a.indptr, a.indices, np.abs(a.val) + 0.5)
        got = elementwise_power(a, 2.0)
        assert np.allclose(got.val, a.val**2)


class TestAMG:
    def test_prolongator_is_partition(self):
        a = gen.stencil_2d(12, 12).to_csr()
        p = aggregation_prolongator(a, seed=1)
        # Every fine node belongs to exactly one aggregate with weight 1.
        assert p.nnz == a.shape[0]
        assert np.all(p.val == 1.0)
        assert p.shape[1] < a.shape[0]
        # Every aggregate is non-empty.
        assert np.all(np.bincount(p.indices, minlength=p.shape[1]) >= 1)

    def test_galerkin_matches_dense_triple_product(self):
        a = gen.stencil_2d(8, 8).to_csr()
        p = aggregation_prolongator(a, seed=2)
        coarse = galerkin_product(a, p)
        expected = p.to_dense().T @ a.to_dense() @ p.to_dense()
        assert np.allclose(coarse.to_dense(), expected)

    @pytest.mark.parametrize("method", ["tilespgemm", "speck"])
    def test_hierarchy_coarsens(self, method):
        a = gen.stencil_2d(20, 20).to_csr()
        h = build_hierarchy(a, max_levels=6, method=method)
        sizes = [l.a.shape[0] for l in h.levels]
        assert sizes[0] == 400
        assert all(sizes[i + 1] < sizes[i] for i in range(len(sizes) - 1))
        assert h.total_spgemm_flops > 0
        assert h.operator_complexity >= 1.0

    def test_hierarchy_respects_min_coarse(self):
        a = gen.stencil_2d(10, 10).to_csr()
        h = build_hierarchy(a, max_levels=20, min_coarse=30)
        assert all(l.a.shape[0] > 0 for l in h.levels)
        # Only the last level may be at or below the threshold + one step.
        assert h.levels[-2].a.shape[0] > 30 or h.num_levels <= 2

    def test_hierarchy_galerkin_consistency(self):
        a = gen.stencil_2d(9, 9).to_csr()
        h = build_hierarchy(a, max_levels=3)
        lvl = h.levels[0]
        expected = lvl.p.to_dense().T @ lvl.a.to_dense() @ lvl.p.to_dense()
        assert np.allclose(h.levels[1].a.to_dense(), expected)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            build_hierarchy(random_csr(4, 5, 0.5, seed=0))


class TestGraphs:
    def test_lower_triangle(self):
        a = random_csr(20, 20, 0.3, seed=131)
        lt = lower_triangle(a).to_dense()
        assert np.all(np.triu(lt) == 0)
        full = a.to_dense()
        assert np.array_equal(lt != 0, np.tril(full, -1) != 0)

    @pytest.mark.parametrize("seed,p", [(1, 0.1), (2, 0.05), (3, 0.2)])
    def test_triangle_count_matches_networkx(self, seed, p):
        g = nx.gnp_random_graph(120, p, seed=seed)
        mine = triangle_count(graph_csr(g))
        ref = sum(nx.triangles(g).values()) // 3
        assert mine == ref

    def test_triangle_count_complete_graph(self):
        g = nx.complete_graph(10)
        assert triangle_count(graph_csr(g)) == 10 * 9 * 8 // 6

    def test_triangle_count_triangle_free(self):
        g = nx.cycle_graph(8)  # even cycle: no triangles
        assert triangle_count(graph_csr(g)) == 0

    def test_two_hop_frontier(self):
        g = nx.path_graph(6)
        two = two_hop_frontier(graph_csr(g)).to_dense()
        # In a path, node 0 reaches node 2 in exactly two hops.
        assert two[0, 2] != 0
        assert two[0, 3] == 0


class TestMCL:
    def test_separates_two_cliques(self):
        edges = (
            list(itertools.combinations(range(6), 2))
            + list(itertools.combinations(range(6, 12), 2))
            + [(5, 6)]
        )
        res = markov_clustering(graph_csr(nx.Graph(edges)))
        assert res.converged
        assert sorted(map(sorted, res.clusters)) == [list(range(6)), list(range(6, 12))]

    def test_single_clique_single_cluster(self):
        g = nx.complete_graph(8)
        res = markov_clustering(graph_csr(g))
        assert len(res.clusters) == 1

    def test_rejects_negative_weights(self):
        a = CSRMatrix.from_dense(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ValueError):
            markov_clustering(a)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            markov_clustering(random_csr(3, 4, 0.5, seed=0))

    def test_clusters_partition_vertices(self):
        g = nx.gnp_random_graph(40, 0.15, seed=4)
        res = markov_clustering(graph_csr(g), max_iters=30)
        seen = sorted(v for cluster in res.clusters for v in cluster)
        assert seen == list(range(40))

    def test_flops_accumulated(self):
        g = nx.gnp_random_graph(30, 0.2, seed=5)
        res = markov_clustering(graph_csr(g))
        assert res.total_spgemm_flops > 0
        assert res.iterations >= 1
