"""Tests for the tiled sparse format (paper Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tile_matrix import TILE, TileMatrix, mask_dtype_for
from repro.formats.coo import COOMatrix
from repro.util.bits import popcount16
from tests.conftest import random_csr


def tiny_coo(entries, shape=(40, 40)):
    rows = np.array([e[0] for e in entries], dtype=np.int64)
    cols = np.array([e[1] for e in entries], dtype=np.int64)
    vals = np.array([e[2] for e in entries], dtype=np.float64)
    return COOMatrix(shape, rows, cols, vals)


class TestConstruction:
    def test_roundtrip_random(self, random_square):
        t = TileMatrix.from_csr(random_square)
        t.validate()
        assert t.to_csr().allclose(random_square)

    def test_empty_matrix(self):
        t = TileMatrix.empty((50, 70))
        t.validate()
        assert t.num_tiles == 0
        assert t.nnz == 0
        assert t.num_tile_rows == 4  # ceil(50/16)
        assert t.num_tile_cols == 5  # ceil(70/16)

    def test_single_entry(self):
        t = TileMatrix.from_coo(tiny_coo([(17, 33, 2.5)]))
        t.validate()
        assert t.num_tiles == 1
        assert t.tilecolidx.tolist() == [2]
        assert t.tile_rowidx().tolist() == [1]
        assert t.rowidx.tolist() == [1]
        assert t.colidx.tolist() == [1]
        assert t.val.tolist() == [2.5]

    def test_nonsquare_matrix(self):
        m = random_csr(37, 93, 0.1, seed=31)
        t = TileMatrix.from_csr(m)
        t.validate()
        assert t.to_csr().allclose(m)

    def test_dimensions_not_multiple_of_tile(self):
        m = random_csr(17, 17, 0.5, seed=32)
        t = TileMatrix.from_csr(m)
        t.validate()
        assert t.num_tile_rows == 2
        assert t.to_csr().allclose(m)

    def test_duplicates_summed_on_conversion(self):
        t = TileMatrix.from_coo(tiny_coo([(0, 0, 1.0), (0, 0, 2.0)]))
        assert t.nnz == 1
        assert t.val[0] == 3.0

    def test_full_tile(self):
        dense = np.ones((16, 16))
        t = TileMatrix.from_coo(COOMatrix.from_dense(dense))
        t.validate()
        assert t.num_tiles == 1
        assert t.tile_nnz_counts().tolist() == [256]
        assert np.array_equal(t.mask[0], np.full(16, 0xFFFF, dtype=np.uint16))
        assert np.array_equal(t.to_dense(), dense)

    @pytest.mark.parametrize("tile_size", [4, 8, 16])
    def test_tile_sizes(self, tile_size):
        m = random_csr(50, 50, 0.1, seed=33)
        t = TileMatrix.from_csr(m, tile_size)
        t.validate()
        assert t.to_csr().allclose(m)
        assert t.mask.dtype == mask_dtype_for(tile_size)

    def test_unsupported_tile_size(self):
        with pytest.raises(ValueError):
            TileMatrix.from_csr(random_csr(10, 10, 0.5, seed=0), 13)


class TestInvariants:
    def test_masks_match_indices(self, random_square):
        t = TileMatrix.from_csr(random_square)
        tile_of = t.tile_of_nonzero()
        rebuilt = np.zeros_like(t.mask)
        np.bitwise_or.at(
            rebuilt.reshape(-1),
            tile_of * t.tile_size + t.rowidx,
            (np.uint16(1) << t.colidx.astype(np.uint16)),
        )
        assert np.array_equal(rebuilt, t.mask)

    def test_rowptr_matches_mask_popcount(self, random_square):
        t = TileMatrix.from_csr(random_square)
        pc = popcount16(t.mask).astype(np.int64)
        expected = np.zeros_like(pc)
        np.cumsum(pc[:, :-1], axis=1, out=expected[:, 1:])
        assert np.array_equal(expected, t.rowptr.astype(np.int64))

    def test_tilennz_matches_mask_popcount(self, random_square):
        t = TileMatrix.from_csr(random_square)
        pc_sum = popcount16(t.mask).astype(np.int64).sum(axis=1)
        assert np.array_equal(pc_sum, t.tile_nnz_counts())

    def test_validate_catches_corrupted_mask(self):
        t = TileMatrix.from_csr(random_csr(40, 40, 0.2, seed=34))
        t.mask = t.mask.copy()
        t.mask[0, 0] ^= 1
        with pytest.raises(ValueError):
            t.validate()

    def test_validate_catches_corrupted_rowptr(self):
        t = TileMatrix.from_csr(random_csr(40, 40, 0.2, seed=35))
        t.rowptr = t.rowptr.copy()
        t.rowptr[0, -1] += 1
        with pytest.raises(ValueError):
            t.validate()

    def test_validate_catches_unsorted_tilecolidx(self):
        m = random_csr(64, 64, 0.3, seed=36)
        t = TileMatrix.from_csr(m)
        assert t.tileptr[1] - t.tileptr[0] >= 2, "need two tiles in row 0"
        t.tilecolidx = t.tilecolidx.copy()
        t.tilecolidx[[0, 1]] = t.tilecolidx[[1, 0]]
        with pytest.raises(ValueError):
            t.validate()

    def test_local_indices_fit_four_bits(self, random_square):
        t = TileMatrix.from_csr(random_square)
        if t.nnz:
            assert t.rowidx.max() < 16
            assert t.colidx.max() < 16

    def test_packed_local_indices_roundtrip(self, random_square):
        t = TileMatrix.from_csr(random_square)
        packed = t.packed_local_indices()
        assert packed.dtype == np.uint8
        assert np.array_equal(packed >> 4, t.rowidx)
        assert np.array_equal(packed & 0xF, t.colidx)


class TestViews:
    def test_tile_pattern_csr(self):
        m = random_csr(100, 100, 0.05, seed=37)
        t = TileMatrix.from_csr(m)
        pat = m.to_scipy()
        pat.data[:] = 1.0
        # Tile-level pattern equals the pooled (16x16 max-pool) pattern.
        import scipy.sparse as sp

        coo = pat.tocoo()
        tile_pat = sp.csr_matrix(
            (np.ones(coo.nnz), (coo.row // 16, coo.col // 16)),
            shape=(t.num_tile_rows, t.num_tile_cols),
        )
        tile_pat.sum_duplicates()
        ours = t.tile_pattern_csr()
        assert np.array_equal(ours.indptr, tile_pat.indptr)
        assert np.array_equal(ours.indices, tile_pat.indices)

    def test_tile_csc_consistent(self):
        t = TileMatrix.from_csr(random_csr(90, 120, 0.08, seed=38))
        csc = t.tile_csc()
        # Every tile appears exactly once, in its own column's segment.
        assert np.sort(csc["tile_id"]).tolist() == list(range(t.num_tiles))
        for j in range(t.num_tile_cols):
            lo, hi = csc["colptr"][j], csc["colptr"][j + 1]
            ids = csc["tile_id"][lo:hi]
            assert np.all(t.tilecolidx[ids] == j)
            # Rows sorted within a column.
            assert np.all(np.diff(csc["rowidx"][lo:hi]) > 0)

    def test_drop_empty_tiles_noop_when_none(self):
        t = TileMatrix.from_csr(random_csr(40, 40, 0.2, seed=39))
        assert t.drop_empty_tiles() is t


class TestSpace:
    def test_memory_bytes_counts_all_arrays(self):
        t = TileMatrix.from_csr(random_csr(64, 64, 0.2, seed=40))
        expected = (
            4 * (t.tileptr.size + t.num_tiles + t.num_tiles + 1)
            + t.nnz * (1 + 8)
            + t.num_tiles * 16 * (1 + 2)
        )
        assert t.memory_bytes() == expected

    def test_tiled_smaller_than_csr_on_dense_tiles(self):
        # Dense-ish FEM block structure: the paper's case where the tiled
        # format beats CSR (packed 1-byte indices vs 4-byte columns).
        from repro.matrices import generators

        m = generators.block_band(320, 64, 0, seed=41).to_csr()
        t = TileMatrix.from_csr(m)
        assert t.memory_bytes() < m.memory_bytes()

    def test_tiled_larger_than_csr_on_hypersparse(self):
        # Scattered singleton tiles: per-tile overhead dominates.
        from repro.matrices import generators

        m = generators.permute_symmetric(generators.banded(2000, 1, seed=42), seed=42).to_csr()
        t = TileMatrix.from_csr(m)
        assert t.memory_bytes() > m.memory_bytes()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 47), st.integers(0, 47), st.floats(-10, 10).filter(lambda v: v != 0)
        ),
        min_size=0,
        max_size=120,
    )
)
def test_property_roundtrip_and_invariants(entries):
    coo = tiny_coo(entries, shape=(48, 48))
    t = TileMatrix.from_coo(coo)
    t.validate()
    assert np.allclose(t.to_dense(), coo.to_dense())
    # nnz equals the number of distinct coordinates.
    distinct = len({(r, c) for r, c, _ in entries})
    assert t.nnz == distinct


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = TileMatrix.from_csr(random_csr(90, 70, 0.1, seed=271))
        path = tmp_path / "m.npz"
        t.save(path)
        back = TileMatrix.load(path)
        assert back.shape == t.shape
        assert back.tile_size == t.tile_size
        assert np.array_equal(back.val, t.val)
        assert back.to_csr().allclose(t.to_csr())

    def test_load_validates(self, tmp_path):
        t = TileMatrix.from_csr(random_csr(40, 40, 0.2, seed=272))
        path = tmp_path / "m.npz"
        t.save(path)
        # Corrupt the mask array inside the archive.
        data = dict(np.load(path))
        data["mask"] = data["mask"].copy()
        if data["mask"].size:
            data["mask"][0, 0] ^= 1
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            TileMatrix.load(path)

    def test_empty_matrix_roundtrip(self, tmp_path):
        t = TileMatrix.empty((30, 45))
        path = tmp_path / "e.npz"
        t.save(path)
        back = TileMatrix.load(path)
        assert back.nnz == 0
        assert back.shape == (30, 45)

    def test_small_tile_size_roundtrip(self, tmp_path):
        t = TileMatrix.from_csr(random_csr(50, 50, 0.15, seed=273), 8)
        path = tmp_path / "t8.npz"
        t.save(path)
        assert TileMatrix.load(path).tile_size == 8
