"""Tests for the phase timer and allocation tracker."""

import time

import pytest

from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer


class TestPhaseTimer:
    def test_accumulates(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.002)
        with t.phase("a"):
            pass
        assert t.seconds["a"] >= 0.002
        assert t.count("a") == 2

    def test_manual_add(self):
        t = PhaseTimer()
        t.add("x", 1.5)
        t.add("x", 0.5)
        assert t.seconds["x"] == pytest.approx(2.0)
        assert t.total == pytest.approx(2.0)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_fractions_sum_to_one(self):
        t = PhaseTimer()
        t.add("a", 3.0)
        t.add("b", 1.0)
        fr = t.fractions()
        assert fr["a"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert PhaseTimer().fractions() == {}

    def test_merge(self):
        t1, t2 = PhaseTimer(), PhaseTimer()
        t1.add("a", 1.0)
        t2.add("a", 2.0)
        t2.add("b", 3.0)
        t1.merge(t2)
        assert t1.seconds == {"a": 3.0, "b": 3.0}
        assert t1.count("a") == 2

    def test_exception_still_recorded(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("x"):
                raise RuntimeError("boom")
        assert "x" in t.seconds


class TestAllocationTracker:
    def test_peak_tracking(self):
        a = AllocationTracker()
        a.alloc("x", 100)
        a.alloc("y", 50)
        a.free("x")
        a.alloc("z", 60)
        assert a.peak_bytes == 150
        assert a.live_bytes == 110
        assert a.total_allocated == 210

    def test_double_alloc_rejected(self):
        a = AllocationTracker()
        a.alloc("x", 1)
        with pytest.raises(ValueError):
            a.alloc("x", 1)

    def test_unknown_free_rejected(self):
        with pytest.raises(ValueError):
            AllocationTracker().free("nope")

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            AllocationTracker().alloc("x", -5)

    def test_free_all(self):
        a = AllocationTracker()
        a.alloc("x", 10)
        a.alloc("y", 20)
        a.free_all()
        assert a.live_bytes == 0
        assert a.live_labels() == ()
        assert a.peak_bytes == 30

    def test_phases_tagged(self):
        a = AllocationTracker()
        a.set_phase("p1")
        a.alloc("x", 10)
        a.set_phase("p2")
        a.alloc("y", 30)
        peaks = a.peak_by_phase()
        assert peaks == {"p1": 10, "p2": 40}

    def test_timeline_steps(self):
        a = AllocationTracker()
        a.alloc("x", 10)
        a.alloc("y", 5)
        a.free("x")
        tl = a.timeline(total_seconds=3.0)
        assert [b for _, b in tl] == [10, 15, 5]
        assert tl[-1][0] == pytest.approx(3.0)

    def test_timeline_empty(self):
        assert AllocationTracker().timeline() == [(0.0, 0)]

    def test_alloc_array(self):
        import numpy as np

        a = AllocationTracker()
        a.alloc_array("arr", np.zeros(10, dtype=np.float64))
        assert a.live_bytes == 80
