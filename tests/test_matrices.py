"""Tests for the synthetic generators and the named matrix suites."""

import numpy as np
import pytest

from repro.matrices import (
    asymmetric_6,
    full_dataset,
    generators as gen,
    get_matrix,
    matrix_stats,
    representative_18,
    tsparse_16,
)


class TestGenerators:
    def test_banded_structure(self):
        m = gen.banded(100, 3, fill=1.0, seed=1).to_csr()
        rows = m.row_indices_expanded()
        assert np.all(np.abs(m.indices - rows) <= 3)
        assert m.nnz == 7 * 100 - 2 * (1 + 2 + 3)

    def test_banded_fill_reduces_nnz(self):
        full = gen.banded(200, 5, fill=1.0, seed=2).nnz
        half = gen.banded(200, 5, fill=0.5, seed=2).nnz
        assert 0.35 * full < half < 0.65 * full

    def test_banded_negative_bandwidth(self):
        with pytest.raises(ValueError):
            gen.banded(10, -1)

    def test_stencil_2d_row_degrees(self):
        m = gen.stencil_2d(10, 8).to_csr()
        lens = m.row_lengths()
        assert lens.max() == 5  # interior
        assert lens.min() == 3  # corners
        assert m.shape == (80, 80)

    def test_stencil_3d_row_degrees(self):
        m = gen.stencil_3d(5, 5, 5).to_csr()
        assert m.row_lengths().max() == 7
        assert m.shape == (125, 125)

    def test_stencil_symmetric(self):
        m = gen.stencil_2d(9, 7).to_csr()
        assert np.allclose(m.to_dense(), m.to_dense().T)

    def test_random_uniform_density(self):
        m = gen.random_uniform(500, 8.0, seed=3)
        assert 6.0 < m.nnz / 500 <= 8.0  # duplicates shave a little

    def test_powerlaw_tail(self):
        m = gen.powerlaw(3000, 4.0, exponent=1.9, max_degree=800, seed=4).to_csr()
        lens = m.row_lengths()
        assert lens.max() > 50 * np.median(lens[lens > 0])

    def test_powerlaw_hubs_planted(self):
        m = gen.powerlaw(2000, 3.0, max_degree=900, hubs=3, seed=5).to_csr()
        assert (m.row_lengths() > 400).sum() >= 3

    def test_rmat_shape(self):
        m = gen.rmat(8, edge_factor=4, seed=6)
        assert m.shape == (256, 256)
        assert m.nnz <= 1024

    def test_rmat_skew(self):
        m = gen.rmat(10, edge_factor=8, seed=7).to_csr()
        lens = np.sort(m.row_lengths())[::-1]
        # R-MAT concentrates edges: top 10% of rows hold >25% of edges.
        assert lens[: len(lens) // 10].sum() > 0.25 * m.nnz

    def test_block_dense_blocks_are_dense(self):
        m = gen.block_dense(64, 16, blocks_per_row=1, seed=8).to_csr()
        dense = m.to_dense()
        # Diagonal blocks always present and fully dense.
        for b in range(4):
            blk = dense[b * 16 : (b + 1) * 16, b * 16 : (b + 1) * 16]
            assert np.all(blk != 0)

    def test_block_band_diag_only(self):
        m = gen.block_band(64, 32, 0, seed=9).to_csr()
        dense = m.to_dense()
        assert np.all(dense[:32, 32:] == 0)
        assert np.all(dense[:32, :32] != 0)

    def test_hypersparse_spread(self):
        from repro.core.tile_matrix import TileMatrix

        m = gen.hypersparse(4000, 2.0, seed=10).to_csr()
        t = TileMatrix.from_csr(m)
        assert t.nnz / t.num_tiles < 2.0  # ~1 nonzero per tile

    def test_grouped_scatter_groups_share_columns(self):
        m = gen.grouped_scatter(40, 5, group=4, seed=11).to_csr()
        c0, _ = m.row(0)
        c3, _ = m.row(3)
        assert np.array_equal(c0, c3)

    def test_clustered_columns_window(self):
        m = gen.clustered_columns(200, 10, 25, seed=12).to_csr()
        rows = m.row_indices_expanded()
        centers = (rows // 25) * 25
        offset = (m.indices - centers) % 200
        assert offset.max() < 25

    def test_permutation_preserves_spgemm_stats(self):
        base = gen.banded(300, 4, seed=13)
        perm = gen.permute_symmetric(base, seed=14)
        s1 = matrix_stats(base.to_csr())
        s2 = matrix_stats(perm.to_csr())
        assert s1.nnz == s2.nnz
        assert s1.flops == s2.flops
        assert s1.nnz_c == s2.nnz_c

    def test_permutation_destroys_tile_locality(self):
        from repro.core.tile_matrix import TileMatrix

        base = gen.banded(1000, 4, seed=15)
        perm = gen.permute_symmetric(base, seed=16)
        t_base = TileMatrix.from_coo(base)
        t_perm = TileMatrix.from_coo(perm)
        assert t_perm.num_tiles > 3 * t_base.num_tiles

    def test_permute_requires_square(self):
        from repro.formats.coo import COOMatrix

        with pytest.raises(ValueError):
            gen.permute_symmetric(COOMatrix.empty((3, 4)))

    def test_determinism(self):
        a = gen.powerlaw(500, 4.0, seed=42).to_csr()
        b = gen.powerlaw(500, 4.0, seed=42).to_csr()
        assert a.allclose(b)
        c = gen.powerlaw(500, 4.0, seed=43).to_csr()
        assert not a.allclose(c)


class TestSuites:
    def test_representative_18_complete(self):
        suite = representative_18()
        assert len(suite) == 18
        assert [s.name for s in suite][:3] == ["pdb1HYS", "consph", "cant"]
        assert all(s.paper is not None for s in suite)

    def test_names_unique(self):
        names = [s.name for s in representative_18()]
        assert len(set(names)) == 18

    def test_asymmetric_subset(self):
        sub = asymmetric_6()
        assert [s.name for s in sub] == [
            "rma10",
            "conf5_4-8x8-05",
            "mac_econ_fwd500",
            "mc2depi",
            "scircuit",
            "webbase-1M",
        ]
        assert all(s.asymmetric for s in sub)

    def test_tsparse_16_complete(self):
        suite = tsparse_16()
        assert len(suite) == 16
        assert suite[0].name == "mc2depi"

    def test_full_dataset_reasonable(self):
        ds = full_dataset()
        assert len(ds) >= 40
        names = [s.name for s in ds]
        assert len(set(names)) == len(names)
        categories = {s.category for s in ds}
        assert categories >= {"fem", "powerlaw", "random", "stencil", "block", "clustered", "hypersparse"}

    def test_full_dataset_truncation(self):
        assert len(full_dataset(max_matrices=5)) == 5

    def test_get_matrix(self):
        m = get_matrix("mc2depi")
        assert m.shape == (12000, 12000)
        with pytest.raises(KeyError):
            get_matrix("not_a_matrix")

    def test_matrices_cached(self):
        assert get_matrix("cant") is get_matrix("cant")

    @pytest.mark.parametrize(
        "name", ["pdb1HYS", "cant", "conf5_4-8x8-05", "cop20k_A", "SiO2", "gupta3"]
    )
    def test_compression_rate_near_paper(self, name):
        """Analogues land within 2x of the paper's compression rate —
        loose on purpose; EXPERIMENTS.md records exact measured values."""
        spec = next(s for s in representative_18() if s.name == name)
        st = matrix_stats(spec.matrix())
        target = spec.paper.compression_rate
        assert target / 2 <= st.compression_rate <= target * 2

    def test_stats_definition(self):
        from repro.formats.csr import CSRMatrix

        i = CSRMatrix.identity(10)
        st = matrix_stats(i)
        assert st.flops == 20  # 10 products x 2
        assert st.nnz_c == 10
        assert st.compression_rate == pytest.approx(1.0)
