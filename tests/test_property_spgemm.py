"""Property-based tests: SpGEMM correctness and algebraic identities.

These drive every registered method (minus the half-precision tSparse
mode) against SciPy on hypothesis-generated matrices, and check the
algebraic identities that any SpGEMM must satisfy.

The backend-parametrised properties at the bottom sweep every available
kernel backend (:mod:`repro.backend`) through the serial, chunked and
2-worker parallel execution paths; a hypothesis-free seeded-fuzz loop
covers the same cross product on fixed seeds so CI cost stays bounded.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ulp import accumulation_scale, compare_values
from repro.backend import ConformanceTier, backend_tier, backend_tolerance, list_backends
from repro.baselines import get_algorithm
from repro.core import TileMatrix, tile_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr, scipy_product
from tests.corpus import CORPUS, corpus_names

# Strategy: a small sparse matrix as (shape, entries).
VALUES = st.sampled_from([1.0, -1.0, 0.5, 2.0, -3.25])


@st.composite
def sparse_matrix(draw, max_dim=40, max_nnz=60):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz))
    vals = draw(st.lists(VALUES, min_size=nnz, max_size=nnz))
    return COOMatrix(
        (nrows, ncols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals),
    ).to_csr()


@st.composite
def matrix_pair(draw, max_dim=36):
    n = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    a = draw(sparse_matrix_fixed(n, k))
    b = draw(sparse_matrix_fixed(k, m))
    return a, b


@st.composite
def sparse_matrix_fixed(draw, nrows, ncols, max_nnz=50):
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz))
    vals = draw(st.lists(VALUES, min_size=nnz, max_size=nnz))
    return COOMatrix(
        (nrows, ncols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals),
    ).to_csr()


@settings(max_examples=40, deadline=None)
@given(matrix_pair())
def test_tilespgemm_matches_dense(pair):
    a, b = pair
    res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(b))
    assert np.allclose(res.c.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(matrix_pair(max_dim=24))
@pytest.mark.parametrize(
    "method", ["cusparse_spa", "bhsparse_esc", "nsparse_hash", "speck", "heap_merge"]
)
def test_baselines_match_dense(method, pair):
    a, b = pair
    res = get_algorithm(method)(a, b)
    assert np.allclose(res.c.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(sparse_matrix(max_dim=30))
def test_identity_neutrality(a):
    left = tile_spgemm(
        TileMatrix.from_csr(CSRMatrix.identity(a.shape[0])), TileMatrix.from_csr(a)
    ).c.to_csr()
    right = tile_spgemm(
        TileMatrix.from_csr(a), TileMatrix.from_csr(CSRMatrix.identity(a.shape[1]))
    ).c.to_csr()
    assert left.allclose(a)
    assert right.allclose(a)


@settings(max_examples=25, deadline=None)
@given(matrix_pair(max_dim=28))
def test_transpose_identity(pair):
    """(A B)^T == B^T A^T — exercises both tile layouts and the CSC view."""
    a, b = pair
    ab_t = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(b)).c.to_csr().transpose()
    bt_at = tile_spgemm(
        TileMatrix.from_csr(b.transpose()), TileMatrix.from_csr(a.transpose())
    ).c.to_csr()
    assert ab_t.allclose(bt_at)


@settings(max_examples=20, deadline=None)
@given(matrix_pair(max_dim=20))
def test_scalar_homogeneity(pair):
    """(2A) B == 2 (A B)."""
    a, b = pair
    doubled = CSRMatrix(a.shape, a.indptr, a.indices, a.val * 2.0)
    c1 = tile_spgemm(TileMatrix.from_csr(doubled), TileMatrix.from_csr(b)).c.to_csr()
    c2 = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(b)).c.to_csr()
    assert np.allclose(c1.to_dense(), 2.0 * c2.to_dense())


@settings(max_examples=20, deadline=None)
@given(sparse_matrix(max_dim=26))
def test_output_is_valid_tile_matrix(a):
    res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a.transpose()))
    res.c.drop_empty_tiles().validate()


@settings(max_examples=20, deadline=None)
@given(matrix_pair(max_dim=24))
def test_methods_agree_pairwise(pair):
    a, b = pair
    c_tile = get_algorithm("tilespgemm")(a, b).c
    c_hash = get_algorithm("nsparse_hash")(a, b).c
    c_esc = get_algorithm("bhsparse_esc")(a, b).c
    assert c_tile.allclose(c_hash)
    assert c_hash.allclose(c_esc)


# ---------------------------------------------------------------------------
# Cross-backend properties
# ---------------------------------------------------------------------------

BACKENDS = list_backends()
EXACT_BACKENDS = [n for n in BACKENDS if backend_tier(n) is ConformanceTier.EXACT]
FAST_BACKENDS = [n for n in BACKENDS if backend_tier(n) is ConformanceTier.FAST_MATH]


def _assert_backend_bytes_identical(c_ref, c_got, context=""):
    for name in (
        "tileptr",
        "tilecolidx",
        "tilennz",
        "rowptr",
        "rowidx",
        "colidx",
        "val",
        "mask",
    ):
        ref, got = getattr(c_ref, name), getattr(c_got, name)
        assert ref.dtype == got.dtype, f"{context}{name}"
        assert ref.tobytes() == got.tobytes(), f"{context}{name}"


def _execution_paths(backend):
    """The three execution paths each backend must agree across."""
    from repro.runtime.chunked import chunked_tile_spgemm
    from repro.runtime.parallel import parallel_tile_spgemm

    return {
        "serial": lambda at, bt: tile_spgemm(at, bt, backend=backend),
        "chunked": lambda at, bt: chunked_tile_spgemm(
            at, bt, num_batches=3, backend=backend
        ),
        "par2_thread": lambda at, bt: parallel_tile_spgemm(
            at, bt, workers=2, executor="thread", backend=backend
        ),
    }


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=10, deadline=None)
@given(matrix_pair(max_dim=20))
def test_backend_matches_dense_all_paths(backend, pair):
    """Every backend, through serial/chunked/parallel, matches dense —
    and all three paths are byte-identical to each other."""
    a, b = pair
    at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
    dense = a.to_dense() @ b.to_dense()
    results = {name: run(at, bt) for name, run in _execution_paths(backend).items()}
    for name, res in results.items():
        assert np.allclose(res.c.to_dense(), dense, atol=1e-10), name
    serial = results["serial"]
    for name in ("chunked", "par2_thread"):
        _assert_backend_bytes_identical(
            serial.c, results[name].c, context=f"{backend}/{name}:"
        )


@pytest.mark.parametrize("backend", [b for b in EXACT_BACKENDS if b != "numpy"])
@pytest.mark.parametrize("seed", [601, 602, 603, 604, 605, 606])
def test_backend_seeded_fuzz_byte_identity(backend, seed):
    """Hypothesis-free fuzz loop: fixed seeds, dims <= 64, every
    non-reference *exact-tier* backend byte-identical to numpy on all
    three paths.  Capped at 6 seeds so the pure-Python oracle stays
    CI-affordable."""
    rs = np.random.default_rng(seed)
    n, k, m = (int(rs.integers(1, 65)) for _ in range(3))
    density = float(rs.uniform(0.02, 0.25))
    a = random_csr(n, k, density, seed=seed * 7 + 1)
    b = random_csr(k, m, density, seed=seed * 7 + 2)
    at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
    ref = tile_spgemm(at, bt, backend="numpy")
    np.testing.assert_allclose(
        ref.c.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-10
    )
    for name, run in _execution_paths(backend).items():
        got = run(at, bt)
        assert got.stats["backend"] == backend, name
        _assert_backend_bytes_identical(ref.c, got.c, context=f"{name}:")


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("seed", [601, 602, 603])
def test_fast_backend_seeded_fuzz_structure_and_tolerance(backend, seed):
    """The tier-2 property on the same fuzz inputs: structure arrays
    byte-identical to the numpy reference on all three paths, values
    within the backend's declared tolerance of it."""
    rs = np.random.default_rng(seed)
    n, k, m = (int(rs.integers(1, 65)) for _ in range(3))
    density = float(rs.uniform(0.02, 0.25))
    a = random_csr(n, k, density, seed=seed * 7 + 1)
    b = random_csr(k, m, density, seed=seed * 7 + 2)
    at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
    ref = tile_spgemm(at, bt, backend="numpy")
    scale = accumulation_scale(a, b, ref.c)
    for name, run in _execution_paths(backend).items():
        got = run(at, bt)
        assert got.stats["backend"] == backend, name
        for arr in ("tileptr", "tilecolidx", "tilennz", "rowptr", "rowidx",
                    "colidx", "mask"):
            assert (
                getattr(ref.c, arr).tobytes() == getattr(got.c, arr).tobytes()
            ), f"{name}:{arr}"
        cmp = compare_values(
            ref.c.val, got.c.val, backend_tolerance(backend), scale=scale
        )
        assert cmp.within, (name, cmp.to_dict())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "case_name", corpus_names(exclude_tags=("fp16", "stress"))
)
def test_corpus_invariants_every_backend(backend, case_name):
    """Shared-corpus sweep: every backend produces a structurally valid
    result whose dense form matches the reference product."""
    case = CORPUS[case_name]
    at = TileMatrix.from_csr(case.a)
    bt = TileMatrix.from_csr(case.b)
    res = tile_spgemm(at, bt, backend=backend, **case.kwargs)
    res.c.validate()
    np.testing.assert_allclose(
        res.c.to_dense(), case.a.to_dense() @ case.b.to_dense(), atol=1e-9
    )
