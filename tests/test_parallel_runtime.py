"""The sharded parallel engine: determinism, failure policy, batching, cache."""

import numpy as np
import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.errors import InvalidInputError, TransientKernelError
from repro.obs.context import make_obs, obs_context
from repro.runtime.chunked import batch_bounds, chunked_tile_spgemm, stitch_results
from repro.runtime.faults import FaultPlan
from repro.runtime.parallel import (
    parallel_tile_spgemm,
    resolve_executor,
    resolve_workers,
    spgemm_batch,
)
from repro.runtime.policy import ParallelPolicy
from repro.runtime.tilecache import (
    TileCache,
    cached_algorithm,
    content_key,
    get_tile_cache,
    reset_tile_cache,
)
from tests.conftest import random_csr, scipy_product

_C_ARRAYS = (
    "tileptr",
    "tilecolidx",
    "tilennz",
    "rowptr",
    "rowidx",
    "colidx",
    "val",
    "mask",
)


def _tiled(csr):
    return TileMatrix.from_csr(csr)


def assert_bytes_identical(c_ref, c_got):
    """All eight output arrays equal down to the raw bytes."""
    for name in _C_ARRAYS:
        ref, got = getattr(c_ref, name), getattr(c_got, name)
        assert ref.dtype == got.dtype, name
        assert ref.tobytes() == got.tobytes(), name


@pytest.fixture(scope="module")
def operands():
    a = _tiled(random_csr(300, 300, 0.05, seed=41))
    b = _tiled(random_csr(300, 300, 0.05, seed=42))
    return a, b


@pytest.fixture(scope="module")
def serial(operands):
    a, b = operands
    return tile_spgemm(a, b)


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_pool_matches_serial(self, operands, serial, workers):
        a, b = operands
        res = parallel_tile_spgemm(a, b, workers=workers, executor="thread")
        assert_bytes_identical(serial.c, res.c)
        assert res.stats["workers"] == workers
        assert res.stats["executor"] == "thread"

    def test_process_pool_matches_serial(self, operands, serial):
        a, b = operands
        res = parallel_tile_spgemm(a, b, workers=2, executor="process")
        assert_bytes_identical(serial.c, res.c)
        assert res.stats["executor"] == "process"

    def test_rectangular_operands(self):
        a_csr = random_csr(130, 70, 0.10, seed=43)
        b_csr = random_csr(70, 200, 0.10, seed=44)
        ref = tile_spgemm(_tiled(a_csr), _tiled(b_csr))
        res = parallel_tile_spgemm(
            _tiled(a_csr), _tiled(b_csr), workers=3, executor="thread"
        )
        assert_bytes_identical(ref.c, res.c)
        assert res.c.to_csr().allclose(scipy_product(a_csr, b_csr))

    def test_workers_one_is_serial(self, operands, serial):
        a, b = operands
        res = parallel_tile_spgemm(a, b, workers=1)
        assert_bytes_identical(serial.c, res.c)
        assert res.stats["executor"] == "serial"
        assert res.stats["shards"] == 1

    def test_merged_stats_match_serial_totals(self, operands, serial):
        a, b = operands
        res = parallel_tile_spgemm(a, b, workers=2, executor="thread")
        for key in ("num_products", "nnz_c", "num_c_tiles", "sparse_tiles", "dense_tiles"):
            assert res.stats[key] == serial.stats[key], key

    def test_chunked_is_also_byte_identical(self, operands, serial):
        # The tile-aligned product chunking makes the chunked path exactly
        # partition-invariant too (the property the stitch relies on).
        a, b = operands
        for batches in (3, 8):
            res = chunked_tile_spgemm(a, b, num_batches=batches)
            assert_bytes_identical(serial.c, res.c)

    def test_drop_empty_tiles_consistent(self, operands):
        a, b = operands
        ref = tile_spgemm(a, b, keep_empty_tiles=False)
        res = parallel_tile_spgemm(
            a, b, workers=2, executor="thread", keep_empty_tiles=False
        )
        assert_bytes_identical(ref.c, res.c)


class TestShardGeometry:
    def test_batch_bounds_cover_contiguously(self):
        bounds = batch_bounds(17, 4)
        assert bounds[0] == 0 and bounds[-1] == 17
        assert np.all(np.diff(bounds) >= 1)

    def test_shards_clamped_to_tile_rows(self):
        a = _tiled(random_csr(20, 20, 0.4, seed=45))  # 2 tile rows
        res = parallel_tile_spgemm(a, a, workers=4, executor="thread")
        assert res.stats["shards"] <= a.num_tile_rows

    def test_explicit_shard_count(self, operands, serial):
        a, b = operands
        res = parallel_tile_spgemm(a, b, workers=2, executor="thread", shards=5)
        assert res.stats["shards"] == 5
        assert_bytes_identical(serial.c, res.c)

    def test_stitch_results_exported_and_reusable(self, operands, serial):
        a, b = operands
        bounds = batch_bounds(a.num_tile_rows, 3)
        from repro.runtime.chunked import slice_tile_rows

        pieces = [
            tile_spgemm(slice_tile_rows(a, int(bounds[k]), int(bounds[k + 1])), b)
            for k in range(3)
        ]
        merged = stitch_results(pieces, a, b, keep_empty_tiles=True)
        assert_bytes_identical(serial.c, merged.c)

    def test_dimension_mismatch_raises(self, operands):
        a, _ = operands
        bad = _tiled(random_csr(64, 64, 0.1, seed=46))
        with pytest.raises(InvalidInputError):
            parallel_tile_spgemm(a, bad, workers=2)


class TestFailurePolicy:
    def test_transient_fault_falls_back_to_serial(self, operands, serial):
        a, b = operands
        plan = FaultPlan().transient_at_step(match="step3", at=1)
        obs = make_obs()
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            res = parallel_tile_spgemm(
                a,
                b,
                workers=2,
                executor="thread",
                policy=ParallelPolicy(max_shard_retries=0),
                fault_plan=plan,
            )
        assert res.stats["parallel_fallback"] is True
        assert res.stats["executor"] == "serial"
        assert obs.metrics.counter_value("parallel_fallbacks_total", executor="thread") == 1
        assert_bytes_identical(serial.c, res.c)

    def test_raise_mode_propagates(self, operands):
        a, b = operands
        with pytest.raises(TransientKernelError):
            parallel_tile_spgemm(
                a,
                b,
                workers=2,
                executor="thread",
                policy=ParallelPolicy(max_shard_retries=0, on_worker_failure="raise"),
                fault_plan=FaultPlan().transient_at_step(match="step3", at=1),
            )

    def test_shard_retry_absorbs_one_shot_fault(self, operands, serial):
        a, b = operands
        res = parallel_tile_spgemm(
            a,
            b,
            workers=2,
            executor="thread",
            policy=ParallelPolicy(max_shard_retries=1),
            fault_plan=FaultPlan().transient_at_step(match="step3", at=1),
        )
        assert "parallel_fallback" not in res.stats
        assert_bytes_identical(serial.c, res.c)

    def test_policy_validation(self):
        with pytest.raises(InvalidInputError):
            ParallelPolicy(on_worker_failure="panic")
        with pytest.raises(InvalidInputError):
            ParallelPolicy(max_shard_retries=-1)

    def test_caller_bugs_never_fall_back(self, operands):
        # A non-transient error raised inside a shard is the caller's bug:
        # the engine must not mask it with a serial rerun.
        a, b = operands
        with pytest.raises(ValueError):
            parallel_tile_spgemm(
                a, b, workers=2, executor="thread", force_accumulator="bogus"
            )


class TestResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert resolve_workers(None) == 5
        assert resolve_executor(None) == "process"

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_executor(None) == "thread"

    def test_zero_means_auto(self):
        assert resolve_workers(0) >= 1

    def test_invalid_values_raise(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(InvalidInputError):
            resolve_workers(None)
        with pytest.raises(InvalidInputError):
            resolve_workers(-2)
        with pytest.raises(InvalidInputError):
            resolve_executor("fiber")


class TestObservability:
    def test_per_shard_spans_and_metrics(self, operands):
        a, b = operands
        obs = make_obs()
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            res = parallel_tile_spgemm(a, b, workers=2, executor="thread")
        shard_spans = [s for s in obs.tracer.spans if s.cat == "parallel.shard"]
        assert len(shard_spans) == res.stats["shards"]
        assert all(s.duration_s >= 0 for s in shard_spans)
        top = [s for s in obs.tracer.spans if s.name == "parallel_tile_spgemm"]
        assert len(top) == 1 and top[0].args["workers"] == 2
        assert obs.metrics.gauge_value("parallel_workers") == 2
        assert obs.metrics.counter_value("parallel_runs_total", executor="thread") == 1
        assert obs.metrics.counter_value("parallel_shards_total") == res.stats["shards"]
        # Merged algorithm counters equal one serial run's (workers report
        # to NULL_OBS; the coordinator records the stitched stats once).
        assert obs.metrics.counter_value("tilespgemm_runs_total") == 1
        assert obs.metrics.counter_value("c_nnz_total") == res.stats["nnz_c"]

    def test_worker_threads_inherit_no_ambient_context(self, operands):
        # The coordinator's obs context must not leak into pool workers;
        # if it did, the Tracer would be driven from several threads and
        # the span stack would interleave corruptly.  Worker spans appear
        # in the merged trace only via absorb_telemetry — recorded by the
        # coordinating thread after the pool drains, on worker tracks,
        # never through the coordinator's ambient context.
        a, b = operands
        obs = make_obs()
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            parallel_tile_spgemm(a, b, workers=4, executor="thread")
        step3 = [s for s in obs.tracer.spans if s.name == "step3"]
        assert step3  # absorbed worker spans are present...
        for sp in step3:
            assert sp.pid == "parallel.workers"  # ...on worker tracks
            assert sp.args["trace_id"]  # and carry propagated identity
        assert obs.tracer.open_spans == ()  # span stack never corrupted
        for sp in obs.tracer.spans:
            assert sp.end_s >= sp.start_s


class TestSpgemmBatch:
    def test_order_and_identity(self):
        mats = [random_csr(90, 90, 0.08, seed=s) for s in (51, 52, 53)]
        pairs = [(mats[0], mats[1]), (mats[1], mats[2]), (mats[2], mats[0])]
        refs = [tile_spgemm(_tiled(x), _tiled(y)) for x, y in pairs]
        out = spgemm_batch(pairs, workers=3, executor="thread")
        assert len(out) == 3
        for ref, got in zip(refs, out):
            assert_bytes_identical(ref.c, got.c)

    def test_serial_batch(self):
        a = random_csr(60, 60, 0.1, seed=54)
        out = spgemm_batch([(a, a)], workers=1)
        assert out[0].c.to_csr().allclose(scipy_product(a, a))

    def test_repeated_operands_tile_once(self):
        reset_tile_cache()
        a = random_csr(80, 80, 0.1, seed=55)
        b = random_csr(80, 80, 0.1, seed=56)
        spgemm_batch([(a, b), (a, a), (b, b), (b, a)], workers=2, executor="thread")
        stats = get_tile_cache().stats()
        assert stats["misses"] == 2  # a and b each tiled exactly once
        assert stats["hits"] == 6

    def test_batch_task_fault_falls_back_per_task(self):
        a = random_csr(70, 70, 0.1, seed=57)
        ref = tile_spgemm(_tiled(a), _tiled(a))
        plan = FaultPlan().transient_at_step(match="step3", at=1)
        out = spgemm_batch(
            [(a, a), (a, a)],
            workers=2,
            executor="thread",
            policy=ParallelPolicy(max_shard_retries=0),
            fault_plan=plan,
        )
        assert len(out) == 2
        for got in out:
            assert_bytes_identical(ref.c, got.c)


class TestTileCache:
    def test_hit_on_identical_content(self):
        cache = TileCache(capacity=4)
        a = random_csr(64, 64, 0.1, seed=61)
        t1 = cache.tile(a)
        # A structurally identical copy (different object) must hit.
        from repro.formats.csr import CSRMatrix

        a2 = CSRMatrix(a.shape, a.indptr.copy(), a.indices.copy(), a.val.copy())
        t2 = cache.tile(a2)
        assert t1 is t2
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["evictions"] == 0 and stats["size"] == 1
        assert stats["capacity"] == 4
        assert stats["resident_bytes"] == t1.memory_bytes()

    def test_value_change_misses(self):
        cache = TileCache(capacity=4)
        a = random_csr(64, 64, 0.1, seed=62)
        cache.tile(a)
        from repro.formats.csr import CSRMatrix

        changed = CSRMatrix(a.shape, a.indptr, a.indices, a.val * 2.0)
        cache.tile(changed)
        assert cache.misses == 2
        assert content_key(a, 16) != content_key(changed, 16)

    def test_tile_size_in_key(self):
        a = random_csr(64, 64, 0.1, seed=63)
        assert content_key(a, 16) != content_key(a, 8)

    def test_lru_eviction(self):
        cache = TileCache(capacity=2)
        mats = [random_csr(32, 32, 0.2, seed=70 + i) for i in range(3)]
        for m in mats:
            cache.tile(m)
        assert cache.evictions == 1 and len(cache) == 2
        cache.tile(mats[0])  # evicted first -> must re-tile
        assert cache.misses == 4

    def test_tilematrix_passthrough(self):
        cache = TileCache()
        t = _tiled(random_csr(32, 32, 0.2, seed=64))
        assert cache.tile(t) is t
        assert cache.stats()["misses"] == 0

    def test_zero_capacity_disables(self):
        cache = TileCache(capacity=0)
        a = random_csr(32, 32, 0.2, seed=65)
        cache.tile(a)
        cache.tile(a)
        assert cache.misses == 2 and len(cache) == 0

    def test_clear(self):
        cache = TileCache()
        cache.tile(random_csr(32, 32, 0.2, seed=66))
        cache.clear()
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "size": 0,
            "capacity": cache.capacity,
            "resident_bytes": 0,
        }

    def test_cached_algorithm_tiled_family(self):
        reset_tile_cache()
        a = random_csr(96, 96, 0.08, seed=67)
        run = cached_algorithm("tilespgemm")
        r1 = run(a, a)
        r2 = run(a, a)
        assert get_tile_cache().stats()["misses"] == 1
        assert r1.c.allclose(r2.c)
        # Non-tiled methods pass through unchanged.
        from repro.baselines import get_algorithm

        assert cached_algorithm("gustavson") is get_algorithm("gustavson")


class TestParallelAdapters:
    @pytest.mark.parametrize("method", ["tilespgemm_par2", "tilespgemm_par4"])
    def test_registered_and_identical(self, method):
        from repro.baselines import get_algorithm

        a = random_csr(128, 128, 0.06, seed=68)
        ref = get_algorithm("tilespgemm")(a, a)
        got = get_algorithm(method)(a, a)
        assert got.method == method
        assert ref.c.allclose(got.c)
        assert np.array_equal(ref.c.val, got.c.val)


class TestPlanner:
    """The estimation-driven planner: bounds geometry and determinism."""

    def test_batch_bounds_property_sweep(self):
        # Exact divmod splitting: for every (rows, batches) up to 64 the
        # bounds cover [0, rows] contiguously, are strictly increasing,
        # and shard sizes differ by at most one (no linspace truncation).
        for rows in range(65):
            for batches in range(1, 65):
                bounds = batch_bounds(rows, batches)
                assert bounds[0] == 0 and bounds[-1] == rows, (rows, batches)
                assert len(bounds) == min(batches, max(rows, 1)) + 1
                sizes = np.diff(bounds)
                if rows:
                    assert np.all(sizes >= 1), (rows, batches)
                    assert sizes.max() - sizes.min() <= 1, (rows, batches)

    def test_validate_bounds_rejects_bad_shapes(self):
        from repro.runtime.chunked import validate_bounds

        validate_bounds(np.array([0, 3, 7]), 7)
        for bad in ([1, 7], [0, 5], [0, 4, 4, 7], [0, 5, 3, 7], [0]):
            with pytest.raises(InvalidInputError):
                validate_bounds(np.array(bad), 7)

    def test_weighted_bounds_cover_with_no_empty_shard(self):
        from repro.runtime.planner import weighted_bounds

        rng = np.random.default_rng(7)
        for n in (1, 2, 5, 17, 64):
            for shards in (1, 2, 3, 8, 64):
                for weights in (
                    rng.random(n),
                    np.zeros(n),
                    np.eye(1, n, 0).ravel() * 100.0,  # one-row spike
                ):
                    bounds = weighted_bounds(weights, shards)
                    assert bounds[0] == 0 and bounds[-1] == n
                    assert np.all(np.diff(bounds) >= 1)

    def test_planned_bounds_cover_exactly(self, operands):
        from repro.runtime.planner import plan_execution

        a, b = operands
        plan = plan_execution(a, b, workers=3)
        assert plan.bounds[0] == 0
        assert plan.bounds[-1] == a.num_tile_rows
        assert np.all(np.diff(plan.bounds) >= 1)
        assert plan.shards == len(plan.bounds) - 1

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_planned_parallel_byte_identical(self, operands, executor):
        from repro.runtime.planner import plan_execution

        a, b = operands
        plan = plan_execution(a, b, workers=2, executor=executor)
        assert plan.mode == "parallel"
        res = parallel_tile_spgemm(a, b, plan=plan)
        ref = tile_spgemm(a, b, tnnz=plan.tnnz)
        assert_bytes_identical(ref.c, res.c)
        assert res.stats["plan"]["mode"] == "parallel"

    def test_planned_chunked_byte_identical(self, operands):
        # A multi-shard plan on one worker runs through the chunked
        # engine — still byte-identical to the monolithic serial run.
        from repro.runtime.planner import plan_execution

        a, b = operands
        plan = plan_execution(a, b, shard_products=10_000)
        assert plan.mode == "chunked"
        assert plan.workers == 1 and plan.shards > 1
        res = parallel_tile_spgemm(a, b, plan=plan)
        ref = tile_spgemm(a, b, tnnz=plan.tnnz)
        assert_bytes_identical(ref.c, res.c)
        assert res.stats["executor"] == "chunked"

    def test_plan_is_deterministic(self, operands):
        from repro.runtime.planner import plan_execution

        a, b = operands
        cache_stats = {"hits": 0, "misses": 0}
        p1 = plan_execution(a, b, cache_stats=cache_stats)
        p2 = plan_execution(a, b, cache_stats=cache_stats)
        assert p1.to_dict() == p2.to_dict()

    def test_plan_recorded_in_profiler(self, operands):
        from repro.obs.profile import WorkloadProfiler, validate_profile
        from repro.runtime.planner import plan_execution

        a, b = operands
        plan = plan_execution(a, b, workers=2)
        profiler = WorkloadProfiler()
        with obs_context(profile=profiler):
            parallel_tile_spgemm(a, b, plan=plan)
        doc = profiler.to_dict()
        assert doc["plans"], "plan record missing from the profiler"
        assert doc["plans"][0]["mode"] == plan.mode
        validate_profile(doc)
