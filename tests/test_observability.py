"""Tests for the observability layer: tracing, metrics, context, profiling.

Covers the properties the layer promises:

* span nesting/ordering and Chrome trace-event schema validity;
* zero overhead when disabled (instrumentation is O(phases), not O(nnz),
  and a disabled run's numerical output is unchanged);
* deterministic metrics snapshots under a seeded fault plan;
* kernel counters agreeing with ``collect_stats`` ground truth;
* the PhaseTimer extensions (reset, min/max/mean, merge semantics).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.profiling import (
    aggregate_spans,
    breakdown_from_trace,
    load_chrome_trace,
    render_breakdown,
    top_spans_report,
    validate_chrome_trace,
)
from repro.core import TileMatrix, tile_spgemm
from repro.gpu import RTX3060, estimate_run
from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    NullTracer,
    Tracer,
    current_obs,
    emit_gpu_timeline,
    make_obs,
    obs_context,
)
from repro.runtime import FaultPlan, run_resilient
from repro.util.timing import PhaseTimer
from tests.conftest import random_csr


def fake_clock():
    """A deterministic clock ticking 1 ms per call."""
    state = {"t": 0.0}

    def tick() -> float:
        state["t"] += 1e-3
        return state["t"]

    return tick


def tiled(n=96, density=0.08, seed=5) -> TileMatrix:
    return TileMatrix.from_csr(random_csr(n, n, density, seed=seed))


class TestTracer:
    def test_span_nesting_and_order(self):
        t = Tracer(clock=fake_clock())
        with t.span("outer", cat="step", tiles=4):
            assert t.open_spans == ("outer",)
            with t.span("inner"):
                assert t.open_spans == ("outer", "inner")
        assert t.open_spans == ()
        # spans complete in end order: inner first
        assert [s.name for s in t.spans] == ["inner", "outer"]
        inner, outer = t.spans
        assert inner.depth == 1 and outer.depth == 0
        assert inner.parent_seq == outer.seq
        assert outer.parent_seq == -1
        assert outer.args == {"tiles": 4}
        assert inner.start_s >= outer.start_s
        assert inner.end_s <= outer.end_s

    def test_find_returns_begin_order(self):
        t = Tracer(clock=fake_clock())
        with t.span("phase", k=0):
            pass
        with t.span("wrap"):
            with t.span("phase", k=1):
                pass
        found = t.find("phase")
        assert [s.args["k"] for s in found] == [0, 1]
        assert t.total_seconds("phase") > 0

    def test_span_closes_on_exception(self):
        t = Tracer(clock=fake_clock())
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert t.open_spans == ()
        assert t.find("boom")[0].duration_s > 0

    def test_chrome_trace_schema(self, tmp_path):
        t = Tracer(clock=fake_clock())
        with t.span("step1", cat="step"):
            t.instant("fault", cat="fault", site="alloc")
            t.counter("live_bytes", 128)
        t.add_complete("k.task", 0.0, 1e-4, pid="virtual-gpu", tid="slot 00")
        doc = t.to_chrome_trace()
        events = validate_chrome_trace(doc)  # raises on schema violation
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in events}
        assert phases == {"X", "i", "C", "M"}
        inst = next(e for e in events if e["ph"] == "i")
        assert inst["s"] == "t"
        # one process_name + thread_name metadata pair per track
        tracks = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
        names = [e["name"] for e in events if e["ph"] == "M"]
        assert names.count("process_name") == len(tracks)
        # round-trips through the file loader
        path = tmp_path / "t.json"
        t.write(path)
        assert load_chrome_trace(str(path))["traceEvents"]

    def test_deterministic_structure(self):
        def run():
            t = Tracer(clock=fake_clock())
            a = tiled(64, 0.1, seed=9)
            with obs_context(tracer=t):
                tile_spgemm(a, a)
            return [(s.name, s.cat, s.depth, s.seq) for s in t.spans]

        assert run() == run()


class TestNullTracerOverhead:
    def test_disabled_run_is_o_phases_not_o_nnz(self):
        """Instrumentation call count is independent of problem size."""

        class CountingNull(NullTracer):
            def __init__(self):
                self.calls = 0

            def span(self, name, cat="phase", **attrs):
                self.calls += 1
                return super().span(name, cat, **attrs)

        counts = []
        for n, seed in ((64, 1), (256, 2)):
            nt = CountingNull()
            a = tiled(n, 0.08, seed=seed)
            with obs_context(tracer=nt):
                # context stays disabled (NullTracer subclass), exactly
                # like the default NULL_OBS path
                assert not current_obs().enabled
                tile_spgemm(a, a)
            counts.append(nt.calls)
        assert counts[0] == counts[1]  # O(steps), not O(nnz)
        assert 0 < counts[0] < 20

    def test_disabled_flags_change_no_numerical_output(self):
        a = tiled(80, 0.1, seed=3)
        plain = tile_spgemm(a, a)
        with obs_context(tracer=Tracer(), metrics=MetricsRegistry()):
            traced = tile_spgemm(a, a)
        assert plain.c.to_csr().allclose(traced.c.to_csr())
        assert np.array_equal(plain.c.colidx, traced.c.colidx)

    def test_null_obs_outside_context(self):
        assert current_obs() is NULL_OBS
        assert not NULL_OBS.enabled


class TestObsContext:
    def test_nesting_inherits_parent_sinks(self):
        tracer = Tracer()
        with obs_context(tracer=tracer) as outer:
            assert outer.enabled
            metrics = MetricsRegistry()
            with obs_context(metrics=metrics) as inner:
                assert inner.tracer is tracer  # inherited
                assert inner.metrics is metrics
            assert current_obs().metrics.enabled is False
        assert current_obs() is NULL_OBS

    def test_make_obs_flags(self):
        obs = make_obs(trace=False, metrics=True)
        assert obs.enabled
        assert not obs.tracer.enabled
        assert obs.metrics.enabled


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.inc("ops_total", 3, kind="or")
        m.inc("ops_total", 2, kind="or")
        m.set_gauge("live", 7)
        m.max_gauge("peak", 5)
        m.max_gauge("peak", 3)  # lower: ignored
        m.observe_many("tile_nnz", [1, 10, 300], buckets=(4, 100))
        assert m.counter_value("ops_total", kind="or") == 5
        assert m.gauge_value("peak") == 5
        snap = m.snapshot()
        assert snap["counters"] == {'ops_total{kind="or"}': 5}
        hist = snap["histograms"]["tile_nnz"]
        assert hist["count"] == 3 and hist["sum"] == 311
        assert hist["buckets"]["+Inf"] == 1

    def test_kind_conflict_and_negative_inc_raise(self):
        m = MetricsRegistry()
        m.inc("x")
        with pytest.raises(ValueError):
            m.set_gauge("x", 1)
        with pytest.raises(ValueError):
            m.inc("y", -1)

    def test_prometheus_export(self):
        m = MetricsRegistry()
        m.describe("runs_total", "number of runs")
        m.inc("runs_total", 2)
        m.set_gauge("live_bytes", 42)
        m.observe_many("sizes", [2, 5, 50], buckets=(4, 16))
        text = m.to_prometheus()
        assert "# HELP runs_total number of runs" in text
        assert "# TYPE runs_total counter" in text
        assert "runs_total 2" in text
        assert "# TYPE live_bytes gauge" in text
        lines = text.splitlines()
        # histogram buckets are cumulative and end with +Inf == count
        assert 'sizes_bucket{le="4"} 1' in lines
        assert 'sizes_bucket{le="16"} 2' in lines
        assert 'sizes_bucket{le="+Inf"} 3' in lines
        assert "sizes_sum 57" in lines
        assert "sizes_count 3" in lines

    def test_prometheus_label_value_escaping(self):
        """Backslash, quote and newline must be escaped inside label values."""
        m = MetricsRegistry()
        m.inc("weird_total", path='C:\\x\n"q"')
        text = m.to_prometheus()
        assert 'weird_total{path="C:\\\\x\\n\\"q\\""} 1' in text.splitlines()
        # The snapshot keys get the same treatment (diffable text form).
        assert 'weird_total{path="C:\\\\x\\n\\"q\\""}' in m.snapshot()["counters"]

    def test_prometheus_histogram_family_headers(self):
        """One TYPE line per histogram family; _sum/_count typed as counters."""
        m = MetricsRegistry()
        m.describe("tile_nnz", "nnz per tile")
        m.observe("tile_nnz", 3, buckets=(4,), kind="sparse")
        m.observe("tile_nnz", 200, buckets=(4,), kind="dense")
        lines = m.to_prometheus().splitlines()
        assert lines.count("# TYPE tile_nnz histogram") == 1
        assert lines.count("# TYPE tile_nnz_sum counter") == 1
        assert lines.count("# TYPE tile_nnz_count counter") == 1
        # TYPE precedes every series of its family, once.
        assert lines.index("# TYPE tile_nnz histogram") < lines.index(
            'tile_nnz_bucket{kind="dense",le="4"} 0'
        )
        assert 'tile_nnz_count{kind="sparse"} 1' in lines
        assert 'tile_nnz_sum{kind="dense"} 200' in lines
        assert "# HELP tile_nnz_sum nnz per tile (sum of observations)" in lines

    def test_snapshot_deterministic_under_fault_plan(self):
        """Same seeded plan + same input => byte-identical metrics."""

        def run():
            a = tiled(72, 0.1, seed=21)
            plan = FaultPlan(seed=5).inject(
                "transient", "step", probability=0.3
            )
            obs = make_obs(clock=fake_clock())
            with obs_context(tracer=obs.tracer, metrics=obs.metrics):
                rr = run_resilient(a, a, fault_plan=plan)
            return obs.metrics.snapshot(), rr.report.num_attempts

        (snap1, attempts1), (snap2, attempts2) = run(), run()
        assert attempts1 == attempts2
        assert json.dumps(snap1, sort_keys=True) == json.dumps(snap2, sort_keys=True)
        assert snap1["counters"]["resilience_runs_total{method=\"tilespgemm\"}"] == 1


class TestPipelineInstrumentation:
    def test_step_spans_and_counters_match_stats(self):
        a = tiled(96, 0.1, seed=13)
        obs = make_obs()
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            result = tile_spgemm(a, a)
        stats = result.stats
        t, m = obs.tracer, obs.metrics
        # one span per pipeline step, nested under tile_spgemm
        top = t.find("tile_spgemm")[0]
        for step in ("step1", "step2", "step3"):
            spans = t.find(step)
            assert len(spans) == 1
            assert spans[0].parent_seq == top.seq
        # counters mirror collect_stats exactly
        assert m.counter_value("atomic_or_ops_total") == stats["symbolic_ops"]
        assert m.counter_value("atomic_add_ops_total") == stats["num_products"]
        assert (
            m.counter_value("accumulator_tiles_total", kind="sparse")
            == stats["sparse_tiles"]
        )
        assert (
            m.counter_value("accumulator_tiles_total", kind="dense")
            == stats["dense_tiles"]
        )
        assert m.counter_value("tile_pairs_matched_total") == int(
            np.asarray(stats["pairs_per_tile"]).sum()
        )
        assert m.counter_value("mask_popcount_bits_total") == stats["nnz_c"]
        hist = m.snapshot()["histograms"]["tile_nnz"]
        assert hist["count"] == len(stats["tile_nnz_counts"])
        # allocation ledger flows into the metrics too
        assert m.counter_value("device_alloc_events_total") == len(
            [e for e in result.alloc.events if e.kind == "alloc"]
        )
        assert m.gauge_value("device_peak_live_bytes") == result.alloc.peak_bytes

    def test_baseline_kernel_spans(self):
        from repro.baselines import get_algorithm

        a = random_csr(64, 64, 0.1, seed=17)
        obs = make_obs(metrics=True)
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            get_algorithm("nsparse_hash")(a, a)
        t = obs.tracer
        kernel = t.find("spgemm:nsparse_hash")
        assert len(kernel) == 1
        # phase spans nest inside the kernel span
        phases = [s for s in t.spans if s.cat == "kernel.phase"]
        assert phases and all(p.parent_seq == kernel[0].seq for p in phases)
        assert obs.metrics.counter_value("spgemm_calls_total", method="nsparse_hash") == 1

    def test_chunked_batch_spans(self):
        from repro.runtime.chunked import chunked_tile_spgemm

        a = tiled(128, 0.08, seed=23)
        obs = make_obs()
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            chunked_tile_spgemm(a, a, num_batches=3)
        assert len(obs.tracer.find("chunked_tile_spgemm")) == 1
        batch_spans = [s for s in obs.tracer.spans if s.cat == "chunked.batch"]
        assert len(batch_spans) == 3
        assert obs.metrics.counter_value("chunked_batches_total") == 3

    def test_summa_stage_spans(self):
        from repro.distributed.grid import ProcessGrid
        from repro.distributed.summa import summa_spgemm

        a = random_csr(64, 64, 0.1, seed=29)
        obs = make_obs()
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            res = summa_spgemm(a, a, ProcessGrid(2, 2))
        stages = [s for s in obs.tracer.spans if s.cat == "summa.stage"]
        assert len(stages) == res.stages
        assert obs.metrics.counter_value("summa_stages_total") == res.stages
        assert obs.metrics.counter_value("summa_comm_bytes_total") == sum(
            res.per_stage_volume
        )
        # each stage has a broadcast and a multiply child
        for cat in ("summa.comm", "summa.compute"):
            assert len([s for s in obs.tracer.spans if s.cat == cat]) == res.stages

    def test_fault_instants_and_retry_counters(self):
        a = tiled(64, 0.1, seed=31)
        plan = FaultPlan(seed=1).transient_at_step("step2", at=1)
        obs = make_obs()
        with obs_context(tracer=obs.tracer, metrics=obs.metrics):
            rr = run_resilient(a, a, fault_plan=plan)
        m = obs.metrics
        assert m.counter_value("faults_injected_total", error="transient", site="step") == 1
        assert (
            m.counter_value("resilience_retries_total", method="tilespgemm") == 1
        )
        assert m.counter_value("resilience_runs_total", method="tilespgemm") == 1
        names = [e.name for e in obs.tracer.events if e.ph == "i"]
        assert "inject:transient" in names
        assert rr.report.num_faults == 1


class TestGpuTimeline:
    def test_virtual_tracks_in_trace(self):
        from repro.baselines import get_algorithm

        a = random_csr(96, 96, 0.08, seed=37)
        run = get_algorithm("tilespgemm")(a, a)
        est = estimate_run(run, RTX3060)
        t = Tracer(clock=fake_clock())
        emit_gpu_timeline(t, est, device=RTX3060)
        doc = t.to_chrome_trace()
        validate_chrome_trace(doc)
        gpu_pids = {s.pid for s in t.spans if s.pid.startswith("virtual-gpu")}
        assert gpu_pids == {f"virtual-gpu ({RTX3060.name})"}
        # one summary span per kernel estimate
        kernel_spans = [s for s in t.spans if s.tid == "kernels"]
        assert len(kernel_spans) >= len(est.kernels)


class TestPhaseTimer:
    def test_stats_min_max_mean(self):
        t = PhaseTimer()
        t.add("step1", 1.0)
        t.add("step1", 3.0)
        st = t.stats("step1")
        assert (st.total, st.count, st.min, st.max, st.mean) == (4.0, 2, 1.0, 3.0, 2.0)
        empty = t.stats("nope")
        assert (empty.total, empty.count, empty.mean) == (0.0, 0, 0.0)

    def test_reset(self):
        t = PhaseTimer()
        t.add("step1", 1.0)
        t.reset()
        assert t.seconds == {} and t.total == 0.0
        assert t.count("step1") == 0
        t.add("step1", 2.0)  # reusable after reset
        assert t.stats("step1").min == 2.0

    def test_nested_phases_double_count_total(self):
        t = PhaseTimer()
        t.add("outer", 2.0)
        t.add("inner", 0.5)  # nested inside outer in real runs
        assert t.total == 2.5  # phase-seconds, not wall-clock

    def test_merge_folds_min_max_and_is_order_deterministic(self):
        def build(a_vals, b_vals):
            t = PhaseTimer()
            for v in a_vals:
                t.add("a", v)
            for v in b_vals:
                t.add("b", v)
            return t

        merged = PhaseTimer()
        merged.add("a", 5.0)
        merged.merge(build([1.0], [2.0]))
        merged.merge(build([3.0], [0.5]))
        assert merged.stats("a").min == 1.0 and merged.stats("a").max == 5.0
        assert merged.stats("b").min == 0.5 and merged.stats("b").max == 2.0
        assert merged.stats("a").count == 3
        # existing phases keep their positions; new ones append
        assert list(merged.seconds) == ["a", "b"]

    def test_negative_add_raises(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)


class TestProfiling:
    def make_doc(self):
        t = Tracer(clock=fake_clock())
        with t.span("step1", cat="step"):
            pass
        with t.span("step2", cat="step"):
            pass
        with t.span("step2", cat="step"):
            pass
        with t.span("weird_phase", cat="step"):
            pass
        return t.to_chrome_trace()

    def test_aggregate_spans(self):
        agg = aggregate_spans(self.make_doc())
        assert agg["step2"]["count"] == 2
        assert agg["step2"]["seconds"] == pytest.approx(
            agg["step2"]["min_s"] + agg["step2"]["max_s"]
        )

    def test_top_spans_report(self):
        rep = top_spans_report(self.make_doc(), n=2)
        assert "top spans" in rep and "step2" in rep
        assert "... and" in rep  # truncation note
        assert "(no spans recorded)" in top_spans_report({"traceEvents": []})

    def test_breakdown_from_trace(self):
        doc = self.make_doc()
        bd = breakdown_from_trace(doc)
        assert set(bd) == {"step1", "step2", "step3", "malloc"}
        assert bd["step2"] > bd["step1"] > 0
        with pytest.raises(KeyError):
            breakdown_from_trace(doc, strict=True)  # weird_phase unmapped
        out = render_breakdown(bd)
        assert "step2" in out and "%" in out

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])  # not an object
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z", "name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": "p", "tid": "t", "ts": 0}]}
            )  # missing dur
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "name": "x", "pid": "p", "tid": "t", "ts": -1}]}
            )
