"""Failure injection: malformed, adversarial and non-finite inputs.

A production library must either produce a correct result or raise a
clear error — never return silent garbage.  These tests feed every layer
corrupted or extreme inputs and pin down which of the two happens.
"""

import numpy as np
import pytest

from repro.baselines import get_algorithm
from repro.core import TileMatrix, tile_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr


class TestNonFiniteValues:
    """NaN/inf propagate through SpGEMM like any arithmetic — they must
    appear in the result, not vanish or crash."""

    def test_nan_propagates(self):
        d = np.zeros((20, 20))
        d[2, 3] = np.nan
        d[3, 5] = 1.0
        a = CSRMatrix.from_dense(d)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.isnan(res.c.to_dense()[2, 5])

    def test_inf_propagates(self):
        d = np.zeros((20, 20))
        d[1, 2] = np.inf
        d[2, 4] = 2.0
        a = CSRMatrix.from_dense(d)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.isinf(res.c.to_dense()[1, 4])

    def test_inf_times_zero_structural(self):
        # inf * 0 never happens structurally (zeros are not stored), so no
        # spurious NaNs appear where the paper's kernels would not produce
        # them either.
        d = np.zeros((8, 8))
        d[0, 1] = np.inf
        a = CSRMatrix.from_dense(d)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert not np.isnan(res.c.to_dense()).any()


class TestMalformedCSR:
    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))

    def test_wrong_indptr_length_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix((3, 3), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_val_indices_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix((1, 3), np.array([0, 2]), np.array([0, 1]), np.array([1.0]))

    def test_negative_column_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix((1, 3), np.array([0, 1]), np.array([-1]), np.array([1.0]))


class TestCorruptedTileMatrix:
    """Each corruption of the tiled structure must be caught by validate()."""

    @pytest.fixture
    def tiled(self):
        return TileMatrix.from_csr(random_csr(64, 64, 0.2, seed=301))

    def test_tilennz_truncated(self, tiled):
        tiled.tilennz = tiled.tilennz[:-1]
        with pytest.raises(ValueError):
            tiled.validate()

    def test_tilennz_wrong_total(self, tiled):
        tiled.tilennz = tiled.tilennz.copy()
        tiled.tilennz[-1] += 1
        with pytest.raises(ValueError):
            tiled.validate()

    def test_tileptr_not_monotone(self, tiled):
        assert tiled.num_tile_rows >= 2
        tiled.tileptr = tiled.tileptr.copy()
        tiled.tileptr[1], tiled.tileptr[2] = tiled.tileptr[2] + 1, tiled.tileptr[1]
        with pytest.raises(ValueError):
            tiled.validate()

    def test_local_index_out_of_range(self, tiled):
        tiled.colidx = tiled.colidx.copy()
        tiled.colidx[0] = 16
        with pytest.raises(ValueError):
            tiled.validate()

    def test_tile_column_out_of_range(self, tiled):
        tiled.tilecolidx = tiled.tilecolidx.copy()
        tiled.tilecolidx[-1] = tiled.num_tile_cols + 5
        with pytest.raises(ValueError):
            tiled.validate()

    def test_unsorted_nonzeros_within_tile(self, tiled):
        # Swap two nonzeros of the first tile (breaks row-major order).
        assert tiled.tilennz[1] - tiled.tilennz[0] >= 2
        for arr_name in ("rowidx", "colidx", "val"):
            arr = getattr(tiled, arr_name).copy()
            arr[[0, 1]] = arr[[1, 0]]
            setattr(tiled, arr_name, arr)
        with pytest.raises(ValueError):
            tiled.validate()


class TestAdversarialWorkloads:
    def test_all_entries_in_one_tile(self):
        d = np.zeros((64, 64))
        d[0:16, 0:16] = 1.0
        a = CSRMatrix.from_dense(d)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.allclose(res.c.to_dense(), d @ d)

    def test_permutation_matrix_times_itself(self):
        rng = np.random.default_rng(302)
        perm = rng.permutation(50)
        p = COOMatrix(
            (50, 50), np.arange(50), perm, np.ones(50)
        ).to_csr()
        res = tile_spgemm(TileMatrix.from_csr(p), TileMatrix.from_csr(p))
        expected = p.to_dense() @ p.to_dense()
        assert np.array_equal(res.c.to_dense(), expected)

    def test_extremely_unbalanced_all_methods(self):
        # One row holds 90 % of the nonzeros.
        rng = np.random.default_rng(303)
        n = 100
        rows = np.concatenate([np.zeros(360, dtype=np.int64), rng.integers(1, n, 40)])
        cols = rng.integers(0, n, rows.size)
        a = COOMatrix((n, n), rows, cols, np.ones(rows.size)).to_csr()
        ref = None
        for method in ("tilespgemm", "speck", "bhsparse_esc", "rmerge"):
            c = get_algorithm(method)(a, a).c
            if ref is None:
                ref = c
            else:
                assert c.allclose(ref), method

    def test_band_exactly_on_tile_boundaries(self):
        # Nonzeros only on columns {15, 16}: every row straddles two tiles.
        n = 64
        rows = np.repeat(np.arange(n, dtype=np.int64), 2)
        cols = np.tile(np.array([15, 16], dtype=np.int64), n)
        a = COOMatrix((n, n), rows, cols, np.ones(2 * n)).to_csr()
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.allclose(res.c.to_dense(), a.to_dense() @ a.to_dense())


class TestPageRankEdges:
    def test_dangling_nodes_mass_conserved(self):
        d = np.zeros((5, 5))
        d[0, 1] = 1.0  # nodes 2..4 dangle
        from repro.apps import pagerank

        r = pagerank(CSRMatrix.from_dense(d))
        assert r.sum() == pytest.approx(1.0)
        assert (r > 0).all()

    def test_bad_damping_rejected(self):
        from repro.apps import pagerank

        a = random_csr(5, 5, 0.5, seed=304)
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                pagerank(a, damping=bad)

    def test_rectangular_rejected(self):
        from repro.apps import pagerank

        with pytest.raises(ValueError):
            pagerank(random_csr(4, 5, 0.5, seed=305))

    def test_matches_networkx(self):
        import networkx as nx

        from repro.apps import pagerank

        g = nx.gnp_random_graph(60, 0.1, seed=6, directed=True)
        adj = CSRMatrix.from_scipy(nx.to_scipy_sparse_array(g).tocsr().astype(float))
        mine = pagerank(adj, tol=1e-12)
        ref = nx.pagerank(g, alpha=0.85, tol=1e-12)
        assert np.allclose(mine, [ref[i] for i in range(60)], atol=1e-8)


# ----------------------------------------------------------------------
# Fault-injection hooks of the resilient runtime (repro.runtime)
# ----------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceOOMError, TransientKernelError
from repro.runtime import FaultPlan, run_resilient
from repro.runtime.chunked import chunked_tile_spgemm

#: Allocation labels of one tile_spgemm run, in event order (the 7 sites).
TILE_ALLOC_SITES = [
    "tilePtr_C",
    "tileColIdx_C",
    "tileNnz_C",
    "rowPtr_C",
    "mask_C",
    "idx_C",
    "val_C",
]


def _tiled_pair(seed=11, n=96, density=0.08):
    a = TileMatrix.from_csr(random_csr(n, n, density, seed=seed))
    return a


def _assert_bit_identical(c1, c2):
    """Exact structural and numeric equality of two TileMatrix results."""
    assert c1.shape == c2.shape and c1.tile_size == c2.tile_size
    for name in ("tileptr", "tilecolidx", "tilennz", "rowptr", "rowidx", "colidx", "mask"):
        assert np.array_equal(getattr(c1, name), getattr(c2, name)), name
    assert np.array_equal(c1.val, c2.val)  # bitwise: same accumulation order


class TestOOMAtEveryAllocationSite:
    """An injected OOM at each of tile_spgemm's allocation sites must
    surface as a typed DeviceOOMError, and run_resilient must recover from
    it with a chunked re-run that is bit-identical to the clean result."""

    @pytest.mark.parametrize("site", range(1, len(TILE_ALLOC_SITES) + 1))
    def test_oom_raises_at_each_site(self, site):
        a = _tiled_pair()
        plan = FaultPlan().oom_at_alloc(at=site)
        with pytest.raises(DeviceOOMError) as excinfo:
            tile_spgemm(a, a, fault_plan=plan)
        assert excinfo.value.label == TILE_ALLOC_SITES[site - 1]
        assert plan.num_fired == 1

    @pytest.mark.parametrize("site", range(1, len(TILE_ALLOC_SITES) + 1))
    def test_resilient_recovers_from_each_site(self, site):
        a = _tiled_pair()
        clean = tile_spgemm(a, a)
        plan = FaultPlan().oom_at_alloc(at=site)
        rr = run_resilient(a, a, fault_plan=plan)
        # The one-shot OOM kills the first attempt; the retry runs chunked.
        assert rr.report.batches > 1
        assert not rr.report.degraded
        assert rr.report.num_faults == 1
        _assert_bit_identical(clean.c, rr.c)

    def test_oom_label_match_filter(self):
        a = _tiled_pair()
        plan = FaultPlan().oom_at_alloc(match="val_C")
        with pytest.raises(DeviceOOMError) as excinfo:
            tile_spgemm(a, a, fault_plan=plan)
        assert excinfo.value.label == "val_C"


class TestTransientRetryExhaustion:
    """A fault that keeps firing must exhaust the retries of a rung and
    push the runtime down the fallback ladder."""

    def test_plain_run_raises(self):
        a = _tiled_pair()
        with pytest.raises(TransientKernelError):
            tile_spgemm(a, a, fault_plan=FaultPlan().transient_at_step("step2", every=1))

    def test_exhaustion_falls_back_degraded(self):
        a = _tiled_pair()
        clean = tile_spgemm(a, a)
        # Fires at every step named step2 — only the tiled path has one, so
        # the hash fallback runs clean.
        plan = FaultPlan().transient_at_step("step2", every=1)
        rr = run_resilient(a, a, fault_plan=plan)
        assert rr.report.degraded
        assert rr.report.method == "nsparse_hash"
        assert rr.report.backoff_s > 0
        # Retries: max_retries failures + the final one before falling back.
        assert rr.report.num_faults >= 2
        assert rr.c_csr().allclose(clean.c.to_csr())

    def test_single_transient_retried_in_place(self):
        a = _tiled_pair()
        clean = tile_spgemm(a, a)
        rr = run_resilient(a, a, fault_plan=FaultPlan().transient_at_step("step3", at=1))
        assert not rr.report.degraded
        assert rr.report.method == "tilespgemm"
        assert rr.report.backoff_s > 0
        assert rr.result.timer.seconds.get("backoff", 0.0) == rr.report.backoff_s
        _assert_bit_identical(clean.c, rr.c)

    def test_seeded_probability_replays_identically(self):
        firings = []
        for _ in range(2):
            plan = FaultPlan(seed=42).inject("transient", "alloc", probability=0.5)
            a = _tiled_pair()
            try:
                tile_spgemm(a, a, fault_plan=plan)
            except TransientKernelError:
                pass
            firings.append([(f.site, f.name, f.event_index) for f in plan.fired])
        assert firings[0] == firings[1]


class TestChunkedBitIdentity:
    """Property: chunked/batched execution is bit-identical to single-shot
    tile_spgemm — any tile size, any batch count."""

    @settings(deadline=None, max_examples=25)
    @given(
        tile_size=st.sampled_from([4, 8, 16]),
        num_batches=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=18, max_value=120),
    )
    def test_chunked_equals_single_shot(self, tile_size, num_batches, seed, n):
        a = TileMatrix.from_csr(random_csr(n, n, 0.12, seed=seed), tile_size)
        single = tile_spgemm(a, a)
        chunked = chunked_tile_spgemm(a, a, num_batches=num_batches)
        _assert_bit_identical(single.c, chunked.c)
        chunked.c.validate()
        assert chunked.stats["batches"] == min(num_batches, max(a.num_tile_rows, 1))

    def test_chunked_peak_below_single_shot(self):
        a = _tiled_pair(seed=3, n=160, density=0.1)
        single = tile_spgemm(a, a)
        chunked = chunked_tile_spgemm(a, a, num_batches=4)
        assert chunked.alloc.peak_bytes < single.alloc.peak_bytes
        # Scalar stats must agree exactly with the single-shot run.
        for key in ("num_products", "flops", "num_c_tiles", "nnz_c", "symbolic_ops"):
            assert chunked.stats[key] == single.stats[key], key
