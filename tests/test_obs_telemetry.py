"""The serving-grade telemetry surfaces (repro.obs + repro.analysis.slo).

Covers the export-safety satellite (NumPy scalars can never crash an
export), the structured event log and its replay property, the live
HTTP endpoint, per-tenant SLO tracking, the offline SLO report that
recomputes the same math from a Prometheus snapshot, and the ``obs``
CLI (``top`` / ``slo``) that fronts both.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.analysis.slo import (
    parse_prometheus_text,
    render_slo_report,
    slo_report_from_text,
)
from repro.errors import EXIT_FILE_NOT_FOUND
from repro.obs import (
    EventLog,
    MetricsRegistry,
    NULL_LOG,
    SLOPolicy,
    SLOTracker,
    Tracer,
    load_events,
    replay_outcomes,
    to_native,
)
from repro.obs.cli import EXIT_BURN, obs_main
from repro.obs.http import TelemetryServer, parse_listen


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


# ----------------------------------------------------------- numpy safety
class TestNativeCoercionAtExport:
    def test_trace_write_survives_numpy_args(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", nnz=np.int64(7), t=np.float32(0.5)):
            tracer.counter("c", np.int64(3))
        path = tmp_path / "t.json"
        tracer.write(path)
        doc = json.loads(path.read_text())
        span = next(e for e in doc["traceEvents"] if e.get("name") == "s")
        assert span["args"]["nnz"] == 7

    def test_metrics_exports_survive_numpy_values(self):
        m = MetricsRegistry()
        m.inc("kernel_nnz_total", np.int64(12))
        m.set_gauge("queue_depth", np.int64(3), tenant="t0")
        m.observe("lat_seconds", np.float64(0.25))
        snap = m.snapshot()
        assert snap["counters"]["kernel_nnz_total"] == 12
        assert type(snap["counters"]["kernel_nnz_total"]) is int
        text = m.to_prometheus()
        assert "kernel_nnz_total 12" in text
        # Every snapshot leaf is JSON-native.
        json.dumps(snap)

    def test_event_log_coerces_fields(self, tmp_path):
        log = EventLog(path=tmp_path / "e.jsonl")
        log.emit("ev", nnz=np.int64(9), skipped=None)
        log.close()
        (record,) = load_events(tmp_path / "e.jsonl")
        assert record["nnz"] == 9
        assert "skipped" not in record

    def test_to_native_recurses(self):
        out = to_native({"a": np.int64(1), "b": [np.float64(2.0), (3,)]})
        assert out == {"a": 1, "b": [2.0, [3]]}
        assert type(out["a"]) is int


# -------------------------------------------------------------- event log
class TestEventLog:
    def test_streams_lines_before_close(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path=path)
        log.emit("request_done", tenant="t0", outcome="served")
        # Crash-safety: the line is on disk *before* close.
        assert len(load_events(path)) == 1
        log.close()

    def test_replay_matches_outcome_tally(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path=path)
        for tenant, outcome in [
            ("t0", "served"),
            ("t0", "served"),
            ("t0", "shed"),
            ("t1", "deadline"),
        ]:
            log.emit("request_done", tenant=tenant, outcome=outcome)
        log.emit("request_submitted", tenant="t0")  # not an outcome event
        log.close()
        tally = replay_outcomes(load_events(path))
        assert tally == {
            ("t0", "served"): 2,
            ("t0", "shed"): 1,
            ("t1", "deadline"): 1,
        }

    def test_null_log_absorbs_everything(self):
        assert NULL_LOG.emit("anything", x=1) is None
        assert len(NULL_LOG) == 0
        assert not NULL_LOG.enabled


# ------------------------------------------------------------ live endpoint
class TestTelemetryServer:
    def test_parse_listen(self):
        assert parse_listen("0.0.0.0:9100") == ("0.0.0.0", 9100)
        assert parse_listen(":8080") == ("127.0.0.1", 8080)
        with pytest.raises(ValueError):
            parse_listen("no-port")
        with pytest.raises(ValueError):
            parse_listen("host:notanumber")

    def test_routes(self):
        m = MetricsRegistry()
        m.inc("serve_requests_total", 3, tenant="t0")
        varz = {"queue": {"depth": np.int64(2)}, "running": True}
        with TelemetryServer(metrics=m, varz_fn=lambda: varz) as server:
            host, port = server.address
            assert port > 0
            status, ctype, body = _get(f"http://{host}:{port}/metrics")
            assert status == 200
            assert ctype.startswith("text/plain; version=0.0.4")
            assert 'serve_requests_total{tenant="t0"} 3' in body.decode()

            status, _, body = _get(f"http://{host}:{port}/healthz")
            assert status == 200 and body == b"ok\n"

            status, ctype, body = _get(f"http://{host}:{port}/varz")
            assert status == 200 and ctype.startswith("application/json")
            assert json.loads(body) == {"queue": {"depth": 2}, "running": True}

            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{host}:{port}/nope")
            assert err.value.code == 404

    def test_unhealthy_health_fn(self):
        with TelemetryServer(health_fn=lambda: False) as server:
            host, port = server.address
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{host}:{port}/healthz")
            assert err.value.code == 503

    def test_no_metrics_still_serves_empty_exposition(self):
        with TelemetryServer() as server:
            status, _, body = _get(server.url + "/metrics")
            assert status == 200
            assert body.decode() == ""


# ------------------------------------------------------------ SLO tracking
class TestSLOTracker:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(latency_target_s=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(objective=1.0)
        assert SLOPolicy(objective=0.9).error_budget == pytest.approx(0.1)

    def test_attainment_and_burn(self):
        m = MetricsRegistry()
        t = SLOTracker(SLOPolicy(latency_target_s=0.1, objective=0.9), metrics=m)
        assert t.record("t0", 0.05, served=True) is True
        assert t.record("t0", 0.50, served=True) is False  # too slow
        assert t.record("t0", 0.05, served=False) is False  # fast but shed
        assert t.attainment("t0") == pytest.approx(1 / 3)
        assert t.burn_rate("t0") == pytest.approx((1 - 1 / 3) / 0.1)
        gauges = {
            tuple(sorted(lk.items())): v
            for lk, v in m.gauge_samples("slo_attainment")
        }
        assert gauges[(("tenant", "t0"),)] == pytest.approx(1 / 3)

    def test_empty_tenant_attains(self):
        t = SLOTracker()
        assert t.attainment("ghost") == 1.0
        assert t.burn_rate("ghost") == 0.0
        assert t.tenants() == []

    def test_report_shape(self):
        t = SLOTracker(SLOPolicy(latency_target_s=0.1, objective=0.9))
        t.record("t0", 0.05, served=True)
        report = t.report()
        assert report["t0"]["attainment"] == 1.0
        assert report["t0"]["objective"] == 0.9


# ------------------------------------------------- offline snapshot report
_PROM = """\
# HELP serve_latency_seconds End-to-end request latency
# TYPE serve_latency_seconds histogram
serve_latency_seconds_bucket{tenant="t0",le="0.1"} 6
serve_latency_seconds_bucket{tenant="t0",le="0.5"} 8
serve_latency_seconds_bucket{tenant="t0",le="+Inf"} 10
serve_latency_seconds_count{tenant="t0"} 10
serve_outcomes_total{outcome="served",tenant="t0"} 9
serve_outcomes_total{outcome="shed",tenant="t0"} 1
"""


class TestSnapshotSLOReport:
    def test_parse_prometheus_text(self):
        samples = parse_prometheus_text(
            'x{lab="a\\"b\\\\c\\nd"} 1.5\n# comment\nplain 2\nbad line\n'
        )
        assert ("x", {"lab": 'a"b\\c\nd'}, 1.5) in samples
        assert ("plain", {}, 2.0) in samples
        assert len(samples) == 2

    def test_report_math(self):
        report = slo_report_from_text(
            _PROM, latency_target_s=0.5, objective=0.9
        )
        row = report["t0"]
        # 8 within 0.5 s but only min(8, served=9) = 8 good of 10 total.
        assert row["total"] == 10
        assert row["good"] == 8
        assert row["attainment"] == pytest.approx(0.8)
        assert row["burn_rate"] == pytest.approx(2.0)
        assert row["outcomes"] == {"served": 9.0, "shed": 1.0}

    def test_served_caps_good(self):
        # All fast, but half were shed: shed requests are not good service.
        text = (
            'serve_latency_seconds_bucket{tenant="t",le="0.5"} 4\n'
            'serve_latency_seconds_bucket{tenant="t",le="+Inf"} 4\n'
            'serve_outcomes_total{outcome="served",tenant="t"} 2\n'
        )
        report = slo_report_from_text(text)
        assert report["t"]["good"] == 2

    def test_agrees_with_live_tracker(self):
        """The acceptance property: offline recompute == live gauges."""
        m = MetricsRegistry()
        tracker = SLOTracker(
            SLOPolicy(latency_target_s=0.5, objective=0.95), metrics=m
        )
        from repro.serve.service import LATENCY_BUCKETS

        latencies = [0.1, 0.2, 0.7, 0.3]
        for lat in latencies:
            m.inc("serve_requests_total", tenant="t0")
            m.inc("serve_outcomes_total", tenant="t0", outcome="served")
            m.observe(
                "serve_latency_seconds", lat,
                buckets=LATENCY_BUCKETS, tenant="t0",
            )
            tracker.record("t0", lat, served=True)
        report = slo_report_from_text(m.to_prometheus())
        assert report["t0"]["attainment"] == pytest.approx(
            tracker.attainment("t0")
        )
        assert report["t0"]["burn_rate"] == pytest.approx(
            tracker.burn_rate("t0")
        )

    def test_render(self):
        text = render_slo_report(slo_report_from_text(_PROM))
        assert "tenant" in text and "t0" in text


# ------------------------------------------------------------------ obs CLI
class TestObsCli:
    def test_slo_from_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "s.prom"
        path.write_text(_PROM)
        assert obs_main(["slo", "--metrics", str(path), "--objective", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "t0" in out and "0.800" in out

    def test_slo_json_and_burn_check(self, tmp_path, capsys):
        path = tmp_path / "s.prom"
        path.write_text(_PROM)
        code = obs_main(
            ["slo", "--metrics", str(path), "--objective", "0.9",
             "--json", "--check"]
        )
        assert code == EXIT_BURN  # burn 2.0 > 1.0: budget overspent
        doc = json.loads(capsys.readouterr().out)
        assert doc["t0"]["burn_rate"] == pytest.approx(2.0)

    def test_slo_missing_snapshot(self, tmp_path, capsys):
        code = obs_main(["slo", "--metrics", str(tmp_path / "no.prom")])
        assert code == EXIT_FILE_NOT_FOUND

    def test_top_renders_live_varz(self, capsys):
        varz = {
            "running": True,
            "accepting": True,
            "uptime_s": 1.5,
            "workers": 2,
            "executor": "thread",
            "inflight": 1,
            "queue": {"depth": 3, "bound": 32, "high_water": 7},
            "requests_total": {"t0": 5},
            "outcomes_total": {"t0": {"served": 4, "shed": 1}},
            "slo": {"t0": {"attainment": 0.8, "burn_rate": 4.0}},
        }
        with TelemetryServer(varz_fn=lambda: varz) as server:
            code = obs_main(
                ["top", "--url", server.url, "--iterations", "2",
                 "--interval", "0.01", "--no-clear"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("service: running") == 2
        assert "depth 3/32" in out
        assert "t0" in out and "4.00" in out

    def test_top_unreachable_endpoint(self, capsys):
        code = obs_main(
            ["top", "--url", "http://127.0.0.1:1", "--iterations", "1"]
        )
        assert code != 0
        assert "cannot reach" in capsys.readouterr().err
