"""Adversarial edge cases across the whole SpGEMM stack."""

import numpy as np
import pytest

from repro.baselines import available_algorithms, get_algorithm
from repro.core import TileMatrix, tile_spgemm
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr, scipy_product

METHODS = [m for m in available_algorithms() if m != "tsparse"]


def dense_of(entries, shape):
    d = np.zeros(shape)
    for r, c, v in entries:
        d[r, c] += v
    return d


class TestDegenerateShapes:
    def test_one_by_one(self):
        a = CSRMatrix.from_dense(np.array([[3.0]]))
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert res.c.to_dense()[0, 0] == 9.0

    def test_row_vector_times_column_vector(self):
        a = CSRMatrix.from_dense(np.arange(1.0, 6.0).reshape(1, 5))
        b = CSRMatrix.from_dense(np.arange(1.0, 6.0).reshape(5, 1))
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(b))
        assert res.c.to_dense()[0, 0] == 55.0

    def test_column_times_row_outer_product(self):
        a = CSRMatrix.from_dense(np.array([[1.0], [2.0], [0.0]]))
        b = CSRMatrix.from_dense(np.array([[3.0, 0.0, 4.0]]))
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(b))
        assert np.allclose(res.c.to_dense(), a.to_dense() @ b.to_dense())

    def test_dimension_17_crosses_tile_boundary(self):
        # 17 = one full tile + one element: boundary handling everywhere.
        a = random_csr(17, 17, 0.4, seed=181)
        for method in METHODS:
            assert get_algorithm(method)(a, a).c.allclose(scipy_product(a, a)), method

    @pytest.mark.parametrize("n", [15, 16, 31, 32, 33])
    def test_tile_boundary_sizes(self, n):
        a = random_csr(n, n, 0.3, seed=182 + n)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert res.c.to_csr().allclose(scipy_product(a, a))


class TestSparsityExtremes:
    def test_single_nonzero_in_last_position(self):
        n = 40
        a = COOMatrix((n, n), np.array([n - 1]), np.array([n - 1]), np.array([2.0])).to_csr()
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert res.c.to_dense()[n - 1, n - 1] == 4.0
        assert res.c.nnz == 1

    def test_fully_dense_inputs(self):
        rng = np.random.default_rng(183)
        a = CSRMatrix.from_dense(rng.normal(size=(33, 33)))
        for method in ("tilespgemm", "speck", "nsparse_hash"):
            res = get_algorithm(method)(a, a)
            assert np.allclose(res.c.to_dense(), a.to_dense() @ a.to_dense()), method

    def test_diagonal_only(self):
        d = CSRMatrix.from_dense(np.diag(np.arange(1.0, 51.0)))
        res = tile_spgemm(TileMatrix.from_csr(d), TileMatrix.from_csr(d))
        assert np.allclose(np.diag(res.c.to_dense()), np.arange(1.0, 51.0) ** 2)

    def test_anti_diagonal(self):
        # Anti-diagonal hits a different tile of B for every nonzero of A.
        n = 48
        d = np.fliplr(np.diag(np.arange(1.0, n + 1.0)))
        a = CSRMatrix.from_dense(d)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.allclose(res.c.to_dense(), d @ d)

    def test_single_dense_row(self):
        # One full row, everything else empty: one-warp-task worst case.
        n = 64
        dense = np.zeros((n, n))
        dense[5, :] = np.arange(1.0, n + 1.0)
        dense[:, 7] = 2.0
        a = CSRMatrix.from_dense(dense)
        for method in METHODS:
            assert np.allclose(
                get_algorithm(method)(a, a).c.to_dense(), dense @ dense
            ), method

    def test_empty_rows_and_columns_interleaved(self):
        entries = [(0, 3, 1.0), (4, 0, 2.0), (4, 7, 3.0), (7, 4, 4.0)]
        d = dense_of(entries, (8, 8))
        a = CSRMatrix.from_dense(d)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.allclose(res.c.to_dense(), d @ d)


class TestNumericalEdges:
    def test_large_magnitude_values(self):
        a = random_csr(50, 50, 0.1, seed=184)
        big = CSRMatrix(a.shape, a.indptr, a.indices, a.val * 1e150)
        res = tile_spgemm(TileMatrix.from_csr(big), TileMatrix.from_csr(big))
        ref = big.to_dense() @ big.to_dense()
        assert np.allclose(res.c.to_dense(), ref, rtol=1e-10)

    def test_tiny_magnitude_values(self):
        a = random_csr(50, 50, 0.1, seed=185)
        small = CSRMatrix(a.shape, a.indptr, a.indices, a.val * 1e-150)
        res = tile_spgemm(TileMatrix.from_csr(small), TileMatrix.from_csr(small))
        assert np.allclose(res.c.to_dense(), small.to_dense() @ small.to_dense())

    def test_mixed_signs_mass_cancellation(self):
        # A checkerboard of +1/-1 squared has many exact cancellations;
        # structure keeps them, values must be exactly right.
        n = 32
        d = np.fromfunction(lambda i, j: ((i + j) % 2) * 2.0 - 1.0, (n, n))
        a = CSRMatrix.from_dense(d)
        for method in ("tilespgemm", "bhsparse_esc", "nsparse_hash"):
            res = get_algorithm(method)(a, a)
            assert np.allclose(res.c.to_dense(), d @ d), method

    def test_accumulation_order_stability(self):
        # Many duplicates in one output entry: results must agree across
        # accumulator strategies within floating tolerance.
        k = 200
        a = COOMatrix(
            (1, k), np.zeros(k, dtype=np.int64), np.arange(k), np.full(k, 0.1)
        ).to_csr()
        b = COOMatrix(
            (k, 1), np.arange(k), np.zeros(k, dtype=np.int64), np.full(k, 0.1)
        ).to_csr()
        vals = set()
        for method in METHODS:
            c = get_algorithm(method)(a, b).c
            assert c.nnz == 1
            vals.add(round(float(c.val[0]), 9))
        assert vals == {round(k * 0.01, 9)}


class TestTileStructureEdges:
    def test_c_tile_with_exactly_tnnz_nonzeros(self):
        # A tile with exactly 192 nonzeros sits on the accumulator
        # threshold; both selections must agree.
        rng = np.random.default_rng(186)
        d = np.zeros((16, 16))
        pos = rng.choice(256, size=192, replace=False)
        d[pos // 16, pos % 16] = 1.0
        a = CSRMatrix.from_dense(d)
        t = TileMatrix.from_csr(a)
        r1 = tile_spgemm(t, t, force_accumulator="sparse")
        r2 = tile_spgemm(t, t, force_accumulator="dense")
        r3 = tile_spgemm(t, t)  # adaptive
        assert r1.c.to_csr().allclose(r2.c.to_csr())
        assert r1.c.to_csr().allclose(r3.c.to_csr())

    def test_full_256_nonzero_tiles(self):
        d = np.ones((32, 32))
        a = CSRMatrix.from_dense(d)
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(a))
        assert np.allclose(res.c.to_dense(), d @ d)
        assert res.stats["dense_tiles"] == 4

    def test_empty_candidate_tiles_from_cancellation_are_valid(self):
        # Construct A, B whose product has a candidate tile that is
        # structurally non-empty at tile level but receives no nonzeros:
        # A's tile row and B's tile column exist, but A's nonzero columns
        # miss B's nonzero rows inside the shared tile.
        a = COOMatrix((16, 32), np.array([0]), np.array([16]), np.array([1.0])).to_csr()
        b = COOMatrix((32, 16), np.array([20]), np.array([0]), np.array([1.0])).to_csr()
        res = tile_spgemm(TileMatrix.from_csr(a), TileMatrix.from_csr(b))
        assert res.c.nnz == 0
        assert res.c.num_tiles == 1  # the empty candidate tile is kept
        compact = res.c.drop_empty_tiles()
        assert compact.num_tiles == 0
        compact.validate()
