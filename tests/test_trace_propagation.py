"""Cross-boundary trace propagation (repro.obs.propagate).

The contract under test: a :class:`TraceContext` serialises into a pool
worker (thread or **spawned process**), the worker records real spans in
a local tracer, ships them back as picklable :class:`WorkerTelemetry`,
and :func:`absorb_telemetry` merges them into the coordinator's trace so
that every absorbed span's parent link resolves — either to another
worker span or to the coordinator-side span that spawned the work.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    Tracer,
    WorkerTelemetry,
    absorb_telemetry,
    current_obs,
    new_trace_id,
    obs_context,
    run_with_worker_obs,
    span_id_of,
)
from repro.runtime.parallel import parallel_tile_spgemm
from tests.conftest import random_csr


def _tiled(n=96, density=0.06, seed=11):
    return TileMatrix.from_csr(random_csr(n, n, density, seed=seed))


def _traced_pipeline(n):
    """Worker body: runs the instrumented pipeline under ambient obs."""
    a = _tiled(n=n)
    obs = current_obs()
    obs.metrics.inc("tests_worker_units_total", 1)
    with obs.tracer.span("unit", cat="test"):
        tile_spgemm(a, a)
    return n


# ------------------------------------------------------------------ units
class TestRunWithWorkerObs:
    def test_none_ctx_is_a_plain_call(self):
        result, telemetry = run_with_worker_obs(None, lambda x: x + 1, 41)
        assert result == 42
        assert telemetry is None

    def test_records_spans_events_and_counters(self):
        ctx = TraceContext("trace-7", parent_span_id="trace-7/shard0")
        result, telemetry = run_with_worker_obs(ctx, _traced_pipeline, 64)
        assert result == 64
        assert isinstance(telemetry, WorkerTelemetry)
        assert telemetry.ctx == ctx
        names = [sp["name"] for sp in telemetry.spans]
        assert "unit" in names
        assert "step2" in names  # pipeline instrumentation went worker-side
        assert ("tests_worker_units_total", {}, 1.0) in telemetry.counters

    def test_exception_propagates_unchanged(self):
        ctx = TraceContext("trace-err")

        def boom():
            raise ValueError("worker exploded")

        with pytest.raises(ValueError, match="worker exploded"):
            run_with_worker_obs(ctx, boom)

    def test_worker_ambient_context_is_isolated(self):
        ctx = TraceContext("trace-iso")
        outer = Tracer()
        with obs_context(tracer=outer):
            run_with_worker_obs(ctx, _traced_pipeline, 64)
            # The worker entered a *fresh* context; the outer tracer saw
            # nothing and its span stack is intact.
            assert outer.find("unit") == []
            assert outer.open_spans == ()


class TestAbsorbTelemetry:
    def test_none_is_noop(self):
        tracer = Tracer()
        assert absorb_telemetry(tracer, None) == 0
        assert tracer.spans == []

    def test_links_and_rebasing(self):
        ctx = TraceContext("t-1", parent_span_id="t-1/shard3")
        _, telemetry = run_with_worker_obs(ctx, _traced_pipeline, 64)
        tracer = Tracer()
        n = absorb_telemetry(
            tracer, telemetry, epoch_s=telemetry.epoch_s - 5.0, pid="pool"
        )
        assert n == len(telemetry.spans) > 0
        by_id = {sp.args["span_id"]: sp for sp in tracer.spans}
        for sp in tracer.spans:
            assert sp.pid == "pool"
            assert sp.args["trace_id"] == "t-1"
            parent = sp.args["parent_span_id"]
            # Resolves within the worker's own spans, or terminates at
            # the coordinator span that spawned the work.
            assert parent in by_id or parent == "t-1/shard3"
            # Times rebased by the epoch offset (worker epoch was 5 s
            # after the destination zero).
            assert sp.start_s >= 5.0

    def test_counter_accumulation_is_optional_and_additive(self):
        ctx = TraceContext("t-2")
        _, telemetry = run_with_worker_obs(ctx, _traced_pipeline, 64)
        tracer = Tracer()
        absorb_telemetry(tracer, telemetry)  # metrics=None: dropped
        registry = MetricsRegistry()
        absorb_telemetry(tracer, telemetry, metrics=registry)
        absorb_telemetry(tracer, telemetry, metrics=registry)
        samples = dict(
            (tuple(sorted(lk.items())), v)
            for lk, v in registry.counter_samples("tests_worker_units_total")
        )
        assert samples[()] == 2.0

    def test_span_id_helpers(self):
        ctx = TraceContext("t-3", parent_span_id="p")
        assert span_id_of(ctx, "shard0") == "t-3/shard0"
        a, b = new_trace_id(), new_trace_id()
        assert a != b


# --------------------------------------------------- parallel engine links
def _assert_parallel_links(tracer, trace_id):
    worker_spans = [sp for sp in tracer.spans if sp.pid == "parallel.workers"]
    assert worker_spans, "worker-side spans were absorbed"
    known = {
        sp.args["span_id"] for sp in tracer.spans if "span_id" in sp.args
    }
    for sp in worker_spans:
        assert sp.args["trace_id"] == trace_id
        assert sp.args["parent_span_id"] in known, sp.args
    # Chain reaches the coordinator: at least one worker span's parent is
    # a coordinator-recorded span (a non-worker track).
    coordinator_ids = {
        sp.args["span_id"]
        for sp in tracer.spans
        if sp.pid != "parallel.workers" and "span_id" in sp.args
    }
    assert any(
        sp.args["parent_span_id"] in coordinator_ids for sp in worker_spans
    )


class TestParallelPropagation:
    def test_thread_pool_worker_spans_link_to_coordinator(self):
        a = _tiled(n=128, seed=3)
        tracer = Tracer()
        with obs_context(tracer=tracer):
            res = parallel_tile_spgemm(a, a, workers=2, shards=2)
        ref = tile_spgemm(a, a)
        assert res.c.to_csr().allclose(ref.c.to_csr())
        trace_ids = {
            sp.args["trace_id"] for sp in tracer.spans if "trace_id" in sp.args
        }
        assert len(trace_ids) == 1
        _assert_parallel_links(tracer, trace_ids.pop())

    def test_ambient_trace_id_is_inherited(self):
        a = _tiled(n=96, seed=5)
        tracer = Tracer()
        ctx = TraceContext("req-outer-1", parent_span_id="req:req-outer-1")
        with obs_context(tracer=tracer, trace_ctx=ctx):
            parallel_tile_spgemm(a, a, workers=2, shards=2)
        worker_ids = {
            sp.args["trace_id"]
            for sp in tracer.spans
            if sp.pid == "parallel.workers"
        }
        assert worker_ids == {"req-outer-1"}

    def test_spawned_process_pool_spans_link_to_coordinator(self):
        """The satellite contract: spans cross the *spawn* boundary.

        A spawned worker shares no memory with the coordinator — the
        TraceContext pickles in, the WorkerTelemetry pickles out, and
        the merged trace must still resolve every parent link.
        """
        a = _tiled(n=128, seed=7)
        tracer = Tracer()
        spawn = multiprocessing.get_context("spawn")
        with obs_context(tracer=tracer):
            res = parallel_tile_spgemm(
                a, a, workers=2, shards=2, executor="process", mp_context=spawn
            )
        ref = tile_spgemm(a, a)
        assert res.c.to_csr().allclose(ref.c.to_csr())
        worker_spans = [
            sp for sp in tracer.spans if sp.pid == "parallel.workers"
        ]
        # Real process tracks, not the coordinator's.
        tracks = {sp.tid for sp in worker_spans}
        assert tracks and all(t.startswith("worker-pid-") for t in tracks)
        trace_ids = {
            sp.args["trace_id"] for sp in tracer.spans if "trace_id" in sp.args
        }
        assert len(trace_ids) == 1
        _assert_parallel_links(tracer, trace_ids.pop())
