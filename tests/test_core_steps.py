"""Tests for the individual TileSpGEMM steps and their kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intersect import (
    binary_search_cost,
    intersect,
    intersect_binary,
    intersect_merge,
    merge_cost,
)
from repro.core.pairs import enumerate_pairs_expand, enumerate_pairs_intersect
from repro.core.step1 import step1_tile_layout, symbolic_spgemm_pattern
from repro.core.step2 import step2_symbolic
from repro.core.step3 import c_indices_from_masks, step3_numeric
from repro.core.tile_matrix import TileMatrix
from tests.conftest import random_csr, scipy_product

sorted_sets = st.lists(st.integers(0, 60), max_size=25).map(
    lambda xs: np.asarray(sorted(set(xs)), dtype=np.int64)
)


class TestIntersect:
    @given(sorted_sets, sorted_sets)
    def test_binary_matches_merge(self, a, b):
        pa1, pb1 = intersect_binary(a, b)
        pa2, pb2 = intersect_merge(a, b)
        assert np.array_equal(pa1, pa2)
        assert np.array_equal(pb1, pb2)

    @given(sorted_sets, sorted_sets)
    def test_positions_recover_intersection(self, a, b):
        pa, pb = intersect_binary(a, b)
        expected = sorted(set(a.tolist()) & set(b.tolist()))
        assert a[pa].tolist() == expected
        assert b[pb].tolist() == expected

    def test_empty_inputs(self):
        e = np.empty(0, dtype=np.int64)
        for x, y in [(e, e), (e, np.array([1])), (np.array([1]), e)]:
            pa, pb = intersect_binary(x, y)
            assert pa.size == 0 and pb.size == 0

    def test_dispatch(self):
        a, b = np.array([1, 3]), np.array([3, 4])
        for method in ("binary", "merge"):
            pa, pb = intersect(a, b, method=method)
            assert a[pa].tolist() == [3]
        with pytest.raises(ValueError):
            intersect(a, b, method="nope")

    def test_binary_cheaper_on_skewed_lists(self):
        # One short list against a long one: the paper's reason to prefer
        # binary search over the serial merge on GPUs.
        len_a, len_b = np.array([4.0]), np.array([1000.0])
        assert binary_search_cost(len_a, len_b)[0] < merge_cost(len_a, len_b)[0]

    def test_merge_cost_linear(self):
        assert merge_cost(np.array([10.0]), np.array([20.0]))[0] == 30.0


class TestPairs:
    @pytest.mark.parametrize("method", ["binary", "merge"])
    def test_expand_equals_intersect(self, method):
        a = TileMatrix.from_csr(random_csr(130, 110, 0.06, seed=51))
        b = TileMatrix.from_csr(random_csr(110, 150, 0.06, seed=52))
        p1 = enumerate_pairs_expand(a, b)
        p2 = enumerate_pairs_intersect(a, b, method=method)
        assert np.array_equal(p1.c_tilerow, p2.c_tilerow)
        assert np.array_equal(p1.c_tilecol, p2.c_tilecol)
        assert np.array_equal(p1.pair_ptr, p2.pair_ptr)
        assert np.array_equal(p1.pair_a, p2.pair_a)
        assert np.array_equal(p1.pair_b, p2.pair_b)
        assert np.array_equal(p1.len_a, p2.len_a)
        assert np.array_equal(p1.len_b, p2.len_b)

    def test_pairs_reference_valid_tiles(self):
        a = TileMatrix.from_csr(random_csr(100, 100, 0.05, seed=53))
        p = enumerate_pairs_expand(a, a)
        slots = p.pair_c_slot()
        # Every pair's A tile sits in the C tile's row; B tile in its column.
        assert np.array_equal(a.tile_rowidx()[p.pair_a], p.c_tilerow[slots])
        assert np.array_equal(a.tilecolidx[p.pair_b], p.c_tilecol[slots])
        # And the contraction indices match: col(A tile) == row(B tile).
        assert np.array_equal(a.tilecolidx[p.pair_a], a.tile_rowidx()[p.pair_b])

    def test_dimension_mismatch(self):
        a = TileMatrix.from_csr(random_csr(32, 32, 0.2, seed=54))
        b = TileMatrix.from_csr(random_csr(64, 64, 0.2, seed=55))
        with pytest.raises(ValueError):
            enumerate_pairs_expand(a, b)

    def test_empty_product(self):
        a = TileMatrix.empty((40, 40))
        p = enumerate_pairs_expand(a, a)
        assert p.num_c_tiles == 0
        assert p.num_pairs == 0


class TestStep1:
    def test_hash_equals_expand(self, small_pair):
        a, b = small_pair
        at, bt = TileMatrix.from_csr(a), TileMatrix.from_csr(b)
        l1 = step1_tile_layout(at.tile_pattern_csr(), bt.tile_pattern_csr(), "expand")
        l2 = step1_tile_layout(at.tile_pattern_csr(), bt.tile_pattern_csr(), "hash")
        assert np.array_equal(l1.tileptr, l2.tileptr)
        assert np.array_equal(l1.tilecolidx, l2.tilecolidx)
        assert l1.tile_flops == l2.tile_flops

    def test_matches_scipy_pattern(self, small_pair):
        a, b = small_pair
        indptr, indices, _ = symbolic_spgemm_pattern(a, b, method="expand")
        pat = (a.to_scipy() != 0).astype(float) @ (b.to_scipy() != 0).astype(float)
        pat = pat.tocsr()
        pat.sort_indices()
        assert np.array_equal(indptr, pat.indptr)
        assert np.array_equal(indices, pat.indices)

    def test_unknown_method(self, small_pair):
        a, b = small_pair
        with pytest.raises(ValueError):
            symbolic_spgemm_pattern(a, b, method="quantum")

    def test_flops_counts_pattern_products(self):
        from repro.formats.csr import CSRMatrix

        i = CSRMatrix.identity(8)
        _, _, flops = symbolic_spgemm_pattern(i, i, method="expand")
        assert flops == 8


class TestStep2:
    def _setup(self, seed=61, n=120, density=0.07):
        a = TileMatrix.from_csr(random_csr(n, n, density, seed=seed))
        b = TileMatrix.from_csr(random_csr(n, n, density, seed=seed + 1))
        pairs = enumerate_pairs_expand(a, b)
        return a, b, pairs

    def test_masks_match_structural_product(self):
        a, b, pairs = self._setup()
        sym = step2_symbolic(a, b, pairs)
        # Build the structural product densely and compare tile masks.
        pa = (a.to_dense() != 0).astype(float)
        pb = (b.to_dense() != 0).astype(float)
        pc = (pa @ pb) > 0
        for t in range(pairs.num_c_tiles):
            ti, tj = pairs.c_tilerow[t], pairs.c_tilecol[t]
            block = pc[ti * 16 : (ti + 1) * 16, tj * 16 : (tj + 1) * 16]
            for r in range(block.shape[0]):
                expected = sum(1 << c for c in np.flatnonzero(block[r]))
                assert int(sym.mask[t, r]) == expected

    def test_nnz_matches_structural_product(self):
        a, b, pairs = self._setup(seed=62)
        sym = step2_symbolic(a, b, pairs)
        pa = (a.to_dense() != 0).astype(float)
        pb = (b.to_dense() != 0).astype(float)
        assert sym.nnz == int(((pa @ pb) > 0).sum())

    def test_symbolic_ops_counted(self):
        a, b, pairs = self._setup(seed=63)
        sym = step2_symbolic(a, b, pairs)
        expected = int(a.tile_nnz_counts()[pairs.pair_a].sum())
        assert sym.symbolic_ops == expected

    def test_tile_size_mismatch_rejected(self):
        a = TileMatrix.from_csr(random_csr(32, 32, 0.2, seed=64), 16)
        b = TileMatrix.from_csr(random_csr(32, 32, 0.2, seed=65), 8)
        with pytest.raises(ValueError):
            step2_symbolic(a, b, enumerate_pairs_expand(a, a))


class TestStep3:
    def _full(self, seed, force=None, chunk=1 << 22, tnnz=192):
        a_csr = random_csr(140, 140, 0.08, seed=seed)
        b_csr = random_csr(140, 140, 0.08, seed=seed + 1)
        a = TileMatrix.from_csr(a_csr)
        b = TileMatrix.from_csr(b_csr)
        pairs = enumerate_pairs_expand(a, b)
        sym = step2_symbolic(a, b, pairs)
        num = step3_numeric(
            a, b, pairs, sym, tnnz=tnnz, chunk_products=chunk, force_accumulator=force
        )
        return a_csr, b_csr, pairs, sym, num

    def test_sparse_equals_dense_accumulator(self):
        _, _, _, sym1, num_sparse = self._full(71, force="sparse")
        _, _, _, sym2, num_dense = self._full(71, force="dense")
        assert np.array_equal(num_sparse.rowidx, num_dense.rowidx)
        assert np.array_equal(num_sparse.colidx, num_dense.colidx)
        assert np.allclose(num_sparse.val, num_dense.val)
        assert num_sparse.dense_tiles == 0
        assert num_dense.sparse_tiles == 0

    def test_chunking_invariant(self):
        _, _, _, _, num_big = self._full(72, chunk=1 << 22)
        _, _, _, _, num_small = self._full(72, chunk=64)
        assert np.allclose(num_big.val, num_small.val)

    def test_adaptive_threshold_splits_tiles(self):
        # tnnz=0 forces everything dense; huge tnnz forces everything sparse.
        _, _, pairs, _, num0 = self._full(73, tnnz=0)
        assert num0.sparse_tiles == 0
        assert num0.dense_tiles == pairs.num_c_tiles
        _, _, _, _, num_inf = self._full(73, tnnz=10**9)
        assert num_inf.dense_tiles == 0

    def test_bad_force_value(self):
        with pytest.raises(ValueError):
            self._full(74, force="wat")

    def test_product_count_is_half_flops(self):
        from repro.baselines.base import flops_of_product

        a_csr, b_csr, _, _, num = self._full(75)
        assert num.num_products * 2 == flops_of_product(a_csr, b_csr)

    def test_c_indices_from_masks_sorted_per_tile(self):
        _, _, pairs, sym, num = self._full(76)
        rowidx, colidx = c_indices_from_masks(sym, 16)
        key = rowidx.astype(np.int64) * 16 + colidx
        tile_of = np.repeat(np.arange(pairs.num_c_tiles), sym.tile_nnz_counts)
        same = tile_of[1:] == tile_of[:-1]
        assert np.all(key[1:][same] > key[:-1][same])
