"""Tests of the async serving tier (repro.serve) and its satellites.

Covers admission-control estimates and shed decisions, the bounded
queue's accounting, deadlines with injected clocks, per-tenant response
ordering, byte-identity of served products to the serial engine, the
``serve`` CLI exit-code contract, the typed configuration errors for
malformed environment values (exit code 10), and the opt-in real-backoff
path of :class:`~repro.runtime.policy.RetryPolicy` (seeded jitter,
injectable sleep — unit tests never actually wait).
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro.core import TileMatrix, tile_spgemm
from repro.errors import (
    EXIT_CONFIG,
    EXIT_DEADLINE,
    EXIT_SHED,
    ConfigurationError,
    DeadlineExceededError,
    InvalidInputError,
    ServiceOverloadError,
    exit_code_for,
)
from repro.obs.context import make_obs, obs_context
from repro.runtime.policy import RetryPolicy, backoff_wait
from repro.serve import (
    AdmissionController,
    BoundedRequestQueue,
    CancelToken,
    Deadline,
    ServeRequest,
    SpGEMMService,
    estimate_cost,
    make_workload,
    run_closed_loop,
)
from repro.serve.cli import serve_main
from repro.serve.deadline import ShardCancelled
from tests.conftest import random_csr


def _pair(seed=21, n=96, density=0.06):
    return random_csr(n, n, density, seed=seed), random_csr(n, n, density, seed=seed + 1)


def _serial_c(a, b):
    return tile_spgemm(
        TileMatrix.from_csr(a), TileMatrix.from_csr(b), keep_empty_tiles=True
    ).c


def _assert_same_product(got, a, b):
    ref = _serial_c(a, b)
    for field in ("tileptr", "tilecolidx", "tilennz", "rowidx", "colidx", "val"):
        np.testing.assert_array_equal(
            getattr(got, field), getattr(ref, field), err_msg=field
        )


# --------------------------------------------------------------- admission
class TestAdmission:
    def test_products_estimate_is_exact(self):
        a, b = _pair()
        est = estimate_cost(TileMatrix.from_csr(a), TileMatrix.from_csr(b))
        sa, sb = a.to_scipy(), b.to_scipy()
        row_nnz_b = np.diff(sb.indptr)
        expected = int(row_nnz_b[sa.indices].sum())
        assert est.products == expected
        assert est.flops == 2 * expected
        assert est.total_bytes == est.operand_bytes + est.c_upper_bytes

    def test_estimate_accepts_csr_and_tiled_mix(self):
        a, b = _pair(seed=31)
        tiled = estimate_cost(TileMatrix.from_csr(a), TileMatrix.from_csr(b))
        csr = estimate_cost(a, b)
        assert tiled.products == csr.products
        assert tiled.c_upper_bytes == csr.c_upper_bytes

    def test_memory_gate_sheds_with_typed_error(self):
        a, b = _pair()
        ctrl = AdmissionController(4, budget_bytes=1)
        with pytest.raises(ServiceOverloadError) as ei:
            ctrl.check_memory(estimate_cost(a, b))
        assert ei.value.reason == "memory_estimate"
        assert exit_code_for(ei.value) == EXIT_SHED

    def test_depth_gate_sheds(self):
        ctrl = AdmissionController(2)
        ctrl.check_depth(1)
        with pytest.raises(ServiceOverloadError) as ei:
            ctrl.check_depth(2)
        assert ei.value.reason == "queue_full"

    def test_headroom_admits_over_budget_bound(self):
        a, b = _pair()
        est = estimate_cost(a, b)
        tight = AdmissionController(4, budget_bytes=est.total_bytes - 1)
        with pytest.raises(ServiceOverloadError):
            tight.check_memory(est)
        AdmissionController(
            4, budget_bytes=est.total_bytes - 1, headroom=2.0
        ).check_memory(est)


# ------------------------------------------------------------------- queue
class TestQueue:
    def test_bound_and_high_water(self):
        async def run():
            q = BoundedRequestQueue(2)
            r = lambda k: ServeRequest(a=None, b=None, tenant="t", seq=k)
            assert q.try_put(r(0)) and q.try_put(r(1))
            assert not q.try_put(r(2))  # at the bound: fail fast
            assert q.depth == 2 and q.high_water == 2
            got = await q.get()
            assert got.seq == 0 and q.depth == 1
            assert q.high_water == 2  # the peak survives the drain

        asyncio.run(run())

    def test_per_tenant_depth_and_drain(self):
        async def run():
            q = BoundedRequestQueue(4)
            q.try_put(ServeRequest(a=None, b=None, tenant="x", seq=0))
            q.try_put(ServeRequest(a=None, b=None, tenant="x", seq=1))
            q.try_put(ServeRequest(a=None, b=None, tenant="y", seq=0))
            assert q.depth_of("x") == 2 and q.depth_of("y") == 1
            assert q.tenants() == ["x", "y"]
            drained = q.drain()
            assert [r.name for r in drained] == ["x#0", "x#1", "y#0"]
            assert q.depth == 0 and q.depth_of("x") == 0

        asyncio.run(run())


# ---------------------------------------------------------------- deadline
class TestDeadline:
    def test_injected_clock(self):
        now = [0.0]
        d = Deadline(1.5, clock=lambda: now[0])
        assert not d.expired() and d.remaining() == 1.5
        now[0] = 1.4
        d.check()  # still inside the budget
        now[0] = 1.6
        assert d.expired()
        with pytest.raises(DeadlineExceededError) as ei:
            d.check()
        assert exit_code_for(ei.value) == EXIT_DEADLINE

    def test_no_budget_never_expires(self):
        d = Deadline(None, clock=lambda: 1e9)
        assert d.remaining() is None and not d.expired()

    def test_cancel_token(self):
        token = CancelToken()
        token.raise_if_set()  # no-op while unset
        token.set()
        with pytest.raises(ShardCancelled):
            token.raise_if_set()


# ----------------------------------------------------------------- service
class TestService:
    def test_served_result_is_byte_identical_to_serial(self):
        a, b = _pair(seed=41)

        async def run():
            async with SpGEMMService(max_queue_depth=4, workers=2) as svc:
                return await svc.submit(a, b)

        resp = asyncio.run(run())
        assert resp.ok and resp.outcome == "served"
        _assert_same_product(resp.result_or_raise(), a, b)

    def test_sharded_request_still_byte_identical(self):
        a, b = _pair(seed=43, n=128)

        async def run():
            async with SpGEMMService(
                max_queue_depth=4, workers=2, initial_shards=4
            ) as svc:
                return await svc.submit(a, b)

        resp = asyncio.run(run())
        assert resp.shards_run == 4
        _assert_same_product(resp.result_or_raise(), a, b)

    def test_memory_admission_sheds_before_compute(self):
        a, b = _pair(seed=45)

        async def run():
            async with SpGEMMService(
                max_queue_depth=4, workers=1, admission_budget_bytes=1
            ) as svc:
                return await svc.submit(a, b)

        resp = asyncio.run(run())
        assert resp.outcome == "shed" and not resp.ok
        assert isinstance(resp.error, ServiceOverloadError)
        assert resp.error.reason == "memory_estimate"
        assert resp.shards_run == 0  # never touched the pool
        with pytest.raises(ServiceOverloadError):
            resp.result_or_raise()

    def test_queue_full_sheds_in_shed_mode(self):
        a, b = _pair(seed=47, n=64)

        async def run():
            async with SpGEMMService(
                max_queue_depth=1, workers=1, max_inflight=1
            ) as svc:
                burst = [
                    asyncio.ensure_future(svc.submit(a, b, backpressure="shed"))
                    for _ in range(8)
                ]
                return await asyncio.gather(*burst)

        responses = asyncio.run(run())
        outcomes = [r.outcome for r in responses]
        assert outcomes.count("served") >= 1
        assert outcomes.count("shed") >= 1
        assert all(o in ("served", "shed") for o in outcomes)

    def test_wait_backpressure_serves_everything(self):
        a, b = _pair(seed=49, n=64)

        async def run():
            async with SpGEMMService(max_queue_depth=2, workers=2) as svc:
                burst = [
                    asyncio.ensure_future(svc.submit(a, b, backpressure="wait"))
                    for _ in range(10)
                ]
                responses = await asyncio.gather(*burst)
                return responses, svc.queue_high_water, svc.queue_bound

        responses, high_water, bound = asyncio.run(run())
        assert all(r.ok for r in responses)
        assert high_water <= bound  # the bound held under backpressure

    def test_responses_resolve_in_submission_order_per_tenant(self):
        a, b = _pair(seed=51, n=64)
        completion_order = []

        async def run():
            async with SpGEMMService(max_queue_depth=16, workers=4) as svc:

                async def tracked(tenant, k):
                    resp = await svc.submit(a, b, tenant=tenant)
                    completion_order.append((tenant, resp.seq))
                    return resp

                await asyncio.gather(
                    *(tracked("alice", k) for k in range(4)),
                    *(tracked("bob", k) for k in range(4)),
                )

        asyncio.run(run())
        for tenant in ("alice", "bob"):
            seqs = [s for t, s in completion_order if t == tenant]
            assert seqs == sorted(seqs), f"{tenant} saw out-of-order responses"

    def test_dimension_mismatch_raises_not_responds(self):
        a = random_csr(64, 32, 0.1, seed=53)
        b = random_csr(64, 64, 0.1, seed=54)

        async def run():
            async with SpGEMMService(max_queue_depth=2, workers=1) as svc:
                with pytest.raises(InvalidInputError):
                    await svc.submit(a, b)

        asyncio.run(run())

    def test_submit_after_stop_raises(self):
        a, b = _pair(seed=55, n=64)

        async def run():
            svc = SpGEMMService(max_queue_depth=2, workers=1)
            await svc.start()
            await svc.stop()
            with pytest.raises(InvalidInputError):
                await svc.submit(a, b)

        asyncio.run(run())

    def test_non_graceful_stop_sheds_queue(self):
        a, b = _pair(seed=57, n=64)

        async def run():
            svc = SpGEMMService(max_queue_depth=8, workers=1, max_inflight=1)
            await svc.start()
            burst = [
                asyncio.ensure_future(svc.submit(a, b, backpressure="shed"))
                for _ in range(6)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await svc.stop(drain=False)
            return await asyncio.gather(*burst)

        responses = asyncio.run(run())
        assert all(r.outcome in ("served", "shed") for r in responses)
        shutdown_shed = [
            r
            for r in responses
            if r.outcome == "shed" and r.error.reason == "shutdown"
        ]
        assert shutdown_shed, "queued requests should shed at shutdown"

    def test_metrics_account_for_every_request(self):
        a, b = _pair(seed=59, n=64)
        obs = make_obs(trace=True, metrics=True)

        async def run():
            with obs_context(tracer=obs.tracer, metrics=obs.metrics):
                async with SpGEMMService(
                    max_queue_depth=2, workers=1, max_inflight=1
                ) as svc:
                    burst = [
                        asyncio.ensure_future(
                            svc.submit(a, b, backpressure="shed")
                        )
                        for _ in range(6)
                    ]
                    return await asyncio.gather(*burst)

        responses = asyncio.run(run())
        snap = obs.metrics.snapshot()["counters"]
        submitted = sum(
            v for k, v in snap.items() if k.startswith("serve_requests_total")
        )
        outcomes = sum(
            v for k, v in snap.items() if k.startswith("serve_outcomes_total")
        )
        assert submitted == len(responses) == 6
        assert outcomes == submitted  # 100% accounting
        prom = obs.metrics.to_prometheus()
        assert "serve_requests_total" in prom and "serve_latency_seconds" in prom
        served_spans = [
            s for s in obs.tracer.spans if s.cat == "serve.request"
        ]
        assert len(served_spans) == 6  # one span per request, any outcome


# --------------------------------------------------------------- load tools
class TestLoadgen:
    def test_workload_is_deterministic(self):
        w1 = make_workload(4, n=64, seed=9)
        w2 = make_workload(4, n=64, seed=9)
        for (a1, _), (a2, _) in zip(w1, w2):
            np.testing.assert_array_equal(a1.val, a2.val)

    def test_closed_loop_report(self):
        async def run():
            async with SpGEMMService(max_queue_depth=8, workers=2) as svc:
                return await run_closed_loop(
                    svc, make_workload(6, n=64, seed=3), tenants=2
                )

        report = asyncio.run(run())
        assert report.submitted == 6 and report.served == 6
        d = report.to_dict()
        assert d["p50_ms"] <= d["p99_ms"]
        assert d["throughput_rps"] > 0
        assert "served" in report.summary()


# --------------------------------------------------------------------- CLI
class TestServeCLI:
    def test_run_all_served_exit_zero(self, capsys, tmp_path):
        metrics_out = tmp_path / "serve.prom"
        code = serve_main(
            [
                "run",
                "--requests", "6",
                "--tenants", "2",
                "--n", "64",
                "--workers", "2",
                "--metrics", str(metrics_out),
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["report"]["outcomes"]["served"] == 6
        prom = metrics_out.read_text()
        assert "serve_requests_total" in prom

    def test_shed_maps_to_exit_11(self, capsys):
        code = serve_main(
            [
                "run",
                "--requests", "4",
                "--n", "64",
                "--admission-budget", "1",
            ]
        )
        assert code == EXIT_SHED
        assert "shed" in capsys.readouterr().out

    def test_deadline_maps_to_exit_12(self, capsys):
        code = serve_main(
            [
                "run",
                "--requests", "3",
                "--n", "64",
                "--deadline", "1e-9",
            ]
        )
        assert code == EXIT_DEADLINE

    def test_dispatch_through_main(self, capsys):
        from repro.cli import main

        code = main(["serve", "run", "--requests", "2", "--n", "64"])
        assert code == 0
        assert "serve run:" in capsys.readouterr().out


# ------------------------------------------- satellite: typed config errors
class TestConfigurationErrors:
    def test_malformed_workers_env(self, monkeypatch):
        from repro.runtime.parallel import ENV_WORKERS, resolve_workers

        monkeypatch.setenv(ENV_WORKERS, "three")
        with pytest.raises(ConfigurationError) as ei:
            resolve_workers(None)
        assert ENV_WORKERS in str(ei.value)
        assert exit_code_for(ei.value) == EXIT_CONFIG

    def test_negative_workers_env(self, monkeypatch):
        from repro.runtime.parallel import ENV_WORKERS, resolve_workers

        monkeypatch.setenv(ENV_WORKERS, "-2")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_malformed_executor_env(self, monkeypatch):
        from repro.runtime.parallel import ENV_EXECUTOR, resolve_executor

        monkeypatch.setenv(ENV_EXECUTOR, "fibers")
        with pytest.raises(ConfigurationError) as ei:
            resolve_executor(None)
        assert ENV_EXECUTOR in str(ei.value)

    def test_malformed_backend_env(self, monkeypatch):
        from repro.backend import ENV_BACKEND, resolve_backend

        monkeypatch.setenv(ENV_BACKEND, "no-such-backend")
        with pytest.raises(ConfigurationError) as ei:
            resolve_backend(None)
        assert exit_code_for(ei.value) == EXIT_CONFIG

    def test_explicit_argument_keeps_invalid_input_error(self):
        # A bad *argument* is a caller bug, not a configuration problem:
        # the error type (and exit code 3) must not change.
        from repro.runtime.parallel import resolve_workers

        with pytest.raises(InvalidInputError) as ei:
            resolve_workers(-1)
        assert not isinstance(ei.value, ConfigurationError)

    def test_config_error_is_invalid_input_subclass(self):
        # Exit-code specificity must not break isinstance-based handling.
        assert issubclass(ConfigurationError, InvalidInputError)


# ---------------------------------------------- satellite: real backoff opt-in
class TestRealBackoff:
    def test_backoff_wait_without_jitter_matches_ladder(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, max_backoff_s=0.5)
        assert [backoff_wait(p, k) for k in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        p = RetryPolicy(backoff_base_s=0.1, jitter_frac=0.25, jitter_seed=7)
        q = RetryPolicy(backoff_base_s=0.1, jitter_frac=0.25, jitter_seed=7)
        waits_p = [backoff_wait(p, k) for k in range(6)]
        waits_q = [backoff_wait(q, k) for k in range(6)]
        assert waits_p == waits_q  # same seed -> same schedule
        for k, w in enumerate(waits_p):
            base = backoff_wait(
                RetryPolicy(backoff_base_s=0.1, jitter_frac=0.0), k
            )
            assert abs(w - base) <= 0.25 * base + 1e-12
        other = [
            backoff_wait(
                RetryPolicy(backoff_base_s=0.1, jitter_frac=0.25, jitter_seed=8), k
            )
            for k in range(6)
        ]
        assert other != waits_p  # different seed -> different schedule

    def test_injected_sleep_receives_each_wait(self):
        from repro.runtime.policy import _backoff

        slept = []
        p = RetryPolicy(
            backoff_base_s=0.05, backoff_factor=2.0, sleep=slept.append
        )
        waits = [_backoff(p, k) for k in range(3)]
        assert slept == waits == [0.05, 0.1, 0.2]

    def test_default_policy_never_sleeps(self):
        # The modelled-only default: no sleep callable, waits are recorded
        # in reports but the test suite never blocks on them.
        assert RetryPolicy().sleep is None
