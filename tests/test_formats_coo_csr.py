"""Tests for the COO and CSR format substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr


def dense_strategy(max_dim=12):
    return st.integers(2, max_dim).flatmap(
        lambda n: st.integers(1, max_dim).flatmap(
            lambda m: st.lists(
                st.lists(
                    st.sampled_from([0.0, 0.0, 0.0, 1.0, -2.5, 3.25]),
                    min_size=m,
                    max_size=m,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )


class TestCOO:
    def test_empty(self):
        m = COOMatrix.empty((3, 4))
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 4)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([2]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([0]), np.array([-1]), np.array([1.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_sum_duplicates_merges_and_sorts(self):
        m = COOMatrix(
            (3, 3),
            np.array([1, 0, 1, 1]),
            np.array([2, 0, 2, 0]),
            np.array([1.0, 5.0, 2.0, 7.0]),
        ).sum_duplicates()
        assert m.row.tolist() == [0, 1, 1]
        assert m.col.tolist() == [0, 0, 2]
        assert m.val.tolist() == [5.0, 7.0, 3.0]

    def test_sum_duplicates_keeps_cancellation_as_explicit_zero(self):
        m = COOMatrix(
            (1, 1), np.array([0, 0]), np.array([0, 0]), np.array([1.0, -1.0])
        ).sum_duplicates()
        assert m.nnz == 1
        assert m.val[0] == 0.0

    def test_prune(self):
        m = COOMatrix((1, 3), np.array([0, 0]), np.array([0, 1]), np.array([0.0, 2.0]))
        assert m.prune().nnz == 1

    def test_transpose_dense_equiv(self):
        m = COOMatrix.from_dense(np.arange(6.0).reshape(2, 3))
        assert np.array_equal(m.transpose().to_dense(), m.to_dense().T)

    def test_from_dense_roundtrip(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0], [0.0, 0.0]])
        assert np.array_equal(COOMatrix.from_dense(d).to_dense(), d)

    def test_memory_bytes(self):
        m = COOMatrix((4, 4), np.array([0]), np.array([1]), np.array([2.0]))
        assert m.memory_bytes() == 8 + 8 + 8


class TestCSRStructure:
    def test_from_coo_sorted_rows(self):
        coo = COOMatrix(
            (3, 4), np.array([2, 0, 2]), np.array([3, 1, 0]), np.array([1.0, 2.0, 3.0])
        )
        m = CSRMatrix.from_coo(coo)
        assert m.indptr.tolist() == [0, 1, 1, 3]
        assert m.indices.tolist() == [1, 0, 3]
        assert m.val.tolist() == [2.0, 3.0, 1.0]

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 0]), np.array([0]), np.array([1.0]))

    def test_validation_rejects_column_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix((1, 2), np.array([0, 1]), np.array([2]), np.array([1.0]))

    def test_identity(self):
        i = CSRMatrix.identity(4)
        assert np.array_equal(i.to_dense(), np.eye(4))

    def test_row_access(self):
        m = random_csr(20, 30, 0.2, seed=1)
        cols, vals = m.row(3)
        dense = m.to_dense()
        assert np.array_equal(dense[3][cols], vals)
        assert np.count_nonzero(dense[3]) == cols.size

    def test_row_lengths(self):
        m = random_csr(15, 15, 0.2, seed=2)
        assert m.row_lengths().sum() == m.nnz

    def test_transpose_involution(self):
        m = random_csr(23, 31, 0.15, seed=3)
        t = m.transpose()
        assert t.shape == (31, 23)
        assert np.array_equal(t.to_dense(), m.to_dense().T)
        assert m.transpose().transpose().allclose(m)

    def test_transpose_indices_sorted(self):
        m = random_csr(40, 40, 0.1, seed=4).transpose()
        for i in range(m.nrows):
            cols, _ = m.row(i)
            assert np.all(np.diff(cols) > 0)

    def test_prune_keeps_structure_valid(self):
        m = random_csr(30, 30, 0.2, seed=5, explicit_zeros=True)
        p = m.prune()
        p._validate()
        assert p.nnz == np.count_nonzero(m.val)

    def test_prune_empty_trailing_rows(self):
        m = CSRMatrix(
            (3, 3), np.array([0, 1, 1, 1]), np.array([0]), np.array([0.0])
        )
        p = m.prune()
        assert p.nnz == 0
        assert p.indptr.tolist() == [0, 0, 0, 0]

    def test_scale_rows(self):
        m = random_csr(10, 10, 0.3, seed=6)
        s = np.arange(1.0, 11.0)
        scaled = m.scale_rows(s)
        assert np.allclose(scaled.to_dense(), np.diag(s) @ m.to_dense())

    def test_scale_rows_shape_check(self):
        with pytest.raises(ValueError):
            random_csr(5, 5, 0.5, seed=0).scale_rows(np.ones(4))

    def test_memory_bytes_formula(self):
        m = random_csr(10, 10, 0.3, seed=7)
        assert m.memory_bytes() == (11 + m.nnz) * 4 + m.nnz * 8


class TestCSRComparisons:
    def test_allclose_ignores_explicit_zeros(self):
        a = CSRMatrix((1, 2), np.array([0, 2]), np.array([0, 1]), np.array([1.0, 0.0]))
        b = CSRMatrix((1, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))
        assert a.allclose(b)
        assert not a.pattern_equal(b)

    def test_allclose_detects_value_differences(self):
        a = random_csr(10, 10, 0.3, seed=8)
        b = CSRMatrix(a.shape, a.indptr, a.indices, a.val * 1.001)
        assert not a.allclose(b)

    def test_allclose_shape_mismatch(self):
        assert not random_csr(3, 3, 0.5, seed=0).allclose(random_csr(4, 4, 0.5, seed=0))

    @settings(max_examples=30, deadline=None)
    @given(dense_strategy())
    def test_dense_roundtrip(self, rows):
        dense = np.array(rows)
        m = CSRMatrix.from_dense(dense)
        assert np.array_equal(m.to_dense(), dense)
        back = m.to_coo().to_csr()
        assert back.allclose(m)

    def test_to_scipy_roundtrip(self):
        m = random_csr(17, 23, 0.2, seed=9)
        assert CSRMatrix.from_scipy(m.to_scipy()).allclose(m)
