"""Tests for the analysis utilities: regression, breakdowns, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    BUCKETS,
    estimated_breakdown,
    fit_loglinear,
    fractions,
    format_speedup,
    format_table,
    geometric_mean,
    measured_breakdown,
    paper_vs_measured_row,
)
from repro.baselines import get_algorithm
from repro.gpu import RTX3090, estimate_run
from tests.conftest import random_csr


class TestRegression:
    def test_recovers_exact_line(self):
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        y = 3.0 * np.log10(x) + 2.0
        line = fit_loglinear(x, y)
        assert line.slope == pytest.approx(3.0)
        assert line.intercept == pytest.approx(2.0)
        assert abs(line.r_value) == pytest.approx(1.0)
        assert np.allclose(line.predict(x), y)

    def test_drops_failures(self):
        x = np.array([1.0, 10.0, 100.0, -5.0, 50.0])
        y = np.array([1.0, 2.0, 3.0, 99.0, 0.0])  # negative x and zero y dropped
        line = fit_loglinear(x, y)
        assert line.n == 3

    def test_degenerate_single_point(self):
        line = fit_loglinear([10.0], [5.0])
        assert line.slope == 0.0
        assert line.intercept == 5.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)  # zeros excluded
        assert geometric_mean([]) == 0.0


class TestBreakdown:
    def test_measured_tilespgemm_buckets(self):
        a = random_csr(100, 100, 0.08, seed=111)
        res = get_algorithm("tilespgemm")(a, a)
        bd = measured_breakdown(res)
        assert set(bd) == set(BUCKETS)
        assert bd["step3"] > 0
        assert sum(bd.values()) == pytest.approx(res.timer.total)

    def test_measured_esc_maps_phases(self):
        a = random_csr(100, 100, 0.08, seed=112)
        res = get_algorithm("bhsparse_esc")(a, a)
        bd = measured_breakdown(res)
        assert bd["step1"] > 0  # analysis
        assert bd["step3"] > 0  # sorting+compression

    def test_estimated_breakdown(self):
        a = random_csr(100, 100, 0.08, seed=113)
        res = get_algorithm("tilespgemm")(a, a)
        est = estimate_run(res, RTX3090)
        bd = estimated_breakdown(est)
        assert sum(bd.values()) == pytest.approx(est.seconds)

    def test_fractions(self):
        fr = fractions({"a": 1.0, "b": 3.0})
        assert fr["b"] == pytest.approx(0.75)
        assert fractions({"a": 0.0}) == {"a": 0.0}

    def test_unknown_phase_rejected(self):
        from repro.analysis.breakdown import _bucket

        with pytest.raises(KeyError):
            _bucket("warpfield")


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["a", 1.5], ["bb", 22.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("x")
        assert "22.25" in lines[3]

    def test_format_table_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_speedup(self):
        assert format_speedup(2.784) == "2.78x"
        assert format_speedup(0.0) == "fail"
        assert format_speedup(float("nan")) == "fail"

    def test_paper_vs_measured_row(self):
        row = paper_vs_measured_row("m", {"cr": 2.0}, {"cr": 1.9}, ["cr"])
        assert row == ["m", 2.0, 1.9]
