"""Detailed behavioural tests of the per-method GPU cost estimators."""

import numpy as np
import pytest

from repro.baselines import get_algorithm
from repro.gpu import COST, RTX3090, estimate_run
from repro.gpu.costmodel import GPUEstimate, KernelEstimate
from repro.matrices import generators
from tests.conftest import random_csr


@pytest.fixture(scope="module")
def fem():
    return generators.banded(800, 12, fill=0.9, seed=241).to_csr()


@pytest.fixture(scope="module")
def hyper():
    return generators.permute_symmetric(
        generators.banded(3000, 2, seed=242), seed=242
    ).to_csr()


class TestKernelEstimate:
    def test_seconds_is_roofline_plus_launch(self):
        k = KernelEstimate("k", compute_s=2.0, memory_s=3.0, launch_s=0.5)
        assert k.seconds == 3.5
        assert k.bound == "memory"
        k2 = KernelEstimate("k", compute_s=4.0, memory_s=3.0, launch_s=0.5)
        assert k2.bound == "compute"

    def test_gpu_estimate_empty(self):
        e = GPUEstimate(method="x", device=RTX3090)
        assert e.seconds == 0.0
        assert e.gflops == 0.0


class TestTileEstimator:
    def test_step1_minor_on_work_heavy(self, fem):
        est = estimate_run(get_algorithm("tilespgemm")(fem, fem), RTX3090)
        bd = est.breakdown()
        assert bd["step1"] < 0.3 * est.seconds

    def test_step2_dominates_on_hypersparse(self, hyper):
        est = estimate_run(get_algorithm("tilespgemm")(hyper, hyper), RTX3090)
        bd = est.breakdown()
        # The paper's cop20k_A observation: tile-structure generation
        # (step 2) dominates when tiles carry almost no numeric work.
        assert bd["step2"] > bd["step3"]

    def test_hypersparse_much_slower_per_flop(self, fem, hyper):
        g_fem = estimate_run(get_algorithm("tilespgemm")(fem, fem), RTX3090).gflops
        g_hyp = estimate_run(get_algorithm("tilespgemm")(hyper, hyper), RTX3090).gflops
        assert g_fem > 5 * g_hyp

    def test_honours_forced_accumulator_stats(self, fem):
        sparse = get_algorithm("tilespgemm")(fem, fem, force_accumulator="sparse")
        dense = get_algorithm("tilespgemm")(fem, fem, force_accumulator="dense")
        e_sparse = estimate_run(sparse, RTX3090)
        e_dense = estimate_run(dense, RTX3090)
        # Forcing dense everywhere pays the scratch-init cost per tile.
        c_sparse = next(k for k in e_sparse.kernels if k.name == "step3").compute_s
        c_dense = next(k for k in e_dense.kernels if k.name == "step3").compute_s
        assert c_sparse != c_dense


class TestRowMethodEstimators:
    def test_nsparse_two_passes_cost_more_than_speck_one(self, fem):
        ns = estimate_run(get_algorithm("nsparse_hash")(fem, fem), RTX3090)
        sp = estimate_run(get_algorithm("speck")(fem, fem), RTX3090)
        ns_mem = sum(k.memory_s for k in ns.kernels)
        sp_mem = sum(k.memory_s for k in sp.kernels)
        assert ns_mem > sp_mem

    def test_esc_sort_kernel_present(self, fem):
        est = estimate_run(get_algorithm("bhsparse_esc")(fem, fem), RTX3090)
        names = [k.name for k in est.kernels]
        assert names == ["analysis", "expansion", "sort_compress"]

    def test_spill_traffic_charged_on_dense_rows(self):
        # Wide dense-ish rows exceed the shared hash capacity -> the spill
        # traffic term must make spECK slower per flop than on narrow rows.
        narrow = generators.banded(1200, 10, seed=243).to_csr()   # ub ~ 441
        wide = generators.block_band(1200, 120, 0, seed=244).to_csr()  # ub ~ 14k
        g_narrow = estimate_run(get_algorithm("speck")(narrow, narrow), RTX3090).gflops
        g_wide = estimate_run(get_algorithm("speck")(wide, wide), RTX3090).gflops
        assert g_wide < g_narrow

    def test_duplicate_ratio_term_penalises_high_compression(self):
        low_cr = generators.random_uniform(1500, 6.0, seed=245).to_csr()
        high_cr = generators.block_band(1024, 64, 0, seed=246).to_csr()
        for method in ("speck", "nsparse_hash"):
            res_low = get_algorithm(method)(low_cr, low_cr)
            res_high = get_algorithm(method)(high_cr, high_cr)
            bytes_low = sum(k.memory_s for k in estimate_run(res_low, RTX3090).kernels)
            bytes_high = sum(k.memory_s for k in estimate_run(res_high, RTX3090).kernels)
            per_prod_low = bytes_low / res_low.stats["num_products"]
            per_prod_high = bytes_high / res_high.stats["num_products"]
            assert per_prod_high > per_prod_low, method


class TestTSparseEstimator:
    def test_malloc_dominated(self, fem):
        est = estimate_run(get_algorithm("tsparse")(fem, fem), RTX3090)
        bd = est.breakdown()
        assert bd["malloc"] > bd["dense_tile_gemm"] * 0.5

    def test_waste_hurts_sparse_tiles(self, hyper, fem):
        ts_fem = estimate_run(get_algorithm("tsparse")(fem, fem), RTX3090).gflops
        ts_hyp = estimate_run(get_algorithm("tsparse")(hyper, hyper), RTX3090).gflops
        assert ts_hyp < ts_fem


class TestCostTableIntegrity:
    def test_all_constants_positive(self):
        assert all(v > 0 for v in COST.values())

    def test_key_namespaces(self):
        prefixes = {k.split(".")[0] for k in COST if "." in k}
        assert prefixes == {
            "tile", "row", "spa", "esc", "hash", "speck", "tsparse", "rmerge"
        }
