"""Tests for the segmented-array helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.arrays import concat_ranges, segment_ids, segment_positions, segmented_sum

lengths_strategy = st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=20)


class TestConcatRanges:
    def test_basic(self):
        got = concat_ranges(np.array([5, 0]), np.array([3, 2]))
        assert got.tolist() == [5, 6, 7, 0, 1]

    def test_empty_everything(self):
        assert concat_ranges(np.array([], dtype=int), np.array([], dtype=int)).size == 0

    def test_zero_length_segments_skipped(self):
        got = concat_ranges(np.array([4, 9, 2]), np.array([0, 2, 0]))
        assert got.tolist() == [9, 10]

    def test_leading_zero_length(self):
        got = concat_ranges(np.array([7, 1]), np.array([0, 3]))
        assert got.tolist() == [1, 2, 3]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            concat_ranges(np.array([1]), np.array([1, 2]))

    def test_negative_length(self):
        with pytest.raises(ValueError):
            concat_ranges(np.array([1]), np.array([-1]))

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 12)), min_size=0, max_size=30
        )
    )
    def test_matches_naive(self, pairs):
        starts = np.array([p[0] for p in pairs], dtype=np.int64)
        lengths = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = (
            np.concatenate([np.arange(s, s + l) for s, l in pairs])
            if pairs and lengths.sum()
            else np.empty(0, dtype=np.int64)
        )
        got = concat_ranges(starts, lengths)
        assert np.array_equal(got, expected)


class TestSegmentIds:
    def test_basic(self):
        assert segment_ids(np.array([2, 0, 3])).tolist() == [0, 0, 2, 2, 2]

    def test_empty(self):
        assert segment_ids(np.array([], dtype=int)).size == 0

    @given(lengths_strategy)
    def test_counts_recover_lengths(self, lengths):
        lengths_arr = np.asarray(lengths, dtype=np.int64)
        ids = segment_ids(lengths_arr)
        recovered = np.bincount(ids, minlength=lengths_arr.size) if ids.size else np.zeros(
            lengths_arr.size, dtype=np.int64
        )
        assert np.array_equal(recovered, lengths_arr)


class TestSegmentPositions:
    def test_basic(self):
        assert segment_positions(np.array([2, 3])).tolist() == [0, 1, 0, 1, 2]

    def test_with_empty_segments(self):
        assert segment_positions(np.array([0, 2, 0, 1])).tolist() == [0, 1, 0]

    @given(lengths_strategy)
    def test_positions_are_aranges(self, lengths):
        got = segment_positions(np.asarray(lengths, dtype=np.int64))
        expected = np.concatenate([np.arange(l) for l in lengths]) if sum(lengths) else np.empty(0)
        assert np.array_equal(got, expected)


class TestSegmentedSum:
    def test_basic(self):
        got = segmented_sum(np.array([1.0, 2.0, 3.0, 4.0]), np.array([2, 0, 2]))
        assert got.tolist() == [3.0, 0.0, 7.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            segmented_sum(np.array([1.0]), np.array([2]))

    @given(lengths_strategy)
    def test_matches_naive(self, lengths):
        lengths_arr = np.asarray(lengths, dtype=np.int64)
        total = int(lengths_arr.sum())
        rng = np.random.default_rng(0)
        values = rng.normal(size=total)
        got = segmented_sum(values, lengths_arr)
        offset = 0
        for i, l in enumerate(lengths):
            assert got[i] == pytest.approx(values[offset : offset + l].sum(), abs=1e-12)
            offset += l
