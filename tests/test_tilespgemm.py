"""End-to-end tests of the TileSpGEMM driver against SciPy oracles."""

import numpy as np
import pytest

from repro.core import TileMatrix, tile_spgemm, tile_spgemm_from_csr
from repro.formats.csr import CSRMatrix
from tests.conftest import random_csr, scipy_product


def run(a_csr, b_csr, **kw):
    a = TileMatrix.from_csr(a_csr)
    b = TileMatrix.from_csr(b_csr)
    return tile_spgemm(a, b, **kw)


class TestCorrectness:
    def test_matches_scipy_random(self, small_pair):
        a, b = small_pair
        res = run(a, b)
        assert res.c.to_csr().allclose(scipy_product(a, b))

    def test_square_square(self, random_square):
        res = run(random_square, random_square)
        assert res.c.to_csr().allclose(scipy_product(random_square, random_square))
        res.c.drop_empty_tiles().validate()

    def test_aat(self, random_square):
        at = random_square.transpose()
        res = run(random_square, at)
        assert res.c.to_csr().allclose(scipy_product(random_square, at))

    def test_identity_left_right(self, random_square):
        i = CSRMatrix.identity(random_square.shape[0])
        assert run(i, random_square).c.to_csr().allclose(random_square)
        assert run(random_square, i).c.to_csr().allclose(random_square)

    def test_empty_inputs(self):
        e = CSRMatrix.empty((40, 30))
        f = CSRMatrix.empty((30, 50))
        res = run(e, f)
        assert res.c.nnz == 0
        assert res.c.shape == (40, 50)
        assert res.flops == 0

    def test_zero_times_dense(self):
        e = CSRMatrix.empty((32, 32))
        d = random_csr(32, 32, 0.5, seed=81)
        assert run(e, d).c.nnz == 0
        assert run(d, e).c.nnz == 0

    def test_rectangular_chain(self):
        a = random_csr(50, 90, 0.1, seed=82)
        b = random_csr(90, 31, 0.1, seed=83)
        res = run(a, b)
        assert res.c.shape == (50, 31)
        assert res.c.to_csr().allclose(scipy_product(a, b))

    def test_numerical_cancellation_kept_structurally(self):
        # A row that cancels exactly: structure keeps the entry, value is 0.
        a = CSRMatrix(
            (2, 2),
            np.array([0, 2, 2]),
            np.array([0, 1]),
            np.array([1.0, 1.0]),
        )
        b = CSRMatrix(
            (2, 1),
            np.array([0, 1, 2]),
            np.array([0, 0]),
            np.array([1.0, -1.0]),
        )
        res = run(a, b)
        c = res.c.to_csr()
        assert c.nnz == 1  # structural nonzero survives
        assert c.val[0] == 0.0

    def test_explicit_zeros_in_input(self):
        a = random_csr(60, 60, 0.1, seed=84, explicit_zeros=True)
        res = run(a, a)
        assert res.c.to_csr().allclose(scipy_product(a, a))

    def test_dense_small_matrix(self):
        a = CSRMatrix.from_dense(np.random.default_rng(85).normal(size=(20, 20)))
        res = run(a, a)
        assert np.allclose(res.c.to_dense(), a.to_dense() @ a.to_dense())

    @pytest.mark.parametrize("tile_size", [4, 8, 16])
    def test_tile_size_variants(self, tile_size):
        a_csr = random_csr(70, 70, 0.1, seed=86)
        a = TileMatrix.from_csr(a_csr, tile_size)
        res = tile_spgemm(a, a)
        assert res.c.to_csr().allclose(scipy_product(a_csr, a_csr))

    def test_structured_suite_matrices(self):
        from repro.matrices import generators

        for m in (
            generators.banded(200, 6, seed=1).to_csr(),
            generators.stencil_2d(15, 14).to_csr(),
            generators.powerlaw(300, 4.0, seed=2).to_csr(),
            generators.block_band(128, 32, 0, seed=3).to_csr(),
        ):
            res = run(m, m)
            assert res.c.to_csr().allclose(scipy_product(m, m)), m.shape


class TestConfigurations:
    def test_all_paths_agree(self, small_pair):
        a, b = small_pair
        base = run(a, b).c.to_csr()
        for kw in (
            {"step1_method": "hash"},
            {"intersect_method": "binary"},
            {"intersect_method": "merge"},
            {"force_accumulator": "sparse"},
            {"force_accumulator": "dense"},
            {"tnnz": 0},
            {"tnnz": 1000},
            {"keep_empty_tiles": False},
        ):
            assert run(a, b, **kw).c.to_csr().allclose(base), kw

    def test_mismatched_dims_rejected(self):
        a = TileMatrix.from_csr(random_csr(32, 32, 0.2, seed=87))
        b = TileMatrix.from_csr(random_csr(48, 48, 0.2, seed=88))
        with pytest.raises(ValueError):
            tile_spgemm(a, b)

    def test_mismatched_tile_sizes_rejected(self):
        a = TileMatrix.from_csr(random_csr(32, 32, 0.2, seed=89), 16)
        b = TileMatrix.from_csr(random_csr(32, 32, 0.2, seed=90), 8)
        with pytest.raises(ValueError):
            tile_spgemm(a, b)

    def test_keep_empty_tiles_flag(self):
        # Cancellation-heavy input: some candidate tiles end up empty.
        a = CSRMatrix(
            (16, 32),
            np.concatenate([np.array([0, 2]), np.full(15, 2)]),
            np.array([16, 17]),
            np.array([1.0, 1.0]),
        )
        b = CSRMatrix(
            (32, 16),
            np.concatenate([np.zeros(17, dtype=np.int64), np.array([1, 2]), np.full(14, 2)]),
            np.array([0, 0]),
            np.array([1.0, -1.0]),
        )
        kept = run(a, b, keep_empty_tiles=True)
        dropped = run(a, b, keep_empty_tiles=False)
        assert kept.c.to_csr().allclose(dropped.c.to_csr())
        assert dropped.c.num_tiles <= kept.c.num_tiles


class TestResultMetadata:
    def test_phases_timed(self, small_pair):
        a, b = small_pair
        res = run(a, b)
        for phase in ("step1", "step2", "step3", "malloc"):
            assert phase in res.timer.seconds

    def test_flops_match_row_count(self, small_pair):
        from repro.baselines.base import flops_of_product

        a, b = small_pair
        res = run(a, b)
        assert res.flops == flops_of_product(a, b)

    def test_stats_consistency(self, small_pair):
        a, b = small_pair
        res = run(a, b)
        s = res.stats
        assert s["nnz_c"] == res.c.nnz
        assert s["num_c_tiles"] == res.c.num_tiles
        assert int(np.sum(s["pairs_per_tile"])) == res.pairs.num_pairs
        assert int(np.sum(s["products_per_tile"])) == s["num_products"]
        assert s["sparse_tiles"] + s["dense_tiles"] == s["num_c_tiles"]

    def test_allocations_recorded(self, small_pair):
        a, b = small_pair
        res = run(a, b)
        labels = {e.label for e in res.alloc.events}
        assert {"tilePtr_C", "tileColIdx_C", "tileNnz_C", "mask_C", "val_C"} <= labels
        assert res.alloc.peak_bytes > 0

    def test_gflops_positive(self, small_pair):
        a, b = small_pair
        res = run(a, b)
        assert res.gflops() > 0
        assert res.gflops(1.0) == pytest.approx(res.flops / 1e9)

    def test_from_csr_records_conversion(self, small_pair):
        a, b = small_pair
        res = tile_spgemm_from_csr(a, b)
        assert "format_conversion" in res.timer.seconds
        assert res.c.to_csr().allclose(scipy_product(a, b))
