#!/usr/bin/env python
"""Item-similarity mining with SpGEMM: a small recommender workflow.

SpGEMM's database/data-mining use (one of the paper's §1 application
domains): from a user-item interaction matrix, one ``A Aᵀ`` product gives
item co-occurrence counts, row/column scaling turns them into cosine
similarities, and a top-k filter yields the neighbourhood graph that
item-based recommenders serve.

Run:  python examples/recommender_similarity.py
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import cosine_similarity, top_k_neighbors
from repro.formats.coo import COOMatrix


def synthetic_interactions(num_users: int, num_items: int, seed: int):
    """Users with genre preferences: items cluster into 6 hidden genres."""
    rng = np.random.default_rng(seed)
    genres = rng.integers(0, 6, size=num_items)
    rows, cols = [], []
    for u in range(num_users):
        liked_genres = rng.choice(6, size=rng.integers(1, 3), replace=False)
        pool = np.flatnonzero(np.isin(genres, liked_genres))
        picks = rng.choice(pool, size=min(rng.integers(5, 25), pool.size), replace=False)
        rows.extend([u] * picks.size)
        cols.extend(picks.tolist())
        # a little cross-genre noise
        noise = rng.choice(num_items, size=2)
        rows.extend([u, u])
        cols.extend(noise.tolist())
    vals = np.ones(len(rows))
    m = COOMatrix((num_users, num_items), np.array(rows), np.array(cols), vals)
    return m.to_csr().transpose(), genres  # item x user incidence


def main() -> None:
    items, genres = synthetic_interactions(num_users=1200, num_items=400, seed=23)
    print(f"interactions: {items.nnz} over {items.shape[0]} items x {items.shape[1]} users")

    sim = cosine_similarity(items, method="tilespgemm")
    print(f"similarity graph: {sim.nnz} nonzero pairs "
          f"({sim.nnz / items.shape[0] ** 2:.2%} dense)")

    knn = top_k_neighbors(sim, k=10)
    print(f"10-NN graph: {knn.nnz} edges")

    # Quality check: do nearest neighbours share the hidden genre?
    hits = total = 0
    for i in range(items.shape[0]):
        cols, vals = knn.row(i)
        if cols.size == 0:
            continue
        best = cols[np.argmax(vals)]
        hits += int(genres[best] == genres[i])
        total += 1
    print(f"nearest neighbour shares the hidden genre: {hits}/{total} "
          f"({hits / max(total, 1):.0%})")

    # Show a few rows.
    rows = []
    for i in range(5):
        cols, vals = knn.row(i)
        order = np.argsort(vals)[::-1][:3]
        rows.append(
            [i, int(genres[i])]
            + [f"{int(cols[j])} (g{int(genres[cols[j]])}, {vals[j]:.2f})" for j in order]
        )
    print("\n" + format_table(
        ["item", "genre", "1st neighbour", "2nd", "3rd"],
        rows,
        title="Sample item neighbourhoods (genre labels were hidden from the pipeline)",
    ))


if __name__ == "__main__":
    main()
