#!/usr/bin/env python
"""Quickstart: multiply two sparse matrices with TileSpGEMM.

Builds an FEM-like band matrix, converts it to the paper's tiled format,
runs the three-step TileSpGEMM algorithm, verifies the product against a
row-row reference, and prints the paper's observables: runtime breakdown,
logical memory footprint, and estimated GPU throughput on the paper's two
devices.

Run:  python examples/quickstart.py
"""

from repro import TileMatrix, tile_spgemm
from repro.analysis import format_table
from repro.baselines import get_algorithm
from repro.gpu import RTX3060, RTX3090, estimate_run
from repro.matrices import generators


def main() -> None:
    # 1. A workload: a 3000x3000 FEM-style band matrix (~33 nnz per row).
    a_csr = generators.banded(3000, 20, fill=0.8, seed=7).to_csr()
    print(f"A: {a_csr.shape[0]}x{a_csr.shape[1]}, nnz = {a_csr.nnz}")

    # 2. Convert to the tiled format (16x16 sparse tiles).
    a = TileMatrix.from_csr(a_csr)
    print(f"tiled: {a.num_tiles} non-empty tiles, "
          f"{a.memory_bytes() / 1e6:.2f} MB vs CSR {a_csr.memory_bytes() / 1e6:.2f} MB")

    # 3. C = A^2 with the three-step TileSpGEMM algorithm.
    result = tile_spgemm(a, a)
    c = result.c
    print(f"\nC = A^2: nnz = {c.nnz}, tiles = {c.num_tiles}, "
          f"flops = {result.flops / 1e6:.1f} Mflop")

    # 4. Verify against the row-row reference (Gustavson's algorithm).
    ref = get_algorithm("gustavson")(a_csr, a_csr).c
    assert c.to_csr().allclose(ref), "TileSpGEMM disagrees with the reference!"
    print("verified against the row-row reference: OK")

    # 5. The paper's observables.
    rows = [
        [phase, sec * 1e3, frac * 100]
        for (phase, sec), frac in zip(
            sorted(result.timer.seconds.items()),
            [result.timer.fractions()[k] for k in sorted(result.timer.seconds)],
        )
    ]
    print("\n" + format_table(["phase", "ms", "% of total"], rows,
                              title="Runtime breakdown (paper Fig. 10)"))
    print(f"\npeak logical device memory: {result.alloc.peak_bytes / 1e6:.2f} MB")

    adapter = get_algorithm("tilespgemm")(a_csr, a_csr, a_tiled=a, b_tiled=a)
    for dev in (RTX3060, RTX3090):
        est = estimate_run(adapter, dev)
        print(f"estimated on {dev.name}: {est.seconds * 1e3:.2f} ms "
              f"({est.gflops:.1f} GFlops)")


if __name__ == "__main__":
    main()
