#!/usr/bin/env python
"""AMG setup: the paper's flagship SpGEMM application.

Algebraic multigrid solvers spend their setup phase computing Galerkin
triple products ``A_coarse = P^T A P`` — chained SpGEMMs whose outputs
feed the next level (which is why the paper assumes operands already live
in the tiled format).  This example builds a multigrid hierarchy for a 2-D
Poisson problem with TileSpGEMM, prints the hierarchy, and compares the
SpGEMM engine choices on setup cost.

Run:  python examples/amg_setup.py
"""

import time

from repro.analysis import format_table
from repro.apps import build_hierarchy
from repro.matrices import generators


def main() -> None:
    nx_, ny = 64, 64
    a = generators.stencil_2d(nx_, ny).to_csr()
    print(f"fine operator: 5-point Poisson on {nx_}x{ny} grid "
          f"(n = {a.shape[0]}, nnz = {a.nnz})\n")

    hierarchy = build_hierarchy(a, max_levels=8, min_coarse=20, method="tilespgemm")

    rows = []
    for i, level in enumerate(hierarchy.levels):
        rows.append(
            [
                i,
                level.a.shape[0],
                level.a.nnz,
                f"{level.a.nnz / max(level.a.shape[0], 1):.1f}",
                level.spgemm_flops,
            ]
        )
    print(format_table(
        ["level", "n", "nnz", "nnz/row", "SpGEMM flops"],
        rows,
        title="AMG hierarchy (aggregation coarsening, Galerkin products)",
    ))
    print(f"\noperator complexity: {hierarchy.operator_complexity:.3f}")
    print(f"total setup SpGEMM flops: {hierarchy.total_spgemm_flops}")

    # Compare SpGEMM engines on the same setup.
    print("\nsetup wall time by SpGEMM method:")
    for method in ("tilespgemm", "speck", "nsparse_hash", "bhsparse_esc"):
        t0 = time.perf_counter()
        build_hierarchy(a, max_levels=8, min_coarse=20, method=method)
        print(f"  {method:14s} {(time.perf_counter() - t0) * 1e3:8.1f} ms")

    # Close the loop: solve A x = b with V-cycles on the tiled operators
    # (smoothing and residuals run as tiled SpMV — the format stays
    # resident from setup through solve, the paper's AMG argument).
    import numpy as np

    from repro.apps import AMGSolver
    from repro.core.spmv import csr_spmv

    rng = np.random.default_rng(3)
    x_true = rng.normal(size=a.shape[0])
    b = csr_spmv(a, x_true)
    for smoothed in (False, True):
        solver = AMGSolver(a, smoothed_aggregation=smoothed)
        result = solver.solve(b, tol=1e-8, max_cycles=80)
        err = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        kind = "smoothed aggregation" if smoothed else "plain aggregation  "
        print(f"\nV-cycle solve ({kind}): converged={result.converged} "
              f"cycles={result.iterations} "
              f"convergence factor={result.convergence_factor():.3f} "
              f"relative error={err:.2e}")


if __name__ == "__main__":
    main()
