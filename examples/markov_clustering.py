#!/usr/bin/env python
"""Markov clustering: the paper's machine-learning SpGEMM workload.

MCL's expansion step squares a column-stochastic matrix every iteration —
a chain of SpGEMMs on a matrix whose sparsity drifts as inflation prunes
it.  This example clusters a planted-partition graph and reports how much
SpGEMM work the clustering consumed.

Run:  python examples/markov_clustering.py
"""

import itertools

import numpy as np

from repro.apps import markov_clustering
from repro.formats.coo import COOMatrix


def planted_partition(groups: int, size: int, p_in: float, p_out: float, seed: int):
    """A graph of ``groups`` communities with dense intra-community edges."""
    rng = np.random.default_rng(seed)
    n = groups * size
    rows, cols = [], []
    for i, j in itertools.combinations(range(n), 2):
        same = i // size == j // size
        if rng.random() < (p_in if same else p_out):
            rows += [i, j]
            cols += [j, i]
    vals = np.ones(len(rows))
    return COOMatrix((n, n), np.asarray(rows), np.asarray(cols), vals).to_csr(), n


def main() -> None:
    groups, size = 5, 12
    adj, n = planted_partition(groups, size, p_in=0.85, p_out=0.02, seed=11)
    print(f"planted-partition graph: {groups} communities x {size} nodes, "
          f"{adj.nnz // 2} edges")

    result = markov_clustering(adj, inflation=2.0, method="tilespgemm")
    print(f"\nMCL converged: {result.converged} after {result.iterations} iterations")
    print(f"SpGEMM flops spent in expansion steps: {result.total_spgemm_flops}")
    print(f"clusters found: {len(result.clusters)}")

    # Score against the planted communities.
    correct = 0
    for cluster in result.clusters:
        communities = {v // size for v in cluster}
        if len(communities) == 1 and len(cluster) == size:
            correct += 1
    print(f"exactly-recovered communities: {correct} / {groups}")
    for i, cluster in enumerate(result.clusters):
        print(f"  cluster {i}: {cluster}")


if __name__ == "__main__":
    main()
