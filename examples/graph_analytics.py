#!/usr/bin/env python
"""Graph analytics with SpGEMM: triangle counting on a power-law graph.

Triangle counting is the paper's GraphBLAS motivation: with ``L`` the
strictly-lower-triangular adjacency, ``#triangles = sum(L .* (L @ L))`` —
one masked SpGEMM.  Power-law graphs are also exactly the workloads where
row-row SpGEMM suffers load imbalance, so this example prints the row-length
histogram and the per-method work distribution alongside the count.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import lower_triangle, triangle_count, two_hop_frontier
from repro.baselines import get_algorithm
from repro.baselines._expand import row_upper_bounds
from repro.gpu import RTX3090, estimate_run, imbalance_factor
from repro.matrices import generators


def main() -> None:
    # A scaled webbase-like graph: Zipf degrees + 3 planted hub rows.
    adj = generators.powerlaw(
        8000, 4.0, exponent=2.1, max_degree=2000, hubs=3, seed=42
    ).to_csr()
    print(f"graph: n = {adj.shape[0]}, edges(nnz) = {adj.nnz}")

    lens = adj.row_lengths()
    hist_rows = []
    for lo, hi in [(0, 10), (10, 100), (100, 1000), (1000, 10**9)]:
        label = f"{lo}-{hi if hi < 10**9 else 'max'}"
        hist_rows.append([label, int(((lens >= lo) & (lens < hi)).sum())])
    print("\n" + format_table(["row length", "rows"], hist_rows,
                              title="Row-length histogram (paper §2.3's imbalance)"))

    tri = triangle_count(adj, method="tilespgemm")
    tri_check = triangle_count(adj, method="nsparse_hash")
    assert tri == tri_check
    print(f"\ntriangles: {tri} (agrees across methods)")

    frontier = two_hop_frontier(adj)
    print(f"2-hop frontier density: {frontier.nnz / adj.shape[0] ** 2:.4%}")

    # Load-imbalance story: per-row work of L @ L vs TileSpGEMM's per-tile work.
    l = lower_triangle(adj)
    ub = row_upper_bounds(l, l)
    print(f"\nrow-row work imbalance (products per row): "
          f"max = {ub.max()}, median = {int(np.median(ub))}, "
          f"imbalance factor on 328 warp slots = "
          f"{imbalance_factor(ub.astype(float), 328):.1f}x")

    res_tile = get_algorithm("tilespgemm")(l, l)
    ppt = np.asarray(res_tile.stats["products_per_tile"], dtype=float)
    print(f"tile work imbalance (products per tile): "
          f"max = {int(ppt.max())}, median = {int(np.median(ppt))}, "
          f"imbalance factor = {imbalance_factor(ppt, 328):.1f}x")

    for method in ("tilespgemm", "speck", "nsparse_hash", "bhsparse_esc"):
        est = estimate_run(get_algorithm(method)(l, l), RTX3090)
        print(f"  estimated L@L on {est.device.name}: {method:14s} "
              f"{est.seconds * 1e3:8.3f} ms  ({est.gflops:6.2f} GFlops)")


if __name__ == "__main__":
    main()
