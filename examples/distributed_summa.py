#!/usr/bin/env python
"""Distributed SpGEMM: sparse SUMMA over a 2-D process grid.

The paper notes its tiled data structure resembles distributed blocking
SpGEMM "but optimized for GPUs without concerns on communication costs".
This example makes those concerns concrete: the same product is computed
on 1/4/9/16 modelled devices with TileSpGEMM as the local kernel, and the
communication volume, critical path and scaling efficiency are printed.

Run:  python examples/distributed_summa.py
"""

from repro.analysis import format_table
from repro.baselines import get_algorithm
from repro.distributed import ProcessGrid, summa_spgemm
from repro.matrices import generators


def main() -> None:
    a = generators.banded(6000, 24, fill=0.9, seed=17).to_csr()
    print(f"A: {a.shape[0]}x{a.shape[1]}, nnz = {a.nnz} (FEM band analogue)\n")

    reference = get_algorithm("tilespgemm")(a, a).c
    base = None
    rows = []
    for p in (1, 2, 3, 4):
        grid = ProcessGrid(p, p)
        res = summa_spgemm(a, a, grid)
        assert res.c.allclose(reference), "distributed product diverged!"
        if base is None:
            base = res.critical_path_s
        rows.append(
            [
                str(grid),
                f"{res.critical_path_s * 1e3:.3f}",
                f"{res.total_comm_volume / 1e6:.2f}",
                f"{res.comm_fraction * 100:.1f}%",
                f"{base / res.critical_path_s:.2f}x",
                f"{res.compute_imbalance():.2f}",
            ]
        )
    print(format_table(
        ["grid", "critical path ms", "comm MB", "comm share", "speedup", "imbalance"],
        rows,
        title="Sparse SUMMA strong scaling (local kernel: TileSpGEMM; "
        "NVLink-class alpha-beta interconnect)",
    ))
    print("\nEvery distributed product was verified against the single-device result.")


if __name__ == "__main__":
    main()
