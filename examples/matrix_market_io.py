#!/usr/bin/env python
"""MatrixMarket workflow: the paper artifact's ``./test <matrix.mtx>`` flow.

The original artifact loads a ``*.mtx`` file, converts CSR to the tiled
format, runs TileSpGEMM (``C = A^2`` or ``C = A A^T``), and prints the
statistics listed in its Appendix A.8.  This example reproduces that
workflow end to end, including the output lines, on a generated matrix
written to a temporary ``.mtx`` file (pass a path to use your own).

Run:  python examples/matrix_market_io.py [matrix.mtx] [--aat]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro import TileMatrix, read_mtx, write_mtx
from repro.baselines import get_algorithm
from repro.core import tile_spgemm
from repro.matrices import generators


def main(argv) -> None:
    aat = "--aat" in argv
    paths = [a for a in argv[1:] if not a.startswith("-")]
    if paths:
        path = Path(paths[0])
    else:
        path = Path(tempfile.gettempdir()) / "tilespgemm_demo.mtx"
        demo = generators.banded(1500, 14, fill=0.9, seed=3)
        write_mtx(path, demo, comment="generated demo matrix (banded FEM analogue)")
        print(f"(no input given: wrote a demo matrix to {path})")

    t0 = time.perf_counter()
    coo = read_mtx(path)
    load_s = time.perf_counter() - t0
    a_csr = coo.to_csr()
    print(f"matrix file: {path}")
    print(f"rows = {a_csr.shape[0]}, cols = {a_csr.shape[1]}, nnz = {a_csr.nnz}")
    print(f"file loading time: {load_s:.3f} s")
    print("tile size: 16 x 16")

    b_csr = a_csr.transpose() if aat else a_csr
    from repro.baselines.base import flops_of_product

    print(f"#flops of C = A{'A^T' if aat else '^2'}: {flops_of_product(a_csr, b_csr)}")

    t0 = time.perf_counter()
    a = TileMatrix.from_csr(a_csr)
    b = a if not aat else TileMatrix.from_csr(b_csr)
    conv_ms = (time.perf_counter() - t0) * 1e3
    print(f"CSR -> tiled conversion time: {conv_ms:.3f} ms   (paper Fig. 12)")
    print(f"tiled structure space: {a.memory_bytes() / 1e6:.3f} MB   (paper Fig. 11)")

    result = tile_spgemm(a, b)
    for step in ("step1", "step2", "step3", "malloc"):
        print(f"{step} time: {result.timer.seconds.get(step, 0.0) * 1e3:.3f} ms   (paper Fig. 10)")
    print(f"number of tiles of C: {result.c.num_tiles}")
    print(f"number of nonzeros of C: {result.c.nnz}")
    ms = result.timer.total * 1e3
    print(f"TileSpGEMM runtime: {ms:.3f} ms ({result.gflops():.2f} GFlops)   (paper Figs. 6/7)")

    # The artifact's final line: compare against another library's output.
    ref = get_algorithm("nsparse_hash")(a_csr, b_csr).c
    ok = result.c.to_csr().allclose(ref)
    print(f"check passed: {'yes' if ok else 'NO'}")


if __name__ == "__main__":
    main(sys.argv)
