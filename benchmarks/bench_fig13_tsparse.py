"""Figure 13: TileSpGEMM vs tSparse (tensor-core dense tiles), 16 matrices.

The paper runs both in half precision on the tSparse paper's own dataset
and reports TileSpGEMM winning all 16 with a 1.98x geometric-mean and
4.04x maximum speedup: recasting sparse tiles as dense tensor-core GEMMs
wastes the tiles' sparsity.  This bench regenerates the per-matrix GFlops
pairs and the speedup summary from the GPU model (tSparse runs its actual
dense tile-pair GEMM implementation; the model charges tensor-core rates).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_method, save_and_print, tiled_of
from repro.analysis import format_table, geometric_mean
from repro.baselines import get_algorithm
from repro.gpu import RTX3090, estimate_run
from repro.matrices import tsparse_16


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for spec in tsparse_16():
        a = spec.matrix()
        tile_res = run_method("tilespgemm", a)
        ts_res = get_algorithm("tsparse")(a, a, a_tiled=tiled_of(a), b_tiled=tiled_of(a))
        out[spec.name] = {
            "tile": estimate_run(tile_res, RTX3090).gflops,
            "tsparse": estimate_run(ts_res, RTX3090).gflops,
            "dense_macs": ts_res.stats["dense_macs"],
            "products": ts_res.stats["num_products"],
        }
    return out


def test_fig13_report(benchmark, comparison):
    rows = []
    speedups = []
    for name, v in comparison.items():
        speedup = v["tile"] / v["tsparse"] if v["tsparse"] > 0 else float("inf")
        speedups.append(speedup)
        rows.append(
            [
                name,
                f"{v['tsparse']:.2f}",
                f"{v['tile']:.2f}",
                f"{speedup:.2f}x",
                f"{v['dense_macs'] / max(v['products'], 1):.1f}x",
            ]
        )
    text = format_table(
        ["matrix", "tSparse* GFlops", "TileSpGEMM GFlops", "speedup", "MAC waste"],
        rows,
        title="Figure 13: TileSpGEMM vs tSparse, modelled RTX 3090 "
        "(paper: geomean 1.98x, max 4.04x)",
    )
    text += (
        f"\n\ngeometric-mean speedup: {geometric_mean(speedups):.2f}x, "
        f"max: {max(s for s in speedups if np.isfinite(s)):.2f}x"
    )
    benchmark.pedantic(save_and_print, args=("fig13_tsparse", text), rounds=1, iterations=1)


def test_shape_tile_wins_most(comparison):
    wins = sum(1 for v in comparison.values() if v["tile"] > v["tsparse"])
    assert wins >= 12, wins


def test_shape_geomean_speedup_exceeds_one(comparison):
    """TileSpGEMM wins on geometric mean (paper: 1.98x).  Our hypersparse
    analogues overstate the win — their candidate-tile populations are
    denser per flop than the originals' at full scale (EXPERIMENTS.md) —
    so only the direction and a generous ceiling are asserted."""
    speedups = [
        v["tile"] / v["tsparse"] for v in comparison.values() if v["tsparse"] > 0
    ]
    g = geometric_mean(speedups)
    assert g > 1.2, g


def test_shape_dense_macs_wasteful(comparison):
    """The mechanism behind the win: dense tile GEMMs execute far more
    MACs than the sparse products actually needed."""
    for name, v in comparison.items():
        assert v["dense_macs"] > 2 * v["products"], name


def test_half_precision_modes_agree():
    """The paper runs both methods in half precision; our fp16 modes must
    produce the same product up to fp16 rounding."""
    import numpy as np

    from repro.core import tile_spgemm

    spec = tsparse_16()[4]  # lock1074 analogue
    a = spec.matrix()
    tiled = tiled_of(a)
    tile_half = tile_spgemm(tiled, tiled, value_dtype=np.float16).c.to_csr()
    ts_half = get_algorithm("tsparse")(
        a, a, dtype=np.float16, a_tiled=tiled, b_tiled=tiled
    ).c
    assert np.allclose(
        tile_half.to_dense(), ts_half.to_dense(), rtol=5e-2, atol=1e-1
    )


def test_bench_tsparse_kernel(benchmark):
    a = tsparse_16()[4].matrix()  # lock1074 analogue: small FEM
    res = benchmark.pedantic(
        lambda: get_algorithm("tsparse")(a, a), rounds=1, iterations=1
    )
    assert res.c.nnz > 0
