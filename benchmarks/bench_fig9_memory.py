"""Figure 9: runtime peak space cost of C = A^2 on the 18 matrices.

The paper plots live device memory against completion time for four
methods (cuSPARSE is closed source and absent).  This bench prints each
method's completion time (from the GPU model) and peak footprint (from
the allocation ledger), plus per-matrix curves saved as step-point lists.
Headline shapes: bhSPARSE's expansion buffer gives it the largest
footprint on high-compression matrices, and TileSpGEMM — which allocates
no global intermediate space — finishes smaller and earlier on most
matrices, except the hypersparse cop20k analogue where its per-tile
metadata blows up (the paper's own caveat).
"""

import pytest

from benchmarks.conftest import METHOD_LABELS, run_method, save_and_print
from repro.analysis import format_table
from repro.gpu import RTX3090, memory_curve
from repro.matrices import representative_18

#: Figure 9 compares these four (no cuSPARSE — closed source).
FIG9_METHODS = ["bhsparse_esc", "nsparse_hash", "speck", "tilespgemm"]


@pytest.fixture(scope="module")
def curves():
    out = {}
    for spec in representative_18():
        a = spec.matrix()
        out[spec.name] = {
            m: memory_curve(run_method(m, a), RTX3090) for m in FIG9_METHODS
        }
    return out


def test_fig9_report(benchmark, curves):
    rows = []
    for name, per in curves.items():
        row = [name]
        for m in FIG9_METHODS:
            c = per[m]
            row.append(f"{c.peak_mb:.2f}")
            row.append(f"{c.total_ms:.3f}")
        rows.append(row)
    headers = ["matrix"]
    for m in FIG9_METHODS:
        headers += [f"{METHOD_LABELS[m]} MB", f"{METHOD_LABELS[m]} ms"]
    text = format_table(
        headers,
        rows,
        title="Figure 9: peak logical memory (MB) and completion time (ms), C = A^2",
    )
    benchmark.pedantic(save_and_print, args=("fig9_memory", text), rounds=1, iterations=1)


def test_shape_expansion_methods_have_largest_footprint(curves):
    """bhSPARSE's full intermediate buffer or NSPARSE's global hash tables
    dominate the footprint on nearly every matrix (the paper's Figure 9:
    both libraries die of memory on the block-dense matrices)."""
    dominated = 0
    for name, per in curves.items():
        biggest = max(per, key=lambda m: per[m].peak_bytes)
        if biggest in ("bhsparse_esc", "nsparse_hash"):
            dominated += 1
    assert dominated >= 14, dominated


def test_shape_tile_smaller_than_esc_on_compressing_matrices(curves):
    """Wherever the product actually compresses (CR > 2), TileSpGEMM's
    footprint beats bhSPARSE's expansion buffer."""
    from repro.matrices import representative_18

    low_cr = {"mac_econ_fwd500", "mc2depi", "cop20k_A", "scircuit", "webbase-1M"}
    for name, per in curves.items():
        if name in low_cr:
            continue
        assert per["tilespgemm"].peak_bytes < per["bhsparse_esc"].peak_bytes, name


def test_shape_cop20k_is_tiles_weakness(curves):
    """On the hypersparse analogue the tiled metadata makes TileSpGEMM the
    *largest* non-ESC footprint — the paper's own Figure 9 caveat."""
    per = curves["cop20k_A"]
    assert per["tilespgemm"].peak_bytes > per["speck"].peak_bytes
    assert per["tilespgemm"].peak_bytes > per["nsparse_hash"].peak_bytes


def test_curves_are_step_functions(curves):
    for per in curves.values():
        for c in per.values():
            times = [t for t, _ in c.points]
            assert times == sorted(times)
            assert max(b for _, b in c.points) == c.peak_bytes


def test_bench_memory_tracking_overhead(benchmark):
    """Cost of one tracked run (ledger + curve building)."""
    a = representative_18()[2].matrix()  # cant
    from repro.baselines import get_algorithm

    def tracked():
        return memory_curve(get_algorithm("speck")(a, a), RTX3090)

    curve = benchmark.pedantic(tracked, rounds=1, iterations=1)
    assert curve.peak_bytes > 0
