"""Figure 10: the runtime breakdown of TileSpGEMM.

The paper reports that step 1 stays below ~5 % of runtime, steps 2 and 3
average ~15 % and ~70 %, and memory allocation ~20 % on some matrices.
This bench regenerates the stacked-bar data from the GPU cost model's
kernel estimates (the measured wall-clock split is printed alongside for
reference — interpreter overheads skew it, the modelled split is the
figure's counterpart).
"""

import pytest

from benchmarks.conftest import run_method, save_and_print
from repro.analysis import BUCKETS, estimated_breakdown, fractions, measured_breakdown
from repro.gpu import RTX3090, estimate_run
from repro.matrices import representative_18


@pytest.fixture(scope="module")
def breakdowns():
    out = {}
    for spec in representative_18():
        res = run_method("tilespgemm", spec.matrix())
        est = estimate_run(res, RTX3090)
        out[spec.name] = {
            "estimated": fractions(estimated_breakdown(est)),
            "measured": fractions(measured_breakdown(res)),
        }
    return out


def test_fig10_report(benchmark, breakdowns):
    from repro.analysis import format_table

    rows = []
    for name, d in breakdowns.items():
        rows.append(
            [name]
            + [f"{d['estimated'][b] * 100:.1f}" for b in BUCKETS]
            + [f"{d['measured'][b] * 100:.1f}" for b in BUCKETS]
        )
    text = format_table(
        ["matrix"]
        + [f"{b} % (model)" for b in BUCKETS]
        + [f"{b} % (wall)" for b in BUCKETS],
        rows,
        title="Figure 10: TileSpGEMM runtime breakdown "
        "(paper: step1 <5%, step2 ~15%, step3 ~70%, malloc ~20% on some)",
    )
    benchmark.pedantic(save_and_print, args=("fig10_breakdown", text), rounds=1, iterations=1)


def test_shape_step1_small(breakdowns):
    """Step 1 takes no more than ~fifth of runtime on the vast majority
    (paper: <5 %; at our scale fixed launch costs weigh more)."""
    small = sum(1 for d in breakdowns.values() if d["estimated"]["step1"] < 0.20)
    assert small >= 15, small


def test_shape_step3_dominates(breakdowns):
    """Step 3 is the largest bucket on matrices with real numeric work."""
    dominant = sum(
        1
        for d in breakdowns.values()
        if d["estimated"]["step3"] == max(d["estimated"][b] for b in BUCKETS)
    )
    assert dominant >= 10, dominant


def test_shape_malloc_visible_but_minor(breakdowns):
    for name, d in breakdowns.items():
        assert 0.0 <= d["estimated"]["malloc"] < 0.6, (name, d["estimated"])


def test_bench_breakdown_extraction(benchmark):
    res = run_method("tilespgemm", representative_18()[0].matrix())
    est = estimate_run(res, RTX3090)
    out = benchmark.pedantic(lambda: fractions(estimated_breakdown(est)), rounds=5, iterations=10)
    assert abs(sum(out.values()) - 1.0) < 1e-9
