"""Shared infrastructure for the benchmark harnesses.

Each ``bench_*`` module regenerates one of the paper's tables or figures:
it runs the relevant algorithms on the relevant suite, prints the same
rows/series the paper reports, and saves the rendered table under
``benchmarks/results/``.  ``pytest-benchmark`` wraps one representative
kernel invocation per module so wall-clock timings land in the benchmark
report as well.

Runs are cached per ``(matrix, method, op)`` across modules — many figures
share the same underlying executions (Figure 7's runs feed Figures 9 and
10), exactly like the paper's artifact scripts reuse one measurement pass.

Environment knobs:

* ``REPRO_BENCH_MAX_MATRICES`` — cap the Figure 6 sweep (default: full).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Dict, Tuple

import pytest

# Make `tests.conftest` importable when running `pytest benchmarks/`.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.baselines import get_algorithm
from repro.baselines.base import SpGEMMResult
from repro.core.tile_matrix import TileMatrix
from repro.formats.csr import CSRMatrix

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The five methods of the paper's main comparison, in its plotting order.
PAPER_METHODS = ["cusparse_spa", "bhsparse_esc", "nsparse_hash", "speck", "tilespgemm"]

#: Pretty names used in the printed tables.
METHOD_LABELS = {
    "cusparse_spa": "cuSPARSE*",
    "bhsparse_esc": "bhSPARSE*",
    "nsparse_hash": "NSPARSE*",
    "speck": "spECK*",
    "tilespgemm": "TileSpGEMM",
    "tsparse": "tSparse*",
}

_RUN_CACHE: Dict[Tuple[int, str, str], SpGEMMResult] = {}
_TILED_CACHE: Dict[int, TileMatrix] = {}


def tiled_of(a: CSRMatrix) -> TileMatrix:
    """Cached CSR -> tiled conversion for a suite matrix."""
    key = id(a)
    if key not in _TILED_CACHE:
        _TILED_CACHE[key] = TileMatrix.from_csr(a)
    return _TILED_CACHE[key]


def run_method(
    method: str, a: CSRMatrix, op: str = "aa", cache: bool = True, **kwargs
) -> SpGEMMResult:
    """Run ``method`` on ``C = A^2`` (op="aa") or ``C = A A^T`` (op="aat").

    Results are cached by default so figures sharing a suite (7/9/10 on the
    representative 18, 13/14 on the tSparse 16) reuse one measurement pass;
    pass ``cache=False`` for sweeps whose results are consumed once (the
    Figure 6 dataset) to bound host memory.
    """
    key = (id(a), method, op)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    b = a if op == "aa" else a.transpose()
    if method == "tilespgemm" and op == "aa":
        kwargs.setdefault("a_tiled", tiled_of(a))
        kwargs.setdefault("b_tiled", tiled_of(a))
    result = get_algorithm(method)(a, b, **kwargs)
    if cache:
        _RUN_CACHE[key] = result
    return result


#: Host-memory budget for one baseline's transient expansion buffers.  A
#: run whose estimated working set exceeds this is reported as failed
#: (0 GFlops), the same convention the paper uses for device OOM.
HOST_EXPANSION_BUDGET_BYTES: float = float(
    os.environ.get("REPRO_HOST_BUDGET_BYTES", 3.5e9)
)

#: Approximate transient host bytes per intermediate product for the
#: expansion-based baselines (index+value arrays, sort keys, argsort).
_EXPANSION_BYTES_PER_PRODUCT = {
    "bhsparse_esc": 60.0,
    "nsparse_hash": 55.0,
    "speck": 45.0,
    # cuSPARSE's workspace also scales with the intermediate products (the
    # paper observes it OOM on webbase-1M's A A^T even with 24 GB); the
    # dense-row stand-in is charged the same class of budget.
    "cusparse_spa": 55.0,
}


def expansion_would_exceed_budget(method: str, a: CSRMatrix, b: CSRMatrix) -> bool:
    """Whether running ``method`` would blow the host expansion budget."""
    from repro.baselines.base import flops_of_product

    per_product = _EXPANSION_BYTES_PER_PRODUCT.get(method)
    if per_product is None:
        return False
    products = flops_of_product(a, b) / 2
    return products * per_product > HOST_EXPANSION_BUDGET_BYTES


def save_and_print(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


def save_series_json(name: str, series, *, suite: str | None = None,
                     label: str | None = None, warmup: int = 0,
                     repeats: int = 1, seed: int = 0) -> Path:
    """Persist a list of ``repro.bench`` series dicts next to the .txt table.

    The resulting ``benchmarks/results/<name>.json`` is a full
    schema-versioned document (``repro.bench/1``), diffable against any
    other run with ``python -m repro bench compare`` and appendable to the
    ``benchmarks/history/`` store.
    """
    from repro.bench import schema

    doc = schema.new_document(
        label=label or name, suite=suite or name,
        warmup=warmup, repeats=repeats, seed=seed,
    )
    doc["series"] = list(series)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    schema.write_document(doc, path)
    print(f"[saved to benchmarks/results/{name}.json]")
    return path


def fig6_matrix_cap() -> int | None:
    raw = os.environ.get("REPRO_BENCH_MAX_MATRICES", "")
    return int(raw) if raw else None


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
