"""Table 1: the evaluated platforms and algorithms.

Prints the reproduction's counterpart of the paper's Table 1 — the two
modelled devices with their specifications, and the six algorithm
implementations — and benchmarks a small end-to-end SpGEMM with each
method as a smoke-level performance reference.
"""

import pytest

from benchmarks.conftest import METHOD_LABELS, PAPER_METHODS, save_and_print
from repro.analysis import format_table
from repro.baselines import available_algorithms
from repro.gpu import RTX3060, RTX3090
from repro.matrices import generators

_MATRIX = generators.banded(1200, 12, fill=0.9, seed=1).to_csr()


def test_table1_report(benchmark):
    device_rows = [
        [
            d.name,
            d.num_sms,
            d.cuda_cores,
            f"{d.clock_ghz:.2f} GHz",
            f"{d.dram_gb:.0f} GB",
            f"{d.dram_bw_gbs:.1f} GB/s",
        ]
        for d in (RTX3060, RTX3090)
    ]
    algo_rows = [[METHOD_LABELS.get(m, m), m] for m in available_algorithms()]
    text = (
        format_table(
            ["device model", "SMs", "CUDA cores", "clock", "DRAM", "bandwidth"],
            device_rows,
            title="Table 1a: modelled GPUs (paper: two NVIDIA Ampere GPUs)",
        )
        + "\n\n"
        + format_table(
            ["algorithm (paper counterpart)", "registry name"],
            algo_rows,
            title="Table 1b: algorithm implementations (* = strategy reimplementation)",
        )
    )
    benchmark.pedantic(save_and_print, args=("table1_setup", text), rounds=1, iterations=1)
    assert len(device_rows) == 2
    assert len(algo_rows) >= 8


@pytest.mark.parametrize("method", PAPER_METHODS)
def test_bench_small_spgemm(benchmark, method):
    """One small C = A^2 per method (wall-clock reference point)."""
    from repro.baselines import get_algorithm

    result = benchmark.pedantic(
        lambda: get_algorithm(method)(_MATRIX, _MATRIX),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["nnz_c"] = result.c.nnz
    benchmark.extra_info["gflops_measured"] = result.gflops()
    assert result.c.nnz > 0
