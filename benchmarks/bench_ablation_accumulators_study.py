"""Ablation: the sparse-accumulator design space (paper §5, issue #3).

The paper's related-work section organises row-row SpGEMM by accumulator
family — dense row (Gilbert SPA), ESC sort, heap, hash, merge — and argues
each wins a different row-length regime; TileSpGEMM sidesteps the choice
because a tile's accumulator space is bounded.  This study reproduces that
landscape: controlled workloads with uniform row lengths from 4 to 2048,
one column per accumulator family, measuring modelled time per product.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_and_print
from repro.analysis import format_table
from repro.baselines import get_algorithm
from repro.formats.coo import COOMatrix
from repro.gpu import RTX3090, estimate_run

#: Accumulator families under study (registry names).
FAMILIES = ["cusparse_spa", "bhsparse_esc", "nsparse_hash", "rmerge", "tilespgemm"]

ROW_LENGTHS = [4, 16, 48, 96, 192]


def uniform_row_matrix(n: int, row_len: int, seed: int) -> "CSRMatrix":
    """A square matrix whose rows all hold exactly ``row_len`` nonzeros."""
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n, dtype=np.int64), row_len)
    cols = np.concatenate(
        [rng.choice(n, size=row_len, replace=False) for _ in range(n)]
    )
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    return COOMatrix((n, n), rows, cols, vals).to_csr()


@pytest.fixture(scope="module")
def study():
    out = {}
    for row_len in ROW_LENGTHS:
        n = max(2 * row_len, 512)
        a = uniform_row_matrix(n, row_len, seed=row_len)
        per = {}
        for fam in FAMILIES:
            res = get_algorithm(fam)(a, a)
            est = estimate_run(res, RTX3090)
            per[fam] = est.seconds / max(res.stats["num_products"], 1) * 1e9
        out[row_len] = per
    return out


def test_accumulator_study_report(benchmark, study):
    rows = [
        [row_len] + [f"{per[f]:.3f}" for f in FAMILIES]
        for row_len, per in study.items()
    ]
    text = format_table(
        ["row length"] + FAMILIES,
        rows,
        title="Accumulator study: modelled ns per intermediate product "
        "(uniform-row workloads; paper §5's accumulator families)",
    )
    benchmark.pedantic(
        save_and_print, args=("ablation_accumulators_study", text), rounds=1, iterations=1
    )


def test_shape_every_family_correct(study):
    """(Correctness is asserted while building the fixture: every family
    ran through the registry and its result fed the estimator.)"""
    assert set(study) == set(ROW_LENGTHS)


def test_shape_expansion_pressure_worst_on_long_rows(study):
    """On the longest rows, an expansion-pressure family (ESC's buffers or
    NSPARSE's spilled tables) has the worst per-product cost."""
    per = study[192]
    worst = max(per, key=per.get)
    assert worst in ("bhsparse_esc", "nsparse_hash"), per


def test_shape_tile_best_on_long_rows(study):
    """TileSpGEMM's bounded accumulator makes it the cheapest family once
    rows are long enough to fill tiles (the boundedness argument)."""
    for row_len in (96, 192):
        per = study[row_len]
        assert per["tilespgemm"] == min(per.values()), (row_len, per)


def test_shape_row_growth_hurts_row_methods_not_tiles(study):
    """From row length 48 to 192 the hash family's per-product cost grows
    (spill) while TileSpGEMM's shrinks (denser tiles)."""
    assert study[192]["nsparse_hash"] > study[48]["nsparse_hash"]
    assert study[192]["tilespgemm"] < study[48]["tilespgemm"]


def test_bench_study_point(benchmark):
    a = uniform_row_matrix(512, 64, seed=99)
    res = benchmark.pedantic(lambda: get_algorithm("rmerge")(a, a), rounds=1, iterations=1)
    assert res.c.nnz > 0
