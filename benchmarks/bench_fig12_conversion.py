"""Figure 12: CSR -> tiled conversion time vs a single TileSpGEMM run.

The paper shows conversion costing no more than ~ten SpGEMM runs across a
flops sweep, arguing the tiled format is worth holding resident (AMG etc.
chain SpGEMMs).  This bench measures both wall-clock quantities across the
representative suite, sorted by flops exactly like the figure's x-axis.
"""

import time

import pytest

from benchmarks.conftest import save_and_print
from repro.analysis import format_table
from repro.core import TileMatrix, tile_spgemm
from repro.matrices import matrix_stats, representative_18


@pytest.fixture(scope="module")
def conversion_data():
    rows = []
    for spec in representative_18():
        a = spec.matrix()
        st = matrix_stats(a)
        t0 = time.perf_counter()
        tiled = TileMatrix.from_csr(a)
        conv_s = time.perf_counter() - t0
        res = tile_spgemm(tiled, tiled)
        spgemm_s = res.timer.total
        rows.append(
            {
                "name": spec.name,
                "flops": st.flops,
                "conv_ms": conv_s * 1e3,
                "spgemm_ms": spgemm_s * 1e3,
                "ratio": conv_s / spgemm_s if spgemm_s > 0 else float("inf"),
            }
        )
    return sorted(rows, key=lambda r: r["flops"])


def test_fig12_report(benchmark, conversion_data):
    rows = [
        [r["name"], f"{r['flops']:.2e}", f"{r['conv_ms']:.3f}", f"{r['spgemm_ms']:.3f}", f"{r['ratio']:.3f}"]
        for r in conversion_data
    ]
    text = format_table(
        ["matrix", "#flops A^2", "conversion ms", "one SpGEMM ms", "conv / SpGEMM"],
        rows,
        title="Figure 12: CSR->tiled conversion vs a single TileSpGEMM "
        "(paper: conversion <= ~10 SpGEMMs)",
    )
    benchmark.pedantic(save_and_print, args=("fig12_conversion", text), rounds=1, iterations=1)


def test_shape_conversion_at_most_ten_spgemms(conversion_data):
    ok = sum(1 for r in conversion_data if r["ratio"] <= 10.0)
    assert ok >= 16, [r["name"] for r in conversion_data if r["ratio"] > 10.0]


def test_shape_conversion_cheap_on_heavy_matrices(conversion_data):
    """The flops-heavy half of the sweep amortises conversion to <1 run."""
    heavy = conversion_data[len(conversion_data) // 2 :]
    assert all(r["ratio"] < 2.0 for r in heavy), [(r["name"], r["ratio"]) for r in heavy]


def test_bench_conversion(benchmark):
    a = representative_18()[0].matrix()
    tiled = benchmark.pedantic(lambda: TileMatrix.from_csr(a), rounds=3, iterations=1)
    assert tiled.nnz == a.nnz
