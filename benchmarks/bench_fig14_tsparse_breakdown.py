"""Figure 14: runtime breakdown of tSparse vs TileSpGEMM on the 16 matrices.

The paper's stacked bars show tSparse dominated by memory allocation
(repeated resizing of its dense result buffer) and by steps 2/3 on sparse
tiles, while TileSpGEMM's allocation share stays small.  This bench prints
both methods' modelled per-bucket milliseconds side by side.
"""

import pytest

from benchmarks.conftest import run_method, save_and_print, tiled_of
from repro.analysis import BUCKETS, estimated_breakdown, format_table
from repro.baselines import get_algorithm
from repro.gpu import RTX3090, estimate_run
from repro.matrices import tsparse_16


@pytest.fixture(scope="module")
def breakdowns():
    out = {}
    for spec in tsparse_16():
        a = spec.matrix()
        tile_est = estimate_run(run_method("tilespgemm", a), RTX3090)
        ts_est = estimate_run(
            get_algorithm("tsparse")(a, a, a_tiled=tiled_of(a), b_tiled=tiled_of(a)),
            RTX3090,
        )
        out[spec.name] = {
            "tile": estimated_breakdown(tile_est),
            "tsparse": estimated_breakdown(ts_est),
        }
    return out


def test_fig14_report(benchmark, breakdowns):
    rows = []
    for name, d in breakdowns.items():
        rows.append(
            [name]
            + [f"{d['tsparse'][b] * 1e3:.3f}" for b in BUCKETS]
            + [f"{d['tile'][b] * 1e3:.3f}" for b in BUCKETS]
        )
    text = format_table(
        ["matrix"]
        + [f"tS {b} ms" for b in BUCKETS]
        + [f"Tile {b} ms" for b in BUCKETS],
        rows,
        title="Figure 14: modelled runtime breakdown, tSparse vs TileSpGEMM",
    )
    benchmark.pedantic(save_and_print, args=("fig14_tsparse_breakdown", text), rounds=1, iterations=1)


def test_shape_tsparse_alloc_share_larger(breakdowns):
    """tSparse's allocation share exceeds TileSpGEMM's on most matrices
    (the dense result buffers + resizing)."""
    bigger = 0
    for d in breakdowns.values():
        ts_total = sum(d["tsparse"].values())
        tile_total = sum(d["tile"].values())
        if ts_total > 0 and tile_total > 0:
            if d["tsparse"]["malloc"] / ts_total >= d["tile"]["malloc"] / tile_total:
                bigger += 1
    assert bigger >= 11, bigger


def test_shape_tsparse_slower_overall(breakdowns):
    slower = sum(
        1
        for d in breakdowns.values()
        if sum(d["tsparse"].values()) > sum(d["tile"].values())
    )
    assert slower >= 12, slower


def test_bench_breakdown_pipeline(benchmark):
    spec = tsparse_16()[3]
    a = spec.matrix()

    def pipeline():
        est = estimate_run(run_method("tilespgemm", a), RTX3090)
        return estimated_breakdown(est)

    out = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert set(out) == set(BUCKETS)
