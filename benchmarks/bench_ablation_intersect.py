"""Ablation: binary search vs merge for the step-2 set intersection.

Paper §3.3: 'we in our experiments find that the merging primitive is
often slower than binary search approach for set intersection' — the
serial two-pointer walk wastes the warp, while one-lane-per-needle binary
search parallelises.  This ablation compares the two on the modelled
per-tile costs across the suite and cross-checks that both enumerate
identical pairs; it also reports the step-1 hash-vs-expand choice.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_method, save_and_print, tiled_of
from repro.analysis import format_table
from repro.core import binary_search_cost, merge_cost
from repro.core.pairs import enumerate_pairs_expand
from repro.matrices import representative_18


@pytest.fixture(scope="module")
def costs():
    out = {}
    for spec in representative_18():
        a = tiled_of(spec.matrix())
        pairs = enumerate_pairs_expand(a, a)
        if pairs.num_c_tiles == 0:
            continue
        la = pairs.len_a.astype(float)
        lb = pairs.len_b.astype(float)
        out[spec.name] = {
            "binary": float(binary_search_cost(la, lb).sum()),
            "merge": float(merge_cost(la, lb).sum()),
            "tiles": pairs.num_c_tiles,
        }
    return out


def test_ablation_report(benchmark, costs):
    rows = [
        [
            name,
            v["tiles"],
            f"{v['binary'] / v['tiles']:.1f}",
            f"{v['merge'] / v['tiles']:.1f}",
            f"{v['merge'] / max(v['binary'], 1e-9):.2f}x",
        ]
        for name, v in costs.items()
    ]
    text = format_table(
        ["matrix", "C tiles", "binary cyc/tile", "merge cyc/tile", "merge/binary"],
        rows,
        title="Ablation: set-intersection strategy (paper picks binary search)",
    )
    benchmark.pedantic(save_and_print, args=("ablation_intersect", text), rounds=1, iterations=1)


def test_shape_binary_cheaper_on_most_matrices(costs):
    wins = sum(1 for v in costs.values() if v["binary"] < v["merge"])
    assert wins >= len(costs) * 0.7, wins


def test_pair_enumeration_strategies_identical():
    """binary / merge / vectorised expansion all find the same pairs."""
    from repro.core.pairs import enumerate_pairs_intersect

    spec = next(s for s in representative_18() if s.name == "mc2depi")
    a = tiled_of(spec.matrix())
    p_expand = enumerate_pairs_expand(a, a)
    p_binary = enumerate_pairs_intersect(a, a, method="binary")
    assert np.array_equal(p_expand.pair_a, p_binary.pair_a)
    assert np.array_equal(p_expand.pair_b, p_binary.pair_b)


def test_step1_methods_agree():
    from repro.core import step1_tile_layout

    spec = next(s for s in representative_18() if s.name == "scircuit")
    a = tiled_of(spec.matrix())
    l1 = step1_tile_layout(a.tile_pattern_csr(), a.tile_pattern_csr(), "expand")
    l2 = step1_tile_layout(a.tile_pattern_csr(), a.tile_pattern_csr(), "hash")
    assert np.array_equal(l1.tilecolidx, l2.tilecolidx)


@pytest.mark.parametrize("method", ["binary", "merge"])
def test_bench_intersection(benchmark, method):
    from repro.core.pairs import enumerate_pairs_intersect

    spec = next(s for s in representative_18() if s.name == "mc2depi")
    a = tiled_of(spec.matrix())
    pairs = benchmark.pedantic(
        lambda: enumerate_pairs_intersect(a, a, method=method), rounds=1, iterations=1
    )
    benchmark.extra_info["pairs"] = pairs.num_pairs
