"""Table 2: the 18 representative matrices — paper vs synthetic analogue.

Regenerates the paper's Table 2 columns (n, nnz, #flops of C = A^2,
nnz(C), compression rate) for the scaled synthetic analogues, side by side
with the paper's original values.  The *compression rate* column is the
one the analogues are built to match (it is the x-axis of Figure 6); n,
nnz and flops are smaller by the documented ~10-1000x scale factor.
"""

from benchmarks.conftest import save_and_print
from repro.analysis import format_table
from repro.matrices import matrix_stats, representative_18


def test_table2_report(benchmark):
    rows = []
    cr_ok = 0
    for spec in representative_18():
        st = matrix_stats(spec.matrix())
        p = spec.paper
        rows.append(
            [
                spec.name,
                spec.category,
                st.n,
                st.nnz,
                f"{st.flops:.2e}",
                st.nnz_c,
                f"{st.compression_rate:.2f}",
                f"{p.compression_rate:.2f}",
            ]
        )
        if p.compression_rate / 2.2 <= st.compression_rate <= p.compression_rate * 2.2:
            cr_ok += 1
    text = format_table(
        ["matrix", "class", "n", "nnz(A)", "#flops A^2", "nnz(C)", "CR (ours)", "CR (paper)"],
        rows,
        title="Table 2: representative matrices — synthetic analogue vs paper",
    )
    benchmark.pedantic(save_and_print, args=("table2_matrices", text), rounds=1, iterations=1)
    assert len(rows) == 18
    # The analogues must track the paper's compression rates.
    assert cr_ok >= 15, f"only {cr_ok}/18 analogues within 2.2x of the paper's CR"


def test_bench_matrix_stats(benchmark):
    """Cost of the statistics pass itself (symbolic A^2) on one matrix."""
    spec = next(s for s in representative_18() if s.name == "cant")
    a = spec.matrix()
    st = benchmark.pedantic(lambda: matrix_stats(a), rounds=2, iterations=1)
    benchmark.extra_info["compression_rate"] = st.compression_rate
    assert st.nnz_c > 0
