"""Figure 11: space cost of the tiled format vs CSR, CSB-M and CSB-I.

The paper reports the tiled structure averaging 31.28 MB *less* than CSR
but 113.43 / 82.09 MB *more* than CSB-M / CSB-I, because of the per-tile
row pointers and bit masks.  This bench regenerates the comparison on the
18 analogues and checks the ordering: tiled < CSR on the majority, CSB
variants < tiled on the majority.
"""

import pytest

from benchmarks.conftest import save_and_print, tiled_of
from repro.analysis import format_table
from repro.formats.csb import CSBMatrix
from repro.matrices import representative_18


@pytest.fixture(scope="module")
def space_table():
    out = {}
    for spec in representative_18():
        a = spec.matrix()
        coo = a.to_coo()
        out[spec.name] = {
            "csr": a.memory_bytes(),
            "csb_m": CSBMatrix(coo, variant="M").memory_bytes(),
            "csb_i": CSBMatrix(coo, variant="I").memory_bytes(),
            "tiled": tiled_of(a).memory_bytes(),
        }
    return out


def test_fig11_report(benchmark, space_table):
    rows = [
        [
            name,
            f"{v['csr'] / 1e6:.3f}",
            f"{v['csb_m'] / 1e6:.3f}",
            f"{v['csb_i'] / 1e6:.3f}",
            f"{v['tiled'] / 1e6:.3f}",
        ]
        for name, v in space_table.items()
    ]
    deltas = {
        "tiled - csr": sum(v["tiled"] - v["csr"] for v in space_table.values()) / 18 / 1e6,
        "tiled - csb_m": sum(v["tiled"] - v["csb_m"] for v in space_table.values()) / 18 / 1e6,
        "tiled - csb_i": sum(v["tiled"] - v["csb_i"] for v in space_table.values()) / 18 / 1e6,
    }
    text = format_table(
        ["matrix", "CSR MB", "CSB-M MB", "CSB-I MB", "Tiled MB"],
        rows,
        title="Figure 11: format space cost (paper: tiled saves 31.28 MB vs CSR on "
        "average, costs +113.43/+82.09 MB vs CSB-M/CSB-I)",
    )
    text += "\n\naverage deltas (MB): " + ", ".join(
        f"{k} = {v:+.3f}" for k, v in deltas.items()
    )
    benchmark.pedantic(save_and_print, args=("fig11_format_space", text), rounds=1, iterations=1)


def test_shape_tiled_beats_csr_on_majority(space_table):
    """Tiled < CSR on the clear majority of matrices (the paper's "in
    general takes less space"); the hypersparse analogues are the
    exceptions, exactly as the paper's cop20k_A discussion predicts."""
    wins = sum(1 for v in space_table.values() if v["tiled"] < v["csr"])
    assert wins >= 11, wins


def test_shape_tiled_beats_csr_where_tiles_populated(space_table):
    """Summed over the FEM/block/clustered analogues (tiles carrying
    several nonzeros), the tiled structure is strictly smaller than CSR."""
    from repro.matrices import representative_18

    dense_classes = {"fem", "block", "clustered"}
    names = {s.name for s in representative_18() if s.category in dense_classes}
    tiled = sum(v["tiled"] for n, v in space_table.items() if n in names)
    csr = sum(v["csr"] for n, v in space_table.items() if n in names)
    assert tiled < csr


def test_shape_csb_beats_tiled_on_sparse_tiles(space_table):
    """CSB carries no per-block masks/row pointers, so it undercuts the
    tiled format wherever tiles are thinly populated (the regime that
    drives the paper's average: its full-size matrices hold ~4-12 nonzeros
    per tile; see EXPERIMENTS.md on why our denser scaled FEM analogues
    flip the ordering there)."""
    from repro.matrices import representative_18

    sparse_classes = {"hypersparse", "powerlaw", "random", "stencil"}
    names = {s.name for s in representative_18() if s.category in sparse_classes}
    for name in names:
        v = space_table[name]
        assert v["csb_m"] < v["tiled"], name
        assert v["csb_i"] < v["tiled"], name


def test_shape_hypersparse_is_tiled_worst_case(space_table):
    """cop20k analogue: per-tile metadata explodes relative to CSR."""
    v = space_table["cop20k_A"]
    assert v["tiled"] > v["csr"]


def test_bench_format_conversions(benchmark):
    a = representative_18()[3].matrix()  # pwtk analogue
    coo = a.to_coo()

    def build_all():
        return (
            CSBMatrix(coo, variant="M").memory_bytes(),
            CSBMatrix(coo, variant="I").memory_bytes(),
        )

    out = benchmark.pedantic(build_all, rounds=1, iterations=1)
    assert all(x > 0 for x in out)
