"""Figure 6: performance vs compression rate over the full dataset,
A^2 and A A^T, two modelled GPUs, with regression lines and scalability.

The paper's headline figure: for all (142, here: synthetic stand-in)
matrices, each method's GFlops is plotted against the matrix's compression
rate (log10), a linear trend is fitted per method, and the bottom row
shows each method's RTX 3090 / RTX 3060 speedup.  This bench regenerates
all three series: per-matrix GFlops, the regression (slope/intercept/r),
and the scalability geometric means.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    METHOD_LABELS,
    PAPER_METHODS,
    fig6_matrix_cap,
    run_method,
    save_and_print,
    save_series_json,
)
from repro.analysis import ascii_scatter, fit_loglinear, format_table, geometric_mean
from repro.bench.schema import make_series
from repro.gpu import RTX3060, RTX3090, estimate_run
from repro.matrices import full_dataset, matrix_stats


@pytest.fixture(scope="module")
def sweep():
    """Run every method over the dataset; collect CR and GFlops/device."""
    specs = full_dataset(max_matrices=fig6_matrix_cap())
    data = []
    for spec in specs:
        a = spec.matrix()
        st = matrix_stats(a)
        entry = {"name": spec.name, "category": spec.category, "cr": st.compression_rate}
        for method in PAPER_METHODS:
            res = run_method(method, a, cache=False)
            entry[(method, "3090")] = estimate_run(res, RTX3090).gflops
            entry[(method, "3060")] = estimate_run(res, RTX3060).gflops
            del res
        data.append(entry)
    return data


def test_fig6_report(benchmark, sweep):
    rows = [
        [e["name"], e["category"], f"{e['cr']:.2f}"]
        + [f"{e[(m, '3090')]:.2f}" for m in PAPER_METHODS]
        for e in sorted(sweep, key=lambda e: e["cr"])
    ]
    text = format_table(
        ["matrix", "class", "CR"] + [METHOD_LABELS[m] for m in PAPER_METHODS],
        rows,
        title=f"Figure 6 (top): estimated GFlops vs compression rate, C = A^2, "
        f"RTX 3090 model ({len(sweep)} matrices)",
    )

    # Regression lines (the paper's overlays).
    reg_rows = []
    for m in PAPER_METHODS:
        line = fit_loglinear([e["cr"] for e in sweep], [e[(m, "3090")] for e in sweep])
        reg_rows.append(
            [METHOD_LABELS[m], f"{line.slope:.2f}", f"{line.intercept:.2f}", f"{line.r_value:.2f}"]
        )
    text += "\n\n" + format_table(
        ["method", "slope (GFlops per decade of CR)", "intercept", "r"],
        reg_rows,
        title="Figure 6 regression lines",
    )

    # Scalability sub-figures (bottom row).
    scal_rows = []
    for m in PAPER_METHODS:
        ratios = [
            e[(m, "3090")] / e[(m, "3060")]
            for e in sweep
            if e[(m, "3060")] > 0 and e[(m, "3090")] > 0
        ]
        scal_rows.append([METHOD_LABELS[m], f"{geometric_mean(ratios):.2f}"])
    text += "\n\n" + format_table(
        ["method", "3090/3060 speedup (geomean)"],
        scal_rows,
        title="Figure 6 (bottom): scalability   (paper: bh 2.12x, ns 2.66x, speck 2.82x, tile 2.53x)",
    )

    # ASCII scatter panels (the paper's per-method sub-figures).
    for m in ("tilespgemm", "speck"):
        text += "\n\n" + ascii_scatter(
            [e["cr"] for e in sweep],
            [e[(m, "3090")] for e in sweep],
            title=f"Figure 6 panel: {METHOD_LABELS[m]} (RTX 3090 model)",
            xlabel="compression rate (log10)",
            ylabel="GFlops",
        )
    benchmark.pedantic(save_and_print, args=("fig6_performance", text), rounds=1, iterations=1)
    # Model-derived series: no wall samples, the 3090 GFlops estimate is the
    # scalar the comparison engine falls back to (threshold-only verdicts).
    series = [
        make_series(
            e["name"], m, "aa",
            gflops=e[(m, "3090")],
            extra={
                "category": e["category"],
                "compression_rate": e["cr"],
                "gflops_3060": e[(m, "3060")],
            },
        )
        for e in sweep
        for m in PAPER_METHODS
    ]
    save_series_json("fig6_performance", series, suite="fig6")


def test_shape_gflops_grow_with_compression(sweep):
    """The paper's regression reading: TileSpGEMM's trend line rises with
    compression rate, and more steeply than the row-row methods'."""
    tile = fit_loglinear([e["cr"] for e in sweep], [e[("tilespgemm", "3090")] for e in sweep])
    assert tile.slope > 0
    esc = fit_loglinear([e["cr"] for e in sweep], [e[("bhsparse_esc", "3090")] for e in sweep])
    assert tile.slope > esc.slope


def test_shape_tile_wins_majority_of_dataset(sweep):
    wins = sum(
        1
        for e in sweep
        if e[("tilespgemm", "3090")] == max(e[(m, "3090")] for m in PAPER_METHODS)
    )
    assert wins >= len(sweep) * 0.5, f"{wins}/{len(sweep)}"


def test_shape_scalability_between_2_and_3(sweep):
    for m in ("tilespgemm", "speck", "nsparse_hash"):
        ratios = [
            e[(m, "3090")] / e[(m, "3060")] for e in sweep if e[(m, "3060")] > 0
        ]
        g = geometric_mean(ratios)
        assert 1.5 < g < 3.2, (m, g)


def test_bench_one_sweep_point(benchmark):
    """Wall-clock of the full method fleet on one mid-size matrix."""
    spec = full_dataset()[0]
    a = spec.matrix()
    from repro.baselines import get_algorithm

    def fleet():
        return [get_algorithm(m)(a, a) for m in PAPER_METHODS]

    results = benchmark.pedantic(fleet, rounds=1, iterations=1)
    assert all(r.c.nnz > 0 for r in results)
