"""Ablation: tile size (paper §3.2's argument for 16x16).

The paper fixes the tile size at 16 because it exactly saturates the uint8
packed local-index pair and the uint16 row mask; 4x4 and 8x8 'cannot
saturate the 8-bit data type and bring more complex packing'.  This
ablation runs TileSpGEMM with tile sizes 4/8/16 and reports:

* format space (smaller tiles mean more tiles, more per-tile metadata);
* tile population statistics (tiles, nnz per tile);
* SpGEMM wall time and candidate-tile counts.
"""

import time

import pytest

from benchmarks.conftest import save_and_print
from repro.analysis import format_table
from repro.core import TileMatrix, tile_spgemm
from repro.matrices import representative_18

TILE_SIZES = [4, 8, 16]


@pytest.fixture(scope="module")
def ablation():
    spec = next(s for s in representative_18() if s.name == "cant")
    a = spec.matrix()
    out = {}
    for t in TILE_SIZES:
        tiled = TileMatrix.from_csr(a, t)
        t0 = time.perf_counter()
        res = tile_spgemm(tiled, tiled)
        wall = time.perf_counter() - t0
        out[t] = {
            "tiles_a": tiled.num_tiles,
            "nnz_per_tile": tiled.nnz / max(tiled.num_tiles, 1),
            "space_mb": tiled.memory_bytes() / 1e6,
            "c_tiles": res.c.num_tiles,
            "wall_ms": wall * 1e3,
            "nnz_c": res.c.nnz,
        }
    return out


def test_ablation_report(benchmark, ablation):
    rows = [
        [
            f"{t}x{t}",
            v["tiles_a"],
            f"{v['nnz_per_tile']:.1f}",
            f"{v['space_mb']:.3f}",
            v["c_tiles"],
            f"{v['wall_ms']:.1f}",
        ]
        for t, v in ablation.items()
    ]
    text = format_table(
        ["tile", "tiles(A)", "nnz/tile", "space MB", "tiles(C)", "SpGEMM ms"],
        rows,
        title="Ablation: tile size (paper fixes 16x16: saturates uint8 indices + uint16 masks)",
    )
    benchmark.pedantic(save_and_print, args=("ablation_tilesize", text), rounds=1, iterations=1)


def test_shape_results_identical_across_tile_sizes(ablation):
    nnz = {v["nnz_c"] for v in ablation.values()}
    assert len(nnz) == 1  # same product regardless of tiling


def test_shape_smaller_tiles_more_metadata(ablation):
    """4x4 and 8x8 fragment the matrix into far more tiles."""
    assert ablation[4]["tiles_a"] > ablation[8]["tiles_a"] > ablation[16]["tiles_a"]


def test_shape_16_is_space_sweet_spot_vs_4(ablation):
    """Per-tile metadata makes tiny tiles costlier in space."""
    assert ablation[16]["space_mb"] < ablation[4]["space_mb"]


@pytest.mark.parametrize("tile_size", TILE_SIZES)
def test_bench_tilesize(benchmark, tile_size):
    spec = next(s for s in representative_18() if s.name == "rma10")
    a = spec.matrix()
    tiled = TileMatrix.from_csr(a, tile_size)
    res = benchmark.pedantic(lambda: tile_spgemm(tiled, tiled), rounds=1, iterations=1)
    benchmark.extra_info["c_tiles"] = res.c.num_tiles
