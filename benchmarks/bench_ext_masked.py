"""Extension bench: masked SpGEMM on the tiled format.

Beyond the paper: GraphBLAS-style ``C = (A B) .* M`` implemented natively
on the tiled format (mask tiles prune candidate tiles, mask bits AND into
the step-2 masks).  This bench quantifies what the fusion saves on the
triangle-counting workload — candidate tiles, output nonzeros and wall
time versus the two-phase multiply-then-Hadamard pipeline.
"""

import time

import pytest

from benchmarks.conftest import save_and_print, save_series_json
from repro.analysis import format_table
from repro.apps import hadamard, lower_triangle
from repro.bench.schema import make_series
from repro.core import TileMatrix, masked_tile_spgemm, tile_spgemm
from repro.matrices import generators


@pytest.fixture(scope="module")
def workloads():
    out = {}
    for name, coo in [
        ("powerlaw", generators.powerlaw(6000, 6.0, exponent=1.9, max_degree=800, seed=301)),
        ("rmat", generators.rmat(12, edge_factor=6, seed=302)),
        ("banded", generators.banded(4000, 10, fill=0.9, seed=303)),
    ]:
        a = coo.to_csr()
        # Symmetrise so the triangle formulation is meaningful.
        from repro.apps import add

        sym = add(a, a.transpose()).prune(0.0)
        l = lower_triangle(sym)
        lt = TileMatrix.from_csr(l)

        t0 = time.perf_counter()
        plain = tile_spgemm(lt, lt)
        masked_out = hadamard(plain.c.to_csr(), l)
        two_phase_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        fused = masked_tile_spgemm(lt, lt, lt)
        fused_s = time.perf_counter() - t0

        assert abs(masked_out.val.sum() - fused.c.val.sum()) < 1e-6
        out[name] = {
            "plain_tiles": plain.c.num_tiles,
            "fused_tiles": fused.stats["num_c_tiles"],
            "plain_nnz": plain.c.nnz,
            "fused_nnz": fused.c.nnz,
            "two_phase_ms": two_phase_s * 1e3,
            "fused_ms": fused_s * 1e3,
        }
    return out


def test_masked_report(benchmark, workloads):
    rows = [
        [
            name,
            v["plain_tiles"],
            v["fused_tiles"],
            v["plain_nnz"],
            v["fused_nnz"],
            f"{v['two_phase_ms']:.1f}",
            f"{v['fused_ms']:.1f}",
        ]
        for name, v in workloads.items()
    ]
    text = format_table(
        ["graph", "tiles (plain)", "tiles (masked)", "nnz (plain)", "nnz (masked)",
         "2-phase ms", "fused ms"],
        rows,
        title="Extension: masked SpGEMM (triangle mask) vs multiply-then-Hadamard",
    )
    benchmark.pedantic(save_and_print, args=("ext_masked", text), rounds=1, iterations=1)
    series = []
    for name, v in workloads.items():
        series.append(
            make_series(
                name, "two_phase", "masked",
                wall_seconds=[v["two_phase_ms"] / 1e3],
                nnz_c=v["plain_nnz"],
                extra={"tiles": v["plain_tiles"]},
            )
        )
        series.append(
            make_series(
                name, "masked_fused", "masked",
                wall_seconds=[v["fused_ms"] / 1e3],
                nnz_c=v["fused_nnz"],
                extra={"tiles": v["fused_tiles"]},
            )
        )
    save_series_json("ext_masked", series, suite="ext_masked")


def test_shape_mask_prunes_candidates(workloads):
    for name, v in workloads.items():
        assert v["fused_tiles"] <= v["plain_tiles"], name
        assert v["fused_nnz"] <= v["plain_nnz"], name


def test_shape_mask_prunes_substantially_on_graphs(workloads):
    """On graph workloads the triangle mask removes most of the product."""
    v = workloads["powerlaw"]
    assert v["fused_nnz"] < 0.7 * v["plain_nnz"]


def test_bench_fused_masked(benchmark):
    coo = generators.powerlaw(3000, 6.0, exponent=1.9, max_degree=500, seed=304)
    from repro.apps import add

    a = coo.to_csr()
    sym = add(a, a.transpose()).prune(0.0)
    l = TileMatrix.from_csr(lower_triangle(sym))
    res = benchmark.pedantic(lambda: masked_tile_spgemm(l, l, l), rounds=1, iterations=1)
    benchmark.extra_info["triangles"] = float(res.c.val.sum())
