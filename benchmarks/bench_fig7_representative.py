"""Figure 7: double-precision A^2 performance on the 18 representative
matrices, five methods, modelled RTX 3090.

Prints the same bar chart data the paper plots: estimated GFlops per
(matrix, method), with failures shown as 0.00 exactly like the paper's
'0.00' bars, plus the headline shape checks: TileSpGEMM wins everywhere
except the sparsest matrices (mac_econ / mc2depi / cop20k_A / scircuit),
peaks on the block-dense TSOPF analogue, and loses on the hypersparse
cop20k analogue by a wide margin.
"""

import pytest

from benchmarks.conftest import (
    METHOD_LABELS,
    PAPER_METHODS,
    run_method,
    save_and_print,
    tiled_of,
)
from repro.analysis import format_table, geometric_mean
from repro.gpu import RTX3090, estimate_run
from repro.matrices import representative_18

#: Matrices where the paper's Figure 7 shows a row-row method beating
#: TileSpGEMM (the low-compression / hypersparse cases).
PAPER_TILE_LOSSES = {"mac_econ_fwd500", "mc2depi", "cop20k_A", "scircuit"}


@pytest.fixture(scope="module")
def gflops_table():
    """GFlops per (matrix, method) on a *scaled-memory* RTX 3090 model.

    Each analogue carries ~paper_flops/our_flops less work than its
    original; scaling the device's DRAM capacity by the same factor
    preserves the paper's out-of-memory outcomes (NSPARSE and bhSPARSE
    dying on the block-dense matrices), per DESIGN.md's substitution rule.
    """
    from repro.baselines.base import flops_of_product

    table = {}
    for spec in representative_18():
        a = spec.matrix()
        scale = flops_of_product(a, a) / spec.paper.flops
        device = RTX3090.scaled_memory(scale)
        table[spec.name] = {
            m: estimate_run(run_method(m, a), device).gflops for m in PAPER_METHODS
        }
    return table


def test_fig7_report(benchmark, gflops_table):
    rows = []
    for name, per_method in gflops_table.items():
        rows.append([name] + [f"{per_method[m]:.2f}" for m in PAPER_METHODS])
    text = format_table(
        ["matrix"] + [METHOD_LABELS[m] for m in PAPER_METHODS],
        rows,
        title="Figure 7: estimated GFlops, C = A^2, modelled RTX 3090",
    )
    geo = {m: geometric_mean([v[m] for v in gflops_table.values()]) for m in PAPER_METHODS}
    text += "\n\ngeometric means: " + ", ".join(
        f"{METHOD_LABELS[m]}={geo[m]:.2f}" for m in PAPER_METHODS
    )
    text += "\npaper (RTX3090 all-dataset means): cuSPARSE=30.8 bhSPARSE=11.5 NSPARSE=37.7 spECK=46.9 Tile=54.6"
    benchmark.pedantic(save_and_print, args=("fig7_representative", text), rounds=1, iterations=1)


def test_shape_tile_wins_majority(gflops_table):
    wins = sum(
        1
        for per in gflops_table.values()
        if per["tilespgemm"] == max(per.values())
    )
    assert wins >= 10, f"TileSpGEMM won only {wins}/18"


def test_shape_tile_loses_sparse_cases(gflops_table):
    """The paper's own weakness cases must remain losses (honest shape)."""
    losses = [
        name
        for name in PAPER_TILE_LOSSES
        if gflops_table[name]["tilespgemm"] < max(gflops_table[name].values())
    ]
    assert len(losses) >= 3, f"expected >=3 of {PAPER_TILE_LOSSES} as losses, got {losses}"


def test_shape_block_dense_is_tile_peak(gflops_table):
    """Tile's best throughput comes from the block-dense high-CR matrices."""
    tile = {n: v["tilespgemm"] for n, v in gflops_table.items()}
    best = max(tile, key=tile.get)
    assert best in {"TSOPF_FS_b300_c2", "gupta3", "SiO2", "case39"}, best


def test_shape_method_ordering(gflops_table):
    """Arithmetic-mean ordering (the paper's 'average performance' list is
    dominated by the high-throughput matrices): Tile > spECK > bhSPARSE,
    and NSPARSE > bhSPARSE."""
    import numpy as np

    mean = {
        m: float(np.mean([v[m] for v in gflops_table.values()])) for m in PAPER_METHODS
    }
    assert mean["tilespgemm"] > mean["speck"] > mean["bhsparse_esc"]
    assert mean["nsparse_hash"] > mean["bhsparse_esc"]


@pytest.mark.parametrize("method", PAPER_METHODS)
def test_bench_representative(benchmark, method):
    """Wall-clock of one full run per method on the 'cant' analogue."""
    spec = next(s for s in representative_18() if s.name == "cant")
    a = spec.matrix()
    tiled_of(a)  # conversion outside the timed region, as the paper assumes
    from repro.baselines import get_algorithm

    kwargs = {"a_tiled": tiled_of(a), "b_tiled": tiled_of(a)} if method == "tilespgemm" else {}
    res = benchmark.pedantic(lambda: get_algorithm(method)(a, a, **kwargs), rounds=1, iterations=1)
    benchmark.extra_info["estimated_gflops_3090"] = estimate_run(res, RTX3090).gflops
