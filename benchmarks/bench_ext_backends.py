"""Extension bench: kernel backends through the bench runner.

Four questions about :mod:`repro.backend`:

1. What does each backend cost?  The smoke suite runs once per timed
   backend through :class:`repro.bench.runner.BenchRunner` with
   ``BenchConfig.backend`` set, so every document records the backend it
   measured under (``meta["backend"]``) and the numbers are comparable
   run-to-run.
2. Do the backends agree?  The pure-Python oracle (``pyloops``) is run
   on the smoke matrices and checked *byte-identical* to the numpy
   reference before any of its timings are reported.
3. How big are the deltas?  Speed ratios vs numpy are reported, not
   gated — the oracle is meant to be slow, and the optional accelerated
   backend's margin depends on the host; the regression gate stays on
   the default backend's suite.
4. Are the tier-2 (fast-math) backends worth it?  ``fragment`` (and
   ``numba-par`` when numba is importable) are timed through the same
   runner, but verified to the tier-2 contract first: structure
   byte-identical to numpy, values within the declared tolerance.
   When both numba backends are present, the parallel fast-math variant
   must beat the sequential exact one (geomean > 1x across the smoke
   suite) — that is the bargain the tier buys.

Writes ``benchmarks/results/ext_backends.{txt,json}``; the JSON is one
``repro.bench/1`` document whose series carry a ``backend`` tag in
``extra``.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, save_and_print
from repro.analysis import format_table
from repro.analysis.ulp import accumulation_scale, conformance_report
from repro.backend import (
    ConformanceTier,
    backend_available,
    backend_tier,
    backend_tolerance,
    get_backend,
)
from repro.bench import schema
from repro.bench.runner import SUITES, BenchConfig, BenchRunner
from repro.core import TileMatrix, tile_spgemm

#: Backends timed through the full bench runner.  ``pyloops`` is not in
#: this list: it is the differential oracle, timed one-shot below.
#: Tier-2 backends join the timed set but are conformance-checked
#: (structure bytes + value tolerance) before their numbers count.
TIMED_BACKENDS = (
    ["numpy"]
    + (["numba", "numba-par"] if backend_available("numba") else [])
    + ["fragment"]
)
TIER2_BACKENDS = [
    n for n in TIMED_BACKENDS if backend_tier(n) is ConformanceTier.FAST_MATH
]

#: Repeats for the runner-timed backends; the oracle runs once.
REPEATS = 3

_IDENTITY_ARRAYS = (
    "tileptr", "tilecolidx", "tilennz", "rowptr",
    "rowidx", "colidx", "val", "mask",
)


def _smoke_operands():
    """The smoke suite's matrices, pre-tiled (op = ``aa``)."""
    out = {}
    for spec in SUITES["smoke"].specs():
        out[spec.name] = TileMatrix.from_csr(spec.matrix())
    return out


@pytest.fixture(scope="module")
def backend_docs():
    """One bench document per timed backend, via the bench runner."""
    docs = {}
    for name in TIMED_BACKENDS:
        cfg = BenchConfig(
            suite="smoke",
            label=f"ext-backends-{name}",
            warmup=1,
            repeats=REPEATS,
            backend=name,
        )
        docs[name] = BenchRunner(cfg).run()
    return docs


@pytest.fixture(scope="module")
def oracle_rows():
    """pyloops on the smoke matrices: byte-identity vs numpy, then one
    timed pass (the whole point of the oracle is that it is slow)."""
    kernels = get_backend("pyloops")
    rows = {}
    for name, a in _smoke_operands().items():
        ref = tile_spgemm(a, a, backend="numpy")
        t0 = time.perf_counter()
        got = tile_spgemm(a, a, backend=kernels)
        oracle_s = time.perf_counter() - t0
        for arr in _IDENTITY_ARRAYS:
            r, g = getattr(ref.c, arr), getattr(got.c, arr)
            assert r.dtype == g.dtype and r.tobytes() == g.tobytes(), (name, arr)
        t0 = time.perf_counter()
        tile_spgemm(a, a, backend="numpy")
        numpy_s = time.perf_counter() - t0
        rows[name] = {
            "oracle_s": oracle_s,
            "numpy_s": numpy_s,
            "slowdown": oracle_s / numpy_s if numpy_s else 0.0,
            "identical": True,
        }
    return rows


@pytest.fixture(scope="module")
def tier2_reports():
    """Tier-2 conformance reports on the smoke matrices: structure must
    be byte-identical and values in tolerance *before* any tier-2
    timing is trusted."""
    reports = {}
    for backend in TIER2_BACKENDS:
        tol = backend_tolerance(backend)
        per_matrix = {}
        for name, a in _smoke_operands().items():
            ref = tile_spgemm(a, a, backend="numpy")
            got = tile_spgemm(a, a, backend=backend)
            scale = accumulation_scale(a, a, ref.c)
            per_matrix[name] = conformance_report(ref.c, got.c, tol, scale=scale)
        reports[backend] = per_matrix
    return reports


def _tile_series(doc, backend):
    """The document's tilespgemm series, re-keyed per backend (series
    keys are unique within a document, so the combined comparison doc
    uses ``tilespgemm@<backend>`` as the method)."""
    out = []
    for s in doc["series"]:
        if s["method"] != "tilespgemm":
            continue
        extra = dict(s.get("extra", {}))
        extra["backend"] = backend
        extra["backend_tier"] = backend_tier(backend).value
        method = f"tilespgemm@{backend}"
        out.append(
            {
                **s,
                "method": method,
                "key": schema.series_key(s["matrix"], method, s["op"]),
                "extra": extra,
            }
        )
    return out


def test_backend_comparison_report(
    benchmark, backend_docs, oracle_rows, tier2_reports
):
    for backend, per_matrix in tier2_reports.items():
        for matrix, rep in per_matrix.items():
            assert rep["ok"], (backend, matrix, rep)
    numpy_doc = backend_docs["numpy"]
    base = {
        s["matrix"]: min(s["wall_seconds"])
        for s in numpy_doc["series"]
        if s["method"] == "tilespgemm"
    }
    rows = []
    for name, doc in backend_docs.items():
        assert doc["meta"]["backend"] == name
        for s in doc["series"]:
            if s["method"] != "tilespgemm":
                continue
            best = min(s["wall_seconds"])
            ratio = base[s["matrix"]] / best if best else 0.0
            tier = backend_tier(name).value
            path = "runner" if tier == "exact" else "runner (tier-2, verified)"
            rows.append(
                [s["matrix"], name, f"{best * 1e3:.2f}", f"{ratio:.2f}x", path]
            )
    for matrix, row in oracle_rows.items():
        ratio = base[matrix] / row["oracle_s"] if row["oracle_s"] else 0.0
        rows.append(
            [matrix, "pyloops", f"{row['oracle_s'] * 1e3:.2f}", f"{ratio:.2f}x",
             "oracle (byte-identical)"]
        )
    text = format_table(
        ["matrix", "backend", "best ms", "vs numpy", "path"],
        rows,
        title=(
            "Extension: kernel backends on the smoke suite "
            "(ratios reported, not gated; pyloops verified byte-identical)"
        ),
    )
    benchmark.pedantic(
        save_and_print, args=("ext_backends", text), rounds=1, iterations=1
    )

    doc = schema.new_document(
        label="ext-backends",
        suite="ext_backends",
        warmup=1,
        repeats=REPEATS,
        seed=0,
        backend="numpy",
    )
    for name, bdoc in backend_docs.items():
        doc["series"].extend(_tile_series(bdoc, name))
    for matrix, row in oracle_rows.items():
        doc["series"].append(
            schema.make_series(
                matrix,
                "tilespgemm@pyloops",
                "aa",
                wall_seconds=[row["oracle_s"]],
                extra={
                    "backend": "pyloops",
                    "byte_identical_to_numpy": row["identical"],
                    "slowdown_vs_numpy": row["slowdown"],
                },
            )
        )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    schema.write_document(doc, RESULTS_DIR / "ext_backends.json")
    print("[saved to benchmarks/results/ext_backends.json]")


def test_shape_documents_record_backend(backend_docs):
    """Every runner document carries the backend it measured under."""
    for name, doc in backend_docs.items():
        schema.validate_document(doc)
        assert doc["meta"]["backend"] == name


def test_shape_oracle_agrees_everywhere(oracle_rows):
    """The oracle matched the reference on every smoke matrix; deltas are
    informational only (no speed floor on an intentionally slow oracle)."""
    assert oracle_rows
    for matrix, row in oracle_rows.items():
        assert row["identical"], matrix
        assert row["oracle_s"] > 0, matrix


def test_shape_tier2_backends_conformant(tier2_reports):
    """Every timed tier-2 backend passed the conformance check on every
    smoke matrix — structure bytes identical, values within tolerance."""
    assert set(tier2_reports) == set(TIER2_BACKENDS)
    for backend, per_matrix in tier2_reports.items():
        assert per_matrix
        for matrix, rep in per_matrix.items():
            assert rep["structure_identical"], (backend, matrix)
            assert rep["values"]["within"], (backend, matrix, rep["values"])


@pytest.mark.skipif(
    not backend_available("numba"),
    reason="numba not importable: the numba-par vs numba race needs both",
)
def test_numba_par_beats_sequential_numba(backend_docs):
    """The fast-math bargain, gated only when numba is present: the
    prange+fastmath variant must beat sequential numba with geomean > 1x
    across the smoke suite (best-of-repeats per matrix)."""
    seq = {
        s["matrix"]: min(s["wall_seconds"])
        for s in backend_docs["numba"]["series"]
        if s["method"] == "tilespgemm"
    }
    par = {
        s["matrix"]: min(s["wall_seconds"])
        for s in backend_docs["numba-par"]["series"]
        if s["method"] == "tilespgemm"
    }
    assert set(seq) == set(par) and seq
    ratios = [seq[m] / par[m] for m in seq if par[m] > 0]
    geomean = float(np.exp(np.mean(np.log(ratios))))
    print(f"[numba-par vs numba geomean: {geomean:.2f}x]")
    assert geomean > 1.0, ratios
