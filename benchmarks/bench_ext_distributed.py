"""Extension bench: distributed SUMMA scaling and communication cost.

The paper positions its tiled format as "like the distributed blocking
SpGEMM methods, but optimized for GPUs without concerns on communication
costs".  This bench quantifies exactly those concerns: sparse SUMMA over
1 / 4 / 9 / 16 modelled devices on an FEM workload, reporting communication
volume, the communication share of the critical path, and the strong-
scaling efficiency the single-GPU algorithm never has to pay for.
"""

import pytest

from benchmarks.conftest import save_and_print, save_series_json
from repro.analysis import format_table
from repro.bench.schema import make_series
from repro.distributed import ProcessGrid, summa_spgemm
from repro.matrices import generators

GRIDS = [(1, 1), (2, 2), (3, 3), (4, 4)]


@pytest.fixture(scope="module")
def scaling():
    a = generators.banded(8000, 30, fill=0.9, seed=311).to_csr()
    base = None
    out = {}
    for shape in GRIDS:
        res = summa_spgemm(a, a, ProcessGrid(*shape))
        if base is None:
            base = res.critical_path_s
        p = shape[0] * shape[1]
        out[shape] = {
            "p": p,
            "critical_ms": res.critical_path_s * 1e3,
            "comm_mb": res.total_comm_volume / 1e6,
            "comm_frac": res.comm_fraction,
            "speedup": base / res.critical_path_s if res.critical_path_s else 0.0,
            "efficiency": base / res.critical_path_s / p if res.critical_path_s else 0.0,
            "imbalance": res.compute_imbalance(),
        }
    return out


def test_distributed_report(benchmark, scaling):
    rows = [
        [
            f"{s[0]}x{s[1]}",
            v["p"],
            f"{v['critical_ms']:.3f}",
            f"{v['comm_mb']:.2f}",
            f"{v['comm_frac'] * 100:.1f}%",
            f"{v['speedup']:.2f}x",
            f"{v['efficiency'] * 100:.0f}%",
            f"{v['imbalance']:.2f}",
        ]
        for s, v in scaling.items()
    ]
    text = format_table(
        ["grid", "procs", "critical path ms", "comm MB", "comm share",
         "speedup", "efficiency", "imbalance"],
        rows,
        title="Extension: sparse SUMMA strong scaling (alpha-beta interconnect model)",
    )
    benchmark.pedantic(save_and_print, args=("ext_distributed", text), rounds=1, iterations=1)
    series = [
        make_series(
            "banded_8000", f"summa_{v['p']}p", "aa",
            wall_seconds=[v["critical_ms"] / 1e3],
            extra={
                "comm_mb": v["comm_mb"],
                "comm_frac": v["comm_frac"],
                "speedup": v["speedup"],
                "efficiency": v["efficiency"],
                "imbalance": v["imbalance"],
            },
        )
        for v in scaling.values()
    ]
    save_series_json("ext_distributed", series, suite="ext_distributed")


def test_shape_communication_grows(scaling):
    vols = [scaling[s]["comm_mb"] for s in GRIDS]
    assert vols[0] == 0.0
    assert all(a < b for a, b in zip(vols, vols[1:]))


def test_shape_scaling_under_linear(scaling):
    """Communication keeps distributed efficiency below 100 % — the cost
    the single-GPU tiled algorithm avoids."""
    for s in GRIDS[1:]:
        assert scaling[s]["efficiency"] < 1.0


def test_shape_some_speedup_at_4(scaling):
    assert scaling[(2, 2)]["speedup"] > 1.2


def test_bench_summa(benchmark):
    a = generators.banded(1600, 12, fill=0.9, seed=312).to_csr()
    res = benchmark.pedantic(
        lambda: summa_spgemm(a, a, ProcessGrid(2, 2)), rounds=1, iterations=1
    )
    assert res.c.nnz > 0
