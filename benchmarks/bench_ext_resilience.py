"""Extension bench: the modelled cost of resilience.

Two questions about the runtime of ``docs/RESILIENCE.md``:

1. What does the wrapper cost when nothing goes wrong?  ``run_resilient``
   on the 18 representative matrices with no budget pressure and no fault
   plan must stay within 5 % of the bare pipeline's cost-model estimate —
   the wrapper only adds bookkeeping, never extra kernels.

2. What does chunked OOM recovery cost?  Re-running each matrix under a
   budget of ~60 % of its measured peak forces the runtime to split the C
   tile-row space; the table prices that recovery (batch count, relaunch
   overhead on the modelled device) against the alternative, which is not
   a slower run but no run at all.

``REPRO_BENCH_MAX_MATRICES`` caps the sweep for smoke runs.
"""

import pytest

from benchmarks.conftest import fig6_matrix_cap, save_and_print, save_series_json, tiled_of
from repro.analysis import format_table, geometric_mean
from repro.bench.schema import make_series
from repro.core import tile_spgemm
from repro.gpu import RTX3090, estimate_run
from repro.matrices import representative_18
from repro.runtime import run_resilient

#: The no-fault wrapper must cost less than this, relative.
OVERHEAD_CEILING = 0.05

#: Budget fraction of the measured single-shot peak that forces chunking.
RECOVERY_BUDGET_FRACTION = 0.6


def _suite():
    specs = representative_18()
    cap = fig6_matrix_cap()
    return specs[:cap] if cap else specs


@pytest.fixture(scope="module")
def overhead_table():
    """Per matrix: bare-pipeline estimate vs run_resilient estimate (s)."""
    table = {}
    for spec in _suite():
        a = tiled_of(spec.matrix())
        res = tile_spgemm(a, a)
        plain = estimate_run(res.as_spgemm_result(), RTX3090).seconds
        rr = run_resilient(a, a, device=RTX3090)
        assert rr.report.batches == 1 and not rr.report.degraded
        table[spec.name] = {
            "plain_s": plain,
            "resilient_s": rr.estimated_seconds,
            "overhead": rr.estimated_seconds / plain - 1.0 if plain else 0.0,
            "peak_bytes": res.alloc.peak_bytes,
        }
    return table


@pytest.fixture(scope="module")
def recovery_table(overhead_table):
    """Per matrix: modelled cost of chunked recovery under a tight budget."""
    table = {}
    for spec in _suite():
        a = tiled_of(spec.matrix())
        clean = overhead_table[spec.name]
        budget = int(clean["peak_bytes"] * RECOVERY_BUDGET_FRACTION)
        rr = run_resilient(a, a, budget_bytes=budget, device=None)
        est = estimate_run(rr.result.as_spgemm_result(), RTX3090).seconds
        table[spec.name] = {
            "budget_bytes": budget,
            "batches": rr.report.batches,
            "attempts": rr.report.num_attempts,
            "recovered_s": est,
            "slowdown": est / clean["plain_s"] if clean["plain_s"] else 0.0,
            "peak_bytes": rr.result.alloc.peak_bytes,
        }
    return table


def test_resilience_report(benchmark, overhead_table, recovery_table):
    rows = []
    for name in overhead_table:
        o, r = overhead_table[name], recovery_table[name]
        rows.append(
            [
                name,
                f"{o['plain_s'] * 1e3:.3f}",
                f"{o['resilient_s'] * 1e3:.3f}",
                f"{o['overhead'] * 100:+.2f}%",
                str(r["batches"]),
                f"{r['recovered_s'] * 1e3:.3f}",
                f"{r['slowdown']:.2f}x",
            ]
        )
    text = format_table(
        ["matrix", "plain ms", "resilient ms", "overhead",
         "oom batches", "recovered ms", "vs crash-free"],
        rows,
        title=(
            "Extension: resilient-runtime overhead (no faults) and chunked "
            f"OOM recovery at {RECOVERY_BUDGET_FRACTION:.0%} of peak, "
            "modelled RTX 3090"
        ),
    )
    benchmark.pedantic(save_and_print, args=("ext_resilience", text), rounds=1, iterations=1)
    series = []
    for name in overhead_table:
        o, r = overhead_table[name], recovery_table[name]
        series.append(make_series(name, "tilespgemm", "aa", wall_seconds=[o["plain_s"]]))
        series.append(
            make_series(
                name, "resilient", "aa",
                wall_seconds=[o["resilient_s"]],
                extra={
                    "overhead": o["overhead"],
                    "oom_batches": r["batches"],
                    "recovered_s": r["recovered_s"],
                    "recovery_slowdown": r["slowdown"],
                },
            )
        )
    save_series_json("ext_resilience", series, suite="ext_resilience")


def test_shape_overhead_under_5_percent(overhead_table):
    """The headline claim: the wrapper is free when nothing fails."""
    for name, o in overhead_table.items():
        assert abs(o["overhead"]) < OVERHEAD_CEILING, (name, o["overhead"])


def test_shape_recovery_chunks_and_fits(recovery_table):
    """Every tight-budget run recovers by splitting, under the budget."""
    for name, r in recovery_table.items():
        assert r["batches"] > 1, name
        assert r["peak_bytes"] <= r["budget_bytes"], name


def test_shape_recovery_cost_is_bounded(recovery_table):
    """Chunked recovery is a modest constant factor, not a blow-up —
    far cheaper than its alternative (a crashed run)."""
    slowdowns = [r["slowdown"] for r in recovery_table.values()]
    assert geometric_mean(slowdowns) < 1.5
    assert max(slowdowns) < 3.0
