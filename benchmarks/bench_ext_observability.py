"""Extension bench: the wall-clock tax of the observability layer.

Two claims from ``docs/OBSERVABILITY.md``:

1. **On** — running the tiled pipeline inside an ``obs_context`` with a
   live ``Tracer``, ``MetricsRegistry`` **and ``WorkloadProfiler``**
   stays within 5 % of the disabled-observability run.  Instrumentation
   is O(pipeline phases) plus O(candidate tiles) NumPy reductions for
   the profiler's band attribution — the same order as the metrics
   recording — regardless of matrix size.

2. **Off** — the default (disabled) path is the baseline itself: guarded
   call sites cost one ambient-context lookup plus a no-op method call.
   The bench quantifies the measurement noise floor by timing two
   disabled runs per round; the "off vs off" spread shows that any
   overhead below it is unmeasurable (~0 %).

A third claim covers the *serving* path: a closed-loop burst through
``SpGEMMService`` with the full telemetry stack live — tracer with
cross-worker propagation, metrics registry, JSON-lines event log, SLO
gauges and the HTTP ``/metrics`` endpoint all on — stays within 5 % of
the same burst with everything off.  Per request the stack costs a few
span/counter updates and one log line; the shard compute dominates.

Medians over interleaved rounds keep the comparison robust to scheduler
noise.  ``REPRO_BENCH_MAX_MATRICES`` caps the sweep for smoke runs.
"""

import asyncio
import os
import tempfile
import time

import pytest

from benchmarks.conftest import fig6_matrix_cap, save_and_print, save_series_json, tiled_of
from repro.analysis import format_table, geometric_mean
from repro.bench.schema import make_series
from repro.core import tile_spgemm
from repro.matrices import representative_18
from repro.obs import (
    EventLog,
    MetricsRegistry,
    Tracer,
    WorkloadProfiler,
    make_obs,
    obs_context,
)
from repro.obs.http import TelemetryServer

#: Traced-and-metered runs must stay within this of the disabled run.
OVERHEAD_CEILING = 0.05

#: Interleaved measurement rounds per matrix (medians reported).
ROUNDS = 5


def _suite():
    specs = representative_18()
    cap = fig6_matrix_cap()
    return specs[:cap] if cap else specs


def _median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]


@pytest.fixture(scope="module")
def overhead_table():
    """Per matrix: median seconds disabled vs enabled, and the noise floor."""
    table = {}
    for spec in _suite():
        a = tiled_of(spec.matrix())
        tile_spgemm(a, a)  # warm-up (allocator, caches)
        off, off2, on = [], [], []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            tile_spgemm(a, a)
            off.append(time.perf_counter() - t0)

            obs = make_obs()
            with obs_context(
                tracer=obs.tracer, metrics=obs.metrics, profile=obs.profile
            ):
                t0 = time.perf_counter()
                traced = tile_spgemm(a, a)
                on.append(time.perf_counter() - t0)
            assert obs.tracer.find("step2"), "tracer saw the pipeline"
            assert obs.profile.runs, "profiler saw the run"
            assert obs.profile.bands, "profiler attributed tile-row bands"

            t0 = time.perf_counter()
            plain = tile_spgemm(a, a)
            off2.append(time.perf_counter() - t0)
        assert plain.c.to_csr().allclose(traced.c.to_csr())
        off_s, on_s = _median(off), _median(on)
        table[spec.name] = {
            "off_s": off_s,
            "on_s": on_s,
            "overhead": on_s / off_s - 1.0,
            "noise": abs(_median(off2) / off_s - 1.0),
        }
    return table


def test_observability_report(benchmark, overhead_table):
    rows = []
    for name, o in overhead_table.items():
        rows.append(
            [
                name,
                f"{o['off_s'] * 1e3:.3f}",
                f"{o['on_s'] * 1e3:.3f}",
                f"{o['overhead'] * 100:+.2f}%",
                f"{o['noise'] * 100:.2f}%",
            ]
        )
    text = format_table(
        ["matrix", "obs off ms", "obs on ms", "on overhead", "noise floor"],
        rows,
        title=(
            "Extension: observability overhead (tracer + metrics on vs off, "
            f"median of {ROUNDS} interleaved rounds); disabled mode IS the "
            "baseline, so 'off' overhead is the noise floor"
        ),
    )
    benchmark.pedantic(save_and_print, args=("ext_observability", text), rounds=1, iterations=1)
    series = []
    for name, o in overhead_table.items():
        series.append(make_series(name, "obs_off", "aa", wall_seconds=[o["off_s"]]))
        series.append(
            make_series(
                name, "obs_on", "aa",
                wall_seconds=[o["on_s"]],
                extra={"overhead": o["overhead"], "noise": o["noise"]},
            )
        )
    save_series_json("ext_observability", series, suite="ext_observability", repeats=ROUNDS)


def test_shape_enabled_overhead_is_bounded(overhead_table):
    """The headline claim: tracing+metrics cost < 5 % on average.

    The geometric mean carries the claim; the per-matrix ceiling is looser
    because single medians on small matrices still jitter.
    """
    factors = [1.0 + max(o["overhead"], 0.0) for o in overhead_table.values()]
    assert geometric_mean(factors) - 1.0 < OVERHEAD_CEILING, factors
    assert max(factors) - 1.0 < 4 * OVERHEAD_CEILING, factors


def test_shape_instrumentation_does_not_change_results(overhead_table):
    """Per-matrix equality was asserted while building the table."""
    assert overhead_table


# ---------------------------------------------------------------------------
# Serve path: full telemetry stack vs everything off
# ---------------------------------------------------------------------------

#: Requests per burst — enough shard work that per-request telemetry
#: (spans, counters, one log line, SLO update) is amortised realistically.
SERVE_REQUESTS = 16


def _serve_burst(telemetry: bool, log_path=None) -> float:
    """One closed-loop burst; returns wall seconds for the whole burst."""
    from repro.serve.loadgen import make_workload, run_closed_loop
    from repro.serve.service import SpGEMMService

    # Per-shard telemetry is O(pipeline phases), not O(nnz), so the claim
    # is about the regime where shard compute dominates — tiny shards would
    # measure fixed per-request cost against near-zero work and say nothing
    # about the tax (worker-side span recording, ~0.1 ms per shard).
    workload = make_workload(SERVE_REQUESTS, n=256, nnz_per_row=16.0, seed=7)

    async def drive():
        service = SpGEMMService(max_queue_depth=32, workers=2)
        async with service:
            return await run_closed_loop(service, workload, tenants=2)

    if not telemetry:
        t0 = time.perf_counter()
        report = asyncio.run(drive())
        elapsed = time.perf_counter() - t0
        assert report.outcomes.get("served") == SERVE_REQUESTS
        return elapsed

    tracer, metrics = Tracer(), MetricsRegistry()
    log = EventLog(path=log_path)
    profiler = WorkloadProfiler()
    with TelemetryServer(metrics=metrics) as server:
        assert server.address[1] > 0  # endpoint live during the burst
        with obs_context(tracer=tracer, metrics=metrics, log=log, profile=profiler):
            t0 = time.perf_counter()
            report = asyncio.run(drive())
            elapsed = time.perf_counter() - t0
    log.close()
    assert report.outcomes.get("served") == SERVE_REQUESTS
    request_spans = [s for s in tracer.spans if s.name.startswith("request ")]
    assert len(request_spans) == SERVE_REQUESTS, "request spans recorded"
    assert metrics.counter_samples("serve_requests_total"), "counters live"
    assert profiler.runs, "worker profiles absorbed across the pool"
    return elapsed


@pytest.fixture(scope="module")
def serve_overhead():
    """Best-of-rounds burst seconds with the full stack on vs off.

    The burst is ~100 ms of asyncio + thread-pool work, so single rounds
    jitter with the scheduler; the minimum over interleaved rounds is the
    noise-robust floor both ways and is what the tax claim compares.
    """
    with tempfile.TemporaryDirectory() as tmp:
        log_path = os.path.join(tmp, "serve.jsonl")
        _serve_burst(False)  # warm-up (executor, allocator)
        off, off2, on = [], [], []
        for _ in range(ROUNDS):
            off.append(_serve_burst(False))
            on.append(_serve_burst(True, log_path=log_path))
            off2.append(_serve_burst(False))
    off_s, on_s = min(off), min(on)
    return {
        "off_s": off_s,
        "on_s": on_s,
        "overhead": on_s / off_s - 1.0,
        # Two disabled measurement sets bound what the machine can even
        # resolve: overhead below this spread is indistinguishable from 0.
        "noise": abs(min(off2) / off_s - 1.0),
    }


def test_serve_telemetry_report(benchmark, serve_overhead):
    o = serve_overhead
    text = format_table(
        ["path", "telemetry off ms", "telemetry on ms", "overhead", "noise floor"],
        [
            [
                f"serve burst ({SERVE_REQUESTS} reqs)",
                f"{o['off_s'] * 1e3:.3f}",
                f"{o['on_s'] * 1e3:.3f}",
                f"{o['overhead'] * 100:+.2f}%",
                f"{o['noise'] * 100:.2f}%",
            ]
        ],
        title=(
            "Extension: serve-path telemetry overhead (tracer + metrics + "
            "event log + live endpoint + SLO gauges on vs all off, median "
            f"of {ROUNDS} interleaved bursts)"
        ),
    )
    benchmark.pedantic(
        save_and_print, args=("ext_observability_serve", text), rounds=1, iterations=1
    )
    series = [
        make_series("serve_burst", "telemetry_off", "aa", wall_seconds=[o["off_s"]]),
        make_series(
            "serve_burst", "telemetry_on", "aa",
            wall_seconds=[o["on_s"]],
            extra={"overhead": o["overhead"], "noise": o["noise"]},
        ),
    ]
    save_series_json(
        "ext_observability_serve", series, suite="ext_observability", repeats=ROUNDS
    )


def test_shape_serve_telemetry_overhead_is_bounded(serve_overhead):
    """The serving claim: the full stack costs < 5 % on the burst.

    Overhead the machine cannot even resolve (the off-vs-off noise floor)
    does not count against the claim — same logic the tile-path report
    documents above.  A real regression shows up as overhead well above
    the spread of two identical disabled runs.
    """
    o = serve_overhead
    assert max(o["overhead"], 0.0) < OVERHEAD_CEILING + o["noise"], o
