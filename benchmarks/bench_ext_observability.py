"""Extension bench: the wall-clock tax of the observability layer.

Two claims from ``docs/OBSERVABILITY.md``:

1. **On** — running the tiled pipeline inside an ``obs_context`` with a
   live ``Tracer`` and ``MetricsRegistry`` stays within 5 % of the
   disabled-observability run.  Instrumentation is O(pipeline phases),
   not O(nnz): a handful of span context managers and counter updates per
   run, regardless of matrix size.

2. **Off** — the default (disabled) path is the baseline itself: guarded
   call sites cost one ambient-context lookup plus a no-op method call.
   The bench quantifies the measurement noise floor by timing two
   disabled runs per round; the "off vs off" spread shows that any
   overhead below it is unmeasurable (~0 %).

Medians over interleaved rounds keep the comparison robust to scheduler
noise.  ``REPRO_BENCH_MAX_MATRICES`` caps the sweep for smoke runs.
"""

import time

import pytest

from benchmarks.conftest import fig6_matrix_cap, save_and_print, save_series_json, tiled_of
from repro.analysis import format_table, geometric_mean
from repro.bench.schema import make_series
from repro.core import tile_spgemm
from repro.matrices import representative_18
from repro.obs import make_obs, obs_context

#: Traced-and-metered runs must stay within this of the disabled run.
OVERHEAD_CEILING = 0.05

#: Interleaved measurement rounds per matrix (medians reported).
ROUNDS = 5


def _suite():
    specs = representative_18()
    cap = fig6_matrix_cap()
    return specs[:cap] if cap else specs


def _median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]


@pytest.fixture(scope="module")
def overhead_table():
    """Per matrix: median seconds disabled vs enabled, and the noise floor."""
    table = {}
    for spec in _suite():
        a = tiled_of(spec.matrix())
        tile_spgemm(a, a)  # warm-up (allocator, caches)
        off, off2, on = [], [], []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            tile_spgemm(a, a)
            off.append(time.perf_counter() - t0)

            obs = make_obs()
            with obs_context(tracer=obs.tracer, metrics=obs.metrics):
                t0 = time.perf_counter()
                traced = tile_spgemm(a, a)
                on.append(time.perf_counter() - t0)
            assert obs.tracer.find("step2"), "tracer saw the pipeline"

            t0 = time.perf_counter()
            plain = tile_spgemm(a, a)
            off2.append(time.perf_counter() - t0)
        assert plain.c.to_csr().allclose(traced.c.to_csr())
        off_s, on_s = _median(off), _median(on)
        table[spec.name] = {
            "off_s": off_s,
            "on_s": on_s,
            "overhead": on_s / off_s - 1.0,
            "noise": abs(_median(off2) / off_s - 1.0),
        }
    return table


def test_observability_report(benchmark, overhead_table):
    rows = []
    for name, o in overhead_table.items():
        rows.append(
            [
                name,
                f"{o['off_s'] * 1e3:.3f}",
                f"{o['on_s'] * 1e3:.3f}",
                f"{o['overhead'] * 100:+.2f}%",
                f"{o['noise'] * 100:.2f}%",
            ]
        )
    text = format_table(
        ["matrix", "obs off ms", "obs on ms", "on overhead", "noise floor"],
        rows,
        title=(
            "Extension: observability overhead (tracer + metrics on vs off, "
            f"median of {ROUNDS} interleaved rounds); disabled mode IS the "
            "baseline, so 'off' overhead is the noise floor"
        ),
    )
    benchmark.pedantic(save_and_print, args=("ext_observability", text), rounds=1, iterations=1)
    series = []
    for name, o in overhead_table.items():
        series.append(make_series(name, "obs_off", "aa", wall_seconds=[o["off_s"]]))
        series.append(
            make_series(
                name, "obs_on", "aa",
                wall_seconds=[o["on_s"]],
                extra={"overhead": o["overhead"], "noise": o["noise"]},
            )
        )
    save_series_json("ext_observability", series, suite="ext_observability", repeats=ROUNDS)


def test_shape_enabled_overhead_is_bounded(overhead_table):
    """The headline claim: tracing+metrics cost < 5 % on average.

    The geometric mean carries the claim; the per-matrix ceiling is looser
    because single medians on small matrices still jitter.
    """
    factors = [1.0 + max(o["overhead"], 0.0) for o in overhead_table.values()]
    assert geometric_mean(factors) - 1.0 < OVERHEAD_CEILING, factors
    assert max(factors) - 1.0 < 4 * OVERHEAD_CEILING, factors


def test_shape_instrumentation_does_not_change_results(overhead_table):
    """Per-matrix equality was asserted while building the table."""
    assert overhead_table
