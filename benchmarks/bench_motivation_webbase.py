"""Section 2.3 motivation: the webbase-1M imbalance study.

The paper motivates the tiled decomposition with webbase-1M: of its
1,000,005 rows, 3 need more than 100k operations while 999,812 need fewer
than 100, so row-row methods leave the GPU idle; TileSpGEMM then runs
2.17x / 7.26x / 3.11x / 1.96x faster than cuSPARSE / bhSPARSE / NSPARSE /
spECK on C = A^2.  This bench regenerates both halves on the scaled
analogue: the operation-count histogram, the decomposition imbalance
factors (row tasks vs tile tasks), and the speedup row.
"""

import numpy as np
import pytest

from benchmarks.conftest import METHOD_LABELS, PAPER_METHODS, run_method, save_and_print
from repro.analysis import format_speedup, format_table
from repro.baselines._expand import row_upper_bounds
from repro.gpu import RTX3090, estimate_run, imbalance_factor
from repro.matrices import get_matrix


@pytest.fixture(scope="module")
def webbase():
    return get_matrix("webbase-1M")


def test_motivation_report(benchmark, webbase):
    ub = row_upper_bounds(webbase, webbase)
    # The paper's thresholds, scaled by the documented flops scale factor
    # (analogue carries ~14x fewer flops than webbase-1M's 139 Mflop).
    hist_rows = [
        ["> 10000 products", int((ub > 10_000).sum()), "3 rows > 100k ops"],
        ["1000 - 10000", int(((ub > 1_000) & (ub <= 10_000)).sum()), "190 rows > 10k ops"],
        ["100 - 1000", int(((ub > 100) & (ub <= 1_000)).sum()), "—"],
        ["<= 100", int((ub <= 100).sum()), "999,812 rows < 100 ops"],
    ]
    text = format_table(
        ["row operation class", "rows (analogue)", "paper (webbase-1M)"],
        hist_rows,
        title="Motivation (paper §2.3): webbase row-work histogram",
    )

    res_tile = run_method("tilespgemm", webbase)
    ppt = np.asarray(res_tile.stats["products_per_tile"], dtype=float)
    imb_rows = [
        ["row-row (one task per row)", f"{imbalance_factor(ub.astype(float), 328):.1f}x"],
        ["tiled (one task per C tile)", f"{imbalance_factor(ppt, 328):.1f}x"],
    ]
    text += "\n\n" + format_table(
        ["decomposition", "makespan / perfect balance"],
        imb_rows,
        title="Load imbalance of the two decompositions (328 warp slots)",
    )

    tile_s = estimate_run(res_tile, RTX3090).seconds
    speed_rows = []
    paper = {"cusparse_spa": "2.17x", "bhsparse_esc": "7.26x", "nsparse_hash": "3.11x", "speck": "1.96x"}
    for m in PAPER_METHODS:
        if m == "tilespgemm":
            continue
        other_s = estimate_run(run_method(m, webbase), RTX3090).seconds
        speed_rows.append([METHOD_LABELS[m], format_speedup(other_s / tile_s), paper[m]])
    text += "\n\n" + format_table(
        ["method", "TileSpGEMM speedup (model)", "paper"],
        speed_rows,
        title="TileSpGEMM speedup on the webbase analogue, C = A^2",
    )
    benchmark.pedantic(save_and_print, args=("motivation_webbase", text), rounds=1, iterations=1)


def test_shape_few_rows_dominate(webbase):
    ub = row_upper_bounds(webbase, webbase)
    top3 = np.sort(ub)[-3:].sum()
    assert top3 > 0.005 * ub.sum()
    assert (ub <= 100).sum() > 0.95 * ub.size


def test_shape_tiling_reduces_imbalance(webbase):
    ub = row_upper_bounds(webbase, webbase).astype(float)
    res = run_method("tilespgemm", webbase)
    ppt = np.asarray(res.stats["products_per_tile"], dtype=float)
    assert imbalance_factor(ppt, 328) < imbalance_factor(ub, 328)


def test_bench_webbase_tile(benchmark, webbase):
    from repro.baselines import get_algorithm

    res = benchmark.pedantic(
        lambda: get_algorithm("speck")(webbase, webbase), rounds=1, iterations=1
    )
    assert res.c.nnz > 0
