"""Extension bench: scaling of the sharded parallel engine.

Three questions about ``repro.runtime.parallel``:

1. What does sharding buy on wall-clock?  Serial ``tile_spgemm`` vs
   ``parallel_tile_spgemm`` at 2 and 4 workers (thread pool) on the ext
   matrices.  Even on one core sharding wins because each shard's
   scatter-accumulate works on a buffer sized for its own tile rows
   instead of the whole candidate space.
2. Is the parallel result exact?  Every parallel run here is checked
   byte-identical to its serial counterpart before timing is reported.
3. What does the batching front end buy?  ``spgemm_batch`` over repeated
   operands vs the same multiplies issued one by one, where the tile
   cache converts each distinct operand once.

``REPRO_BENCH_MAX_MATRICES`` caps the sweep for smoke runs.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import fig6_matrix_cap, save_and_print, save_series_json, tiled_of
from repro.analysis import format_table, geometric_mean
from repro.bench.schema import make_series
from repro.core import tile_spgemm
from repro.matrices import representative_18
from repro.runtime.parallel import parallel_tile_spgemm, spgemm_batch
from repro.runtime.tilecache import reset_tile_cache

#: Worker counts swept against the serial baseline.
WORKER_COUNTS = (2, 4)

#: Timing repeats per (matrix, configuration); the minimum is reported.
REPEATS = 5

#: The acceptance bar: at 4 workers at least one ext matrix must beat
#: the serial engine by this factor.
SPEEDUP_FLOOR = 1.2

_IDENTITY_ARRAYS = (
    "tileptr", "tilecolidx", "tilennz", "rowptr",
    "rowidx", "colidx", "val", "mask",
)


def _suite():
    specs = representative_18()[:6]
    cap = fig6_matrix_cap()
    return specs[:cap] if cap else specs


def _assert_bytes_identical(serial_c, parallel_c, context: str) -> None:
    for name in _IDENTITY_ARRAYS:
        s, p = getattr(serial_c, name), getattr(parallel_c, name)
        assert s.dtype == p.dtype and s.tobytes() == p.tobytes(), (context, name)


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def scaling_table():
    """Per matrix: serial seconds and per-worker-count seconds/speedup."""
    table = {}
    for spec in _suite():
        a = tiled_of(spec.matrix())
        serial_res = tile_spgemm(a, a)
        serial_s = _best_of(lambda: tile_spgemm(a, a))
        row = {"serial_s": serial_s, "workers": {}}
        for workers in WORKER_COUNTS:
            par_res = parallel_tile_spgemm(a, a, workers=workers)
            _assert_bytes_identical(
                serial_res.c, par_res.c, f"{spec.name} workers={workers}"
            )
            par_s = _best_of(lambda: parallel_tile_spgemm(a, a, workers=workers))
            row["workers"][workers] = {
                "seconds": par_s,
                "speedup": serial_s / par_s if par_s else 0.0,
                "shards": par_res.stats["shards"],
            }
        table[spec.name] = row
    return table


@pytest.fixture(scope="module")
def batch_table():
    """spgemm_batch over repeated operands vs one-by-one serial calls."""
    from repro.baselines import get_algorithm

    plain = get_algorithm("tilespgemm")  # tiles its CSR operands every call
    specs = _suite()[:3]
    reps = 4  # each matrix multiplied this many times -> cache hits
    table = {}
    for spec in specs:
        a = spec.matrix()
        pairs = [(a, a)] * reps
        reset_tile_cache()
        one_by_one = _best_of(
            lambda: [plain(a, a) for _ in range(reps)], repeats=3
        )
        cache = reset_tile_cache()
        spgemm_batch(pairs, workers=2)  # warm the cache once
        warm_stats = cache.stats()
        batched = _best_of(lambda: spgemm_batch(pairs, workers=2), repeats=3)
        table[spec.name] = {
            "tasks": reps,
            "one_by_one_s": one_by_one,
            "batched_s": batched,
            "speedup": one_by_one / batched if batched else 0.0,
            # Conversions performed on the cold pass: 1 (operand tiled
            # once, reps-1 hits) vs reps for the plain one-by-one path.
            "cold_misses": warm_stats["misses"],
            "cold_hits": warm_stats["hits"],
        }
    return table


def test_parallel_scaling_report(benchmark, scaling_table, batch_table):
    rows = []
    for name, row in scaling_table.items():
        w2, w4 = row["workers"][2], row["workers"][4]
        rows.append(
            [
                name,
                f"{row['serial_s'] * 1e3:.2f}",
                f"{w2['seconds'] * 1e3:.2f}",
                f"{w2['speedup']:.2f}x",
                f"{w4['seconds'] * 1e3:.2f}",
                f"{w4['speedup']:.2f}x",
                str(w4["shards"]),
            ]
        )
    text = format_table(
        ["matrix", "serial ms", "2w ms", "2w speedup",
         "4w ms", "4w speedup", "shards@4w"],
        rows,
        title=(
            "Extension: sharded parallel engine vs serial TileSpGEMM "
            "(thread pool, byte-identical output verified)"
        ),
    )
    brows = [
        [name, str(b["tasks"]), f"{b['one_by_one_s'] * 1e3:.2f}",
         f"{b['batched_s'] * 1e3:.2f}", f"{b['speedup']:.2f}x"]
        for name, b in batch_table.items()
    ]
    text += "\n\n" + format_table(
        ["matrix", "tasks", "one-by-one ms", "spgemm_batch ms", "speedup"],
        brows,
        title="Extension: spgemm_batch with tile cache vs repeated serial calls",
    )
    benchmark.pedantic(save_and_print, args=("ext_parallel", text), rounds=1, iterations=1)

    series = []
    for name, row in scaling_table.items():
        series.append(
            make_series(name, "tilespgemm", "aa", wall_seconds=[row["serial_s"]])
        )
        for workers, w in row["workers"].items():
            series.append(
                make_series(
                    name, f"tilespgemm_par{workers}", "aa",
                    wall_seconds=[w["seconds"]],
                    extra={"speedup": w["speedup"], "shards": w["shards"],
                           "workers": workers},
                )
            )
    for name, b in batch_table.items():
        series.append(
            make_series(
                name, "spgemm_batch", "aa",
                wall_seconds=[b["batched_s"]],
                extra={"tasks": b["tasks"], "one_by_one_s": b["one_by_one_s"],
                       "speedup": b["speedup"]},
            )
        )
    save_series_json("ext_parallel", series, suite="ext_parallel", repeats=REPEATS)


def test_shape_speedup_at_4_workers(scaling_table):
    """The acceptance bar: >1.2x at 4 workers on at least one ext matrix."""
    speedups = [row["workers"][4]["speedup"] for row in scaling_table.values()]
    assert max(speedups) > SPEEDUP_FLOOR, speedups


def test_shape_parallel_never_catastrophic(scaling_table):
    """Sharding overhead must never blow a run up, whatever the matrix."""
    for name, row in scaling_table.items():
        for workers, w in row["workers"].items():
            assert w["speedup"] > 0.4, (name, workers, w["speedup"])


def test_shape_batch_skips_retiling(batch_table):
    """Repeated operands convert exactly once; the rest are cache hits.

    The deterministic guarantee is counted conversions, not wall-clock —
    on this class of matrix tiling is a small fraction of the multiply,
    so the timing gain sits inside the host's process-to-process noise.
    Wall-clock only has to stay in the same ballpark.
    """
    for name, b in batch_table.items():
        assert b["cold_misses"] == 1, (name, b)  # one operand, tiled once
        assert b["cold_hits"] == 2 * b["tasks"] - 1, (name, b)
    speedups = [b["speedup"] for b in batch_table.values()]
    assert geometric_mean(speedups) > 0.6, speedups
