"""Extension bench: latency and throughput of the async serving tier.

Three questions about ``repro.serve`` (docs/SERVING.md):

1. What does a client see?  Closed-loop bursts at several concurrency
   levels: p50/p99 submission-to-response latency and served throughput,
   with queue time separated out.
2. What does overload cost?  An open-loop run at a rate the service
   cannot sustain with a small queue: how much is served, how much is
   shed, and what the survivors' latency looks like (shedding early is
   the point — the served requests stay fast).
3. What does recovery cost?  The same burst with an injected
   OOM-once-per-request fault plan: every request re-splits and still
   serves, and the p50/p99 delta prices the resilience machinery.

Everything lands in ``benchmarks/results/ext_serving.json`` (schema
``repro.bench/1``) with p50/p99/throughput in each series' ``extra``,
so ``python -m repro bench compare`` can diff serving runs like any
other suite.
"""

import asyncio

import pytest

from benchmarks.conftest import save_and_print, save_series_json
from repro.analysis import format_table
from repro.bench.schema import make_series
from repro.runtime.faults import FaultPlan
from repro.serve import (
    SpGEMMService,
    make_workload,
    run_closed_loop,
    run_open_loop,
)

#: Burst sizes of the closed-loop sweep.
BURSTS = (8, 16, 32)

#: Operand dimension / mean row length of the generated workload.
N, NNZ_PER_ROW = 192, 8.0

#: Open-loop arrival rate (requests/second) against a 4-deep queue —
#: deliberately above what two workers sustain on this workload.
OVERLOAD_RATE = 400.0


def _run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def closed_loop_table():
    rows = {}
    for burst in BURSTS:
        async def drive(burst=burst):
            async with SpGEMMService(max_queue_depth=burst, workers=4) as svc:
                return await run_closed_loop(
                    svc,
                    make_workload(burst, n=N, nnz_per_row=NNZ_PER_ROW, seed=7),
                    tenants=4,
                )

        rows[burst] = _run(drive())
    return rows


@pytest.fixture(scope="module")
def overload_report():
    async def drive():
        async with SpGEMMService(
            max_queue_depth=4, workers=2, max_inflight=2
        ) as svc:
            return await run_open_loop(
                svc,
                make_workload(48, n=N, nnz_per_row=NNZ_PER_ROW, seed=9),
                rate_rps=OVERLOAD_RATE,
                tenants=4,
            )

    return _run(drive())


@pytest.fixture(scope="module")
def faulted_report():
    async def fake_sleep(s):
        await asyncio.sleep(0)

    async def drive():
        async with SpGEMMService(
            max_queue_depth=16, workers=4, sleep=fake_sleep
        ) as svc:
            workload = make_workload(16, n=N, nnz_per_row=NNZ_PER_ROW, seed=7)
            tasks = [
                svc.submit(
                    a,
                    b,
                    tenant=f"tenant{k % 4}",
                    fault_plan=FaultPlan(seed=500 + k).oom_at_alloc(at=1),
                )
                for k, (a, b) in enumerate(workload)
            ]
            from repro.serve import LoadReport
            import time

            report = LoadReport()
            t0 = time.perf_counter()
            for resp in await asyncio.gather(*tasks):
                report.add(resp)
            report.wall_s = time.perf_counter() - t0
            return report

    return _run(drive())


def test_serving_report(
    benchmark, closed_loop_table, overload_report, faulted_report
):
    rows = []
    for burst, rep in closed_loop_table.items():
        d = rep.to_dict()
        rows.append(
            [
                str(burst),
                str(rep.served),
                f"{d['p50_ms']:.2f}",
                f"{d['p99_ms']:.2f}",
                f"{d['mean_queue_ms']:.2f}",
                f"{d['throughput_rps']:.1f}",
            ]
        )
    text = format_table(
        ["burst", "served", "p50 ms", "p99 ms", "queue ms", "served/s"],
        rows,
        title=(
            "Extension: closed-loop serving latency "
            f"(n={N}, 4 workers, queue = burst)"
        ),
    )

    od = overload_report.to_dict()
    fd = faulted_report.to_dict()
    extra_rows = [
        [
            "open-loop overload",
            str(overload_report.submitted),
            str(overload_report.served),
            str(overload_report.outcomes.get("shed", 0)),
            f"{od['p50_ms']:.2f}",
            f"{od['p99_ms']:.2f}",
        ],
        [
            "burst + OOM/request",
            str(faulted_report.submitted),
            str(faulted_report.served),
            str(faulted_report.resplits),
            f"{fd['p50_ms']:.2f}",
            f"{fd['p99_ms']:.2f}",
        ],
    ]
    text += "\n\n" + format_table(
        ["scenario", "submitted", "served", "shed/resplits", "p50 ms", "p99 ms"],
        extra_rows,
        title=(
            "Extension: serving under overload (rate "
            f"{OVERLOAD_RATE:.0f}/s into a 4-deep queue) and under "
            "injected per-request OOM (re-split + requeue)"
        ),
    )
    benchmark.pedantic(
        save_and_print, args=("ext_serving", text), rounds=1, iterations=1
    )

    series = []
    for burst, rep in closed_loop_table.items():
        d = rep.to_dict()
        series.append(
            make_series(
                f"closed_loop_burst{burst}",
                "serve",
                "aa",
                wall_seconds=sorted(rep.latencies_s),
                n=N,
                extra={
                    "p50_ms": d["p50_ms"],
                    "p99_ms": d["p99_ms"],
                    "throughput_rps": d["throughput_rps"],
                    "outcomes": d["outcomes"],
                },
            )
        )
    for name, rep in (
        ("open_loop_overload", overload_report),
        ("burst_oom_resplit", faulted_report),
    ):
        d = rep.to_dict()
        series.append(
            make_series(
                name,
                "serve",
                "aa",
                wall_seconds=sorted(rep.latencies_s),
                n=N,
                extra={
                    "p50_ms": d["p50_ms"],
                    "p99_ms": d["p99_ms"],
                    "throughput_rps": d["throughput_rps"],
                    "outcomes": d["outcomes"],
                    "resplits": d["resplits"],
                },
            )
        )
    save_series_json("ext_serving", series, suite="ext_serving")


def test_shape_closed_loop_serves_everything(closed_loop_table):
    """No faults, wait-mode backpressure: 100% served at every burst."""
    for burst, rep in closed_loop_table.items():
        assert rep.served == rep.submitted == burst, (burst, rep.outcomes)
        assert rep.percentile(50) <= rep.percentile(99)
        assert rep.throughput_rps > 0


def test_shape_overload_sheds_but_keeps_accounting(overload_report):
    """Open-loop overload: every request typed, shed + served = submitted."""
    o = overload_report.outcomes
    assert sum(o.values()) == overload_report.submitted
    assert o.get("exhausted", 0) == 0 and o.get("deadline", 0) == 0


def test_shape_faulted_burst_recovers_every_request(faulted_report):
    """One injected OOM per request: all served, one re-split each."""
    assert faulted_report.served == faulted_report.submitted
    assert faulted_report.resplits == faulted_report.submitted
