"""Figure 8: double-precision A A^T on the six asymmetric matrices.

The paper's transpose-product figure: the same five methods, C = A A^T,
on the asymmetric subset (rma10, conf5, mac_econ, mc2depi, scircuit,
webbase-1M).  The headline behaviours to reproduce: TileSpGEMM becomes
*more* favourable under A A^T, and on the webbase analogue the row-row
methods suffer most (the paper's cuSPARSE/NSPARSE even run out of
memory there).
"""

import pytest

from benchmarks.conftest import (
    METHOD_LABELS,
    PAPER_METHODS,
    expansion_would_exceed_budget,
    run_method,
    save_and_print,
)
from repro.analysis import format_table
from repro.gpu import RTX3090, estimate_run
from repro.matrices import asymmetric_6


@pytest.fixture(scope="module")
def gflops_table():
    table = {}
    for spec in asymmetric_6():
        a = spec.matrix()
        at = a.transpose()
        per = {}
        for m in PAPER_METHODS:
            if expansion_would_exceed_budget(m, a, at):
                # The paper's failure convention: methods that cannot hold
                # their intermediate state report 0.00 (webbase-1M AAT is
                # exactly where its cuSPARSE/NSPARSE runs die).
                per[m] = 0.0
                continue
            res = run_method(m, a, op="aat", cache=False)
            per[m] = estimate_run(res, RTX3090).gflops
            del res
        table[spec.name] = per
    return table


def test_fig8_report(benchmark, gflops_table):
    rows = [
        [name] + [f"{per[m]:.2f}" for m in PAPER_METHODS]
        for name, per in gflops_table.items()
    ]
    text = format_table(
        ["matrix"] + [METHOD_LABELS[m] for m in PAPER_METHODS],
        rows,
        title="Figure 8: estimated GFlops, C = A A^T, modelled RTX 3090 "
        "(paper webbase row: cu=fail bh=6.61 ns=fail speck=13.85 tile=30.89)",
    )
    benchmark.pedantic(save_and_print, args=("fig8_aat", text), rounds=1, iterations=1)
    assert len(rows) == 6


def test_shape_tile_competitive_on_fem_aat(gflops_table):
    per = gflops_table["rma10"]
    assert per["tilespgemm"] >= 0.8 * max(per.values())


def test_shape_webbase_aat_fails_expansion_methods(gflops_table):
    """On the webbase analogue's A A^T, at least one expansion-based
    row-row method exceeds the memory budget and fails, while TileSpGEMM
    completes (the paper's Figure 8 webbase story)."""
    per = gflops_table["webbase-1M"]
    failed = [m for m in PAPER_METHODS if per[m] == 0.0]
    assert per["tilespgemm"] > 0.0
    assert len(failed) >= 1, per


def test_shape_aat_correctness():
    """A A^T of an asymmetric matrix is symmetric — sanity of the op path."""
    import numpy as np

    spec = asymmetric_6()[2]  # mac_econ analogue
    res = run_method("tilespgemm", spec.matrix(), op="aat")
    d = res.c.to_dense()
    assert np.allclose(d, d.T, atol=1e-9)


def test_bench_aat(benchmark):
    spec = asymmetric_6()[0]
    a = spec.matrix()
    at = a.transpose()
    from repro.baselines import get_algorithm

    res = benchmark.pedantic(lambda: get_algorithm("tilespgemm")(a, at), rounds=1, iterations=1)
    benchmark.extra_info["nnz_c"] = res.c.nnz
