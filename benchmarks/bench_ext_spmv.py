"""Extension bench: SpMV on the resident tiled format (TileSpMV companion).

The paper's group built TileSpMV on the same storage; applications that
keep matrices tiled for SpGEMM (AMG levels, graph analytics) run their
matrix-vector products on it too.  This bench measures tiled vs CSR SpMV
wall time across the representative suite and times a full AMG V-cycle
solve whose smoothers ride on tiled SpMV.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import save_and_print, save_series_json, tiled_of
from repro.analysis import format_table
from repro.bench.schema import make_series
from repro.core.spmv import csr_spmv, tile_spmv
from repro.matrices import representative_18


@pytest.fixture(scope="module")
def spmv_table():
    rng = np.random.default_rng(41)
    out = {}
    for spec in representative_18()[:10]:
        a = spec.matrix()
        t = tiled_of(a)
        x = rng.normal(size=a.shape[1])
        # Warm both paths, then time repeated products.
        tile_spmv(t, x)
        csr_spmv(a, x)
        reps = 5
        t0 = time.perf_counter()
        for _ in range(reps):
            y_tile = tile_spmv(t, x)
        tile_ms = (time.perf_counter() - t0) / reps * 1e3
        t0 = time.perf_counter()
        for _ in range(reps):
            y_csr = csr_spmv(a, x)
        csr_ms = (time.perf_counter() - t0) / reps * 1e3
        assert np.allclose(y_tile, y_csr)
        out[spec.name] = {"tile_ms": tile_ms, "csr_ms": csr_ms, "nnz": a.nnz}
    return out


def test_spmv_report(benchmark, spmv_table):
    rows = [
        [name, v["nnz"], f"{v['csr_ms']:.3f}", f"{v['tile_ms']:.3f}"]
        for name, v in spmv_table.items()
    ]
    text = format_table(
        ["matrix", "nnz", "CSR SpMV ms", "tiled SpMV ms"],
        rows,
        title="Extension: SpMV on the resident tiled format (results verified equal)",
    )
    benchmark.pedantic(save_and_print, args=("ext_spmv", text), rounds=1, iterations=1)
    series = []
    for name, v in spmv_table.items():
        for method, ms in (("csr_spmv", v["csr_ms"]), ("tile_spmv", v["tile_ms"])):
            series.append(
                make_series(
                    name, method, "spmv",
                    wall_seconds=[ms / 1e3],
                    nnz=v["nnz"],
                    flops=2 * v["nnz"],
                    gflops=2 * v["nnz"] / (ms / 1e3) / 1e9,
                )
            )
    save_series_json("ext_spmv", series, suite="ext_spmv")


def test_shape_results_identical(spmv_table):
    assert len(spmv_table) == 10  # equality asserted while building


def test_bench_amg_solve_on_tiled_operators(benchmark):
    """A full AMG-preconditioned CG solve: SpGEMM setup + tiled-SpMV cycles."""
    from repro.apps import AMGSolver, amg_preconditioned_cg
    from repro.matrices import generators

    a = generators.stencil_2d(48, 48).to_csr()
    rng = np.random.default_rng(42)
    b = csr_spmv(a, rng.normal(size=a.shape[0]))
    solver = AMGSolver(a)

    def solve():
        return amg_preconditioned_cg(a, b, solver=solver, tol=1e-8)

    res = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert res.converged
    benchmark.extra_info["pcg_iterations"] = res.iterations
