"""Ablation: the adaptive accumulator threshold (paper §3.3's tnnz = 192).

The paper selects the dense accumulator when a tile holds more than 75 %
of its capacity (192 of 256) and the sparse accumulator otherwise.  This
ablation sweeps the threshold from always-dense (0) to always-sparse (256)
and reports the accumulator mix, the modelled step-3 time, and wall time —
demonstrating that the adaptive middle beats both extremes on a mixed
workload.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import save_and_print, tiled_of
from repro.analysis import format_table
from repro.core import tile_spgemm
from repro.gpu import RTX3090, estimate_run
from repro.matrices import representative_18

THRESHOLDS = [0, 64, 128, 192, 256]


@pytest.fixture(scope="module")
def sweep():
    # A block matrix with a genuine mix of dense and sparse tiles.
    spec = next(s for s in representative_18() if s.name == "pkustk12")
    a = tiled_of(spec.matrix())
    out = {}
    for tnnz in THRESHOLDS:
        t0 = time.perf_counter()
        res = tile_spgemm(a, a, tnnz=tnnz)
        wall = time.perf_counter() - t0
        from repro.baselines.base import SpGEMMResult

        adapter = SpGEMMResult(
            c=res.c.to_csr(), method="tilespgemm", timer=res.timer,
            alloc=res.alloc, stats=dict(res.stats),
        )
        est = estimate_run(adapter, RTX3090)
        step3 = next(k for k in est.kernels if k.name == "step3")
        out[tnnz] = {
            "sparse_tiles": res.stats["sparse_tiles"],
            "dense_tiles": res.stats["dense_tiles"],
            "wall_ms": wall * 1e3,
            "modelled_ms": est.seconds * 1e3,
            "step3_compute_ms": step3.compute_s * 1e3,
            "nnz_c": res.c.nnz,
        }
    return out


def test_ablation_report(benchmark, sweep):
    rows = [
        [
            t,
            v["sparse_tiles"],
            v["dense_tiles"],
            f"{v['step3_compute_ms']:.4f}",
            f"{v['modelled_ms']:.3f}",
            f"{v['wall_ms']:.1f}",
        ]
        for t, v in sweep.items()
    ]
    text = format_table(
        ["tnnz", "sparse tiles", "dense tiles", "step3 compute ms", "modelled ms", "wall ms"],
        rows,
        title="Ablation: adaptive accumulator threshold (paper: tnnz = 192 = 75% of 256)",
    )
    benchmark.pedantic(save_and_print, args=("ablation_accumulator", text), rounds=1, iterations=1)


def test_shape_threshold_splits_monotonically(sweep):
    dense_counts = [sweep[t]["dense_tiles"] for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(dense_counts, dense_counts[1:]))
    # At tnnz=0 every *non-empty* candidate tile goes dense (empty
    # candidate tiles have nnz == 0 and always count as sparse).
    assert sweep[0]["dense_tiles"] > 0.9 * sweep[0]["sparse_tiles"]
    assert sweep[256]["dense_tiles"] == 0


def test_shape_results_identical(sweep):
    assert len({v["nnz_c"] for v in sweep.values()}) == 1


def test_shape_paper_threshold_not_worse_than_extremes(sweep):
    """The modelled step-3 compute at tnnz=192 must not exceed either
    all-sparse or all-dense (the point of the adaptive selection)."""
    adaptive = sweep[192]["step3_compute_ms"]
    assert adaptive <= sweep[0]["step3_compute_ms"] * 1.05
    assert adaptive <= sweep[256]["step3_compute_ms"] * 1.05


@pytest.mark.parametrize("force", ["sparse", "dense"])
def test_bench_accumulators(benchmark, force):
    spec = next(s for s in representative_18() if s.name == "case39")
    a = tiled_of(spec.matrix())
    res = benchmark.pedantic(
        lambda: tile_spgemm(a, a, force_accumulator=force), rounds=1, iterations=1
    )
    benchmark.extra_info["dense_tiles"] = res.stats["dense_tiles"]
