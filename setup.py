"""Legacy setup shim.

``pip install -e .`` through pyproject.toml is the supported path; this
file exists so fully offline environments (no ``wheel`` package available
for PEP-517 editable builds) can still do ``python setup.py develop``.
"""

from setuptools import setup

setup()
