"""repro.serve — the resilient async SpGEMM serving tier.

The layers below this package answer "how do we multiply once, fast and
correctly"; this one answers "how do we keep answering when everyone
asks at the same time".  It puts an asyncio front door on the tiled
engines: a bounded request queue with backpressure, estimation-driven
admission control (OCEAN-style upfront pricing against the device
budget), per-request deadlines with cooperative cancellation,
per-request memory budgets whose blow-ups degrade gracefully (the shard
re-splits along :func:`~repro.runtime.chunked.batch_bounds` and stays on
the pool — never a silent fall-back to serial), per-tenant response
ordering, and full accounting: every submitted request terminates in
exactly one typed outcome, and the Prometheus export of
:mod:`repro.obs.metrics` sums to the submission count.

Entry points
------------
:class:`SpGEMMService`
    The service itself (``async with SpGEMMService(...) as svc``).
:func:`~repro.serve.loadgen.run_closed_loop` /
:func:`~repro.serve.loadgen.run_open_loop`
    Deterministic load drivers, also behind ``python -m repro serve``.

See ``docs/SERVING.md`` for the operational story.
"""

from repro.serve.admission import AdmissionController, CostEstimate, estimate_cost
from repro.serve.deadline import CancelToken, Deadline, ShardCancelled
from repro.serve.loadgen import (
    LoadReport,
    make_workload,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.queue import BoundedRequestQueue
from repro.serve.request import (
    OUTCOME_DEADLINE,
    OUTCOME_EXHAUSTED,
    OUTCOME_SERVED,
    OUTCOME_SHED,
    OUTCOMES,
    ServeRequest,
    ServeResponse,
    outcome_for,
)
from repro.serve.service import LATENCY_BUCKETS, SpGEMMService
from repro.serve.worker import WorkerBridge, default_run_shard

__all__ = [
    "SpGEMMService",
    "LATENCY_BUCKETS",
    "ServeRequest",
    "ServeResponse",
    "OUTCOMES",
    "OUTCOME_SERVED",
    "OUTCOME_SHED",
    "OUTCOME_DEADLINE",
    "OUTCOME_EXHAUSTED",
    "outcome_for",
    "AdmissionController",
    "CostEstimate",
    "estimate_cost",
    "BoundedRequestQueue",
    "Deadline",
    "CancelToken",
    "ShardCancelled",
    "WorkerBridge",
    "default_run_shard",
    "LoadReport",
    "make_workload",
    "run_closed_loop",
    "run_open_loop",
]
