"""Admission control: cheap upfront cost estimates and the shed decision.

A serving tier that admits every request eventually serves none of them —
overload must be refused at the door, cheaply, before any symbolic work
runs.  Following the estimation-driven strategy selection of OCEAN
(PAPERS.md, arXiv:2604.19004), admission prices a request from the same
quantities the cost model already uses: the exact upper bound on the
number of intermediate products

    ``products = sum_k nnz(a_*k) * nnz(b_k*)``

is one pass over ``nnz(A)`` (the paper's ``#flops`` is twice it), and
``nnz(C) <= products`` bounds the output, so operand bytes plus a
products-priced output bound is a sound *upper* estimate of the working
set.  A request whose estimate cannot fit the device budget even after
chunking headroom is shed with a typed
:class:`~repro.errors.ServiceOverloadError` instead of being allowed to
OOM after burning queue time; queue-depth overflow sheds the same way.

The estimate works directly on either operand format: CSR rows are read
off ``indptr``/``indices``; tiled operands reconstruct per-row counts
and global column indices from the tile structure in O(nnz) vectorised
work, so admission never converts or multiplies anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ServiceOverloadError

__all__ = ["CostEstimate", "AdmissionController", "estimate_cost"]

#: Bytes charged per intermediate product in the output bound: an 8-byte
#: value plus a 4-byte index, the CSR-side price of one kept nonzero.
_BYTES_PER_PRODUCT = 12


def _row_nnz(m) -> np.ndarray:
    """Nonzeros per row of ``m`` (CSR or tiled), length ``m.shape[0]``."""
    if hasattr(m, "indptr"):
        return np.diff(m.indptr).astype(np.int64)
    # Tiled: the global row of element e in tile t of tile row r is
    # r * T + rowidx[e]; reconstruct r per element and bincount.
    tiles_per_row = np.diff(m.tileptr)
    tile_row_of_tile = np.repeat(np.arange(m.num_tile_rows), tiles_per_row)
    elem_tile = np.repeat(np.arange(m.num_tiles), np.diff(m.tilennz))
    rows = tile_row_of_tile[elem_tile] * m.tile_size + m.rowidx.astype(np.int64)
    return np.bincount(rows, minlength=m.shape[0]).astype(np.int64)


def _col_indices(m) -> np.ndarray:
    """Global column index of every stored element of ``m``."""
    if hasattr(m, "indices"):
        return m.indices
    elem_tile = np.repeat(np.arange(m.num_tiles), np.diff(m.tilennz))
    return m.tilecolidx[elem_tile].astype(np.int64) * m.tile_size + m.colidx


@dataclass(frozen=True)
class CostEstimate:
    """The upfront price of one multiply.

    Attributes
    ----------
    products:
        Exact count of intermediate products (``nnz(C) <= products``).
    flops:
        The paper's ``#flops``: ``2 * products``.
    operand_bytes:
        Resident bytes of the two operands.
    c_upper_bytes:
        Upper bound on the output's bytes, priced per product.
    """

    products: int
    flops: int
    operand_bytes: int
    c_upper_bytes: int

    @property
    def total_bytes(self) -> int:
        """Upper bound on the request's working set."""
        return self.operand_bytes + self.c_upper_bytes


def estimate_cost(a, b) -> CostEstimate:
    """Price ``a @ b`` without running any phase of it.

    O(nnz) and allocation-light; accepts CSR or tiled operands in any
    mix.  The products count is exact; the byte figures are upper
    bounds (the admission contract needs soundness, not tightness).
    """
    b_rows = _row_nnz(b)
    a_cols = _col_indices(a)
    products = int(b_rows[a_cols].sum()) if a_cols.size else 0
    nnz_c_bound = min(products, int(a.shape[0]) * int(b.shape[1]))
    operand_bytes = int(a.memory_bytes() + b.memory_bytes())
    return CostEstimate(
        products=products,
        flops=2 * products,
        operand_bytes=operand_bytes,
        c_upper_bytes=nnz_c_bound * _BYTES_PER_PRODUCT,
    )


class AdmissionController:
    """The shed decision: queue depth and memory-estimate gates.

    Parameters
    ----------
    max_queue_depth:
        Hard bound of the request queue; ``admit`` sheds at this depth
        (the queue itself enforces the same bound as a backstop).
    budget_bytes:
        Device budget the memory gate checks against; ``None`` disables
        the memory gate (queue depth still applies).
    headroom:
        Multiplier on ``budget_bytes``: estimates are upper bounds and
        execution can re-split on real OOM, so values above 1 admit
        requests whose *bound* exceeds the budget as long as chunking
        has a chance.  ``1.0`` (default) sheds anything whose bound does
        not fit outright.
    """

    def __init__(
        self,
        max_queue_depth: int,
        budget_bytes: Optional[int] = None,
        headroom: float = 1.0,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {headroom}")
        self.max_queue_depth = int(max_queue_depth)
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self.headroom = float(headroom)

    def check_memory(self, estimate: CostEstimate) -> None:
        """Shed when the upfront estimate cannot fit the device budget.

        Waiting cannot fix an oversized request, so this gate fires
        regardless of the submitter's backpressure mode.
        """
        if self.budget_bytes is None:
            return
        limit = int(self.budget_bytes * self.headroom)
        if estimate.total_bytes > limit:
            raise ServiceOverloadError(
                "memory_estimate",
                f"estimated working set {estimate.total_bytes} B "
                f"(operands {estimate.operand_bytes} B + output bound "
                f"{estimate.c_upper_bytes} B) exceeds {limit} B",
            )

    def check_depth(self, depth: int) -> None:
        """Shed when the queue is at its bound."""
        if depth >= self.max_queue_depth:
            raise ServiceOverloadError(
                "queue_full",
                f"queue depth {depth} at configured bound {self.max_queue_depth}",
            )
