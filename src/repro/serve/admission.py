"""Admission control: cheap upfront cost estimates and the shed decision.

A serving tier that admits every request eventually serves none of them —
overload must be refused at the door, cheaply, before any symbolic work
runs.  Following the estimation-driven strategy selection of OCEAN
(PAPERS.md, arXiv:2604.19004), admission prices a request from the same
quantities the cost model already uses: the exact upper bound on the
number of intermediate products

    ``products = sum_k nnz(a_*k) * nnz(b_k*)``

is one pass over ``nnz(A)`` (the paper's ``#flops`` is twice it), and
``nnz(C) <= products`` bounds the output, so operand bytes plus a
products-priced output bound is a sound *upper* estimate of the working
set.  A request whose estimate cannot fit the device budget even after
chunking headroom is shed with a typed
:class:`~repro.errors.ServiceOverloadError` instead of being allowed to
OOM after burning queue time; queue-depth overflow sheds the same way.

The estimate works directly on either operand format: CSR rows are read
off ``indptr``/``indices``; tiled operands reconstruct per-row counts
and global column indices from the tile structure in O(nnz) vectorised
work, so admission never converts or multiplies anything.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import ServiceOverloadError

__all__ = ["CostEstimate", "AdmissionController", "estimate_cost"]

#: Safety margin applied to the *estimated* (row-sampled) nnz(C) when a
#: calibration baseline licenses estimates over upper bounds; the result
#: is still capped by the exact bound.
_CALIBRATED_MARGIN = 1.5

#: Bytes charged per intermediate product in the output bound: an 8-byte
#: value plus a 4-byte index, the CSR-side price of one kept nonzero.
_BYTES_PER_PRODUCT = 12


def _row_nnz(m) -> np.ndarray:
    """Nonzeros per row of ``m`` (CSR or tiled), length ``m.shape[0]``."""
    if hasattr(m, "indptr"):
        return np.diff(m.indptr).astype(np.int64)
    # Tiled: the global row of element e in tile t of tile row r is
    # r * T + rowidx[e]; reconstruct r per element and bincount.
    tiles_per_row = np.diff(m.tileptr)
    tile_row_of_tile = np.repeat(np.arange(m.num_tile_rows), tiles_per_row)
    elem_tile = np.repeat(np.arange(m.num_tiles), np.diff(m.tilennz))
    rows = tile_row_of_tile[elem_tile] * m.tile_size + m.rowidx.astype(np.int64)
    return np.bincount(rows, minlength=m.shape[0]).astype(np.int64)


def _col_indices(m) -> np.ndarray:
    """Global column index of every stored element of ``m``."""
    if hasattr(m, "indices"):
        return m.indices
    elem_tile = np.repeat(np.arange(m.num_tiles), np.diff(m.tilennz))
    return m.tilecolidx[elem_tile].astype(np.int64) * m.tile_size + m.colidx


@dataclass(frozen=True)
class CostEstimate:
    """The upfront price of one multiply.

    Attributes
    ----------
    products:
        Exact count of intermediate products (``nnz(C) <= products``).
    flops:
        The paper's ``#flops``: ``2 * products``.
    operand_bytes:
        Resident bytes of the two operands.
    c_upper_bytes:
        Upper bound on the output's bytes, priced per product.
    """

    products: int
    flops: int
    operand_bytes: int
    c_upper_bytes: int

    @property
    def total_bytes(self) -> int:
        """Upper bound on the request's working set."""
        return self.operand_bytes + self.c_upper_bytes


def estimate_cost(a, b) -> CostEstimate:
    """Price ``a @ b`` without running any phase of it.

    O(nnz) and allocation-light; accepts CSR or tiled operands in any
    mix.  The products count is exact; the byte figures are upper
    bounds (the admission contract needs soundness, not tightness).
    """
    b_rows = _row_nnz(b)
    a_cols = _col_indices(a)
    products = int(b_rows[a_cols].sum()) if a_cols.size else 0
    nnz_c_bound = min(products, int(a.shape[0]) * int(b.shape[1]))
    operand_bytes = int(a.memory_bytes() + b.memory_bytes())
    return CostEstimate(
        products=products,
        flops=2 * products,
        operand_bytes=operand_bytes,
        c_upper_bytes=nnz_c_bound * _BYTES_PER_PRODUCT,
    )


class AdmissionController:
    """The shed decision: queue depth and memory-estimate gates.

    The memory gate accounts for *concurrency*: each admitted request
    reserves its priced bytes until the service releases them at the
    request's terminal response, and the gate sheds when the aggregate
    of in-flight reservations plus the new request would exceed the
    budget.  Pricing each request in isolation would let concurrent
    admitted requests jointly blow ``budget_bytes``.

    Parameters
    ----------
    max_queue_depth:
        Hard bound of the request queue; ``admit`` sheds at this depth
        (the queue itself enforces the same bound as a backstop).
    budget_bytes:
        Device budget the memory gate checks against; ``None`` disables
        the memory gate (queue depth still applies).
    headroom:
        Multiplier on ``budget_bytes``: estimates are upper bounds and
        execution can re-split on real OOM, so values above 1 admit
        requests whose *bound* exceeds the budget as long as chunking
        has a chance.  ``1.0`` (default) sheds anything whose bound does
        not fit outright.
    calibration:
        Optional loaded ``repro.calibration/1`` report.  Its presence
        means the cost model has been validated against measured runs on
        this machine, which licenses :meth:`price` to charge the
        OCEAN-style row-sampled nnz(C) *estimate* (times a safety
        margin, capped at the exact bound) instead of the worst-case
        upper bound — admitting more of the requests that would in fact
        have fit.
    """

    def __init__(
        self,
        max_queue_depth: int,
        budget_bytes: Optional[int] = None,
        headroom: float = 1.0,
        calibration: Optional[Dict[str, Any]] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {headroom}")
        self.max_queue_depth = int(max_queue_depth)
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self.headroom = float(headroom)
        self.calibration = calibration
        self._inflight_bytes = 0
        self._lock = threading.Lock()

    @property
    def inflight_bytes(self) -> int:
        """Bytes currently reserved by admitted, unfinished requests."""
        with self._lock:
            return self._inflight_bytes

    def price(self, a, b) -> CostEstimate:
        """Price ``a @ b`` for admission.

        Without a calibration baseline this is exactly
        :func:`estimate_cost` (sound upper bounds).  With one, the
        output charge becomes the row-sampled nnz(C) estimate of
        :func:`repro.analysis.estimate.estimate_multiply` times a
        safety margin — still capped by the exact upper bound, so the
        charge never grows, only tightens.
        """
        est = estimate_cost(a, b)
        if not self.calibration:
            return est
        from repro.analysis.estimate import estimate_multiply

        sampled = estimate_multiply(a, b)
        calibrated = int(sampled.est_nnz_c * _CALIBRATED_MARGIN) * _BYTES_PER_PRODUCT
        return CostEstimate(
            products=est.products,
            flops=est.flops,
            operand_bytes=est.operand_bytes,
            c_upper_bytes=min(est.c_upper_bytes, calibrated),
        )

    def check_memory(self, estimate: CostEstimate) -> None:
        """Shed when the upfront estimate cannot fit the device budget.

        Waiting cannot fix an oversized request, so this gate fires
        regardless of the submitter's backpressure mode.  Checks the
        single request against the limit only; :meth:`admit_memory` adds
        the aggregate in-flight gate and the reservation.
        """
        if self.budget_bytes is None:
            return
        limit = int(self.budget_bytes * self.headroom)
        if estimate.total_bytes > limit:
            raise ServiceOverloadError(
                "memory_estimate",
                f"estimated working set {estimate.total_bytes} B "
                f"(operands {estimate.operand_bytes} B + output bound "
                f"{estimate.c_upper_bytes} B) exceeds {limit} B",
            )

    def admit_memory(self, estimate: CostEstimate) -> int:
        """Admit one request against the budget *and* the in-flight total.

        Returns the reserved byte count the caller must hand back to
        :meth:`release_memory` exactly once, at the request's terminal
        response.  Sheds with reason ``memory_estimate`` when the
        request alone cannot fit, ``memory_inflight`` when it would push
        the aggregate of admitted requests past the limit (waiting *can*
        fix that one, but blocking submission risks deadlocking the
        backpressure path, so the service sheds and lets the client
        retry).
        """
        self.check_memory(estimate)
        if self.budget_bytes is None:
            return 0
        limit = int(self.budget_bytes * self.headroom)
        nbytes = int(estimate.total_bytes)
        with self._lock:
            if self._inflight_bytes + nbytes > limit:
                raise ServiceOverloadError(
                    "memory_inflight",
                    f"admitting {nbytes} B on top of {self._inflight_bytes} B "
                    f"already in flight would exceed {limit} B",
                )
            self._inflight_bytes += nbytes
        return nbytes

    def release_memory(self, nbytes: int) -> None:
        """Return an :meth:`admit_memory` reservation (request finished)."""
        if nbytes <= 0:
            return
        with self._lock:
            self._inflight_bytes = max(0, self._inflight_bytes - int(nbytes))

    def check_depth(self, depth: int) -> None:
        """Shed when the queue is at its bound."""
        if depth >= self.max_queue_depth:
            raise ServiceOverloadError(
                "queue_full",
                f"queue depth {depth} at configured bound {self.max_queue_depth}",
            )
