"""Deadlines and cooperative cancellation.

Python threads cannot be killed, so a deadline is enforced at the
points the service controls: before a queued request starts executing,
before each shard is scheduled, and whenever a shard completes.  The
:class:`CancelToken` carries the "stop now" signal *into* the worker
pool — a shard still waiting for a pool slot when the token fires
raises :class:`ShardCancelled` instead of computing, so an expired
request stops consuming workers almost immediately while shards already
running simply finish (their results are discarded).

Both classes take an injectable clock so tests can drive deadlines
deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import DeadlineExceededError

__all__ = ["Deadline", "CancelToken", "ShardCancelled"]


class ShardCancelled(Exception):
    """A shard observed its request's cancel token before starting.

    Service-internal control flow, never surfaced to clients — the
    request terminates with the :class:`~repro.errors`-typed error that
    caused the cancellation (deadline, exhaustion).
    """


class CancelToken:
    """A thread-safe one-way flag from the event loop into pool workers."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def raise_if_set(self) -> None:
        if self._event.is_set():
            raise ShardCancelled()


class Deadline:
    """One request's wall-clock budget, measured from construction.

    ``budget_s=None`` never expires; ``remaining()`` then returns
    ``None`` (the shape :func:`asyncio.wait` wants for its timeout).
    """

    def __init__(
        self,
        budget_s: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget_s = None if budget_s is None else float(budget_s)
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        if self.budget_s is None:
            return None
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self) -> None:
        """Raise the typed deadline error when the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(self.budget_s, self.elapsed())
