"""Request/response contract of the async serving tier.

A request is one multiply submitted by one client ("tenant"): operands,
an optional deadline, an optional per-request memory budget and an
optional fault plan.  A response is the *terminal* record of that
request — exactly one of the four outcomes below, always delivered, so a
submitter can account for every request it sent:

* :data:`OUTCOME_SERVED` — the product, byte-identical to a serial
  :func:`~repro.core.tilespgemm.tile_spgemm` run;
* :data:`OUTCOME_SHED` — rejected at admission (queue full, or the
  upfront cost estimate would blow the device budget); carries a
  :class:`~repro.errors.ServiceOverloadError`;
* :data:`OUTCOME_DEADLINE` — the deadline passed before completion;
  carries a :class:`~repro.errors.DeadlineExceededError`;
* :data:`OUTCOME_EXHAUSTED` — recovery ran out of road (a single tile
  row still over budget, transient retries spent, the worker pool broken
  beyond replacement); carries a
  :class:`~repro.errors.ResilienceExhausted`.

The outcome strings double as the ``outcome`` label of the
``serve_outcomes_total`` Prometheus counter, and every error maps onto
the CLI exit-code contract via :func:`repro.errors.exit_code_for`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    ResilienceExhausted,
    ServiceOverloadError,
)

__all__ = [
    "OUTCOME_SERVED",
    "OUTCOME_SHED",
    "OUTCOME_DEADLINE",
    "OUTCOME_EXHAUSTED",
    "OUTCOMES",
    "outcome_for",
    "ServeRequest",
    "ServeResponse",
]

OUTCOME_SERVED = "served"
OUTCOME_SHED = "shed"
OUTCOME_DEADLINE = "deadline"
OUTCOME_EXHAUSTED = "exhausted"

#: Every terminal state of a request, in severity order.
OUTCOMES: Tuple[str, ...] = (
    OUTCOME_SERVED,
    OUTCOME_SHED,
    OUTCOME_DEADLINE,
    OUTCOME_EXHAUSTED,
)


def outcome_for(exc: BaseException) -> str:
    """The outcome label a failed request terminates with."""
    if isinstance(exc, ServiceOverloadError):
        return OUTCOME_SHED
    if isinstance(exc, DeadlineExceededError):
        return OUTCOME_DEADLINE
    return OUTCOME_EXHAUSTED


@dataclass
class ServeRequest:
    """One queued multiply (service-internal).

    Attributes
    ----------
    a, b:
        Tiled operands (the service tiles CSR submissions through the
        process-wide :class:`~repro.runtime.tilecache.TileCache`).
    tenant, seq:
        Client identity and its 0-based per-tenant submission index;
        together they name the request in traces and error messages.
    deadline_s:
        Wall-clock budget measured from submission; ``None`` = none.
    budget_bytes:
        Per-request logical device-memory budget enforced on every shard.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` threaded into
        every shard of this request (isolation: other requests never see
        this plan's faults).
    exact:
        The submitter requires exact-tier (byte-reproducible) kernels.
        When the service is configured with a fast-math backend such a
        request is shed at admission (reason ``"backend_tier"``) rather
        than silently served with relaxed-tolerance values.
    trace_id:
        The propagated trace identity assigned at submission; every
        span, worker-side shard span and structured-log event of this
        request carries it.
    admitted_bytes:
        Bytes this request reserved against the admission controller's
        aggregate in-flight gate; released exactly once at the terminal
        response (0 = no reservation held).
    submitted_s:
        Service-clock timestamp of admission.
    done:
        Future resolved with the :class:`ServeResponse`; what
        ``submit()`` awaits.
    order_prev, order_gate:
        The per-tenant ordering chain: ``done`` is not resolved until
        ``order_prev`` (the previous request's gate) is, and
        ``order_gate`` is resolved right after — so responses arrive in
        submission order per tenant even when later requests finish
        first.
    """

    a: object
    b: object
    tenant: str
    seq: int
    deadline_s: Optional[float] = None
    budget_bytes: Optional[int] = None
    fault_plan: Optional[object] = None
    exact: bool = False
    trace_id: str = ""
    admitted_bytes: int = 0
    submitted_s: float = 0.0
    done: Optional["asyncio.Future"] = field(default=None, repr=False)
    order_prev: Optional["asyncio.Future"] = field(default=None, repr=False)
    order_gate: Optional["asyncio.Future"] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return f"{self.tenant}#{self.seq}"


@dataclass
class ServeResponse:
    """The terminal record of one request.

    Exactly one of ``c`` (served) and ``error`` (shed / deadline /
    exhausted) is set.  The bookkeeping fields tell the story of the
    execution: how long the request queued, how many shards ran, how
    often a budget blow-up forced a re-split, how many transient retries
    and worker-pool replacements it took.
    """

    tenant: str
    seq: int
    outcome: str
    c: Optional[object] = None
    error: Optional[BaseException] = None
    trace_id: str = ""
    latency_s: float = 0.0
    queue_s: float = 0.0
    shards_run: int = 0
    resplits: int = 0
    retries: int = 0
    pool_replacements: int = 0

    @property
    def ok(self) -> bool:
        """True when the request was served."""
        return self.outcome == OUTCOME_SERVED

    def result_or_raise(self):
        """The product, or the typed error the request terminated with."""
        if self.ok:
            return self.c
        raise self.error
