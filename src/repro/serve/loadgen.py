"""The load driver: open- and closed-loop request generators plus a report.

A serving tier cannot be judged by a single request — its contracts
(bounded queue, shed-under-overload, deadline accounting) only show up
under concurrency.  The driver here builds a deterministic workload of
synthetic operands (seeded, so two runs submit byte-identical requests),
submits them either *closed-loop* (a burst of N requests all at once —
the chaos-test shape) or *open-loop* (Poisson-less fixed-rate arrivals —
the latency-benchmark shape), and folds every response into a
:class:`LoadReport` with nearest-rank percentiles and the outcome
breakdown the CLI and the benchmark suite both print.

Latency percentiles use the nearest-rank definition (ceil(p/100 * N)-th
smallest) — no interpolation, so small samples stay honest.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.matrices.generators import random_uniform
from repro.serve.request import OUTCOME_SERVED, OUTCOMES, ServeResponse

__all__ = ["LoadReport", "make_workload", "run_closed_loop", "run_open_loop"]


def make_workload(
    num_requests: int,
    *,
    n: int = 256,
    nnz_per_row: float = 8.0,
    seed: int = 0,
    distinct: int = 4,
):
    """Deterministic operand pairs for a load run.

    ``distinct`` caps how many unique matrices are generated; requests
    cycle through them, which is the serving story (many requests over a
    small resident operand set) and keeps the tile cache warm.
    """
    pool = [
        random_uniform(n, nnz_per_row, seed=seed + k).to_csr()
        for k in range(distinct)
    ]
    return [
        (pool[k % distinct], pool[(k + 1) % distinct])
        for k in range(num_requests)
    ]


@dataclass
class LoadReport:
    """Aggregate view of one load run."""

    submitted: int = 0
    outcomes: Dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in OUTCOMES}
    )
    latencies_s: List[float] = field(default_factory=list)
    queue_s: List[float] = field(default_factory=list)
    shards_run: int = 0
    resplits: int = 0
    retries: int = 0
    wall_s: float = 0.0

    def add(self, resp: ServeResponse) -> None:
        self.submitted += 1
        self.outcomes[resp.outcome] = self.outcomes.get(resp.outcome, 0) + 1
        self.latencies_s.append(resp.latency_s)
        self.queue_s.append(resp.queue_s)
        self.shards_run += resp.shards_run
        self.resplits += resp.resplits
        self.retries += resp.retries

    @property
    def served(self) -> int:
        return self.outcomes.get(OUTCOME_SERVED, 0)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the latency sample (seconds)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def throughput_rps(self) -> float:
        return self.served / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "outcomes": dict(self.outcomes),
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "mean_queue_ms": (
                float(np.mean(self.queue_s)) * 1e3 if self.queue_s else 0.0
            ),
            "throughput_rps": self.throughput_rps,
            "shards_run": self.shards_run,
            "resplits": self.resplits,
            "retries": self.retries,
            "wall_s": self.wall_s,
        }

    def summary(self) -> str:
        d = self.to_dict()
        parts = [f"{self.submitted} submitted"]
        parts += [
            f"{count} {outcome}"
            for outcome, count in self.outcomes.items()
            if count
        ]
        parts.append(f"p50 {d['p50_ms']:.2f} ms")
        parts.append(f"p99 {d['p99_ms']:.2f} ms")
        parts.append(f"{d['throughput_rps']:.1f} served/s")
        return ", ".join(parts)


async def run_closed_loop(
    service,
    workload,
    *,
    tenants: int = 1,
    deadline_s: Optional[float] = None,
    budget_bytes: Optional[int] = None,
    backpressure: str = "wait",
    clock=None,
) -> LoadReport:
    """Submit the whole workload at once and await every response.

    The burst shape: all requests in flight together, spread round-robin
    over ``tenants`` synthetic clients.  With ``backpressure="wait"``
    the queue bound throttles the burst; with ``"shed"`` the overflow
    comes back as typed shed responses — both are valid runs, the report
    tells them apart.
    """
    import time as _time

    clock = clock or _time.perf_counter
    report = LoadReport()
    t0 = clock()
    responses = await asyncio.gather(
        *(
            service.submit(
                a,
                b,
                tenant=f"tenant{k % tenants}",
                deadline_s=deadline_s,
                budget_bytes=budget_bytes,
                backpressure=backpressure,
            )
            for k, (a, b) in enumerate(workload)
        )
    )
    report.wall_s = clock() - t0
    for resp in responses:
        report.add(resp)
    return report


async def run_open_loop(
    service,
    workload,
    *,
    rate_rps: float,
    tenants: int = 1,
    deadline_s: Optional[float] = None,
    budget_bytes: Optional[int] = None,
    clock=None,
) -> LoadReport:
    """Fixed-rate arrivals: one request every ``1/rate_rps`` seconds.

    Open-loop means arrivals do *not* slow down when the service does —
    the honest way to measure overload behaviour, so submissions use the
    shed (fail-fast) backpressure mode.
    """
    import time as _time

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    clock = clock or _time.perf_counter
    report = LoadReport()
    interval = 1.0 / rate_rps
    pending = []
    t0 = clock()
    for k, (a, b) in enumerate(workload):
        pending.append(
            asyncio.ensure_future(
                service.submit(
                    a,
                    b,
                    tenant=f"tenant{k % tenants}",
                    deadline_s=deadline_s,
                    budget_bytes=budget_bytes,
                    backpressure="shed",
                )
            )
        )
        # Sleep to the schedule, not by the interval: submission overhead
        # must not stretch the arrival process.
        next_arrival = t0 + (k + 1) * interval
        delay = next_arrival - clock()
        if delay > 0 and k + 1 < len(workload):
            await asyncio.sleep(delay)
    responses = await asyncio.gather(*pending)
    report.wall_s = clock() - t0
    for resp in responses:
        report.add(resp)
    return report
