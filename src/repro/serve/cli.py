"""``python -m repro serve`` — run the service against a generated load.

Two subcommands drive the serving tier from the command line:

``serve run``
    Closed-loop burst: submit ``--requests`` multiplies at once (spread
    over ``--tenants`` synthetic clients) and await every response.  The
    chaos shape — queue bound, deadlines and budgets all bite at once.

``serve load``
    Open-loop driver: fixed-rate arrivals (``--rate`` requests/second)
    that do *not* slow down when the service does, submitted in the
    fail-fast shed mode.  The honest overload experiment.

Both print a one-line summary (or ``--json`` a full document), can dump
the Prometheus snapshot (``--metrics``), the Chrome trace (``--trace``)
and the structured JSON-lines event log (``--log``), can expose the
*live* registry over HTTP while the run is in flight (``--listen
HOST:PORT`` serves ``/metrics``, ``/healthz`` and ``/varz``; add
``--linger SECONDS`` to keep the endpoint scrapeable after the last
response), and exit with the code of the *worst* outcome any request
terminated with, per the repo-wide contract of :mod:`repro.errors`:

====  ==================================================
0     every request served
11    at least one request shed (admission/backpressure)
12    at least one deadline expired (and none worse)
8     at least one request exhausted recovery
====  ==================================================

(Severity order: exhausted > deadline > shed, matching the
``OUTCOMES`` ordering — an exhausted request is a correctness event, a
shed request is the service doing its job.)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.errors import (
    EXIT_DEADLINE,
    EXIT_SHED,
    InvalidInputError,
    ReproError,
    ResilienceExhausted,
    exit_code_for,
)
from repro.obs import EventLog, MetricsRegistry, SLOPolicy, Tracer, obs_context
from repro.obs.http import TelemetryServer, parse_listen
from repro.serve.loadgen import make_workload, run_closed_loop, run_open_loop
from repro.serve.request import (
    OUTCOME_DEADLINE,
    OUTCOME_EXHAUSTED,
    OUTCOME_SHED,
)
from repro.serve.service import SpGEMMService

__all__ = ["serve_main"]


def _parse_bytes(text: str) -> int:
    from repro.cli import _parse_bytes as parse

    return parse(text)


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--requests", type=int, default=32, metavar="N",
        help="requests to submit (default 32)",
    )
    p.add_argument(
        "--tenants", type=int, default=4, metavar="N",
        help="synthetic clients to spread requests over (default 4)",
    )
    p.add_argument(
        "--n", type=int, default=256, metavar="DIM",
        help="operand dimension of the generated workload (default 256)",
    )
    p.add_argument(
        "--nnz-per-row", type=float, default=8.0, metavar="X",
        help="mean operand row length (default 8)",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    p.add_argument(
        "--queue-depth", type=int, default=32, metavar="N",
        help="bounded queue depth (default 32)",
    )
    p.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="compute pool size (default 2)",
    )
    p.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="compute pool kind (default thread); 'process' runs shards "
        "in worker processes with full trace propagation",
    )
    p.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrently executing requests (default: --workers)",
    )
    p.add_argument(
        "--initial-shards", type=int, default=1, metavar="N",
        help="tile-row shards each request starts from (default 1)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline (default: none)",
    )
    p.add_argument(
        "--request-budget", type=_parse_bytes, default=None, metavar="BYTES",
        help="per-request logical memory budget (suffixes K/M/G); shards "
        "that blow it are re-split and requeued",
    )
    p.add_argument(
        "--admission-budget", type=_parse_bytes, default=None, metavar="BYTES",
        help="admission-control memory budget; requests whose upfront "
        "estimate exceeds it are shed (default: no memory gate)",
    )
    p.add_argument(
        "--calibration", default=None, metavar="FILE.json",
        help="repro.calibration/1 report (obs calibrate --out); its "
        "presence lets admission price requests from calibrated "
        "estimates instead of worst-case upper bounds",
    )
    p.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel backend for the shards (default: ambient/numpy)",
    )
    p.add_argument(
        "--metrics", default=None, metavar="OUT.prom",
        help="write the Prometheus snapshot after the run",
    )
    p.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="write a merged Chrome trace: request spans plus the "
        "worker-recorded shard spans, linked by trace id",
    )
    p.add_argument(
        "--log", default=None, metavar="OUT.jsonl",
        help="stream the structured JSON-lines event log here (crash-safe "
        "append; replayable into the outcome tally)",
    )
    p.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve live /metrics, /healthz and /varz over HTTP while "
        "the run is in flight (port 0 picks an ephemeral port)",
    )
    p.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the --listen endpoint up this long after the run "
        "(default 0: stop immediately)",
    )
    p.add_argument(
        "--slo-target", type=float, default=0.5, metavar="SECONDS",
        help="per-tenant SLO latency target (default 0.5)",
    )
    p.add_argument(
        "--slo-objective", type=float, default=0.95, metavar="FRAC",
        help="per-tenant SLO objective fraction (default 0.95)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print a machine-readable report document instead of one line",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="drive the async SpGEMM serving tier (docs/SERVING.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="closed-loop burst: submit everything at once"
    )
    _add_common(run_p)
    run_p.add_argument(
        "--backpressure", choices=("wait", "shed"), default="wait",
        help="submitter overload contract: 'wait' blocks at the queue "
        "bound, 'shed' fails fast (default wait)",
    )

    load_p = sub.add_parser(
        "load", help="open-loop driver: fixed-rate arrivals, shed mode"
    )
    _add_common(load_p)
    load_p.add_argument(
        "--rate", type=float, required=True, metavar="RPS",
        help="arrival rate in requests/second",
    )
    return parser


def _exit_code(report) -> int:
    if report.outcomes.get(OUTCOME_EXHAUSTED, 0):
        return exit_code_for(ResilienceExhausted(""))
    if report.outcomes.get(OUTCOME_DEADLINE, 0):
        return EXIT_DEADLINE
    if report.outcomes.get(OUTCOME_SHED, 0):
        return EXIT_SHED
    return 0


async def _drive(args, holder: dict) -> "LoadReport":
    workload = make_workload(
        args.requests,
        n=args.n,
        nnz_per_row=args.nnz_per_row,
        seed=args.seed,
    )
    calibration = None
    if args.calibration:
        from repro.analysis.calibration import load_calibration

        calibration = load_calibration(args.calibration)
    service = SpGEMMService(
        max_queue_depth=args.queue_depth,
        workers=args.workers,
        executor=args.executor,
        max_inflight=args.max_inflight,
        initial_shards=args.initial_shards,
        admission_budget_bytes=args.admission_budget,
        calibration=calibration,
        default_deadline_s=args.deadline,
        default_budget_bytes=args.request_budget,
        slo_policy=SLOPolicy(
            latency_target_s=args.slo_target, objective=args.slo_objective
        ),
        backend=args.backend,
    )
    holder["service"] = service  # the --listen endpoint's /varz source
    async with service:
        if args.command == "run":
            return await run_closed_loop(
                service,
                workload,
                tenants=args.tenants,
                backpressure=args.backpressure,
            )
        return await run_open_loop(
            service, workload, rate_rps=args.rate, tenants=args.tenants
        )


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``serve`` subcommand family."""
    import time as _time

    args = _build_parser().parse_args(argv)
    tracer = Tracer() if args.trace is not None else None
    # The live endpoint needs a registry even without a --metrics file.
    metrics = (
        MetricsRegistry()
        if (args.metrics is not None or args.listen is not None)
        else None
    )
    log = EventLog(path=args.log) if args.log is not None else None
    holder: dict = {}
    server = None
    if args.listen is not None:
        try:
            host, port = parse_listen(args.listen)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return exit_code_for(InvalidInputError(str(exc)))
        server = TelemetryServer(
            metrics=metrics,
            varz_fn=lambda: (
                holder["service"].varz() if "service" in holder else {}
            ),
            host=host,
            port=port,
        )
        bound_host, bound_port = server.start()
        print(
            f"telemetry: http://{bound_host}:{bound_port}/metrics "
            "(/healthz, /varz)",
            file=sys.stderr,
        )
    report = None
    exc_code = None
    try:
        try:
            with obs_context(tracer=tracer, metrics=metrics, log=log):
                report = asyncio.run(_drive(args, holder))
        except ReproError as exc:
            # Typed failures still leave artifacts behind (the finally
            # below) — a failed run is when you want the trace most.
            print(f"error: {exc}", file=sys.stderr)
            exc_code = exit_code_for(exc)
        finally:
            if tracer is not None and args.trace is not None:
                tracer.write(args.trace)
            if metrics is not None and args.metrics is not None:
                metrics.write(args.metrics)
            if log is not None:
                log.close()

        if exc_code is not None:
            return exc_code
        if args.json:
            doc = {"command": args.command, "report": report.to_dict()}
            if metrics is not None:
                doc["metrics"] = metrics.snapshot()
            print(json.dumps(doc, indent=2))
        else:
            print(f"serve {args.command}: {report.summary()}")
        if server is not None and args.linger > 0:
            # Keep the endpoint scrapeable at its terminal state (CI
            # scrapes the final counters through HTTP, not the file).
            _time.sleep(args.linger)
        return _exit_code(report)
    finally:
        if server is not None:
            server.stop()
