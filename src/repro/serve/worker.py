"""The worker bridge: shard multiplies on a thread pool, awaited from asyncio.

The event loop must never run a multiply — a single symbolic phase would
stall every queue, deadline and admission decision in the process.  The
bridge owns a :class:`~concurrent.futures.ThreadPoolExecutor` and turns
each shard into an awaitable: the loop schedules shards, the pool
computes them, NumPy releases the GIL for the bulk of the work.  Thread
pool (not process) is deliberate: shards share the resident ``B``
operand by reference, which is the serving story — many requests over
one resident operand set.

Pool workers run with empty ambient context stacks (both the execution
and observability contexts are thread-local), so a request's budget and
fault plan reach its shards only as the explicit ``opts`` the service
forwards — one tenant's fault plan can never leak into another's shard.

**Worker death.**  A shard callable that raises
:class:`~concurrent.futures.BrokenExecutor` (or a pool broken outright)
is the modelled analogue of a worker process dying mid-shard.  The
bridge can be told to :meth:`replace_pool` — the broken pool is
abandoned, a fresh one takes over, and only the shard that was lost is
re-run; sibling requests keep their queued shards.

``run_fn`` is injectable so tests can fault specific shards (die once,
then heal) without touching the engine.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from typing import Callable, Dict, Optional

from repro.core.tile_matrix import TileMatrix
from repro.serve.deadline import CancelToken

__all__ = ["WorkerBridge", "default_run_shard", "BrokenExecutor"]


def default_run_shard(a_shard: TileMatrix, b: TileMatrix, opts: Dict[str, object]):
    """One shard's multiply: ``tile_spgemm`` keeping empty tiles for the
    order-preserving stitch (exactly the parallel engine's shard body)."""
    from repro.core.tilespgemm import tile_spgemm

    res = tile_spgemm(a_shard, b, keep_empty_tiles=True, **opts)
    # The stitch never reads these and they pin large intermediates.
    res.pairs = None
    res.symbolic = None
    return res


class WorkerBridge:
    """Owns the compute pool and the loop→thread handoff.

    Parameters
    ----------
    workers:
        Pool size (>= 1).
    run_fn:
        Shard body ``(a_shard, b, opts) -> TileSpGEMMResult``; defaults
        to :func:`default_run_shard`.  Tests inject faulty bodies here.
    """

    def __init__(
        self,
        workers: int = 2,
        run_fn: Optional[Callable] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._run_fn = run_fn or default_run_shard
        self._lock = threading.Lock()
        self._pool = self._make_pool()
        self.pool_replacements = 0

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    async def run(
        self,
        a_shard: TileMatrix,
        b: TileMatrix,
        opts: Dict[str, object],
        token: Optional[CancelToken] = None,
    ):
        """Await one shard.  Raises whatever the shard body raises —
        :class:`~repro.errors.DeviceOOMError`,
        :class:`~repro.errors.TransientKernelError`,
        :class:`~concurrent.futures.BrokenExecutor`,
        :class:`~repro.serve.deadline.ShardCancelled` — for the service's
        recovery loop to sort out."""
        import asyncio

        def _call():
            if token is not None:
                token.raise_if_set()
            return self._run_fn(a_shard, b, opts)

        loop = asyncio.get_running_loop()
        with self._lock:
            pool = self._pool
        return await loop.run_in_executor(pool, _call)

    def replace_pool(self) -> None:
        """Abandon the (presumed broken) pool and start a fresh one."""
        with self._lock:
            old = self._pool
            self._pool = self._make_pool()
            self.pool_replacements += 1
        old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool = self._pool
        pool.shutdown(wait=wait, cancel_futures=not wait)
