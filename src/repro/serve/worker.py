"""The worker bridge: shard multiplies on a pool, awaited from asyncio.

The event loop must never run a multiply — a single symbolic phase would
stall every queue, deadline and admission decision in the process.  The
bridge owns a :mod:`concurrent.futures` pool and turns each shard into
an awaitable: the loop schedules shards, the pool computes them.

**Executors.**  ``executor="thread"`` (default) shares the resident
``B`` operand by reference and lets NumPy release the GIL — the serving
story of many requests over one resident operand set.
``executor="process"`` runs each shard in a separate OS process (the
modelled analogue of per-GPU worker processes): operands ship by pickle
per call, the injected ``run_fn`` must be a module-level function, and a
worker killed mid-shard surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool` (a
:class:`BrokenExecutor`), which the service's pool-replacement path
already handles.

**Trace propagation.**  Every ``run`` call may carry a
:class:`~repro.obs.propagate.TraceContext`; the shard body then runs
under :func:`~repro.obs.propagate.run_with_worker_obs`, which records
worker-side spans into a pool-local tracer and ships them back with the
result as a picklable :class:`~repro.obs.propagate.WorkerTelemetry` —
``run`` resolves to ``(result, telemetry)`` and the service merges the
telemetry onto the request's timeline.  Pool workers run with empty
ambient context stacks (both the execution and observability contexts
are thread-local), so a request's budget and fault plan reach its shards
only as the explicit ``opts`` the service forwards — one tenant's fault
plan can never leak into another's shard.

**Worker death.**  A shard callable that raises
:class:`~concurrent.futures.BrokenExecutor` (or a pool broken outright)
is the modelled analogue of a worker process dying mid-shard.  The
bridge can be told to :meth:`replace_pool` — the broken pool is
abandoned, a fresh one takes over, and only the shard that was lost is
re-run; sibling requests keep their queued shards.

``run_fn`` is injectable so tests can fault specific shards (die once,
then heal) without touching the engine.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Callable, Dict, Optional

from repro.core.tile_matrix import TileMatrix
from repro.errors import InvalidInputError
from repro.obs.propagate import TraceContext, run_with_worker_obs
from repro.serve.deadline import CancelToken

__all__ = ["WorkerBridge", "default_run_shard", "BrokenExecutor"]


def default_run_shard(a_shard: TileMatrix, b: TileMatrix, opts: Dict[str, object]):
    """One shard's multiply: ``tile_spgemm`` keeping empty tiles for the
    order-preserving stitch (exactly the parallel engine's shard body)."""
    from repro.core.tilespgemm import tile_spgemm

    res = tile_spgemm(a_shard, b, keep_empty_tiles=True, **opts)
    # The stitch never reads these and they pin large intermediates.
    res.pairs = None
    res.symbolic = None
    return res


def _traced_call(run_fn, a_shard, b, opts, ctx: Optional[TraceContext]):
    """Pool-side shard body (module-level so the process pool can pickle
    it).  Always returns ``(result, telemetry)``; telemetry is ``None``
    for an untraced call."""
    return run_with_worker_obs(ctx, run_fn, a_shard, b, opts)


class WorkerBridge:
    """Owns the compute pool and the loop→pool handoff.

    Parameters
    ----------
    workers:
        Pool size (>= 1).
    run_fn:
        Shard body ``(a_shard, b, opts) -> TileSpGEMMResult``; defaults
        to :func:`default_run_shard`.  Tests inject faulty bodies here.
        Must be a module-level (picklable) function on the process pool.
    executor:
        ``"thread"`` (default) or ``"process"``.
    mp_context:
        Optional :mod:`multiprocessing` context for the process pool
        (e.g. ``get_context("spawn")``); ``None`` uses the platform
        default.
    """

    def __init__(
        self,
        workers: int = 2,
        run_fn: Optional[Callable] = None,
        executor: str = "thread",
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in ("thread", "process"):
            raise InvalidInputError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self.workers = int(workers)
        self.executor = executor
        self._run_fn = run_fn or default_run_shard
        self._mp_context = mp_context
        self._lock = threading.Lock()
        self._pool = self._make_pool()
        self.pool_replacements = 0

    def _make_pool(self):
        if self.executor == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    async def run(
        self,
        a_shard: TileMatrix,
        b: TileMatrix,
        opts: Dict[str, object],
        token: Optional[CancelToken] = None,
        trace_ctx: Optional[TraceContext] = None,
    ):
        """Await one shard; resolves to ``(result, telemetry)``.

        ``telemetry`` is the worker-recorded
        :class:`~repro.obs.propagate.WorkerTelemetry` when ``trace_ctx``
        was given, else ``None``.  Raises whatever the shard body raises
        — :class:`~repro.errors.DeviceOOMError`,
        :class:`~repro.errors.TransientKernelError`,
        :class:`~concurrent.futures.BrokenExecutor`,
        :class:`~repro.serve.deadline.ShardCancelled` — for the service's
        recovery loop to sort out.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        with self._lock:
            pool = self._pool
        if self.executor == "process":
            # The token wraps a threading.Event and cannot cross the
            # process boundary; honour it here, before the submit — a
            # shard already running in another process finishes anyway
            # (cooperative cancellation, same as a busy thread worker).
            if token is not None:
                token.raise_if_set()
            call = partial(
                _traced_call, self._run_fn, a_shard, b, opts, trace_ctx
            )
        else:

            def call():
                if token is not None:
                    token.raise_if_set()
                return _traced_call(self._run_fn, a_shard, b, opts, trace_ctx)

        return await loop.run_in_executor(pool, call)

    def replace_pool(self) -> None:
        """Abandon the (presumed broken) pool and start a fresh one."""
        with self._lock:
            old = self._pool
            self._pool = self._make_pool()
            self.pool_replacements += 1
        old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool = self._pool
        pool.shutdown(wait=wait, cancel_futures=not wait)
