"""The bounded request queue: FIFO buffering with per-tenant accounting.

A thin layer over :class:`asyncio.Queue` that adds the three things the
serving tier needs and asyncio does not provide: a *hard* bound that is
observable (``high_water`` proves the bound was never exceeded), per-
tenant depth accounting for the ``serve_queue_depth{tenant=...}`` gauge,
and a synchronous drain used at non-graceful shutdown to shed whatever
is still buffered.

``try_put`` is the shed path (fail fast when full); ``put`` is the
backpressure path (the *submitter's* coroutine blocks until a slot
frees, which is exactly the signal an open-loop client needs to slow
down).  Both run on the event loop — no locks needed beyond asyncio's
own.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List

from repro.serve.request import ServeRequest

__all__ = ["BoundedRequestQueue"]


class BoundedRequestQueue:
    """FIFO of :class:`~repro.serve.request.ServeRequest` with a hard bound."""

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ValueError(f"queue bound must be >= 1, got {bound}")
        self.bound = int(bound)
        self._q: "asyncio.Queue[ServeRequest]" = asyncio.Queue(maxsize=self.bound)
        self._by_tenant: Dict[str, int] = {}
        self.high_water = 0
        self.total_enqueued = 0

    # ------------------------------------------------------------- producers
    def try_put(self, req: ServeRequest) -> bool:
        """Enqueue without waiting; False when the queue is at its bound."""
        try:
            self._q.put_nowait(req)
        except asyncio.QueueFull:
            return False
        self._note_put(req)
        return True

    async def put(self, req: ServeRequest) -> None:
        """Enqueue, awaiting a free slot — backpressure to the submitter."""
        await self._q.put(req)
        self._note_put(req)

    def _note_put(self, req: ServeRequest) -> None:
        self.total_enqueued += 1
        self._by_tenant[req.tenant] = self._by_tenant.get(req.tenant, 0) + 1
        self.high_water = max(self.high_water, self.depth)

    # ------------------------------------------------------------- consumers
    async def get(self) -> ServeRequest:
        req = await self._q.get()
        self._note_get(req)
        return req

    def _note_get(self, req: ServeRequest) -> None:
        left = self._by_tenant.get(req.tenant, 0) - 1
        if left > 0:
            self._by_tenant[req.tenant] = left
        else:
            self._by_tenant.pop(req.tenant, None)

    def task_done(self) -> None:
        self._q.task_done()

    async def join(self) -> None:
        """Resolve once every dequeued request has been marked done."""
        await self._q.join()

    def drain(self) -> List[ServeRequest]:
        """Empty the queue synchronously (non-graceful shutdown shed)."""
        drained: List[ServeRequest] = []
        while True:
            try:
                req = self._q.get_nowait()
            except asyncio.QueueEmpty:
                return drained
            self._note_get(req)
            self._q.task_done()
            drained.append(req)

    # ------------------------------------------------------------- queries
    @property
    def depth(self) -> int:
        return self._q.qsize()

    def depth_of(self, tenant: str) -> int:
        return self._by_tenant.get(tenant, 0)

    def tenants(self) -> List[str]:
        return sorted(self._by_tenant)
