"""The asyncio SpGEMM service: admission, deadlines, recovery, ordering.

:class:`SpGEMMService` is the "millions of users" front door over the
engines the earlier layers built: many clients share one resident
operand set (the process-wide :class:`~repro.runtime.tilecache.TileCache`)
while every request keeps its own isolation — its own memory budget, its
own deadline, its own fault plan, its own recovery state.

The life of a request::

    submit ──▶ admission ──▶ bounded queue ──▶ shard loop ──▶ response
                 │ shed                            │
                 ▼                                 ├─ OOM: re-split the shard
              response                             │   (batch_bounds) + requeue
              (typed error)                        ├─ transient: retry with
                                                   │   awaited seeded backoff
                                                   ├─ pool broken: replace the
                                                   │   pool, re-run the shard
                                                   └─ deadline: cancel token,
                                                       typed error

**Graceful degradation, not serialisation.**  A shard that blows its
per-request budget is split with the same
:func:`~repro.runtime.chunked.batch_bounds` boundary rule as chunked
re-execution and both halves are *requeued to the pool* — the progressive
re-allocation scheme of Liu & Vinter's framework (PAPERS.md,
arXiv:1504.05022) applied at the serving tier, keeping the request
parallel instead of degrading it to the serial engine.  Because the
stitch is order-preserving and the numeric phase chunks at C-tile
boundaries, the served product is byte-identical to a serial
``tile_spgemm`` run no matter how many re-splits it took.

**Ordering.**  Responses resolve in submission order per tenant: each
request chains on the previous one's gate, so a client iterating its
own submissions sees them complete in the order it sent them, while
different tenants never wait on each other (shed responses return
immediately — failing fast *is* the backpressure signal).

**Accounting.**  Every submitted request terminates in exactly one of
``served`` / ``shed`` / ``deadline`` / ``exhausted``; the
``serve_outcomes_total`` counters sum to ``serve_requests_total`` by
construction, and the whole story exports through the existing
Prometheus text format of :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

from repro.backend import ConformanceTier, backend_tier, resolve_backend_name
from repro.core.tile_matrix import TileMatrix
from repro.errors import (
    DeadlineExceededError,
    DeviceOOMError,
    InvalidInputError,
    ResilienceExhausted,
    ServiceOverloadError,
    TransientKernelError,
)
from repro.obs.context import current_obs
from repro.obs.propagate import TraceContext, absorb_telemetry, new_trace_id
from repro.obs.slo import SLOPolicy, SLOTracker
from repro.runtime.chunked import batch_bounds, slice_tile_rows, stitch_results
from repro.runtime.policy import ParallelPolicy, RetryPolicy, backoff_wait
from repro.runtime.tilecache import get_tile_cache
from repro.serve.admission import AdmissionController
from repro.serve.deadline import CancelToken, Deadline, ShardCancelled
from repro.serve.queue import BoundedRequestQueue
from repro.serve.request import (
    OUTCOME_DEADLINE,
    OUTCOME_SERVED,
    OUTCOME_SHED,
    ServeRequest,
    ServeResponse,
    outcome_for,
)
from repro.serve.worker import BrokenExecutor, WorkerBridge

__all__ = ["SpGEMMService", "LATENCY_BUCKETS"]

#: Histogram bounds for ``serve_latency_seconds`` (log-ish spacing from
#: sub-millisecond cache hits to multi-second chunked recoveries).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass
class _ExecStats:
    """Recovery bookkeeping of one request's shard loop."""

    shards_run: int = 0
    resplits: int = 0
    retries: int = 0
    pool_replacements: int = 0


class SpGEMMService:
    """Async serving loop over the tiled SpGEMM engines.

    Parameters
    ----------
    max_queue_depth:
        Hard bound of the request queue; requests arriving at the bound
        are shed (or block, for ``backpressure="wait"`` submitters).
    workers:
        Threads in the compute pool (>= 1).
    device:
        Optional :class:`~repro.gpu.device.DeviceModel`; its Table-1
        DRAM capacity becomes the admission budget and the default
        per-request budget unless overridden.
    admission_budget_bytes, admission_headroom:
        The memory gate (see
        :class:`~repro.serve.admission.AdmissionController`).  Budget
        defaults to the device's DRAM capacity; ``None`` with no device
        disables the gate.  Admitted requests reserve their priced
        bytes until their terminal response, and the gate sheds on the
        *aggregate*, so concurrent requests cannot jointly blow the
        budget.
    calibration:
        Optional loaded ``repro.calibration/1`` report; when present,
        admission prices requests from the row-sampled nnz(C) estimate
        (capped at the exact upper bound) instead of the worst-case
        bound alone.
    default_deadline_s, default_budget_bytes:
        Applied to requests that do not carry their own.
    initial_shards:
        Tile-row shards each request starts from (1 = whole multiply;
        OOM re-splits grow it on demand).
    retry_policy:
        A :class:`~repro.runtime.policy.RetryPolicy`; its
        ``max_retries`` and backoff/jitter knobs govern transient-fault
        recovery.  The waits are computed by
        :func:`~repro.runtime.policy.backoff_wait` and **awaited** on
        the event loop, never slept.
    parallel_policy:
        A :class:`~repro.runtime.policy.ParallelPolicy`;
        ``on_worker_failure="raise"`` turns a broken pool into an
        immediate ``exhausted`` outcome instead of pool replacement.
    max_pool_replacements:
        Broken pools replaced per request before giving up.
    max_inflight:
        Requests executing concurrently (default: ``workers``).
    executor:
        ``"thread"`` (default) or ``"process"`` — the kind of compute
        pool the :class:`~repro.serve.worker.WorkerBridge` owns.  With
        ``"process"``, shard spans are still recorded where the work ran
        and shipped back (see :mod:`repro.obs.propagate`); ``run_fn``
        must then be a module-level (picklable) function.
    mp_context:
        Optional :mod:`multiprocessing` context for the process pool
        (e.g. ``get_context("spawn")``).
    slo_policy:
        A :class:`~repro.obs.slo.SLOPolicy`; every terminal response
        updates the tenant's ``slo_attainment`` and
        ``slo_error_budget_burn_rate`` gauges (defaults apply when
        ``None``).
    backend:
        Kernel-backend spec resolved once to a registry name and
        forwarded to every shard.
    sleep:
        Async sleep injectable (default :func:`asyncio.sleep`); tests
        pass a recorder to keep backoff instant.
    clock:
        Monotonic clock injectable for queue/latency/deadline timing.
    run_fn:
        Shard-body injectable forwarded to the
        :class:`~repro.serve.worker.WorkerBridge` (fault-path tests).
    """

    def __init__(
        self,
        *,
        max_queue_depth: int = 32,
        workers: int = 2,
        device=None,
        admission_budget_bytes: Optional[int] = None,
        admission_headroom: float = 1.0,
        calibration: Optional[Dict[str, object]] = None,
        default_deadline_s: Optional[float] = None,
        default_budget_bytes: Optional[int] = None,
        initial_shards: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        parallel_policy: Optional[ParallelPolicy] = None,
        max_pool_replacements: int = 1,
        max_inflight: Optional[int] = None,
        executor: str = "thread",
        mp_context=None,
        slo_policy: Optional[SLOPolicy] = None,
        backend=None,
        sleep=None,
        clock=time.monotonic,
        run_fn=None,
    ) -> None:
        if initial_shards < 1:
            raise InvalidInputError(
                f"initial_shards must be >= 1, got {initial_shards}"
            )
        if admission_budget_bytes is None and device is not None:
            admission_budget_bytes = device.dram_capacity_bytes
        if default_budget_bytes is None and device is not None:
            default_budget_bytes = device.dram_capacity_bytes
        self.device = device
        self._admission = AdmissionController(
            max_queue_depth,
            admission_budget_bytes,
            admission_headroom,
            calibration=calibration,
        )
        self._queue = BoundedRequestQueue(max_queue_depth)
        self._bridge = WorkerBridge(
            workers=workers, run_fn=run_fn, executor=executor, mp_context=mp_context
        )
        self._retry = retry_policy or RetryPolicy()
        self._parallel = parallel_policy or ParallelPolicy()
        self._max_pool_replacements = int(max_pool_replacements)
        self._initial_shards = int(initial_shards)
        self._default_deadline_s = default_deadline_s
        self._default_budget_bytes = default_budget_bytes
        self._backend_name = resolve_backend_name(backend)
        self._backend_tier = backend_tier(self._backend_name)
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._clock = clock
        self._cache = get_tile_cache()
        self._obs = current_obs()
        self.slo = SLOTracker(slo_policy or SLOPolicy(), metrics=self._obs.metrics)

        self._max_inflight = int(max_inflight or workers)
        self._running = False
        self._accepting = False
        self._dispatcher: Optional[asyncio.Task] = None
        self._inflight: Set[asyncio.Task] = set()
        self._sem: Optional[asyncio.Semaphore] = None
        self._tenant_seq: Dict[str, int] = {}
        self._tenant_tail: Dict[str, asyncio.Future] = {}
        self._epoch = 0.0
        self._describe_metrics()

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> "SpGEMMService":
        """Start the dispatch loop; idempotent."""
        if self._running:
            return self
        self._sem = asyncio.Semaphore(self._max_inflight)
        self._running = True
        self._accepting = True
        self._epoch = time.perf_counter()
        self._dispatcher = asyncio.create_task(
            self._dispatch(), name="repro-serve-dispatch"
        )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` (graceful) refuses new submissions, serves
        everything already queued or running, then shuts the pool down.
        ``drain=False`` sheds the queue (typed ``shutdown`` responses),
        lets in-flight requests finish, and shuts down.
        """
        if not self._running:
            return
        self._accepting = False
        if drain:
            await self._queue.join()
            while self._inflight:
                await asyncio.gather(
                    *list(self._inflight), return_exceptions=True
                )
        else:
            for req in self._queue.drain():
                self._finish_shed(
                    req,
                    ServiceOverloadError("shutdown", "service stopping"),
                    queued=True,
                )
            while self._inflight:
                await asyncio.gather(
                    *list(self._inflight), return_exceptions=True
                )
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        self._bridge.shutdown(wait=True)
        self._running = False

    async def __aenter__(self) -> "SpGEMMService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=not any(exc))

    # ------------------------------------------------------------ submission
    async def submit(
        self,
        a,
        b,
        *,
        tenant: str = "default",
        deadline_s: Optional[float] = None,
        budget_bytes: Optional[int] = None,
        fault_plan=None,
        exact: bool = False,
        backpressure: str = "shed",
    ) -> ServeResponse:
        """Submit one multiply; resolves with its terminal response.

        Never raises for the service-level outcomes — shed, deadline
        expiry and exhaustion come back *inside* the response, carrying
        their typed error (``response.result_or_raise()`` re-raises).
        Raises :class:`~repro.errors.InvalidInputError` only for caller
        bugs: malformed operands or a stopped service.

        ``backpressure`` is the submitter's overload contract:
        ``"shed"`` (default) fails fast with a typed shed response when
        the queue is at its bound; ``"wait"`` blocks this coroutine
        until a slot frees — the submitter slows to the service's pace.

        ``exact=True`` declares the submitter needs exact-tier
        (byte-reproducible) values.  A service whose configured backend
        is fast-math sheds such requests at admission with reason
        ``"backend_tier"`` — the conformance guarantee is part of
        admission, never silently downgraded.
        """
        if not self._running or not self._accepting:
            raise InvalidInputError("service is not accepting requests")
        if backpressure not in ("shed", "wait"):
            raise InvalidInputError(
                f"backpressure must be 'shed' or 'wait', got {backpressure!r}"
            )
        a_t = self._cache.tile(a)
        b_t = self._cache.tile(b)
        if a_t.tile_size != b_t.tile_size:
            raise InvalidInputError("A and B must use the same tile size")
        if a_t.shape[1] != b_t.shape[0]:
            raise InvalidInputError(
                f"dimension mismatch: A is {a_t.shape[0]}x{a_t.shape[1]}, "
                f"B is {b_t.shape[0]}x{b_t.shape[1]}"
            )

        seq = self._tenant_seq.get(tenant, 0)
        self._tenant_seq[tenant] = seq + 1
        req = ServeRequest(
            a=a_t,
            b=b_t,
            tenant=tenant,
            seq=seq,
            deadline_s=(
                deadline_s if deadline_s is not None else self._default_deadline_s
            ),
            budget_bytes=(
                budget_bytes
                if budget_bytes is not None
                else self._default_budget_bytes
            ),
            fault_plan=fault_plan,
            exact=exact,
            trace_id=new_trace_id("req"),
            submitted_s=self._clock(),
        )
        metrics = self._obs.metrics
        metrics.inc("serve_requests_total", tenant=tenant)
        self._obs.log.emit(
            "request_submitted",
            trace_id=req.trace_id,
            tenant=tenant,
            seq=seq,
            deadline_s=req.deadline_s,
            budget_bytes=req.budget_bytes,
        )

        # Admission gate 0: the conformance tier.  An exact-mode
        # request against a fast-math service can never be satisfied,
        # so it sheds immediately in either backpressure mode (waiting
        # cannot change the service's backend).
        if req.exact and self._backend_tier is not ConformanceTier.EXACT:
            return self._finish_shed(
                req,
                ServiceOverloadError(
                    "backend_tier",
                    f"request requires exact-tier kernels but the service "
                    f"backend {self._backend_name!r} is declared "
                    f"{self._backend_tier.value!r}",
                ),
                queued=False,
            )

        # Admission gate 1: the memory estimate — this request alone,
        # and the aggregate of everything already admitted (reserved
        # bytes are released at the terminal response).  Waiting cannot
        # shrink an oversized request, so this sheds in either
        # backpressure mode.
        try:
            req.admitted_bytes = self._admission.admit_memory(
                self._admission.price(a_t, b_t)
            )
        except ServiceOverloadError as exc:
            return self._finish_shed(req, exc, queued=False)

        # Admission gate 2: queue depth.
        loop = asyncio.get_running_loop()
        req.done = loop.create_future()
        if backpressure == "wait":
            self._chain_order(req, loop)
            await self._queue.put(req)  # backpressure: blocks the submitter
        else:
            try:
                self._admission.check_depth(self._queue.depth)
            except ServiceOverloadError as exc:
                return self._finish_shed(req, exc, queued=False)
            self._chain_order(req, loop)
            if not self._queue.try_put(req):  # raced to the bound
                return self._finish_shed(
                    req,
                    ServiceOverloadError(
                        "queue_full",
                        f"queue at configured bound {self._queue.bound}",
                    ),
                    queued=False,
                )
        self._note_queue_depth(tenant)
        return await req.done

    def _chain_order(self, req: ServeRequest, loop) -> None:
        req.order_prev = self._tenant_tail.get(req.tenant)
        req.order_gate = loop.create_future()
        self._tenant_tail[req.tenant] = req.order_gate

    # ------------------------------------------------------------ dispatch
    async def _dispatch(self) -> None:
        while True:
            await self._sem.acquire()
            try:
                req = await self._queue.get()
            except asyncio.CancelledError:
                self._sem.release()
                raise
            task = asyncio.create_task(self._handle(req), name=f"serve-{req.name}")
            self._inflight.add(task)
            task.add_done_callback(self._on_handled)

    def _on_handled(self, task: asyncio.Task) -> None:
        self._inflight.discard(task)
        self._sem.release()
        if not task.cancelled() and task.exception() is not None:
            # _handle is supposed to be total; surface bugs loudly.
            raise task.exception()

    async def _handle(self, req: ServeRequest) -> None:
        start = self._clock()
        self._note_queue_depth(req.tenant)
        trace_t0 = time.perf_counter() - self._epoch
        self._obs.log.emit(
            "request_dequeued",
            trace_id=req.trace_id,
            tenant=req.tenant,
            seq=req.seq,
            queue_s=start - req.submitted_s,
        )
        stats = _ExecStats()
        deadline = Deadline(req.deadline_s, clock=self._clock)
        # The deadline clock started at submission, not at dequeue.
        deadline._start = req.submitted_s
        try:
            deadline.check()  # queued past the deadline: no compute at all
            c = await self._execute(req, deadline, stats)
            outcome, error = OUTCOME_SERVED, None
        except (
            ServiceOverloadError,
            DeadlineExceededError,
            ResilienceExhausted,
        ) as exc:
            outcome, error, c = outcome_for(exc), exc, None
        except Exception as exc:  # engine bug: terminal, typed as exhausted
            wrapped = ResilienceExhausted(
                f"request {req.name} failed outside the recovery ladder: {exc}"
            )
            wrapped.__cause__ = exc
            outcome, error, c = outcome_for(wrapped), wrapped, None
        finally:
            self._release_admitted(req)
            self._queue.task_done()

        now = self._clock()
        resp = ServeResponse(
            tenant=req.tenant,
            seq=req.seq,
            outcome=outcome,
            c=c,
            error=error,
            trace_id=req.trace_id,
            latency_s=now - req.submitted_s,
            queue_s=start - req.submitted_s,
            shards_run=stats.shards_run,
            resplits=stats.resplits,
            retries=stats.retries,
            pool_replacements=stats.pool_replacements,
        )
        self._record_response(resp, trace_t0)
        await self._deliver(req, resp)

    async def _deliver(self, req: ServeRequest, resp: ServeResponse) -> None:
        """Resolve the response behind the per-tenant ordering gate."""
        try:
            if req.order_prev is not None:
                await req.order_prev
        finally:
            if req.done is not None and not req.done.done():
                req.done.set_result(resp)
            if req.order_gate is not None and not req.order_gate.done():
                req.order_gate.set_result(None)

    # ------------------------------------------------------------ execution
    async def _execute(
        self, req: ServeRequest, deadline: Deadline, stats: _ExecStats
    ) -> TileMatrix:
        """The shard loop: schedule, recover, re-split, stitch."""
        a, b = req.a, req.b
        n = a.num_tile_rows
        if n <= 0:
            ranges: Deque[Tuple[int, int, int]] = deque([(0, 0, 0)])
        else:
            bounds = batch_bounds(n, min(self._initial_shards, n))
            ranges = deque(
                (int(bounds[k]), int(bounds[k + 1]), 0)
                for k in range(len(bounds) - 1)
            )
        opts = {
            "budget_bytes": req.budget_bytes,
            "fault_plan": req.fault_plan,
            "backend": self._backend_name,
        }
        token = CancelToken()
        results: Dict[int, object] = {}
        running: Dict[asyncio.Future, Tuple[int, int, int]] = {}
        metrics = self._obs.metrics
        log = self._obs.log
        # Shards travel with the request's trace identity; the worker
        # records real spans locally and ships them back with the result
        # (None when tracing and profiling are both off — the bridge then
        # skips the harness).  The shard's start tile row rides along so
        # worker-side profiles attribute bands in whole-matrix coordinates.
        trace_live = bool(getattr(self._obs.tracer, "enabled", False))
        profile_live = bool(getattr(self._obs.profile, "enabled", False))
        ctx_live = trace_live or profile_live

        try:
            while ranges or running:
                if deadline.expired():
                    raise DeadlineExceededError(
                        deadline.budget_s, deadline.elapsed()
                    )
                while ranges:
                    r0, r1, retries = ranges.popleft()
                    shard = slice_tile_rows(a, r0, r1) if n > 0 else a
                    shard_ctx = (
                        TraceContext(
                            req.trace_id,
                            parent_span_id=f"req:{req.trace_id}",
                            row_offset=r0,
                        )
                        if ctx_live
                        else None
                    )
                    fut = asyncio.ensure_future(
                        self._bridge.run(shard, b, opts, token, shard_ctx)
                    )
                    running[fut] = (r0, r1, retries)
                done, _ = await asyncio.wait(
                    set(running),
                    timeout=deadline.remaining(),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for fut in done:
                    r0, r1, retries = running.pop(fut)
                    try:
                        res, telemetry = fut.result()
                        results[r0] = res
                        stats.shards_run += 1
                        # Worker spans join the request's timeline (epoch
                        # = the service's trace zero) and worker counters
                        # accumulate into the live registry — the service
                        # never re-records merged stats itself.
                        absorb_telemetry(
                            self._obs.tracer,
                            telemetry,
                            epoch_s=self._epoch,
                            metrics=metrics if telemetry else None,
                            profile=self._obs.profile if telemetry else None,
                            pid="serve.workers",
                        )
                    except ShardCancelled:
                        pass  # lost the race with a cancellation below
                    except DeviceOOMError as exc:
                        if r1 - r0 <= 1:
                            raise ResilienceExhausted(
                                f"request {req.name}: tile-row shard "
                                f"[{r0}, {r1}) is over budget and cannot "
                                "split further"
                            ) from exc
                        # Progressive re-split: halve the shard's tile-row
                        # range with the chunking boundary rule and requeue
                        # both halves — the request stays on the pool.
                        sub = batch_bounds(r1 - r0, 2) + r0
                        ranges.append((int(sub[0]), int(sub[1]), 0))
                        ranges.append((int(sub[1]), int(sub[2]), 0))
                        stats.resplits += 1
                        metrics.inc("serve_resplits_total", tenant=req.tenant)
                        log.emit(
                            "shard_oom_resplit",
                            trace_id=req.trace_id,
                            tenant=req.tenant,
                            seq=req.seq,
                            tile_rows=[r0, r1],
                            requested_bytes=exc.requested_bytes,
                            budget_bytes=exc.budget_bytes,
                        )
                    except TransientKernelError as exc:
                        if retries >= self._retry.max_retries:
                            raise ResilienceExhausted(
                                f"request {req.name}: shard [{r0}, {r1}) "
                                f"still failing after {retries} retries"
                            ) from exc
                        wait = backoff_wait(self._retry, retries)
                        stats.retries += 1
                        metrics.inc("serve_retries_total", tenant=req.tenant)
                        log.emit(
                            "shard_retry",
                            trace_id=req.trace_id,
                            tenant=req.tenant,
                            seq=req.seq,
                            tile_rows=[r0, r1],
                            retry=retries + 1,
                            backoff_s=wait,
                            error=type(exc).__name__,
                        )
                        await self._sleep(wait)  # awaited, never blocking
                        ranges.append((r0, r1, retries + 1))
                    except BrokenExecutor as exc:
                        if (
                            self._parallel.on_worker_failure == "raise"
                            or stats.pool_replacements
                            >= self._max_pool_replacements
                        ):
                            raise ResilienceExhausted(
                                f"request {req.name}: worker pool broken "
                                f"(replacements exhausted)"
                            ) from exc
                        self._bridge.replace_pool()
                        stats.pool_replacements += 1
                        metrics.inc("serve_pool_replacements_total")
                        log.emit(
                            "pool_replaced",
                            trace_id=req.trace_id,
                            tenant=req.tenant,
                            seq=req.seq,
                            tile_rows=[r0, r1],
                            replacement=stats.pool_replacements,
                        )
                        ranges.append((r0, r1, retries))
        except BaseException:
            # Stop shards still queued on the pool, then collect every
            # in-flight future so no exception goes unretrieved.
            token.set()
            if running:
                await asyncio.gather(*running, return_exceptions=True)
            raise

        metrics.inc("serve_shards_total", stats.shards_run, tenant=req.tenant)
        ordered = [results[r0] for r0 in sorted(results)]
        merged = stitch_results(ordered, a, b, keep_empty_tiles=True)
        return merged.c

    # ------------------------------------------------------------ accounting
    def _release_admitted(self, req: ServeRequest) -> None:
        """Return the request's admission reservation (idempotent)."""
        if req.admitted_bytes:
            self._admission.release_memory(req.admitted_bytes)
            req.admitted_bytes = 0

    def _finish_shed(
        self, req: ServeRequest, exc: ServiceOverloadError, queued: bool
    ) -> ServeResponse:
        """Terminal shed response (admission or shutdown), delivered
        immediately — failing fast is the backpressure signal."""
        self._release_admitted(req)
        now = self._clock()
        resp = ServeResponse(
            tenant=req.tenant,
            seq=req.seq,
            outcome=OUTCOME_SHED,
            error=exc,
            trace_id=req.trace_id,
            latency_s=now - req.submitted_s,
            queue_s=now - req.submitted_s if queued else 0.0,
        )
        self._obs.metrics.inc(
            "serve_shed_total", tenant=req.tenant, reason=exc.reason
        )
        self._obs.log.emit(
            "request_shed",
            trace_id=req.trace_id,
            tenant=req.tenant,
            seq=req.seq,
            reason=exc.reason,
            queued=queued,
        )
        self._record_response(resp, time.perf_counter() - self._epoch)
        if req.done is not None and not req.done.done():
            req.done.set_result(resp)
        if req.order_gate is not None and not req.order_gate.done():
            req.order_gate.set_result(None)
        return resp

    def _record_response(self, resp: ServeResponse, trace_t0: float) -> None:
        metrics = self._obs.metrics
        metrics.inc(
            "serve_outcomes_total", tenant=resp.tenant, outcome=resp.outcome
        )
        metrics.observe(
            "serve_latency_seconds",
            resp.latency_s,
            buckets=LATENCY_BUCKETS,
            tenant=resp.tenant,
        )
        self.slo.record(resp.tenant, resp.latency_s, resp.ok)
        self._obs.log.emit(
            "request_done",
            trace_id=resp.trace_id,
            tenant=resp.tenant,
            seq=resp.seq,
            outcome=resp.outcome,
            latency_s=resp.latency_s,
            queue_s=resp.queue_s,
            shards_run=resp.shards_run,
            resplits=resp.resplits,
            retries=resp.retries,
            error=type(resp.error).__name__ if resp.error else None,
        )
        if self._obs.enabled:
            self._obs.tracer.add_complete(
                f"request {resp.tenant}#{resp.seq}",
                trace_t0,
                max(resp.latency_s - resp.queue_s, 0.0),
                pid="serve",
                tid=resp.tenant,
                cat="serve.request",
                outcome=resp.outcome,
                queue_s=resp.queue_s,
                shards=resp.shards_run,
                resplits=resp.resplits,
                retries=resp.retries,
                trace_id=resp.trace_id,
                span_id=f"req:{resp.trace_id}",
                parent_span_id="",
            )

    def _note_queue_depth(self, tenant: str) -> None:
        metrics = self._obs.metrics
        metrics.set_gauge("serve_queue_depth", self._queue.depth)
        metrics.set_gauge(
            "serve_queue_depth", self._queue.depth_of(tenant), tenant=tenant
        )
        metrics.max_gauge("serve_queue_high_water", self._queue.high_water)

    def _describe_metrics(self) -> None:
        m = self._obs.metrics
        m.describe("serve_requests_total", "Requests submitted, by tenant")
        m.describe(
            "serve_outcomes_total",
            "Terminal request outcomes (served/shed/deadline/exhausted)",
        )
        m.describe("serve_shed_total", "Requests shed, by tenant and reason")
        m.describe("serve_queue_depth", "Current bounded-queue depth")
        m.describe(
            "serve_queue_high_water", "Highest queue depth observed"
        )
        m.describe(
            "serve_latency_seconds", "Submission-to-response latency"
        )
        m.describe(
            "serve_resplits_total",
            "Shards re-split after blowing their memory budget",
        )
        m.describe("serve_retries_total", "Transient-fault shard retries")
        m.describe(
            "serve_pool_replacements_total",
            "Worker pools replaced after breaking mid-shard",
        )
        m.describe("serve_shards_total", "Shards executed, by tenant")

    # ------------------------------------------------------------ queries
    @property
    def queue_depth(self) -> int:
        return self._queue.depth

    @property
    def queue_bound(self) -> int:
        return self._queue.bound

    @property
    def queue_high_water(self) -> int:
        return self._queue.high_water

    @property
    def running(self) -> bool:
        return self._running

    def varz(self) -> Dict[str, object]:
        """A JSON-able live status snapshot (the ``/varz`` endpoint body).

        Everything an operator glances at first: lifecycle flags, queue
        state, in-flight count, per-tenant request/outcome counters and
        the SLO report.  Values come straight from the live registry, so
        a mid-run snapshot accounts for every submission so far.
        """
        metrics = self._obs.metrics
        outcomes: Dict[str, Dict[str, float]] = {}
        for labels, value in metrics.counter_samples("serve_outcomes_total"):
            tenant = labels.get("tenant", "")
            outcomes.setdefault(tenant, {})[labels.get("outcome", "")] = value
        requests = {
            labels.get("tenant", ""): value
            for labels, value in metrics.counter_samples("serve_requests_total")
        }
        sheds: Dict[str, float] = {}
        for labels, value in metrics.counter_samples("serve_shed_total"):
            reason = labels.get("reason", "")
            sheds[reason] = sheds.get(reason, 0.0) + value
        out: Dict[str, object] = {
            "running": self._running,
            "accepting": self._accepting,
            "uptime_s": (
                time.perf_counter() - self._epoch if self._running else 0.0
            ),
            "workers": self._bridge.workers,
            "executor": self._bridge.executor,
            "backend": self._backend_name,
            "backend_tier": self._backend_tier.value,
            "pool_replacements": self._bridge.pool_replacements,
            "queue": {
                "depth": self._queue.depth,
                "bound": self._queue.bound,
                "high_water": self._queue.high_water,
            },
            "inflight": len(self._inflight),
            "admission": {
                "budget_bytes": self._admission.budget_bytes,
                "headroom": self._admission.headroom,
                "inflight_bytes": self._admission.inflight_bytes,
                "calibrated": bool(self._admission.calibration),
            },
            "requests_total": requests,
            "outcomes_total": outcomes,
            "sheds_total": sheds,
            "slo": self.slo.report(),
            "tilecache": self._cache.stats(),
        }
        if getattr(self._obs.profile, "enabled", False):
            out["profile"] = self._obs.profile.summary()
        return out
