"""Typed error taxonomy for the resilient execution runtime.

Real SpGEMM deployments fail in a handful of characteristic ways — the
symbolic phase discovers that ``nnz(C)`` does not fit device memory, a
kernel hits a transient fault, a broadcast in a distributed run is lost,
or the inputs were malformed to begin with.  The reproduction previously
surfaced all of these as ad-hoc ``ValueError``s (or raw tracebacks); this
module gives each failure class its own exception type so the runtime
(:mod:`repro.runtime`) can react differently to each:

* :class:`InvalidInputError` — permanent, the caller's fault; never retried.
* :class:`ConfigurationError` — a malformed deployment knob (environment
  variable, service config); permanent, but the *operator's* fault, so it
  gets its own exit code and a one-line message naming the knob.
* :class:`DeviceOOMError` — deterministic for a given budget; recovered by
  chunked re-execution (:mod:`repro.runtime.chunked`), not by retrying.
* :class:`TransientKernelError` — assumed to vanish on retry; handled with
  exponential backoff.
* :class:`CommFailure` — a transient specific to the distributed layer;
  recovered by retransmission.
* :class:`ServiceOverloadError` / :class:`DeadlineExceededError` — the
  serving tier (:mod:`repro.serve`) shedding load at admission or giving
  up on a request whose deadline passed.

The classes double-inherit from the builtin types they historically were
(``ValueError`` / ``MemoryError`` / ``RuntimeError``), so every existing
``except ValueError`` caller keeps working.

The module also owns the CLI exit-code contract: one distinct non-zero
code per error class (see :func:`exit_code_for`).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "InvalidInputError",
    "ConfigurationError",
    "DeviceOOMError",
    "TransientKernelError",
    "CommFailure",
    "ResilienceExhausted",
    "BenchRegressionError",
    "CalibrationDriftError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "EXIT_OK",
    "EXIT_CHECK_FAILED",
    "EXIT_USAGE",
    "EXIT_INVALID_INPUT",
    "EXIT_FILE_NOT_FOUND",
    "EXIT_OOM",
    "EXIT_TRANSIENT",
    "EXIT_COMM",
    "EXIT_EXHAUSTED",
    "EXIT_REGRESSION",
    "EXIT_CONFIG",
    "EXIT_SHED",
    "EXIT_DEADLINE",
    "EXIT_CALIBRATION",
    "exit_code_for",
]


class ReproError(Exception):
    """Base class of every typed error raised by this library."""


class InvalidInputError(ReproError, ValueError):
    """The inputs are malformed: bad file, bad format, mismatched shapes.

    Permanent — retrying or degrading cannot help, so the resilient runtime
    re-raises these immediately.
    """


class ConfigurationError(InvalidInputError):
    """A deployment knob holds a malformed value.

    Raised when an environment variable (``REPRO_WORKERS``,
    ``REPRO_EXECUTOR``, ``REPRO_BACKEND``) or a service configuration
    field cannot be parsed or names something unknown.  Subclasses
    :class:`InvalidInputError` so every existing handler keeps working,
    but carries its own exit code (:data:`EXIT_CONFIG`) and names the
    offending knob so an operator can fix the deployment in one read.
    """

    def __init__(self, message: str, source: str = "") -> None:
        self.source = source
        super().__init__(f"{source}: {message}" if source else message)


class DeviceOOMError(ReproError, MemoryError):
    """A logical device allocation exceeded the memory budget.

    Raised by :class:`repro.util.alloc.AllocationTracker` at the offending
    allocation, i.e. exactly where ``cudaMalloc`` would have returned
    ``cudaErrorMemoryAllocation``.  Carries the context a recovery policy
    needs to decide how much to shrink the working set.
    """

    def __init__(
        self,
        label: str,
        requested_bytes: int,
        live_bytes: int,
        budget_bytes: Optional[int],
    ) -> None:
        self.label = label
        self.requested_bytes = int(requested_bytes)
        self.live_bytes = int(live_bytes)
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        budget = "unbounded" if budget_bytes is None else f"{int(budget_bytes)} B"
        super().__init__(
            f"device OOM allocating {label!r}: requested {self.requested_bytes} B "
            f"with {self.live_bytes} B live (budget {budget})"
        )

    def __reduce__(self):
        # The default Exception reduction replays ``args`` — a single
        # message string here — into the four-argument ``__init__`` and
        # fails.  Replaying the real constructor arguments keeps OOMs
        # picklable, which process-pool serve workers need so the
        # coordinator's re-split path can see the failure.
        return (
            type(self),
            (self.label, self.requested_bytes, self.live_bytes, self.budget_bytes),
        )


class TransientKernelError(ReproError, RuntimeError):
    """A kernel failed in a way expected to vanish on retry.

    The modelled analogue of an ECC hiccup, a watchdog timeout or a
    preempted kernel; injected via :class:`repro.runtime.faults.FaultPlan`
    and retried with exponential backoff by
    :func:`repro.runtime.policy.run_resilient`.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        self.site = site
        self.detail = detail
        msg = f"transient kernel fault at {site!r}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)

    def __reduce__(self):
        # See DeviceOOMError.__reduce__: without this, unpickling replays
        # the rendered message into ``site`` and double-wraps it.
        return (type(self), (self.site, self.detail))


class CommFailure(TransientKernelError):
    """A lost or corrupted message in the distributed (SUMMA) layer.

    A subclass of :class:`TransientKernelError` because it shares the
    retry-with-backoff handling; kept distinct so retransmission counters
    and exit codes can tell the two apart.
    """

    def __init__(self, stage: str, detail: str = "") -> None:
        msg = f"communication failure at {stage!r}"
        if detail:
            msg += f": {detail}"
        RuntimeError.__init__(self, msg)
        self.site = stage
        self.stage = stage
        self.detail = detail  # inherited __reduce__ replays (site, detail)


class ResilienceExhausted(ReproError):
    """Every rung of the fallback ladder failed.

    Raised by :func:`repro.runtime.policy.run_resilient` after the last
    fallback algorithm also failed; chains the final underlying error.
    """


class ServiceOverloadError(ReproError):
    """The serving tier shed this request at admission.

    Raised by :class:`repro.serve.admission.AdmissionController` when the
    bounded request queue is full or the upfront cost-model estimate says
    the request cannot fit the device budget.  Shedding is *deliberate*
    load protection, not a crash: the submitter is expected to back off
    and retry, so the error carries the reason and the current depth.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        msg = f"request shed ({reason})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's deadline passed before its result was complete.

    The serving tier cancels the request cooperatively — shards already
    running finish, nothing new is scheduled — and responds with this
    error instead of a stale result.
    """

    def __init__(self, deadline_s: float, elapsed_s: float) -> None:
        self.deadline_s = float(deadline_s)
        self.elapsed_s = float(elapsed_s)
        super().__init__(
            f"deadline of {self.deadline_s:.3f} s exceeded "
            f"({self.elapsed_s:.3f} s elapsed)"
        )

    def __reduce__(self):
        # See DeviceOOMError.__reduce__: replay the constructor args so
        # the exception survives the process-pool result pickle.
        return (type(self), (self.deadline_s, self.elapsed_s))


class BenchRegressionError(ReproError):
    """The benchmark gate found a statistically significant regression.

    Raised by :func:`repro.bench.history.gate_documents` (and surfaced by
    ``repro bench gate``) when at least one series of the candidate run is
    slower than the baseline beyond the configured noise threshold *and*
    the slowdown is statistically significant (see
    :mod:`repro.analysis.bench_compare`).  Carries the offending series
    keys so CI logs name exactly what regressed.
    """

    def __init__(self, regressions) -> None:
        self.regressions = list(regressions)
        keys = ", ".join(r.key for r in self.regressions)
        super().__init__(
            f"{len(self.regressions)} benchmark series regressed: {keys}"
        )


class CalibrationDriftError(ReproError):
    """The cost model's prediction error drifted past the check's gate.

    Raised by :func:`repro.analysis.calibration.check_calibration` (and
    surfaced by ``repro obs calibrate --check``) when a profile's
    prediction-vs-measured join is structurally broken — a family with
    non-finite errors, no joinable samples at all — or when the error
    drifted beyond the tolerated factor relative to a baseline report.
    Carries the offending family/phase labels so CI logs name exactly
    which estimator went stale.
    """

    def __init__(self, problems) -> None:
        self.problems = list(problems)
        head = "; ".join(self.problems[:3])
        more = f" (+{len(self.problems) - 3} more)" if len(self.problems) > 3 else ""
        super().__init__(
            f"cost-model calibration drifted: {head}{more}"
        )


# ----------------------------------------------------------------------
# CLI exit-code contract (one distinct code per error class)
# ----------------------------------------------------------------------
EXIT_OK = 0  #: run completed and the cross-check passed
EXIT_CHECK_FAILED = 1  #: run completed but the cross-check failed
EXIT_USAGE = 2  #: bad command line (argparse's own convention)
EXIT_INVALID_INPUT = 3  #: malformed matrix file or dimension mismatch
EXIT_FILE_NOT_FOUND = 4  #: matrix file does not exist
EXIT_OOM = 5  #: device memory budget exceeded
EXIT_TRANSIENT = 6  #: transient kernel fault (retries exhausted)
EXIT_COMM = 7  #: communication failure in the distributed layer
EXIT_EXHAUSTED = 8  #: resilient runtime ran out of fallbacks
EXIT_REGRESSION = 9  #: benchmark gate found a significant regression
EXIT_CONFIG = 10  #: malformed environment/service configuration value
EXIT_SHED = 11  #: serving tier shed the request (queue full / admission)
EXIT_DEADLINE = 12  #: request deadline expired before completion
EXIT_CALIBRATION = 13  #: cost-model calibration drifted past the gate


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI's exit-code contract.

    Subclass checks run most-specific first (``CommFailure`` before
    ``TransientKernelError``, ``ConfigurationError`` before
    ``InvalidInputError``, typed errors before their builtin bases).
    """
    if isinstance(exc, BenchRegressionError):
        return EXIT_REGRESSION
    if isinstance(exc, CalibrationDriftError):
        return EXIT_CALIBRATION
    if isinstance(exc, ServiceOverloadError):
        return EXIT_SHED
    if isinstance(exc, DeadlineExceededError):
        return EXIT_DEADLINE
    if isinstance(exc, ResilienceExhausted):
        return EXIT_EXHAUSTED
    if isinstance(exc, CommFailure):
        return EXIT_COMM
    if isinstance(exc, TransientKernelError):
        return EXIT_TRANSIENT
    if isinstance(exc, DeviceOOMError):
        return EXIT_OOM
    if isinstance(exc, FileNotFoundError):
        return EXIT_FILE_NOT_FOUND
    if isinstance(exc, ConfigurationError):
        return EXIT_CONFIG
    if isinstance(exc, InvalidInputError):
        return EXIT_INVALID_INPUT
    return 1
