"""Chunked re-execution: TileSpGEMM in tile-row batches under a budget.

When the symbolic phase discovers that ``C`` does not fit the device
budget, the run need not die: tile row ``i`` of ``C`` depends only on tile
row ``i`` of ``A`` (and all of ``B``), so the C tile-row space can be
split into batches, each batch executed as an independent TileSpGEMM under
the budget, its output offloaded, and the pieces stitched back together.
This is the progressive/batched allocation strategy the paper credits to
the bhSPARSE framework — applied here to the tiled algorithm itself.

Peak logical memory of the chunked run is the *maximum over batches* (each
batch's device buffers are freed once its piece of ``C`` is offloaded),
which is what lets a run that would OOM complete inside the budget.

The stitched result is **bit-identical** to the single-shot run: batches
partition the candidate tiles in tile-row order, every per-tile array is
produced in the same global order, and the numeric phase performs the same
accumulations per tile.  The property-based tests assert exact equality of
every structural array and of the values.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.tile_matrix import TileMatrix
from repro.core.tilespgemm import TileSpGEMMResult, tile_spgemm
from repro.errors import InvalidInputError
from repro.obs.context import current_obs
from repro.obs.profile import current_row_offset, profile_row_offset
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = [
    "slice_tile_rows",
    "batch_bounds",
    "validate_bounds",
    "stitch_results",
    "chunked_tile_spgemm",
]

#: Stats entries that are scalar totals, summed across batches.
_SCALAR_KEYS = (
    "num_products",
    "flops",
    "num_c_tiles",
    "nnz_c",
    "symbolic_ops",
    "tile_flops_step1",
    "sparse_tiles",
    "dense_tiles",
)

#: Stats entries that are per-tile / per-pair arrays in global tile order.
_ARRAY_KEYS = (
    "pairs_per_tile",
    "intersect_len_a",
    "intersect_len_b",
    "pair_a_nnz",
    "products_per_tile",
    "tile_nnz_counts",
    "tile_use_dense",
)


def slice_tile_rows(a: TileMatrix, r0: int, r1: int) -> TileMatrix:
    """The sub-matrix holding tile rows ``[r0, r1)`` of ``a``.

    The slice is a zero-copy view onto ``a``'s arrays wherever NumPy
    slicing allows, with row count ``min(nrows - r0*T, (r1-r0)*T)`` so the
    last batch keeps a ragged final tile row.
    """
    if not 0 <= r0 <= r1 <= a.num_tile_rows:
        raise InvalidInputError(
            f"tile-row slice [{r0}, {r1}) out of range for {a.num_tile_rows} tile rows"
        )
    T = a.tile_size
    t0, t1 = int(a.tileptr[r0]), int(a.tileptr[r1])
    n0, n1 = int(a.tilennz[t0]), int(a.tilennz[t1])
    rows = min(a.shape[0] - r0 * T, (r1 - r0) * T)
    return TileMatrix(
        (rows, a.shape[1]),
        T,
        a.tileptr[r0 : r1 + 1] - t0,
        a.tilecolidx[t0:t1],
        a.tilennz[t0 : t1 + 1] - n0,
        a.rowptr[t0:t1],
        a.rowidx[n0:n1],
        a.colidx[n0:n1],
        a.val[n0:n1],
        a.mask[t0:t1],
        check=False,
    )


def batch_bounds(num_tile_rows: int, num_batches: int) -> np.ndarray:
    """Tile-row boundaries splitting ``[0, num_tile_rows)`` into
    ``num_batches`` contiguous, near-equal batches.

    Exact integer splitting: with ``base, extra = divmod(rows, batches)``
    the first ``extra`` batches get ``base + 1`` rows and the rest get
    ``base``, so sizes differ by at most one and every bound is strictly
    increasing (a float ``linspace`` truncation would front-load smaller
    shards and, for ``num_batches > num_tile_rows``, emit duplicate
    boundaries whose empty shards spawn no-op workers).  ``num_batches``
    is clamped to ``[1, num_tile_rows]`` for the same reason.

    The same boundary rule serves chunked re-execution and the sharded
    parallel engine (:mod:`repro.runtime.parallel`), so a "shard" and a
    "batch" of the same count cover identical tile-row ranges.
    """
    num_tile_rows = int(num_tile_rows)
    num_batches = max(1, min(int(num_batches), max(num_tile_rows, 1)))
    base, extra = divmod(num_tile_rows, num_batches)
    sizes = np.full(num_batches, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(num_batches + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def validate_bounds(bounds: np.ndarray, num_tile_rows: int) -> None:
    """Reject boundary arrays that would not partition the tile rows.

    Valid bounds start at 0, end at ``num_tile_rows`` and are strictly
    increasing, so every batch/shard is non-empty and the stitched
    result covers ``[0, num_tile_rows)`` exactly once.  (Degenerate
    ``[0, 0]`` is allowed for empty matrices.)
    """
    bounds = np.asarray(bounds)
    if bounds.ndim != 1 or len(bounds) < 2:
        raise InvalidInputError(f"bounds must be a 1-D array of >= 2 entries, got {bounds!r}")
    if int(bounds[0]) != 0 or int(bounds[-1]) != int(num_tile_rows):
        raise InvalidInputError(
            f"bounds must cover [0, {num_tile_rows}), got "
            f"[{int(bounds[0])}, {int(bounds[-1])}]"
        )
    diffs = np.diff(bounds)
    if num_tile_rows > 0 and not bool((diffs >= 1).all()):
        raise InvalidInputError(
            f"bounds must be strictly increasing (no empty shard), got {bounds.tolist()}"
        )


def chunked_tile_spgemm(
    a: TileMatrix,
    b: TileMatrix,
    num_batches: int = 2,
    budget_bytes: Optional[int] = None,
    fault_plan=None,
    keep_empty_tiles: bool = True,
    bounds: Optional[np.ndarray] = None,
    **kwargs,
) -> TileSpGEMMResult:
    """Run TileSpGEMM in ``num_batches`` tile-row batches and stitch ``C``.

    Parameters
    ----------
    a, b:
        Tiled operands, as for :func:`repro.core.tilespgemm.tile_spgemm`.
    num_batches:
        Number of tile-row batches (clamped to ``a.num_tile_rows``); each
        batch runs steps 1–3 independently under the budget.
    budget_bytes, fault_plan:
        Per-batch budget / fault plan, defaulting to the active
        :func:`~repro.runtime.context.execution_context`.
    keep_empty_tiles:
        As for ``tile_spgemm``; applied to the stitched matrix.
    bounds:
        Optional explicit tile-row boundaries (e.g. the cost-weighted
        bounds of an :class:`~repro.runtime.planner.ExecutionPlan`);
        must start at 0, end at ``a.num_tile_rows`` and be strictly
        increasing.  Overrides ``num_batches``.
    **kwargs:
        Remaining ``tile_spgemm`` options (``tnnz``, methods, dtype...).

    Returns
    -------
    TileSpGEMMResult
        With ``stats["batches"]`` recording the batch count, a merged
        phase timer, and a merged ledger whose peak is the maximum
        per-batch peak (batch buffers are freed at each batch boundary).
    """
    if a.tile_size != b.tile_size:
        raise InvalidInputError("A and B must use the same tile size")
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError(
            f"dimension mismatch: A is {a.shape[0]}x{a.shape[1]}, "
            f"B is {b.shape[0]}x{b.shape[1]}"
        )
    num_tile_rows = a.num_tile_rows
    if bounds is not None:
        bounds = np.asarray(bounds, dtype=np.int64)
        validate_bounds(bounds, num_tile_rows)
        num_batches = len(bounds) - 1
    else:
        num_batches = max(1, min(int(num_batches), max(num_tile_rows, 1)))
    if num_batches <= 1:
        result = tile_spgemm(
            a,
            b,
            keep_empty_tiles=keep_empty_tiles,
            budget_bytes=budget_bytes,
            fault_plan=fault_plan,
            **kwargs,
        )
        result.stats["batches"] = 1
        return result

    obs = current_obs()
    if bounds is None:
        bounds = batch_bounds(num_tile_rows, num_batches)
    batch_results: List[TileSpGEMMResult] = []
    with obs.tracer.span(
        "chunked_tile_spgemm", cat="chunked", batches=num_batches
    ):
        for k in range(num_batches):
            r0, r1 = int(bounds[k]), int(bounds[k + 1])
            a_k = slice_tile_rows(a, r0, r1)
            with obs.tracer.span(
                f"batch {k + 1}/{num_batches}",
                cat="chunked.batch",
                tile_rows=[r0, r1],
            ):
                # Batches are 0-based slices of A's tile rows; rebase the
                # workload profiler so band attribution stays global (a
                # chunked run nested under a shard composes both offsets).
                with profile_row_offset(current_row_offset() + r0):
                    batch_results.append(
                        tile_spgemm(
                            a_k,
                            b,
                            keep_empty_tiles=True,
                            budget_bytes=budget_bytes,
                            fault_plan=fault_plan,
                            **kwargs,
                        )
                    )
            if obs.enabled:
                obs.metrics.inc("chunked_batches_total")

    return stitch_results(batch_results, a, b, keep_empty_tiles)


def stitch_results(
    batches: List[TileSpGEMMResult],
    a: TileMatrix,
    b: TileMatrix,
    keep_empty_tiles: bool,
) -> TileSpGEMMResult:
    """Assemble the global result from per-batch results (tile-row order).

    The pieces must cover ``a``'s tile rows contiguously in order; the
    assembled arrays are then byte-identical to a single-shot run's (see
    the module docstring).  Shared by :func:`chunked_tile_spgemm` and the
    order-preserving merge of :mod:`repro.runtime.parallel`.
    """
    T = a.tile_size

    # --- C: concatenate the per-batch pieces (already in global order).
    tileptr = np.concatenate(
        [np.zeros(1, dtype=np.int64)] + [np.diff(r.c.tileptr) for r in batches]
    )
    np.cumsum(tileptr, out=tileptr)
    tilennz = np.concatenate(
        [np.zeros(1, dtype=np.int64)] + [np.diff(r.c.tilennz) for r in batches]
    )
    np.cumsum(tilennz, out=tilennz)
    c = TileMatrix(
        (a.shape[0], b.shape[1]),
        T,
        tileptr,
        np.concatenate([r.c.tilecolidx for r in batches]),
        tilennz,
        np.concatenate([r.c.rowptr for r in batches], axis=0),
        np.concatenate([r.c.rowidx for r in batches]),
        np.concatenate([r.c.colidx for r in batches]),
        np.concatenate([r.c.val for r in batches]),
        np.concatenate([r.c.mask for r in batches], axis=0),
        check=False,
    )
    if not keep_empty_tiles:
        c = c.drop_empty_tiles()

    # --- Timer: phase times add across batches.
    timer = PhaseTimer()
    for r in batches:
        timer.merge(r.timer)

    # --- Ledger: replay each batch then free its buffers (the offload).
    # ``use_context=False`` so the replay neither re-enforces the budget
    # nor re-fires the fault plan on events that already happened.
    alloc = AllocationTracker(use_context=False)
    for k, r in enumerate(batches):
        for ev in r.alloc.events:
            alloc.set_phase(ev.phase)
            if ev.kind == "alloc":
                alloc.alloc(f"batch{k}/{ev.label}", ev.nbytes)
            else:
                alloc.free(f"batch{k}/{ev.label}")
        alloc.set_phase("offload")
        for label in alloc.live_labels():
            if label.startswith(f"batch{k}/"):
                alloc.free(label)

    # --- Stats: sum the totals, concatenate the per-tile arrays.
    stats: dict = {}
    for key in _SCALAR_KEYS:
        stats[key] = int(sum(int(r.stats.get(key, 0)) for r in batches))
    for key in _ARRAY_KEYS:
        stats[key] = np.concatenate([np.asarray(r.stats[key]) for r in batches])
    stats.update(
        num_tiles_a=a.num_tiles,
        num_tiles_b=b.num_tiles,
        nnz_a=a.nnz,
        nnz_b=b.nnz,
        tile_size=T,
        batches=len(batches),
    )
    # Every batch ran under the same kernel backend; carry the label so
    # chunked/parallel results report it like a single-shot run does.
    backend_names = {str(r.stats["backend"]) for r in batches if "backend" in r.stats}
    if len(backend_names) == 1:
        stats["backend"] = backend_names.pop()
    tiers = {
        str(r.stats["backend_tier"]) for r in batches if "backend_tier" in r.stats
    }
    if len(tiers) == 1:
        stats["backend_tier"] = tiers.pop()

    return TileSpGEMMResult(c=c, timer=timer, alloc=alloc, stats=stats)
