"""Execution context: the ambient memory budget and fault plan of a run.

The budget and the fault plan have to reach code that is many call frames
away from the caller who decided them — ``AllocationTracker`` instances
are constructed deep inside ``tile_spgemm`` and every baseline.  Rather
than threading two extra parameters through every signature, a run is
wrapped in an :func:`execution_context`; trackers and step hooks consult
the innermost active context.

This module deliberately imports nothing from the rest of the package so
that low-level modules (``repro.util.alloc``) can look it up lazily
without creating an import cycle.  Contexts nest: fields left ``None``
inherit from the enclosing context, so ``run_resilient`` can set a budget
once and per-batch re-executions refine it.

The stack is **per-thread** (:class:`threading.local`): the sharded
parallel engine (:mod:`repro.runtime.parallel`) runs shards on worker
threads, and a worker pushing/popping a shared stack would race with its
siblings.  Each thread starts with an empty stack, so pool workers inherit
nothing ambient — budgets and fault plans reach a shard as the explicit
``budget_bytes``/``fault_plan`` arguments the engine forwards.  Within one
thread the semantics are unchanged: a plain list, innermost context last.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

__all__ = [
    "ExecutionContext",
    "execution_context",
    "current_context",
    "current_budget_bytes",
    "current_fault_plan",
    "note_step",
    "note_broadcast",
]


@dataclass(frozen=True)
class ExecutionContext:
    """The ambient constraints of one run.

    Attributes
    ----------
    budget_bytes:
        Logical device-memory budget; ``None`` means unbounded.
    fault_plan:
        A :class:`repro.runtime.faults.FaultPlan` (typed loosely to keep
        this module import-free), or ``None`` for fault-free execution.
    """

    budget_bytes: Optional[int] = None
    fault_plan: Optional[Any] = None


class _ThreadStack(threading.local):
    """Per-thread context stack; every thread starts empty."""

    def __init__(self) -> None:
        self.items: List[ExecutionContext] = []


_STACK = _ThreadStack()


def current_context() -> Optional[ExecutionContext]:
    """The innermost active context of this thread, or ``None``."""
    items = _STACK.items
    return items[-1] if items else None


def current_budget_bytes() -> Optional[int]:
    """The active memory budget, or ``None`` when unbounded."""
    ctx = current_context()
    return None if ctx is None else ctx.budget_bytes


def current_fault_plan() -> Optional[Any]:
    """The active fault plan, or ``None`` for fault-free execution."""
    ctx = current_context()
    return None if ctx is None else ctx.fault_plan


@contextmanager
def execution_context(
    budget_bytes: Optional[int] = None,
    fault_plan: Optional[Any] = None,
) -> Iterator[ExecutionContext]:
    """Activate a context for the duration of the ``with`` block.

    Fields left ``None`` inherit from the enclosing context, so nesting a
    bare ``execution_context()`` inside a budgeted one keeps the budget.
    """
    parent = current_context()
    if parent is not None:
        if budget_bytes is None:
            budget_bytes = parent.budget_bytes
        if fault_plan is None:
            fault_plan = parent.fault_plan
    ctx = ExecutionContext(budget_bytes=budget_bytes, fault_plan=fault_plan)
    _STACK.items.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.items.pop()


def note_step(name: str, fault_plan: Optional[Any] = None) -> None:
    """Report entering algorithm step ``name`` to the active fault plan.

    A no-op without a plan.  The plan may raise a typed error here — that
    is the injection.
    """
    plan = fault_plan if fault_plan is not None else current_fault_plan()
    if plan is not None:
        plan.on_step(name)


def note_broadcast(stage: str, fault_plan: Optional[Any] = None) -> None:
    """Report one point-to-point transfer of a broadcast to the fault plan."""
    plan = fault_plan if fault_plan is not None else current_fault_plan()
    if plan is not None:
        plan.on_broadcast(stage)
