"""Estimation-driven execution planning for TileSpGEMM runs.

The paper fixes its execution decisions statically: the accumulator
threshold ``tnnz`` is a constant ratio of tile capacity, tile rows are
split uniformly, and the caller chooses worker count and backend by
hand.  This module makes those decisions per run, from the cheap
upfront estimate of :mod:`repro.analysis.estimate` (OCEAN-style
row-sampled nnz(C)/compression) combined with whatever calibrated
ground truth is available — a :mod:`repro.analysis.calibration` report
mapping predicted cost to measured cost on this machine, and the
process-wide :class:`~repro.runtime.tilecache.TileCache` hit statistics
that say whether operand conversion is already amortised.

:func:`plan_execution` produces an :class:`ExecutionPlan` choosing

* **workers / executor** — serial below a products threshold (pool
  startup and stitch overhead dominate tiny multiplies), scaling up to
  the available CPUs as predicted work grows.  A calibration report
  whose measured times run slower than predicted lowers the bar for
  parallelism proportionally; a warm tile cache does too (conversion
  cost is already paid).
* **shard count and boundaries** — the shard count bounds *predicted
  products per shard* (:data:`DEFAULT_SHARD_PRODUCTS`): a shard's
  intermediate arrays scale with its product count, so sharding keeps
  the working set cache-resident and pays off even with one worker (the
  plan's ``"chunked"`` mode, executed serially through
  :func:`~repro.runtime.chunked.chunked_tile_spgemm`).
  :func:`weighted_bounds` then equalises predicted products per shard
  instead of tile-row counts, so a power-law row distribution no longer
  leaves one straggler shard holding most of the work.
* **tnnz** — the sparse/dense accumulator threshold, from the estimated
  compression rate: heavy reuse (band ``8+``) means each output nonzero
  absorbs many products, which is exactly when the dense accumulator's
  O(1) scatter amortises its initialisation, so the threshold drops to
  half the tile capacity; otherwise the paper's 75 % default stands.
* **backend** — the explicit request if any, else the ambient
  registry default, resolved to a pickle-safe name once.

Every decision is a deterministic function of the operands (the
estimator samples deterministically), so a plan is reproducible and the
planned parallel run stays byte-identical to a serial run with the same
``tnnz`` — asserted by the determinism tests.

The plan is recorded in ``stats["plan"]`` of the result and in
``repro.profile/1`` artifacts (:class:`~repro.obs.profile.WorkloadProfiler`),
so ``obs profile`` can attribute wins to planning decisions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.analysis.estimate import (
    DEFAULT_SAMPLE_ROWS,
    MultiplyEstimate,
    estimate_multiply,
)
from repro.backend import backend_tier, resolve_backend_name
from repro.core.step3 import default_tnnz
from repro.errors import InvalidInputError
from repro.runtime.chunked import batch_bounds, validate_bounds
from repro.runtime.parallel import (
    _SHARDS_PER_WORKER,
    ENV_EXECUTOR,
    ENV_WORKERS,
    resolve_executor,
    resolve_workers,
)
from repro.runtime.tilecache import get_tile_cache

__all__ = [
    "ExecutionPlan",
    "plan_execution",
    "weighted_bounds",
    "DEFAULT_SERIAL_PRODUCTS",
    "DEFAULT_SHARD_PRODUCTS",
]

#: Predicted intermediate products below which one worker is the plan:
#: pool startup + shard slicing + stitch cost a few milliseconds, and a
#: multiply this small finishes serially before a pool warms up.  Each
#: additional worker must bring at least this many products with it.
DEFAULT_SERIAL_PRODUCTS = 200_000

#: Predicted intermediate products each shard should carry.  Sharding
#: pays even without parallelism: a shard's step-2/step-3 intermediates
#: scale with its product count, so bounding products per shard keeps
#: the working set cache-resident (measured ~1.5x on the ext matrices
#: against the monolithic serial run).  The planner therefore shards by
#: this bar first and only then asks how many workers the machine can
#: put under the shards.
DEFAULT_SHARD_PRODUCTS = 1_000_000

#: Calibration correction is clamped to this factor range so one noisy
#: calibration cell cannot push the planner to an extreme.
_MAX_CALIBRATION_SKEW = 4.0


@dataclass(frozen=True)
class ExecutionPlan:
    """One run's execution decisions, ready to hand to the engines.

    Attributes
    ----------
    mode:
        ``"serial"`` (one shard, one worker), ``"chunked"`` (one worker
        running multiple shards serially — the cache-residency win
        without pool overhead) or ``"parallel"`` (a worker pool).
    workers, executor, shards:
        Pool shape (``workers=1``/``shards=1`` in serial mode).
    bounds:
        Tile-row shard boundaries, cost-weighted via
        :func:`weighted_bounds`; always covers ``[0, num_tile_rows)``
        exactly with no empty shard.
    tnnz:
        The accumulator threshold every shard must use (determinism:
        sparse and dense accumulation orders differ, so the threshold is
        fixed per plan, never per shard).
    backend:
        Resolved kernel-backend registry name.
    backend_tier:
        The backend's declared conformance tier (``"exact"`` or
        ``"fast-math"``), recorded so artifacts show which guarantee
        the run carried.
    estimate:
        Native-typed :meth:`~repro.analysis.estimate.MultiplyEstimate.to_dict`
        summary the decisions were derived from.
    cache:
        :meth:`~repro.runtime.tilecache.TileCache.stats` snapshot at
        planning time.
    notes:
        Human-readable derivation notes ("serial: products below bar",
        "calibration skew 1.7x", ...) surfaced by ``obs profile``.
    """

    mode: str
    workers: int
    executor: str
    shards: int
    bounds: np.ndarray
    tnnz: int
    backend: str
    backend_tier: str = "exact"
    estimate: Dict[str, Any] = field(default_factory=dict)
    cache: Dict[str, Any] = field(default_factory=dict)
    notes: Tuple[str, ...] = ()

    @property
    def num_tile_rows(self) -> int:
        return int(self.bounds[-1]) if len(self.bounds) else 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able plan record (``stats["plan"]`` / profile artifacts)."""
        return {
            "mode": self.mode,
            "workers": int(self.workers),
            "executor": self.executor,
            "shards": int(self.shards),
            "bounds": [int(x) for x in self.bounds],
            "tnnz": int(self.tnnz),
            "backend": self.backend,
            "backend_tier": self.backend_tier,
            "estimate": dict(self.estimate),
            "cache": dict(self.cache),
            "notes": list(self.notes),
        }


def weighted_bounds(weights, num_shards: int) -> np.ndarray:
    """Shard boundaries equalising predicted cost, not row count.

    Splits ``[0, len(weights))`` into ``num_shards`` contiguous shards
    whose weight sums are as equal as a contiguous split allows: the
    cut points are where the cumulative weight crosses each equal-share
    target.  Guarantees of :func:`~repro.runtime.chunked.batch_bounds`
    are preserved — bounds start at 0, end at ``len(weights)``, and are
    strictly increasing (no empty shard) — so the planned bounds slot
    straight into the chunked/parallel engines.

    All-zero weights fall back to the uniform split.
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    n = int(w.size)
    if n == 0:
        return np.zeros(2, dtype=np.int64)
    num_shards = max(1, min(int(num_shards), n))
    if num_shards == 1:
        return np.array([0, n], dtype=np.int64)
    w = np.clip(w, 0.0, None)
    total = float(w.sum())
    if total <= 0.0:
        return batch_bounds(n, num_shards)
    cum = np.cumsum(w)
    targets = total * (np.arange(1, num_shards) / num_shards)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate(
        (np.zeros(1, np.int64), cuts.astype(np.int64), np.full(1, n, np.int64))
    )
    # Crossing points can collide when one tile row dominates the total;
    # push colliding cuts apart (forward then backward) so every shard
    # keeps at least one tile row.  num_shards <= n makes both passes
    # satisfiable at once.
    for k in range(1, num_shards):
        if bounds[k] <= bounds[k - 1]:
            bounds[k] = bounds[k - 1] + 1
    for k in range(num_shards - 1, 0, -1):
        if bounds[k] >= bounds[k + 1]:
            bounds[k] = bounds[k + 1] - 1
    return bounds


def _calibration_skew(calibration: Optional[Dict[str, Any]]) -> float:
    """Measured-vs-predicted slowdown of the tilespgemm family.

    ``> 1`` means this machine runs the family slower than the cost
    model predicts — parallelism pays off sooner, so the serial bar is
    divided by the skew.  Missing/empty reports return 1.0.
    """
    if not calibration:
        return 1.0
    fam = calibration.get("families", {}).get("tilespgemm")
    if not fam:
        return 1.0
    total = fam.get("total", {})
    predicted = float(total.get("predicted_s", 0.0))
    measured = float(total.get("measured_s", 0.0))
    if predicted <= 0.0 or measured <= 0.0:
        return 1.0
    skew = measured / predicted
    return float(min(max(skew, 1.0 / _MAX_CALIBRATION_SKEW), _MAX_CALIBRATION_SKEW))


def plan_execution(
    a,
    b,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    shards: Optional[int] = None,
    backend=None,
    tier=None,
    calibration: Optional[Dict[str, Any]] = None,
    cache_stats: Optional[Dict[str, Any]] = None,
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
    serial_products: int = DEFAULT_SERIAL_PRODUCTS,
    shard_products: int = DEFAULT_SHARD_PRODUCTS,
) -> ExecutionPlan:
    """Derive an :class:`ExecutionPlan` for ``a @ b``.

    Explicit arguments (and the ``REPRO_WORKERS`` / ``REPRO_EXECUTOR``
    environment knobs) always win over the estimator's choice — the
    planner fills in what the caller left open.  ``calibration`` is a
    loaded ``repro.calibration/1`` report; ``cache_stats`` defaults to
    the process-wide :class:`~repro.runtime.tilecache.TileCache`.

    ``tier`` is the caller's conformance requirement, forwarded to
    :func:`~repro.backend.resolve_backend_name`: pass
    ``ConformanceTier.EXACT`` to guarantee the planned backend is
    byte-reproducible — planning fails loudly rather than emit a plan
    that names a fast-math backend.
    """
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError(
            f"dimension mismatch: A is {a.shape[0]}x{a.shape[1]}, "
            f"B is {b.shape[0]}x{b.shape[1]}"
        )
    est = estimate_multiply(a, b, sample_rows=sample_rows)
    notes = []
    if cache_stats is None:
        cache_stats = get_tile_cache().stats()

    # --- worker count: explicit/env wins; otherwise scale with work.
    explicit_workers = workers is not None or bool(
        os.environ.get(ENV_WORKERS, "").strip()
    )
    cpus = resolve_workers(0)
    if explicit_workers:
        chosen_workers = resolve_workers(workers)
        notes.append(f"workers {chosen_workers}: explicit")
    else:
        bar = float(serial_products)
        skew = _calibration_skew(calibration)
        if skew != 1.0:
            bar /= skew
            notes.append(f"calibration skew {skew:.2f}x lowers serial bar")
        lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
        if lookups and cache_stats.get("hits", 0) / lookups >= 0.5:
            bar /= 2.0
            notes.append("warm tile cache halves serial bar")
        chosen_workers = int(min(cpus, max(1, est.products // max(bar, 1.0))))
        notes.append(
            f"workers {chosen_workers}: {est.products} products vs "
            f"bar {int(bar)}/worker (cpus {cpus})"
        )

    # --- executor: explicit/env wins; threads otherwise (operands are
    # shared by reference; the numpy kernels drop the GIL in the hot
    # loops, and process pools pay pickling for B).
    explicit_executor = executor is not None or bool(
        os.environ.get(ENV_EXECUTOR, "").strip()
    )
    chosen_executor = resolve_executor(executor) if explicit_executor else "thread"

    # --- shard count: bound predicted products per shard (the shards
    # pay for themselves serially via cache residency, so this is
    # independent of the worker count), then make sure a pool has at
    # least _SHARDS_PER_WORKER shards per worker to balance stragglers.
    num_tile_rows = int(len(est.tile_row_products))
    if shards is None:
        chosen_shards = max(1, int(round(est.products / max(float(shard_products), 1.0))))
        if chosen_shards > 1:
            notes.append(
                f"shards {chosen_shards}: ~{int(shard_products)} "
                "products/shard keeps shard intermediates cache-resident"
            )
        if chosen_workers > 1:
            chosen_shards = max(chosen_shards, chosen_workers * _SHARDS_PER_WORKER)
    else:
        chosen_shards = int(shards)
    num_shards = max(1, min(chosen_shards, max(num_tile_rows, 1)))

    # --- shard boundaries: equalise predicted products per shard.
    if num_shards <= 1 or num_tile_rows <= 1:
        mode = "serial"
        num_shards = 1
        chosen_workers = 1
        bounds = np.array([0, num_tile_rows], dtype=np.int64)
    else:
        chosen_workers = max(1, min(chosen_workers, num_shards))
        mode = "parallel" if chosen_workers > 1 else "chunked"
        bounds = weighted_bounds(est.tile_row_products, num_shards)
        num_shards = len(bounds) - 1
        validate_bounds(bounds, num_tile_rows)

    # --- tnnz: compression-driven accumulator threshold (deterministic
    # per plan; see the module docstring).
    tile_size = est.tile_size
    tnnz = default_tnnz(tile_size)
    if est.compression >= 8.0:
        tnnz = max(1, (tile_size * tile_size) // 2)
        notes.append(
            f"compression {est.compression:.1f} (band {est.band}): "
            f"dense-leaning tnnz {tnnz}"
        )

    backend_name = resolve_backend_name(backend, tier=tier)

    return ExecutionPlan(
        mode=mode,
        workers=int(chosen_workers),
        executor=chosen_executor,
        shards=int(num_shards),
        bounds=bounds,
        tnnz=int(tnnz),
        backend=backend_name,
        backend_tier=backend_tier(backend_name).value,
        estimate=est.to_dict(),
        cache=dict(cache_stats),
        notes=tuple(notes),
    )
