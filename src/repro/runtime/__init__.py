"""Resilient execution runtime: budgets, faults, chunking, fallback.

The production-facing wrapper around the SpGEMM engines:

* :mod:`repro.runtime.context` — ambient execution context carrying the
  device memory budget and the active fault plan;
* :mod:`repro.runtime.faults` — deterministic seeded fault injection
  (:class:`FaultPlan`);
* :mod:`repro.runtime.chunked` — chunked tile-row re-execution under a
  budget, stitching a bit-identical result;
* :mod:`repro.runtime.policy` — retry/backoff/fallback engine
  (:func:`run_resilient`) returning a :class:`ResilienceReport`;
* :mod:`repro.runtime.parallel` — sharded execution on a thread or
  process pool (:func:`parallel_tile_spgemm`, :func:`spgemm_batch`),
  byte-identical to serial;
* :mod:`repro.runtime.planner` — estimation-driven execution planning
  (:func:`plan_execution` → :class:`ExecutionPlan`): worker count,
  cost-weighted shard bounds, accumulator threshold and backend derived
  per run from the row-sampled estimate of
  :mod:`repro.analysis.estimate`;
* :mod:`repro.runtime.tilecache` — content-hash-keyed LRU cache of tiled
  operands for repeated multiplies.

See ``docs/RESILIENCE.md`` and ``docs/PARALLEL.md`` for the designs.

``chunked``, ``policy`` and ``parallel`` import the core algorithm, so
they are loaded lazily (PEP 562) — the core itself can import
:mod:`~repro.runtime.context` without a cycle.
"""

from __future__ import annotations

from repro.runtime.context import (
    ExecutionContext,
    current_budget_bytes,
    current_context,
    current_fault_plan,
    execution_context,
    note_broadcast,
    note_step,
)
from repro.runtime.faults import FaultPlan, FaultSpec, FiredFault

__all__ = [
    "ExecutionContext",
    "execution_context",
    "current_context",
    "current_budget_bytes",
    "current_fault_plan",
    "note_step",
    "note_broadcast",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    # lazily loaded:
    "chunked_tile_spgemm",
    "slice_tile_rows",
    "batch_bounds",
    "stitch_results",
    "validate_bounds",
    "ExecutionPlan",
    "plan_execution",
    "weighted_bounds",
    "RetryPolicy",
    "ParallelPolicy",
    "AttemptRecord",
    "ResilienceReport",
    "ResilientResult",
    "backoff_wait",
    "run_resilient",
    "parallel_tile_spgemm",
    "spgemm_batch",
    "resolve_workers",
    "resolve_executor",
    "TileCache",
    "get_tile_cache",
    "reset_tile_cache",
    "cached_algorithm",
]

_LAZY = {
    "chunked_tile_spgemm": "repro.runtime.chunked",
    "slice_tile_rows": "repro.runtime.chunked",
    "batch_bounds": "repro.runtime.chunked",
    "stitch_results": "repro.runtime.chunked",
    "validate_bounds": "repro.runtime.chunked",
    "ExecutionPlan": "repro.runtime.planner",
    "plan_execution": "repro.runtime.planner",
    "weighted_bounds": "repro.runtime.planner",
    "RetryPolicy": "repro.runtime.policy",
    "ParallelPolicy": "repro.runtime.policy",
    "AttemptRecord": "repro.runtime.policy",
    "ResilienceReport": "repro.runtime.policy",
    "ResilientResult": "repro.runtime.policy",
    "backoff_wait": "repro.runtime.policy",
    "run_resilient": "repro.runtime.policy",
    "parallel_tile_spgemm": "repro.runtime.parallel",
    "spgemm_batch": "repro.runtime.parallel",
    "resolve_workers": "repro.runtime.parallel",
    "resolve_executor": "repro.runtime.parallel",
    "TileCache": "repro.runtime.tilecache",
    "get_tile_cache": "repro.runtime.tilecache",
    "reset_tile_cache": "repro.runtime.tilecache",
    "cached_algorithm": "repro.runtime.tilecache",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
