"""Resilient execution runtime: budgets, faults, chunking, fallback.

The production-facing wrapper around the SpGEMM engines:

* :mod:`repro.runtime.context` — ambient execution context carrying the
  device memory budget and the active fault plan;
* :mod:`repro.runtime.faults` — deterministic seeded fault injection
  (:class:`FaultPlan`);
* :mod:`repro.runtime.chunked` — chunked tile-row re-execution under a
  budget, stitching a bit-identical result;
* :mod:`repro.runtime.policy` — retry/backoff/fallback engine
  (:func:`run_resilient`) returning a :class:`ResilienceReport`.

See ``docs/RESILIENCE.md`` for the design.

``chunked`` and ``policy`` import the core algorithm, so they are loaded
lazily (PEP 562) — the core itself can import :mod:`~repro.runtime.context`
without a cycle.
"""

from __future__ import annotations

from repro.runtime.context import (
    ExecutionContext,
    current_budget_bytes,
    current_context,
    current_fault_plan,
    execution_context,
    note_broadcast,
    note_step,
)
from repro.runtime.faults import FaultPlan, FaultSpec, FiredFault

__all__ = [
    "ExecutionContext",
    "execution_context",
    "current_context",
    "current_budget_bytes",
    "current_fault_plan",
    "note_step",
    "note_broadcast",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    # lazily loaded:
    "chunked_tile_spgemm",
    "slice_tile_rows",
    "RetryPolicy",
    "AttemptRecord",
    "ResilienceReport",
    "ResilientResult",
    "run_resilient",
]

_LAZY = {
    "chunked_tile_spgemm": "repro.runtime.chunked",
    "slice_tile_rows": "repro.runtime.chunked",
    "RetryPolicy": "repro.runtime.policy",
    "AttemptRecord": "repro.runtime.policy",
    "ResilienceReport": "repro.runtime.policy",
    "ResilientResult": "repro.runtime.policy",
    "run_resilient": "repro.runtime.policy",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
