"""Retry/backoff policy engine: the resilient front door of the library.

:func:`run_resilient` wraps one SpGEMM under three recovery mechanisms,
applied in order of increasing cost:

1. **Chunked re-execution** on :class:`~repro.errors.DeviceOOMError` —
   the batch count doubles until the run fits the budget (or the tile-row
   space cannot be split further).  The result stays bit-identical to the
   single-shot product.
2. **Exponential backoff** on :class:`~repro.errors.TransientKernelError`
   (and :class:`~repro.errors.CommFailure`) — the modelled wait time is
   charged to the result's timer and to the estimated runtime, because a
   production system pays it for real.
3. **Algorithm fallback** once retries are exhausted — the run degrades
   down a ladder of progressively simpler methods (default
   ``tilespgemm → nsparse_hash → gustavson``), trading speed for the
   smaller attack surface of the simpler kernels.

:class:`~repro.errors.InvalidInputError` is never retried — it is the
caller's bug, re-raised immediately.  If the last rung also fails,
:class:`~repro.errors.ResilienceExhausted` chains the final error.

Every outcome is recorded in a :class:`ResilienceReport`: the attempt
log, the faults seen, the batch count of the winning run, and whether the
result came from a degraded (fallback) method.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import (
    DeviceOOMError,
    InvalidInputError,
    ResilienceExhausted,
    TransientKernelError,
)
from repro.obs.context import current_obs
from repro.runtime.context import execution_context

__all__ = [
    "RetryPolicy",
    "ParallelPolicy",
    "AttemptRecord",
    "ResilienceReport",
    "ResilientResult",
    "backoff_wait",
    "run_resilient",
]

#: Default fallback ladder: the paper's method, then the NSPARSE-strategy
#: hash baseline, then the reference row-row loop.
DEFAULT_LADDER: Tuple[str, ...] = ("tilespgemm", "nsparse_hash", "gustavson")


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the recovery behaviour.

    Attributes
    ----------
    max_retries:
        Transient-fault retries per ladder rung before falling back.
    backoff_base_s, backoff_factor, max_backoff_s:
        Exponential backoff: retry ``k`` waits
        ``min(base * factor**k, max)`` modelled seconds.
    jitter_frac:
        Fraction of the wait randomised away: retry ``k`` waits
        ``wait * (1 + jitter_frac * u_k)`` with ``u_k`` drawn uniformly
        from ``[-1, 1]`` by a generator seeded from ``jitter_seed`` and
        ``k`` — deterministic per (seed, retry), so two runs of the same
        policy wait identically.  ``0`` (default) disables jitter.
    jitter_seed:
        Seed of the deterministic jitter stream.
    sleep:
        Optional callable invoked with each computed wait.  ``None``
        (default) keeps the backoff *modelled-only* — charged to timers
        and estimates but never actually slept, so unit tests stay
        instant.  Pass :func:`time.sleep` for real wall-clock backoff in
        a synchronous deployment; the async serving tier
        (:mod:`repro.serve`) computes the same waits via
        :func:`backoff_wait` and ``await``\\ s them on the event loop
        instead of blocking it.
    ladder:
        Method names tried in order; the first is the primary.
    max_batches:
        Upper bound on chunked re-execution's batch count.
    """

    max_retries: int = 3
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter_frac: float = 0.0
    jitter_seed: int = 0
    sleep: Optional[Callable[[float], None]] = None
    ladder: Tuple[str, ...] = DEFAULT_LADDER
    max_batches: int = 64


@dataclass(frozen=True)
class ParallelPolicy:
    """How the sharded parallel engine reacts when a worker dies.

    The engine (:func:`repro.runtime.parallel.parallel_tile_spgemm`)
    treats two events as "worker death": a shard raising
    :class:`~repro.errors.TransientKernelError` (the injectable fault) and
    the pool itself breaking (a process worker killed mid-task).  The
    response mirrors :class:`RetryPolicy`'s ladder in miniature — retry
    the shard, then degrade to the serial engine, which is always correct
    because the parallel result is byte-identical to it by construction.

    Attributes
    ----------
    max_shard_retries:
        Times a failed shard is resubmitted to the pool before the run
        falls back.  Resubmission is pointless once the pool is broken,
        so a broken pool skips straight to the fallback.
    on_worker_failure:
        ``"serial"`` (default) reruns the whole multiply serially on the
        coordinating thread; ``"raise"`` propagates the failure to the
        caller instead.
    """

    max_shard_retries: int = 1
    on_worker_failure: str = "serial"

    def __post_init__(self) -> None:
        if self.on_worker_failure not in ("serial", "raise"):
            raise InvalidInputError(
                "on_worker_failure must be 'serial' or 'raise', "
                f"got {self.on_worker_failure!r}"
            )
        if self.max_shard_retries < 0:
            raise InvalidInputError(
                f"max_shard_retries must be >= 0, got {self.max_shard_retries}"
            )


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one ladder rung."""

    method: str
    batches: int
    outcome: str  #: ``"ok"`` or the exception class name
    error: str = ""  #: stringified error for failed attempts
    backoff_s: float = 0.0  #: modelled wait charged before the *next* attempt


@dataclass
class ResilienceReport:
    """What it took to produce the result."""

    attempts: List[AttemptRecord] = field(default_factory=list)
    faults: List[str] = field(default_factory=list)
    batches: int = 1  #: batch count of the successful run
    degraded: bool = False  #: True when a fallback method produced the result
    method: str = ""  #: method that produced the result
    backoff_s: float = 0.0  #: total modelled backoff wait
    budget_bytes: Optional[int] = None

    @property
    def num_attempts(self) -> int:
        """Total attempts across all rungs."""
        return len(self.attempts)

    @property
    def num_faults(self) -> int:
        """Faults observed across all rungs."""
        return len(self.faults)


@dataclass
class ResilientResult:
    """A product plus the story of how it was obtained.

    Attributes
    ----------
    c:
        The product: a :class:`~repro.core.tile_matrix.TileMatrix` when
        the tiled path succeeded, a CSR matrix from a fallback method.
    result:
        The underlying ``TileSpGEMMResult`` / ``SpGEMMResult``.
    report:
        The :class:`ResilienceReport`.
    estimate:
        GPU cost-model estimate of the successful run (when ``device``
        was given); excludes backoff.
    estimated_seconds:
        Estimate *including* the modelled backoff waits.
    """

    c: object
    result: object
    report: ResilienceReport
    estimate: Optional[object] = None
    estimated_seconds: Optional[float] = None

    def c_csr(self):
        """The product in CSR form regardless of which path produced it."""
        return self.c.to_csr() if hasattr(self.c, "to_csr") else self.c


def run_resilient(
    a,
    b,
    device=None,
    policy: Optional[RetryPolicy] = None,
    budget_bytes: Optional[int] = None,
    fault_plan=None,
    **tile_kwargs,
) -> ResilientResult:
    """Multiply ``a @ b`` under the full recovery policy.

    Parameters
    ----------
    a, b:
        Operands as :class:`~repro.core.tile_matrix.TileMatrix` or CSR;
        whichever form a rung needs is converted once and cached.
    device:
        Optional :class:`~repro.gpu.device.DeviceModel`; when given, the
        result carries a cost-model estimate with backoff charged.  If
        ``budget_bytes`` is unset, the device's Table-1 DRAM capacity
        becomes the budget.
    policy:
        A :class:`RetryPolicy` (defaults apply when ``None``).
    budget_bytes:
        Logical device-memory budget enforced on every attempt.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan`; its counters
        run cumulatively across attempts, so one-shot faults behave as
        genuine transients.
    **tile_kwargs:
        Extra options for the tiled path (``tnnz``, methods, dtype...).

    Raises
    ------
    InvalidInputError
        Immediately, without retries.
    ResilienceExhausted
        When every ladder rung failed; chains the last underlying error.
    """
    from repro.baselines import get_algorithm  # deferred: registry import is heavy
    from repro.core.tile_matrix import TileMatrix
    from repro.core.tilespgemm import tile_spgemm
    from repro.runtime.chunked import chunked_tile_spgemm

    policy = policy or RetryPolicy()
    if budget_bytes is None and device is not None:
        budget_bytes = device.dram_capacity_bytes

    at = a if isinstance(a, TileMatrix) else None
    bt = b if isinstance(b, TileMatrix) else None
    a_csr = None if isinstance(a, TileMatrix) else a
    b_csr = None if isinstance(b, TileMatrix) else b

    report = ResilienceReport(budget_bytes=budget_bytes)
    last_error: Optional[BaseException] = None
    obs = current_obs()

    with obs.tracer.span(
        "run_resilient", cat="resilience", ladder=list(policy.ladder)
    ):
        return _run_ladder(
            a, b, at, bt, a_csr, b_csr, device, policy, budget_bytes,
            fault_plan, report, last_error, obs, tile_kwargs,
        )


def _run_ladder(
    a, b, at, bt, a_csr, b_csr, device, policy, budget_bytes,
    fault_plan, report, last_error, obs, tile_kwargs,
):
    """The ladder walk of :func:`run_resilient` (split out so the whole
    recovery story nests under one ``run_resilient`` span)."""
    from repro.baselines import get_algorithm  # deferred: registry import is heavy
    from repro.core.tile_matrix import TileMatrix
    from repro.core.tilespgemm import tile_spgemm
    from repro.runtime.chunked import chunked_tile_spgemm

    trace_id = getattr(obs.trace_ctx, "trace_id", None)
    for rung, method in enumerate(policy.ladder):
        if rung > 0 and obs.enabled:
            obs.metrics.inc("resilience_fallbacks_total", method=method)
            obs.tracer.instant("fallback", cat="resilience", method=method, rung=rung)
            obs.log.emit(
                "resilience_fallback",
                trace_id=trace_id,
                method=method,
                rung=rung,
            )
        if method == "tilespgemm":
            if at is None:
                at = TileMatrix.from_csr(a)
                bt = at if b is a else TileMatrix.from_csr(b)
            max_split = max(at.num_tile_rows, 1)
            batches = 1
            retries = 0
            while True:
                try:
                    with obs.tracer.span(
                        "attempt:" + method,
                        cat="resilience",
                        rung=rung,
                        batches=batches,
                        attempt=report.num_attempts + 1,
                    ):
                        if batches <= 1:
                            res = tile_spgemm(
                                at, bt, budget_bytes=budget_bytes, fault_plan=fault_plan, **tile_kwargs
                            )
                        else:
                            res = chunked_tile_spgemm(
                                at,
                                bt,
                                num_batches=batches,
                                budget_bytes=budget_bytes,
                                fault_plan=fault_plan,
                                **tile_kwargs,
                            )
                    report.attempts.append(AttemptRecord(method, batches, "ok"))
                    return _finish(res, res.c, method, rung, batches, report, device)
                except InvalidInputError:
                    raise
                except DeviceOOMError as exc:
                    last_error = exc
                    _record_failure(report, method, batches, exc)
                    if batches >= min(policy.max_batches, max_split):
                        break  # cannot split further: fall down the ladder
                    batches = min(batches * 2, policy.max_batches, max_split)
                    if obs.enabled:
                        obs.log.emit(
                            "oom_resplit",
                            trace_id=trace_id,
                            method=method,
                            batches=batches,
                            requested_bytes=exc.requested_bytes,
                            budget_bytes=exc.budget_bytes,
                        )
                except TransientKernelError as exc:
                    last_error = exc
                    if retries >= policy.max_retries:
                        _record_failure(report, method, batches, exc)
                        break
                    wait = _backoff(policy, retries)
                    _record_failure(report, method, batches, exc, backoff_s=wait)
                    report.backoff_s += wait
                    retries += 1
        else:
            if a_csr is None:
                a_csr = a.to_csr()
                b_csr = a_csr if b is a else b.to_csr()
            algorithm = get_algorithm(method)
            retries = 0
            while True:
                try:
                    with obs.tracer.span(
                        "attempt:" + method,
                        cat="resilience",
                        rung=rung,
                        batches=1,
                        attempt=report.num_attempts + 1,
                    ):
                        with execution_context(budget_bytes=budget_bytes, fault_plan=fault_plan):
                            res = algorithm(a_csr, b_csr)
                    report.attempts.append(AttemptRecord(method, 1, "ok"))
                    return _finish(res, res.c, method, rung, 1, report, device)
                except InvalidInputError:
                    raise
                except DeviceOOMError as exc:
                    # The baselines have no chunked mode; go down a rung.
                    last_error = exc
                    _record_failure(report, method, 1, exc)
                    break
                except TransientKernelError as exc:
                    last_error = exc
                    if retries >= policy.max_retries:
                        _record_failure(report, method, 1, exc)
                        break
                    wait = _backoff(policy, retries)
                    _record_failure(report, method, 1, exc, backoff_s=wait)
                    report.backoff_s += wait
                    retries += 1

    if obs.enabled:
        obs.metrics.inc("resilience_exhausted_total")
        obs.log.emit(
            "resilience_exhausted",
            trace_id=trace_id,
            attempts=report.num_attempts,
            ladder=list(policy.ladder),
        )
    raise ResilienceExhausted(
        f"all fallbacks failed after {report.num_attempts} attempts "
        f"(ladder: {' -> '.join(policy.ladder)})"
    ) from last_error


def backoff_wait(policy: RetryPolicy, retry: int) -> float:
    """The wait before re-running retry ``retry`` (0-based) of a rung.

    ``min(base * factor**retry, max)``, then jittered by the policy's
    deterministic seeded stream (see :class:`RetryPolicy.jitter_frac`).
    Pure — computing the wait never sleeps; callers decide whether to
    charge it to a model (:func:`run_resilient` with ``sleep=None``),
    block on it (``sleep=time.sleep``) or ``await`` it (the async
    serving tier).
    """
    wait = min(
        policy.backoff_base_s * policy.backoff_factor**retry, policy.max_backoff_s
    )
    if policy.jitter_frac:
        u = random.Random(policy.jitter_seed * 1_000_003 + retry).uniform(-1.0, 1.0)
        wait *= 1.0 + policy.jitter_frac * u
    return max(wait, 0.0)


def _backoff(policy: RetryPolicy, retry: int) -> float:
    wait = backoff_wait(policy, retry)
    if policy.sleep is not None:
        policy.sleep(wait)
    return wait


def _record_failure(
    report: ResilienceReport,
    method: str,
    batches: int,
    exc: BaseException,
    backoff_s: float = 0.0,
) -> None:
    report.attempts.append(
        AttemptRecord(method, batches, type(exc).__name__, error=str(exc), backoff_s=backoff_s)
    )
    report.faults.append(f"{type(exc).__name__}: {exc}")
    obs = current_obs()
    if obs.enabled:
        kind = type(exc).__name__
        obs.metrics.inc("resilience_failed_attempts_total", method=method, error=kind)
        obs.tracer.instant(
            "fault:" + kind,
            cat="resilience",
            method=method,
            batches=batches,
            backoff_s=backoff_s,
        )
        obs.log.emit(
            "attempt_failed",
            trace_id=getattr(obs.trace_ctx, "trace_id", None),
            method=method,
            batches=batches,
            error=kind,
            detail=str(exc),
            backoff_s=backoff_s or None,
        )
        if backoff_s > 0:
            obs.metrics.inc("resilience_retries_total", method=method)
            obs.metrics.inc("resilience_backoff_seconds_total", backoff_s)


def _finish(res, c, method: str, rung: int, batches: int, report: ResilienceReport, device):
    report.method = method
    report.degraded = rung > 0
    report.batches = batches
    obs = current_obs()
    if obs.enabled:
        obs.metrics.inc("resilience_runs_total", method=method)
        obs.metrics.inc("resilience_attempts_total", report.num_attempts)
        if report.degraded:
            obs.metrics.inc("resilience_degraded_runs_total", method=method)
    if report.backoff_s > 0:
        # The wait is real time a production run would spend; charge it.
        res.timer.add("backoff", report.backoff_s)

    estimate = None
    estimated_seconds = None
    if device is not None:
        from repro.gpu.costmodel import estimate_run

        if method == "tilespgemm":
            estimate = estimate_run(res.as_spgemm_result(), device)
        else:
            estimate = estimate_run(res, device)
        estimated_seconds = estimate.seconds + report.backoff_s

    return ResilientResult(
        c=c,
        result=res,
        report=report,
        estimate=estimate,
        estimated_seconds=estimated_seconds,
    )
