"""Deterministic seeded fault injection for the resilience tests.

A :class:`FaultPlan` is a list of trigger specifications evaluated at the
three observation sites the library reports:

* **alloc** — every logical device allocation
  (:meth:`repro.util.alloc.AllocationTracker.alloc`);
* **step** — entry into a named algorithm phase (``step1``/``step2``/
  ``step3`` for the tiled path, ``analysis``/``symbolic``/``numeric`` for
  the baselines);
* **broadcast** — each point-to-point transfer of a SUMMA broadcast
  (:func:`repro.distributed.summa.summa_spgemm`).

Each spec can fire once at the N-th matching event (``at=``), on every
k-th matching event (``every=``), or with a seeded per-event probability
(``probability=``); an optional ``match=`` substring restricts which
events count.  All randomness comes from one seeded generator, so a plan
replays identically — the property the chunked-recovery and retry tests
rely on.

Counters are cumulative across retries by design: a one-shot ``at=N``
fault fires during the first attempt and *not* during the retry, which is
exactly how a transient fault behaves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CommFailure, DeviceOOMError, TransientKernelError
from repro.obs.context import current_obs

__all__ = ["FaultSpec", "FiredFault", "FaultPlan"]

_SITES = ("alloc", "step", "broadcast")
_ERRORS = ("oom", "transient", "comm")


@dataclass
class FaultSpec:
    """One injection trigger.

    Attributes
    ----------
    error:
        ``"oom"``, ``"transient"`` or ``"comm"`` — which typed error to
        raise when the trigger fires.
    site:
        ``"alloc"``, ``"step"`` or ``"broadcast"`` — which observation
        site the trigger watches.
    at:
        Fire exactly once, at the ``at``-th matching event (1-based).
    every:
        Fire at every ``every``-th matching event.
    probability:
        Fire independently per matching event with this probability.
    match:
        Substring filter on the event name (allocation label, step name or
        broadcast tag); ``None`` matches everything.
    """

    error: str
    site: str
    at: Optional[int] = None
    every: Optional[int] = None
    probability: float = 0.0
    match: Optional[str] = None
    matched: int = 0  #: matching events seen so far (cumulative)
    fired: int = 0  #: times this spec has fired

    def __post_init__(self) -> None:
        if self.error not in _ERRORS:
            raise ValueError(f"error must be one of {_ERRORS}, got {self.error!r}")
        if self.site not in _SITES:
            raise ValueError(f"site must be one of {_SITES}, got {self.site!r}")
        if self.at is None and self.every is None and self.probability <= 0.0:
            raise ValueError("spec needs one of at=, every= or probability=")


@dataclass(frozen=True)
class FiredFault:
    """Record of one injected fault (kept in :attr:`FaultPlan.fired`)."""

    error: str
    site: str
    name: str
    event_index: int  #: cumulative event count at this site when it fired


class FaultPlan:
    """A deterministic, seeded schedule of injected faults.

    Build a plan with the chainable helpers and hand it to ``tile_spgemm``,
    ``summa_spgemm`` or :func:`repro.runtime.policy.run_resilient`::

        plan = FaultPlan(seed=7).oom_at_alloc(3).transient_at_step("step2", every=1)
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.specs: List[FaultSpec] = []
        self.counts = {site: 0 for site in _SITES}
        self.fired: List[FiredFault] = []

    # ------------------------------------------------------------ builders
    def inject(
        self,
        error: str,
        site: str,
        at: Optional[int] = None,
        every: Optional[int] = None,
        probability: float = 0.0,
        match: Optional[str] = None,
    ) -> "FaultPlan":
        """Add a trigger; returns ``self`` for chaining.

        With no ``at``/``every``/``probability`` given, the trigger fires
        once at the first matching event (``at=1``).
        """
        if at is None and every is None and probability <= 0.0:
            at = 1
        self.specs.append(
            FaultSpec(error=error, site=site, at=at, every=every, probability=probability, match=match)
        )
        return self

    def oom_at_alloc(
        self, at: Optional[int] = None, match: Optional[str] = None, every: Optional[int] = None
    ) -> "FaultPlan":
        """OOM at the ``at``-th allocation (or every/matching ones)."""
        return self.inject("oom", "alloc", at=at, every=every, match=match)

    def transient_at_step(
        self, match: Optional[str] = None, at: Optional[int] = None, every: Optional[int] = None
    ) -> "FaultPlan":
        """Transient kernel fault when a matching step begins."""
        return self.inject("transient", "step", at=at, every=every, match=match)

    def comm_at_broadcast(
        self, at: Optional[int] = None, match: Optional[str] = None, every: Optional[int] = None
    ) -> "FaultPlan":
        """Lost message at the ``at``-th (or matching) broadcast transfer."""
        return self.inject("comm", "broadcast", at=at, every=every, match=match)

    # ------------------------------------------------------------ plumbing
    def reset(self) -> None:
        """Forget all counters and history; reseed the generator."""
        self._rng = random.Random(self.seed)
        self.counts = {site: 0 for site in _SITES}
        self.fired = []
        for spec in self.specs:
            spec.matched = 0
            spec.fired = 0

    @property
    def num_fired(self) -> int:
        """Total faults injected so far."""
        return len(self.fired)

    def on_alloc(self, label: str, nbytes: int) -> None:
        """Observation hook: one logical device allocation."""
        self._observe("alloc", label, nbytes=nbytes)

    def on_step(self, name: str) -> None:
        """Observation hook: entry into a named algorithm step."""
        self._observe("step", name)

    def on_broadcast(self, stage: str) -> None:
        """Observation hook: one transfer of a SUMMA broadcast."""
        self._observe("broadcast", stage)

    def _observe(self, site: str, name: str, nbytes: int = 0) -> None:
        self.counts[site] += 1
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.match is not None and spec.match not in name:
                continue
            spec.matched += 1
            fire = False
            if spec.at is not None and spec.matched == spec.at:
                fire = True
            elif spec.every is not None and spec.matched % spec.every == 0:
                fire = True
            elif spec.probability > 0.0 and self._rng.random() < spec.probability:
                fire = True
            if fire:
                spec.fired += 1
                self.fired.append(FiredFault(spec.error, site, name, self.counts[site]))
                obs = current_obs()
                if obs.enabled:
                    obs.metrics.inc(
                        "faults_injected_total", error=spec.error, site=site
                    )
                    obs.tracer.instant(
                        "inject:" + spec.error, cat="fault", site=site, event=name
                    )
                raise self._make_error(spec, name, nbytes)

    def _make_error(self, spec: FaultSpec, name: str, nbytes: int) -> Exception:
        if spec.error == "oom":
            return DeviceOOMError(name, nbytes, live_bytes=0, budget_bytes=None)
        if spec.error == "comm":
            return CommFailure(name, "injected fault")
        return TransientKernelError(name, "injected fault")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, fired={len(self.fired)})"
