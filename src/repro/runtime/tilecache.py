"""Content-hash-keyed cache of tiled operands.

CSR→tiled conversion is the fixed cost the paper amortises over repeated
multiplies (Figure 12): an AMG hierarchy reuses each level's operators,
MCL squares the same matrix every iteration, and a Krylov loop applies
one matrix over and over.  Those call sites receive plain CSR operands,
so without help they re-tile the same matrix on every call.

:class:`TileCache` removes that cost.  The key is a SHA-256 digest of the
CSR *content* — shape, tile size and the raw bytes of ``indptr`` /
``indices`` / ``val`` — so two structurally identical matrices hit the
same entry regardless of object identity, while any numeric or structural
change misses.  Entries are evicted least-recently-used once ``capacity``
is exceeded.  The cache is thread-safe (one lock around the table), so
the sharded parallel engine and :func:`~repro.runtime.parallel.spgemm_batch`
can share the process-wide instance returned by :func:`get_tile_cache`.

Every lookup also reports to the ambient observability context when one
is live: ``tilecache_hits_total`` / ``tilecache_misses_total`` /
``tilecache_evictions_total`` counters plus ``tilecache_resident_bytes``
and ``tilecache_entries`` gauges land in the
:class:`~repro.obs.metrics.MetricsRegistry` (Prometheus ``/metrics``,
``/varz`` and ``python -m repro obs top``), and the same numbers appear
in workload-profile artifacts via :meth:`TileCache.stats`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.tile_matrix import TILE, TileMatrix
from repro.obs.context import current_obs

__all__ = ["TileCache", "get_tile_cache", "reset_tile_cache", "cached_algorithm"]

#: Default number of tiled operands kept alive (AMG hierarchies are
#: shallow; MCL/Krylov loops touch one or two matrices).
DEFAULT_CAPACITY = 8


def content_key(csr, tile_size: int) -> str:
    """SHA-256 digest identifying a CSR matrix's exact content.

    Hashes shape, tile size, dtypes and the raw array bytes, so equality
    of keys implies the tiled forms are byte-identical.
    """
    h = hashlib.sha256()
    h.update(f"{csr.shape[0]}x{csr.shape[1]}/T{int(tile_size)}".encode())
    for arr in (csr.indptr, csr.indices, csr.val):
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


class TileCache:
    """An LRU cache mapping CSR content to its tiled form.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted when a new one would exceed it.  ``0`` disables caching
        (every lookup misses and nothing is stored).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, TileMatrix]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def tile(self, m, tile_size: int = TILE) -> TileMatrix:
        """The tiled form of ``m``, converting (and caching) on a miss.

        A :class:`~repro.core.tile_matrix.TileMatrix` passes through
        untouched — it is already the resident format.
        """
        if isinstance(m, TileMatrix):
            return m
        key = content_key(m, tile_size)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._export_locked(hit=True)
                return cached
            self.misses += 1
        tiled = TileMatrix.from_csr(m, tile_size)
        with self._lock:
            if self.capacity > 0 and key not in self._entries:
                self._entries[key] = tiled
                self.resident_bytes += tiled.memory_bytes()
                while len(self._entries) > self.capacity:
                    _, evicted = self._entries.popitem(last=False)
                    self.resident_bytes -= evicted.memory_bytes()
                    self.evictions += 1
                    obs = current_obs()
                    if obs.enabled:
                        obs.metrics.inc("tilecache_evictions_total")
            self._export_locked(hit=False)
        return tiled

    def _export_locked(self, hit: bool) -> None:
        """Report this lookup to the ambient metrics registry (if live).

        Called with the lock held; the registry has its own lock and
        never calls back into the cache, so the nesting is safe.  The
        counters are cumulative per lookup (1 hit or 1 miss each call)
        and the gauges snapshot the table, so Prometheus scrapes see the
        same numbers :meth:`stats` reports.
        """
        obs = current_obs()
        if not obs.enabled:
            return
        metrics = obs.metrics
        if hit:
            metrics.inc("tilecache_hits_total")
        else:
            metrics.inc("tilecache_misses_total")
        metrics.set_gauge("tilecache_resident_bytes", self.resident_bytes)
        metrics.set_gauge("tilecache_entries", len(self._entries))
        metrics.set_gauge("tilecache_evictions", self.evictions)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.resident_bytes = 0

    def stats(self) -> Dict[str, int]:
        """Counters snapshot: hits, misses, evictions, size, bytes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
                "resident_bytes": self.resident_bytes,
            }


_GLOBAL_CACHE: Optional[TileCache] = None
_GLOBAL_LOCK = threading.Lock()


def get_tile_cache() -> TileCache:
    """The process-wide cache used by the apps layer and ``spgemm_batch``."""
    global _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        if _GLOBAL_CACHE is None:
            _GLOBAL_CACHE = TileCache()
        return _GLOBAL_CACHE


def reset_tile_cache(capacity: int = DEFAULT_CAPACITY) -> TileCache:
    """Replace the process-wide cache (tests; capacity changes)."""
    global _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        _GLOBAL_CACHE = TileCache(capacity)
        return _GLOBAL_CACHE


def cached_algorithm(method: str, tile_size: int = TILE):
    """A registered SpGEMM method with cached tiling of its operands.

    For the tiled-family methods (``tilespgemm`` and the parallel
    variants) the returned callable tiles CSR operands through
    :func:`get_tile_cache` and passes them as ``a_tiled``/``b_tiled``,
    so the application loops that repeat operands — AMG level chains,
    MCL's iterated squaring, Krylov solves — convert each matrix once.
    Other methods are returned untouched (they work on CSR directly).
    """
    from repro.baselines.base import get_algorithm

    algorithm = get_algorithm(method)
    if not method.startswith("tilespgemm"):
        return algorithm
    cache = get_tile_cache()

    def run(a, b, **kwargs):
        a_tiled = cache.tile(a, tile_size)
        b_tiled = a_tiled if b is a else cache.tile(b, tile_size)
        return algorithm(a, b, a_tiled=a_tiled, b_tiled=b_tiled, **kwargs)

    run.__name__ = f"cached_{method}"
    return run
