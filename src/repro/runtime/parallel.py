"""Sharded parallel execution engine: TileSpGEMM on a worker pool.

The candidate-C-tile space shards exactly like it chunks: tile row ``i``
of ``C`` depends only on tile row ``i`` of ``A`` (and all of ``B``), so
the engine cuts ``A``'s tile rows into contiguous shards with the same
boundary rule as chunked re-execution
(:func:`~repro.runtime.chunked.batch_bounds`), runs each shard's
step-2 symbolic + step-3 numeric phases as an independent task on a
:mod:`concurrent.futures` pool, and merges the per-shard results with the
order-preserving stitch (:func:`~repro.runtime.chunked.stitch_results`).

**Determinism.**  The merged result is byte-identical to the serial run —
indices, values and tile structure.  Two properties make that true: the
stitch concatenates shard outputs in tile-row order, and the numeric
phase chunks its product stream at C-tile boundaries
(:func:`repro.core.step3.step3_numeric`), so each tile's accumulation
order is independent of how the tile-row space was partitioned.  The
test suite asserts exact equality of all eight output arrays for both
executors.

**Executors.**  ``executor="thread"`` shares the operands by reference;
``executor="process"`` ships ``B`` and the options to each worker once
via the pool initializer and sends only the per-task ``A`` shard.  Pool
workers run with an empty ambient context (both context stacks are
thread-local), so budgets and fault plans reach a shard only as the
explicit arguments the engine forwards, and workers never race on the
coordinator's tracer.

**Tracing.**  When the ambient tracer is live each shard travels with a
:class:`~repro.obs.propagate.TraceContext`; the worker records its spans
into a local tracer (:func:`~repro.obs.propagate.run_with_worker_obs`)
and ships them back with the result, and the coordinator merges them
(:func:`~repro.obs.propagate.absorb_telemetry`) onto its own timeline
with resolvable ``span_id``/``parent_span_id`` links: request/parallel
span → coordinator shard span → worker-side step spans.  The summary
``parallel.shard`` spans recorded from worker-reported timings are kept
— they are the cheap always-on view; the absorbed worker spans add the
inside-the-shard breakdown.

**Backends.**  The engine resolves its kernel-backend spec to a registry
*name* in the coordinator (covering the process default, which is module
state and does not survive ``spawn``) and forwards the name inside the
shard options; each pool worker re-resolves the name through its own
freshly-imported registry (:mod:`repro.backend`).  A worker that runs
with no explicit spec — and any child the engine did not configure —
falls back to ``REPRO_BACKEND`` from its inherited environment.  Every
shard of a run therefore executes the same backend, and the conformance
suite pins the merged result against the serial ``numpy`` run per the
backend's declared tier: byte-identical for exact-tier backends, and
byte-identical *structure* with values inside the declared
:class:`~repro.backend.ValueTolerance` for fast-math (tier-2) backends
— sharding and stitching never add error of their own because chunk
boundaries align with C tile rows.

**Failure.**  A shard raising
:class:`~repro.errors.TransientKernelError`, or the pool breaking
outright, is handled by the :class:`~repro.runtime.policy.ParallelPolicy`:
retry the shard, then fall back to the serial engine (or raise).  See
``docs/PARALLEL.md``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import backend_tier, resolve_backend_name
from repro.core.tile_matrix import TileMatrix
from repro.core.tilespgemm import TileSpGEMMResult, _record_obs_metrics, tile_spgemm
from repro.errors import ConfigurationError, InvalidInputError, TransientKernelError
from repro.obs.context import current_obs
from repro.obs.profile import current_row_offset
from repro.obs.propagate import (
    TraceContext,
    absorb_telemetry,
    new_trace_id,
    run_with_worker_obs,
)
from repro.runtime.chunked import (
    batch_bounds,
    chunked_tile_spgemm,
    slice_tile_rows,
    stitch_results,
    validate_bounds,
)
from repro.runtime.policy import ParallelPolicy
from repro.runtime.tilecache import get_tile_cache

__all__ = [
    "ENV_WORKERS",
    "ENV_EXECUTOR",
    "resolve_workers",
    "resolve_executor",
    "parallel_tile_spgemm",
    "spgemm_batch",
]

#: Environment knobs consulted when the caller passes ``None``.
ENV_WORKERS = "REPRO_WORKERS"
ENV_EXECUTOR = "REPRO_EXECUTOR"

_EXECUTORS = ("thread", "process")

#: Shards per worker: a little oversharding evens out load imbalance
#: between tile rows without shrinking shards into stitch overhead.
_SHARDS_PER_WORKER = 2


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, else ``REPRO_WORKERS``, else 1.

    ``0`` (from either source) means "auto": the number of CPUs this
    process may run on.  The result is always >= 1; ``1`` selects the
    serial engine.

    A malformed environment value raises
    :class:`~repro.errors.ConfigurationError` naming the variable (exit
    code 10 at the CLI); a malformed *argument* stays the caller's
    :class:`~repro.errors.InvalidInputError`.
    """
    from_env = False
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if not env:
            return 1
        from_env = True
        try:
            workers = int(env)
        except ValueError:
            raise ConfigurationError(
                f"must be an integer, got {env!r}", source=ENV_WORKERS
            ) from None
    workers = int(workers)
    if workers < 0:
        if from_env:
            raise ConfigurationError(
                f"must be >= 0, got {workers}", source=ENV_WORKERS
            )
        raise InvalidInputError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # non-Linux
            return max(1, os.cpu_count() or 1)
    return workers


def resolve_executor(executor: Optional[str] = None) -> str:
    """The effective executor kind: argument, else ``REPRO_EXECUTOR``,
    else ``"thread"``.

    Like :func:`resolve_workers`, a malformed environment value raises
    :class:`~repro.errors.ConfigurationError` naming the variable.
    """
    from_env = False
    if executor is None:
        executor = os.environ.get(ENV_EXECUTOR, "").strip() or "thread"
        from_env = True
    executor = executor.lower()
    if executor not in _EXECUTORS:
        if from_env:
            raise ConfigurationError(
                f"must be one of {_EXECUTORS}, got {executor!r}",
                source=ENV_EXECUTOR,
            )
        raise InvalidInputError(
            f"executor must be one of {_EXECUTORS}, got {executor!r}"
        )
    return executor


# ----------------------------------------------------------------------
# Worker-side task bodies
# ----------------------------------------------------------------------
# Process workers receive B and the shared options once, through the pool
# initializer, so each task pickles only its A shard.
_WORKER_B: Optional[TileMatrix] = None
_WORKER_OPTS: Dict[str, object] = {}


def _init_worker(b: TileMatrix, opts: Dict[str, object]) -> None:
    global _WORKER_B, _WORKER_OPTS
    _WORKER_B = b
    _WORKER_OPTS = opts


def _run_shard(
    a_shard: TileMatrix,
    b: TileMatrix,
    opts: Dict[str, object],
    ctx: Optional[TraceContext] = None,
):
    """One shard's multiply, timed with the system-wide monotonic clock.

    Returns ``(result, start, end, track, telemetry)`` where ``track``
    names the worker (thread name or worker PID) for the per-shard trace
    span and ``telemetry`` is the worker-recorded
    :class:`~repro.obs.propagate.WorkerTelemetry` (``None`` when the run
    is untraced, i.e. ``ctx is None``).  ``pairs``/``symbolic`` are
    dropped: the stitch never reads them and they dominate the pickling
    cost on the process pool.
    """

    def _body():
        res = tile_spgemm(a_shard, b, keep_empty_tiles=True, **opts)
        res.pairs = None
        res.symbolic = None
        return res

    start = time.perf_counter()
    res, telemetry = run_with_worker_obs(ctx, _body)
    dur = time.perf_counter() - start
    if _WORKER_B is not None:  # a process-pool worker
        track = f"worker-pid-{os.getpid()}"
    else:
        track = threading.current_thread().name
    return res, start, dur, track, telemetry


def _run_shard_in_process(a_shard: TileMatrix, ctx: Optional[TraceContext] = None):
    return _run_shard(a_shard, _WORKER_B, _WORKER_OPTS, ctx)


def _run_pair_in_process(pair: Tuple[TileMatrix, TileMatrix]):
    a, b = pair
    res = tile_spgemm(a, b, **_WORKER_OPTS)
    res.pairs = None
    res.symbolic = None
    return res


def _record_plan(plan_dict: Dict[str, object]) -> None:
    """Land the plan record in the ambient workload profiler (if live)."""
    obs = current_obs()
    profile = getattr(obs, "profile", None)
    if getattr(profile, "enabled", False):
        profile.record_plan(plan_dict)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def parallel_tile_spgemm(
    a: TileMatrix,
    b: TileMatrix,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    shards: Optional[int] = None,
    plan=None,
    policy: Optional[ParallelPolicy] = None,
    budget_bytes: Optional[int] = None,
    fault_plan=None,
    keep_empty_tiles: bool = True,
    backend=None,
    mp_context=None,
    **kwargs,
) -> TileSpGEMMResult:
    """Multiply ``a @ b`` on a worker pool; byte-identical to serial.

    Parameters
    ----------
    a, b:
        Tiled operands, as for :func:`repro.core.tilespgemm.tile_spgemm`.
    workers:
        Pool size; ``None`` consults ``REPRO_WORKERS``, ``0`` means one
        per available CPU, and ``1`` (the overall default) runs serially.
    executor:
        ``"thread"`` or ``"process"``; ``None`` consults
        ``REPRO_EXECUTOR`` and defaults to ``"thread"``.
    shards:
        Number of contiguous tile-row shards (clamped to
        ``a.num_tile_rows``); defaults to ``workers * 2`` so stragglers
        can be balanced.
    plan:
        An :class:`~repro.runtime.planner.ExecutionPlan` (duck-typed:
        ``workers`` / ``executor`` / ``bounds`` / ``tnnz`` / ``backend``
        / ``to_dict()``).  Fills in every option the caller left
        ``None`` — including the cost-weighted shard boundaries, used
        whenever ``shards`` is not given and the plan's bounds match
        ``a``'s tile rows.  The plan record lands in ``stats["plan"]``
        and the ambient workload profiler.  Explicit arguments still
        win.
    policy:
        A :class:`~repro.runtime.policy.ParallelPolicy` governing shard
        retries and the serial fallback (defaults apply when ``None``).
    budget_bytes, fault_plan:
        Forwarded to every shard explicitly — pool workers inherit no
        ambient context.  On the process pool the fault plan is pickled
        per worker, so its counters advance independently per process.
    keep_empty_tiles:
        As for ``tile_spgemm``; applied to the merged matrix.
    backend:
        Kernel backend spec (name, :class:`~repro.backend.KernelSet`, or
        ``None`` for the ambient default).  Resolved to a registry name
        *here*, in the coordinator, and shipped by name to the pool
        workers — process workers cannot see the coordinator's module
        state, only the registry they import themselves and the
        environment they inherit.
    mp_context:
        Optional :mod:`multiprocessing` context for the process pool
        (e.g. ``multiprocessing.get_context("spawn")``); ``None`` uses
        the platform default.  The propagation tests use this to pin the
        start method the trace must survive.
    **kwargs:
        Remaining ``tile_spgemm`` options (``tnnz``, methods, dtype...).

    Returns
    -------
    TileSpGEMMResult
        With ``stats["shards"]``, ``stats["workers"]`` and
        ``stats["executor"]`` describing the pool, and
        ``stats["parallel_fallback"]`` set when a worker failure forced
        the serial fallback.
    """
    if a.tile_size != b.tile_size:
        raise InvalidInputError("A and B must use the same tile size")
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError(
            f"dimension mismatch: A is {a.shape[0]}x{a.shape[1]}, "
            f"B is {b.shape[0]}x{b.shape[1]}"
        )
    plan_dict: Optional[Dict[str, object]] = None
    num_tile_rows = a.num_tile_rows
    plan_bounds: Optional[np.ndarray] = None
    if plan is not None:
        # The plan supplies whatever the caller left open; its choices
        # already honoured the env knobs at planning time.
        plan_dict = plan.to_dict()
        if workers is None:
            workers = plan.workers
        if executor is None:
            executor = plan.executor
        if backend is None:
            backend = plan.backend
        if getattr(plan, "tnnz", None) is not None:
            kwargs.setdefault("tnnz", int(plan.tnnz))
        if shards is None and len(plan.bounds) >= 2:
            plan_bounds = np.asarray(plan.bounds, dtype=np.int64)
            validate_bounds(plan_bounds, num_tile_rows)
    workers = resolve_workers(workers)
    executor = resolve_executor(executor)
    policy = policy or ParallelPolicy()
    # Resolve the backend spec to a pickle-safe registry name up front:
    # the process default (module state) does not survive spawn, so the
    # name — not the KernelSet — is what travels to the workers.
    backend_name = resolve_backend_name(backend)
    kwargs["backend"] = backend_name

    explicit_shards = plan_bounds is not None or shards is not None
    if plan_bounds is not None:
        num_shards = len(plan_bounds) - 1
    else:
        if shards is None:
            shards = workers * _SHARDS_PER_WORKER
        num_shards = max(1, min(int(shards), max(num_tile_rows, 1)))

    if workers <= 1 or num_shards <= 1:
        if workers <= 1 and num_shards > 1 and explicit_shards:
            # One worker but a multi-shard plan: run the shards serially
            # through the chunked engine.  Sharding pays even without
            # parallelism — each shard's intermediate arrays are smaller,
            # so the working set stays cache-resident (the planner's
            # "chunked" mode) — and the stitched result remains
            # byte-identical to the monolithic run.
            res = chunked_tile_spgemm(
                a,
                b,
                bounds=plan_bounds,
                num_batches=num_shards,
                keep_empty_tiles=keep_empty_tiles,
                budget_bytes=budget_bytes,
                fault_plan=fault_plan,
                **kwargs,
            )
            res.stats.update(shards=num_shards, workers=1, executor="chunked")
        else:
            res = tile_spgemm(
                a,
                b,
                keep_empty_tiles=keep_empty_tiles,
                budget_bytes=budget_bytes,
                fault_plan=fault_plan,
                **kwargs,
            )
            res.stats.update(shards=1, workers=1, executor="serial")
        if plan_dict is not None:
            res.stats["plan"] = plan_dict
            _record_plan(plan_dict)
        return res

    opts = dict(kwargs)
    opts["budget_bytes"] = budget_bytes
    opts["fault_plan"] = fault_plan
    bounds = (
        plan_bounds
        if plan_bounds is not None
        else batch_bounds(num_tile_rows, num_shards)
    )
    shard_inputs = [
        slice_tile_rows(a, int(bounds[k]), int(bounds[k + 1]))
        for k in range(num_shards)
    ]

    obs = current_obs()
    # Trace propagation: when the tracer is live, every shard travels
    # with a TraceContext.  Span identity lives in span args; ids are
    # pre-assigned here so the coordinator's after-the-fact shard spans
    # and the worker-recorded spans link up in the merged trace.
    trace_live = bool(getattr(obs.tracer, "enabled", False))
    profile_live = bool(getattr(obs.profile, "enabled", False))
    ambient = obs.trace_ctx
    shard_ctxs: Optional[List[TraceContext]] = None
    span_attrs: Dict[str, object] = {}
    parallel_span_id = ""
    trace_id = ""
    if trace_live or profile_live:
        # A live profiler also needs the shard contexts: they carry the
        # tile-row offset the worker rebases its workload profile by,
        # and the profile payload rides home inside WorkerTelemetry.
        trace_id = ambient.trace_id if ambient is not None else new_trace_id()
        parallel_span_id = f"{trace_id}/{new_trace_id('par')}"
        if trace_live:
            span_attrs = {
                "trace_id": trace_id,
                "span_id": parallel_span_id,
                "parent_span_id": ambient.parent_span_id if ambient is not None else "",
            }
        row_base = current_row_offset()
        shard_ctxs = [
            TraceContext(
                trace_id,
                parent_span_id=f"{parallel_span_id}/shard{k}",
                row_offset=row_base + int(bounds[k]),
            )
            for k in range(num_shards)
        ]
    with obs.tracer.span(
        "parallel_tile_spgemm",
        cat="parallel",
        workers=workers,
        shards=num_shards,
        executor=executor,
        **span_attrs,
    ) as span:
        pool_t0 = time.perf_counter()
        try:
            shard_outputs = _run_pool(
                executor,
                workers,
                b,
                opts,
                shard_inputs,
                policy,
                ctxs=shard_ctxs,
                mp_context=mp_context,
            )
        except (TransientKernelError, BrokenExecutor) as exc:
            if policy.on_worker_failure == "raise":
                raise
            if obs.enabled:
                obs.metrics.inc("parallel_fallbacks_total", executor=executor)
                obs.tracer.instant(
                    "parallel_fallback",
                    cat="parallel",
                    executor=executor,
                    error=type(exc).__name__,
                )
                obs.log.emit(
                    "parallel_fallback",
                    trace_id=trace_id or None,
                    executor=executor,
                    error=type(exc).__name__,
                    detail=str(exc),
                )
            res = tile_spgemm(
                a,
                b,
                keep_empty_tiles=keep_empty_tiles,
                budget_bytes=budget_bytes,
                fault_plan=fault_plan,
                **kwargs,
            )
            res.stats.update(
                shards=1, workers=1, executor="serial", parallel_fallback=True
            )
            if plan_dict is not None:
                res.stats["plan"] = plan_dict
                _record_plan(plan_dict)
            return res

        if obs.enabled:
            base = getattr(span, "start_s", 0.0) or 0.0
            for k, (_, w_start, w_dur, track, telemetry) in enumerate(
                shard_outputs
            ):
                r0, r1 = int(bounds[k]), int(bounds[k + 1])
                link_attrs: Dict[str, object] = {}
                if trace_live:
                    link_attrs = {
                        "trace_id": trace_id,
                        "span_id": f"{parallel_span_id}/shard{k}",
                        "parent_span_id": parallel_span_id,
                    }
                obs.tracer.add_complete(
                    f"shard {k + 1}/{num_shards}",
                    base + max(w_start - pool_t0, 0.0),
                    w_dur,
                    pid="parallel",
                    tid=track,
                    cat="parallel.shard",
                    tile_rows=[r0, r1],
                    **link_attrs,
                )
                # Merge the worker-recorded spans onto this timeline.
                # ``epoch_s`` maps the worker's absolute clock onto the
                # same zero the summary span above uses, so the two views
                # line up even under a test-injected coordinator clock.
                # Counters stay worker-local: the coordinator records the
                # merged stats itself (below) and must not double-count.
                # Workload profiles are the opposite: recorded only
                # worker-side, so absorbing them here is the one merge.
                absorb_telemetry(
                    obs.tracer,
                    telemetry,
                    epoch_s=pool_t0 - base,
                    metrics=None,
                    profile=obs.profile,
                    pid="parallel.workers",
                )

    merged = stitch_results(
        [out[0] for out in shard_outputs], a, b, keep_empty_tiles
    )
    merged.stats.update(
        shards=num_shards,
        workers=workers,
        executor=executor,
        backend=backend_name,
        backend_tier=backend_tier(backend_name).value,
    )
    if plan_dict is not None:
        merged.stats["plan"] = plan_dict
        _record_plan(plan_dict)
    if obs.enabled:
        obs.metrics.inc("parallel_runs_total", executor=executor)
        obs.metrics.inc("parallel_shards_total", num_shards)
        obs.metrics.set_gauge("parallel_workers", workers)
        obs.metrics.inc(
            "parallel_shard_seconds_total",
            sum(out[2] for out in shard_outputs),
        )
        _record_obs_metrics(obs.metrics, merged.stats)
    return merged


def _run_pool(
    executor: str,
    workers: int,
    b: TileMatrix,
    opts: Dict[str, object],
    shard_inputs: List[TileMatrix],
    policy: ParallelPolicy,
    ctxs: Optional[List[TraceContext]] = None,
    mp_context=None,
):
    """Submit every shard, collect results in shard order, retry per policy.

    ``ctxs`` (one :class:`~repro.obs.propagate.TraceContext` per shard,
    or ``None`` for an untraced run) rides along with each submission —
    including retries, so a retried shard's spans still land under its
    own shard span.  Raises the last shard error once retries are
    exhausted, and :class:`~concurrent.futures.BrokenExecutor` as-is (a
    broken pool cannot run retries) — the caller maps both onto the
    fallback.
    """
    if executor == "process":
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(b, opts),
        )
        submit = lambda k: pool.submit(
            _run_shard_in_process, shard_inputs[k], ctxs[k] if ctxs else None
        )
    else:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )
        submit = lambda k: pool.submit(
            _run_shard, shard_inputs[k], b, opts, ctxs[k] if ctxs else None
        )

    with pool:
        futures = [submit(k) for k in range(len(shard_inputs))]
        outputs = []
        for k, fut in enumerate(futures):
            attempt = 0
            while True:
                try:
                    outputs.append(fut.result())
                    break
                except (InvalidInputError, BrokenExecutor):
                    raise  # caller's bug / dead pool: retrying cannot help
                except TransientKernelError:
                    if attempt >= policy.max_shard_retries:
                        raise
                    attempt += 1
                    fut = submit(k)
    return outputs


# ----------------------------------------------------------------------
# Batching front end
# ----------------------------------------------------------------------
def spgemm_batch(
    pairs: Sequence[Tuple[object, object]],
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    policy: Optional[ParallelPolicy] = None,
    tile_size: Optional[int] = None,
    backend=None,
    **kwargs,
) -> List[TileSpGEMMResult]:
    """Run many small multiplies on one pool, preserving input order.

    The dual of sharding: instead of splitting one large multiply, each
    ``(a, b)`` pair becomes one pool task — the natural shape for an AMG
    setup phase (many small Galerkin products) or a batch of independent
    graph contractions.  Results arrive in input order and each equals
    its serial ``tile_spgemm(a, b, **kwargs)`` byte for byte.

    Parameters
    ----------
    pairs:
        ``(a, b)`` operand pairs; each operand may be a
        :class:`~repro.core.tile_matrix.TileMatrix` or a CSR matrix.
        CSR operands are tiled through the process-wide
        :func:`~repro.runtime.tilecache.get_tile_cache`, so a matrix
        appearing in several pairs is converted once.
    workers, executor:
        Pool configuration, resolved like
        :func:`parallel_tile_spgemm` (``workers=1`` runs the batch
        serially in order).
    policy:
        A :class:`~repro.runtime.policy.ParallelPolicy`; a task that
        keeps failing after its retries is rerun serially on the
        coordinating thread (or the error is raised, per
        ``on_worker_failure``).
    tile_size:
        Tile size used when tiling CSR operands (default
        :data:`~repro.core.tile_matrix.TILE`).
    backend:
        Kernel backend spec, resolved to a registry name on the
        coordinator and forwarded to every task (like
        :func:`parallel_tile_spgemm`).
    **kwargs:
        ``tile_spgemm`` options applied to every pair.
    """
    workers = resolve_workers(workers)
    executor = resolve_executor(executor)
    policy = policy or ParallelPolicy()
    kwargs["backend"] = resolve_backend_name(backend)
    cache = get_tile_cache()
    ts = {} if tile_size is None else {"tile_size": tile_size}
    tiled_pairs = [(cache.tile(a, **ts), cache.tile(b, **ts)) for a, b in pairs]

    obs = current_obs()
    if workers <= 1 or len(tiled_pairs) <= 1:
        out = []
        for a, b in tiled_pairs:
            out.append(tile_spgemm(a, b, **kwargs))
        return out

    def _run_pair_local(pair):
        a, b = pair
        res = tile_spgemm(a, b, **kwargs)
        res.pairs = None
        res.symbolic = None
        return res

    if executor == "process":
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(None, kwargs)
        )
        submit = lambda pair: pool.submit(_run_pair_in_process, pair)
    else:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-batch"
        )
        submit = lambda pair: pool.submit(_run_pair_local, pair)

    with obs.tracer.span(
        "spgemm_batch",
        cat="parallel",
        size=len(tiled_pairs),
        workers=workers,
        executor=executor,
    ):
        with pool:
            futures = [submit(pair) for pair in tiled_pairs]
            out = []
            for k, fut in enumerate(futures):
                attempt = 0
                while True:
                    try:
                        out.append(fut.result())
                        break
                    except InvalidInputError:
                        raise
                    except (TransientKernelError, BrokenExecutor) as exc:
                        broken = isinstance(exc, BrokenExecutor)
                        if not broken and attempt < policy.max_shard_retries:
                            attempt += 1
                            fut = submit(tiled_pairs[k])
                            continue
                        if policy.on_worker_failure == "raise":
                            raise
                        if obs.enabled:
                            obs.metrics.inc(
                                "parallel_fallbacks_total", executor=executor
                            )
                        out.append(_run_pair_local(tiled_pairs[k]))
                        break
    if obs.enabled:
        obs.metrics.inc("spgemm_batch_runs_total", executor=executor)
        obs.metrics.inc("spgemm_batch_tasks_total", len(tiled_pairs))
    return out
