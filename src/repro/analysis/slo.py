"""Offline SLO analysis from a Prometheus text snapshot.

The serving tier exports its accounting in the Prometheus text format
(``repro serve run --metrics serve.prom``, or a live ``/metrics``
scrape).  This module reads that text back and reproduces the SLO math
offline: per-tenant attainment against a latency objective, derived from
the ``serve_latency_seconds`` histogram buckets and the
``serve_outcomes_total`` counters — the same numbers the live
``slo_attainment`` / ``slo_error_budget_burn_rate`` gauges report,
recomputed from first principles so the two can be cross-checked.

The histogram gives an *upper bound* view: requests are counted "within
the target" using the smallest bucket bound >= the target, so choose a
target on a bucket boundary (the default 0.5 s is one) for exact
agreement with the live gauges.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

from repro.analysis.reporting import format_table

__all__ = [
    "parse_prometheus_text",
    "slo_report_from_text",
    "render_slo_report",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(
    text: str,
) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Comment/HELP/TYPE lines are skipped; label values are unescaped per
    the format's three escapes (``\\\\``, ``\\"``, ``\\n``).
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        labels: Dict[str, str] = {}
        if m.group("labels"):
            for lm in _LABEL_RE.finditer(m.group("labels")):
                value = (
                    lm.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels[lm.group(1)] = value
        try:
            value = float(m.group("value"))
        except ValueError:
            continue
        samples.append((m.group("name"), labels, value))
    return samples


def slo_report_from_text(
    text: str,
    latency_target_s: float = 0.5,
    objective: float = 0.95,
) -> Dict[str, Dict[str, Any]]:
    """Per-tenant SLO report recomputed from a metrics snapshot.

    For each tenant seen in ``serve_latency_seconds_bucket``:

    * ``total`` — requests finished (the ``+Inf`` bucket count);
    * ``within_target`` — requests at or under the smallest bucket bound
      >= ``latency_target_s``;
    * ``served`` — the tenant's ``serve_outcomes_total{outcome="served"}``;
    * ``good`` — ``min(within_target, served)``: a request only counts
      when it was *served* in time (a fast shed is not good service);
    * ``attainment`` and ``burn_rate`` — as the live gauges define them.
    """
    if not 0.0 < objective < 1.0:
        raise ValueError(f"objective must be in (0, 1), got {objective}")
    samples = parse_prometheus_text(text)
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    served: Dict[str, float] = {}
    outcomes: Dict[str, Dict[str, float]] = {}
    for name, labels, value in samples:
        tenant = labels.get("tenant", "")
        if name == "serve_latency_seconds_bucket":
            bound = labels.get("le", "+Inf")
            le = float("inf") if bound == "+Inf" else float(bound)
            buckets.setdefault(tenant, []).append((le, value))
        elif name == "serve_outcomes_total":
            outcome = labels.get("outcome", "")
            outcomes.setdefault(tenant, {})[outcome] = value
            if outcome == "served":
                served[tenant] = value

    report: Dict[str, Dict[str, Any]] = {}
    for tenant in sorted(buckets):
        series = sorted(buckets[tenant])
        total = series[-1][1] if series else 0.0
        within = next(
            (count for le, count in series if le >= latency_target_s), 0.0
        )
        good = min(within, served.get(tenant, 0.0))
        attainment = (good / total) if total else 1.0
        report[tenant] = {
            "total": int(total),
            "within_target": int(within),
            "served": int(served.get(tenant, 0.0)),
            "good": int(good),
            "attainment": attainment,
            "objective": objective,
            "burn_rate": (1.0 - attainment) / (1.0 - objective),
            "latency_target_s": latency_target_s,
            "outcomes": outcomes.get(tenant, {}),
        }
    return report


def render_slo_report(report: Dict[str, Dict[str, Any]]) -> str:
    """The report as an aligned ASCII table (one row per tenant)."""
    rows = [
        [
            tenant,
            row["total"],
            row["good"],
            row["attainment"],
            row["objective"],
            row["burn_rate"],
        ]
        for tenant, row in sorted(report.items())
    ]
    return format_table(
        ["tenant", "total", "good", "attainment", "objective", "burn"],
        rows,
        title="per-tenant SLO attainment",
        float_fmt="{:.3f}",
    )
