"""Analysis utilities: trend fits, breakdown buckets, report tables."""

from repro.analysis.breakdown import (
    BUCKETS,
    estimated_breakdown,
    fractions,
    measured_breakdown,
)
from repro.analysis.bench_compare import (
    ComparisonReport,
    SeriesDelta,
    attribute_regressions,
    bootstrap_median_ci,
    classify_samples,
    compare_documents,
    mann_whitney_u,
    planner_comparison,
    render_attribution,
    render_comparison,
    render_planner_comparison,
)
from repro.analysis.estimate import (
    MultiplyEstimate,
    estimate_multiply,
    row_products,
    tile_row_products,
)
from repro.analysis.calibration import (
    CALIBRATION_SCHEMA,
    calibrate_profile,
    calibration_to_metrics,
    check_calibration,
    emit_calibration_counters,
    load_calibration,
    render_calibration,
    write_calibration,
)
from repro.analysis.plotting import ascii_scatter
from repro.analysis.profiling import (
    aggregate_spans,
    breakdown_from_trace,
    diff_traces,
    load_chrome_trace,
    render_breakdown,
    render_trace_diff,
    top_spans_report,
    validate_chrome_trace,
)
from repro.analysis.regression import RegressionLine, fit_loglinear, geometric_mean
from repro.analysis.reporting import format_speedup, format_table, paper_vs_measured_row
from repro.analysis.slo import (
    parse_prometheus_text,
    render_slo_report,
    slo_report_from_text,
)

__all__ = [
    "BUCKETS",
    "CALIBRATION_SCHEMA",
    "ComparisonReport",
    "attribute_regressions",
    "render_attribution",
    "calibrate_profile",
    "calibration_to_metrics",
    "check_calibration",
    "emit_calibration_counters",
    "load_calibration",
    "render_calibration",
    "write_calibration",
    "RegressionLine",
    "SeriesDelta",
    "aggregate_spans",
    "ascii_scatter",
    "bootstrap_median_ci",
    "breakdown_from_trace",
    "classify_samples",
    "compare_documents",
    "diff_traces",
    "estimated_breakdown",
    "fit_loglinear",
    "fractions",
    "format_speedup",
    "format_table",
    "geometric_mean",
    "load_chrome_trace",
    "mann_whitney_u",
    "measured_breakdown",
    "MultiplyEstimate",
    "estimate_multiply",
    "row_products",
    "tile_row_products",
    "planner_comparison",
    "render_planner_comparison",
    "paper_vs_measured_row",
    "parse_prometheus_text",
    "render_breakdown",
    "render_comparison",
    "render_slo_report",
    "slo_report_from_text",
    "render_trace_diff",
    "top_spans_report",
    "validate_chrome_trace",
]
