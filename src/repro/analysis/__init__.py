"""Analysis utilities: trend fits, breakdown buckets, report tables."""

from repro.analysis.breakdown import (
    BUCKETS,
    estimated_breakdown,
    fractions,
    measured_breakdown,
)
from repro.analysis.plotting import ascii_scatter
from repro.analysis.profiling import (
    aggregate_spans,
    breakdown_from_trace,
    load_chrome_trace,
    render_breakdown,
    top_spans_report,
    validate_chrome_trace,
)
from repro.analysis.regression import RegressionLine, fit_loglinear, geometric_mean
from repro.analysis.reporting import format_speedup, format_table, paper_vs_measured_row

__all__ = [
    "BUCKETS",
    "RegressionLine",
    "aggregate_spans",
    "ascii_scatter",
    "breakdown_from_trace",
    "estimated_breakdown",
    "fit_loglinear",
    "fractions",
    "format_speedup",
    "format_table",
    "geometric_mean",
    "load_chrome_trace",
    "measured_breakdown",
    "paper_vs_measured_row",
    "render_breakdown",
    "top_spans_report",
    "validate_chrome_trace",
]
