"""Plain-text table rendering for the benchmark harnesses.

Every bench prints the rows/series its paper table or figure reports;
this module renders them as aligned ASCII tables so the regenerated
numbers read like the paper's artefact output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_speedup", "paper_vs_measured_row"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table.

    Floats go through ``float_fmt``; everything else through ``str``.
    """
    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(s.rjust(w) for s, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_speedup(value: float) -> str:
    """Render a speedup factor the way the paper prints them (``2.78x``)."""
    if value <= 0 or value != value:
        return "fail"
    return f"{value:.2f}x"


def paper_vs_measured_row(
    name: str, paper: Dict[str, float], measured: Dict[str, float], keys: Sequence[str]
) -> List[object]:
    """Interleave paper/measured values for a comparison table row."""
    row: List[object] = [name]
    for k in keys:
        row.append(paper.get(k, float("nan")))
        row.append(measured.get(k, float("nan")))
    return row
