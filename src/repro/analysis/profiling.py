"""Profile analysis over Chrome trace-event files (the ``--trace`` output).

The observability layer (:mod:`repro.obs`) exports runs as Chrome
trace-event JSON.  This module reads those files back and turns them into
the paper's figures-by-other-means:

* :func:`load_chrome_trace` / :func:`validate_chrome_trace` — parse a
  trace file and check it against the subset of the trace-event schema
  the exporter produces (so CI can smoke-test every emitted profile);
* :func:`aggregate_spans` / :func:`top_spans_report` — fold the complete
  events into per-name totals and render the hot-spans table behind the
  CLI's ``--profile`` flag;
* :func:`breakdown_from_trace` / :func:`render_breakdown` — recover the
  Figure-10 step1/step2/step3/malloc split from a trace alone, using the
  same phase-to-bucket mapping as :mod:`repro.analysis.breakdown`.

Everything here operates on plain dicts, so a trace captured on one
machine can be analysed on another with no repro objects in scope.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.breakdown import BUCKETS, _PHASE_TO_BUCKET

__all__ = [
    "load_chrome_trace",
    "validate_chrome_trace",
    "aggregate_spans",
    "top_spans_report",
    "breakdown_from_trace",
    "render_breakdown",
    "diff_traces",
    "render_trace_diff",
]

#: Event phases the exporter emits (complete, instant, counter, metadata).
_KNOWN_PHASES = ("X", "i", "C", "M")


def load_chrome_trace(path: str) -> dict:
    """Read and validate a Chrome trace-event JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_chrome_trace(doc)
    return doc


def validate_chrome_trace(doc: dict) -> List[dict]:
    """Check ``doc`` against the trace-event schema; returns the events.

    Raises ``ValueError`` naming the first offending event when the
    document is not a valid (exporter-subset) Chrome trace: a JSON object
    with a ``traceEvents`` list whose entries carry ``ph``/``name``/
    ``pid``/``tid``, microsecond ``ts`` on timed events and a
    non-negative ``dur`` on complete events.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace must be a JSON object with a traceEvents list")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace is missing the traceEvents list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"traceEvents[{i}] has unknown phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] ({ph!r}) is missing {key!r}")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"traceEvents[{i}] has invalid ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}] has invalid dur {dur!r}")
    return events


def _complete_events(doc: dict, cats: Optional[Iterable[str]] = None) -> List[dict]:
    wanted = set(cats) if cats is not None else None
    out = []
    for ev in validate_chrome_trace(doc):
        if ev.get("ph") != "X":
            continue
        if wanted is not None and ev.get("cat") not in wanted:
            continue
        out.append(ev)
    return out


def aggregate_spans(
    doc: dict, cats: Optional[Iterable[str]] = None
) -> Dict[str, Dict[str, float]]:
    """Fold complete events into per-name totals.

    Returns ``{name: {"seconds", "count", "min_s", "max_s", "mean_s"}}``,
    sorted by descending total.  ``cats`` restricts the aggregation to the
    given event categories (e.g. ``("step",)`` for pipeline steps only).
    """
    acc: Dict[str, List[float]] = {}
    for ev in _complete_events(doc, cats):
        acc.setdefault(ev["name"], []).append(float(ev["dur"]) / 1e6)
    out = {}
    for name, durs in sorted(acc.items(), key=lambda kv: -sum(kv[1])):
        out[name] = {
            "seconds": sum(durs),
            "count": len(durs),
            "min_s": min(durs),
            "max_s": max(durs),
            "mean_s": sum(durs) / len(durs),
        }
    return out


def top_spans_report(doc: dict, n: int = 12) -> str:
    """The hot-spans table behind the CLI's ``--profile`` flag."""
    agg = aggregate_spans(doc)
    lines = ["top spans by total wall time:"]
    if not agg:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    width = max(len(name) for name in list(agg)[:n])
    lines.append(f"  {'span':<{width}}  {'total':>10}  {'count':>5}  {'mean':>10}")
    for name, st in list(agg.items())[:n]:
        lines.append(
            f"  {name:<{width}}  {st['seconds'] * 1e3:>8.3f}ms  {st['count']:>5}"
            f"  {st['mean_s'] * 1e3:>8.3f}ms"
        )
    hidden = len(agg) - n
    if hidden > 0:
        lines.append(f"  ... and {hidden} more")
    return "\n".join(lines)


def breakdown_from_trace(doc: dict, strict: bool = False) -> Dict[str, float]:
    """Figure-10 bucket seconds recovered from a trace file alone.

    Sums ``cat="step"`` and ``cat="kernel.phase"`` spans into the paper's
    ``step1``/``step2``/``step3``/``malloc`` buckets via the same mapping
    the in-process breakdown uses.  Unmapped phase names are ignored
    unless ``strict`` is true (then they raise ``KeyError``), so traces
    from newer pipelines with extra phases still produce a breakdown.
    """
    out = {b: 0.0 for b in BUCKETS}
    for ev in _complete_events(doc, cats=("step", "kernel.phase")):
        bucket = _PHASE_TO_BUCKET.get(ev["name"])
        if bucket is None:
            if strict:
                raise KeyError(f"phase {ev['name']!r} has no breakdown bucket mapping")
            continue
        out[bucket] += float(ev["dur"]) / 1e6
    return out


def diff_traces(
    a: dict, b: dict, cats: Optional[Iterable[str]] = None
) -> Dict[str, Dict[str, float]]:
    """Per-span-name delta between two traces (regression attribution).

    Aggregates both documents' complete events into per-name totals and
    joins them: ``{name: {"base_s", "other_s", "delta_s", "ratio",
    "base_count", "other_count"}}``, ordered by descending ``|delta_s|``
    so the span that moved most — the phase a regression lives in — comes
    first.  Spans present on only one side join against zero (``ratio``
    is ``inf`` for brand-new spans, 0 for vanished ones).
    """
    base = aggregate_spans(a, cats)
    other = aggregate_spans(b, cats)
    out: Dict[str, Dict[str, float]] = {}
    for name in set(base) | set(other):
        bs = base.get(name, {"seconds": 0.0, "count": 0})
        os_ = other.get(name, {"seconds": 0.0, "count": 0})
        out[name] = {
            "base_s": bs["seconds"],
            "other_s": os_["seconds"],
            "delta_s": os_["seconds"] - bs["seconds"],
            "ratio": (os_["seconds"] / bs["seconds"]) if bs["seconds"] > 0 else float("inf"),
            "base_count": bs["count"],
            "other_count": os_["count"],
        }
    return dict(sorted(out.items(), key=lambda kv: -abs(kv[1]["delta_s"])))


def render_trace_diff(diff: Dict[str, Dict[str, float]], n: int = 20) -> str:
    """ASCII table of a :func:`diff_traces` result (``bench report --attribute``)."""
    lines = ["trace diff by span (largest absolute delta first):"]
    if not diff:
        lines.append("  (no spans in either trace)")
        return "\n".join(lines)
    names = list(diff)[:n]
    width = max(len(name) for name in names)
    lines.append(
        f"  {'span':<{width}}  {'base':>10}  {'other':>10}  {'delta':>10}  {'ratio':>7}"
    )
    for name in names:
        d = diff[name]
        ratio = f"{d['ratio']:.2f}x" if d["ratio"] != float("inf") else "new"
        lines.append(
            f"  {name:<{width}}  {d['base_s'] * 1e3:>8.3f}ms  {d['other_s'] * 1e3:>8.3f}ms"
            f"  {d['delta_s'] * 1e3:>+8.3f}ms  {ratio:>7}"
        )
    hidden = len(diff) - n
    if hidden > 0:
        lines.append(f"  ... and {hidden} more")
    return "\n".join(lines)


def render_breakdown(breakdown: Dict[str, float], width: int = 40) -> str:
    """ASCII bar chart of a bucket dict (the Figure-10 view of one run)."""
    total = sum(breakdown.values())
    lines = ["runtime breakdown (step spans):"]
    label_w = max((len(k) for k in breakdown), default=0)
    for name, sec in breakdown.items():
        frac = sec / total if total > 0 else 0.0
        bar = "#" * max(int(round(frac * width)), 1 if sec > 0 else 0)
        lines.append(f"  {name:<{label_w}}  {sec * 1e3:>8.3f}ms  {frac * 100:>5.1f}%  {bar}")
    return "\n".join(lines)
