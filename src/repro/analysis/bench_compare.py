"""Statistical comparison of two benchmark result documents.

The paper's comparisons (and the bhSPARSE/spECK lines of work it builds
on) are only meaningful with noise-aware, like-for-like measurement: a
2 % wall-clock delta on a Python harness is scheduler noise, a 2x delta
is a regression.  This module draws that line with order statistics
rather than means:

* :func:`bootstrap_median_ci` — percentile bootstrap confidence interval
  on the median of a sample set (deterministic, seeded);
* :func:`mann_whitney_u` — the Mann-Whitney U rank test (normal
  approximation with tie correction and continuity correction), which
  needs no normality assumption and is robust to the long right tail of
  wall-clock samples;
* :func:`classify_samples` — folds both into one verdict per series:
  ``improved`` / ``regressed`` / ``unchanged`` given a relative noise
  threshold and significance level;
* :func:`compare_documents` — matches two documents' series by key,
  classifies each, and rolls the deltas up into per-method and overall
  geometric-mean speedups (the paper's summary statistic).

Series without repeat samples (model-derived GFlops sweeps) fall back to
a pure-threshold comparison on the scalar throughput — flagged with
``p_value = None`` so reports can distinguish "statistically significant"
from "beyond threshold but untested".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.regression import geometric_mean

__all__ = [
    "DEFAULT_NOISE_THRESHOLD",
    "DEFAULT_ALPHA",
    "SeriesDelta",
    "ComparisonReport",
    "bootstrap_median_ci",
    "mann_whitney_u",
    "classify_samples",
    "compare_documents",
    "render_comparison",
    "attribute_regressions",
    "render_attribution",
    "planner_comparison",
    "render_planner_comparison",
]

#: Relative wall-clock change below which a delta is noise by definition.
#: Interpreted-Python wall times shift 10-25 % between processes on shared
#: machines (allocator and cache state, CPU frequency, co-tenants), so the
#: default sits above that floor; a genuine 2x regression — what the gate
#: exists to catch — still clears it with 4x margin.  Tighten with
#: ``--threshold`` on quiet, pinned machines.
DEFAULT_NOISE_THRESHOLD = 0.25

#: Two-sided significance level of the Mann-Whitney test.
DEFAULT_ALPHA = 0.05

#: Bootstrap resamples for the median confidence interval.
DEFAULT_BOOTSTRAP = 1000


def bootstrap_median_ci(
    samples: Sequence[float],
    alpha: float = DEFAULT_ALPHA,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap ``1 - alpha`` confidence interval on the median.

    Deterministic for a given ``seed`` so two gate evaluations of the same
    documents agree.  Degenerates gracefully: one sample yields a zero-width
    interval at that sample.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot bootstrap an empty sample set")
    if x.size == 1:
        return float(x[0]), float(x[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(int(n_boot), x.size))
    medians = np.median(x[idx], axis=1)
    lo, hi = np.quantile(medians, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def mann_whitney_u(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Two-sided Mann-Whitney U test; returns ``(U_of_x, p_value)``.

    Normal approximation with tie correction and continuity correction —
    exact enough for the bench's sample counts (>= 4 per side) and free of
    any SciPy dependency.  Fully tied inputs (identical runs) return
    ``p = 1.0``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n1, n2 = x.size, y.size
    if n1 == 0 or n2 == 0:
        return 0.0, 1.0
    combined = np.concatenate([x, y])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(combined.size, dtype=np.float64)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    # Average the ranks of tied values.
    uniq, inverse, counts = np.unique(combined, return_inverse=True, return_counts=True)
    if uniq.size < combined.size:
        sums = np.bincount(inverse, weights=ranks)
        ranks = (sums / counts)[inverse]
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    n = n1 + n2
    tie_term = float(((counts.astype(np.float64) ** 3) - counts).sum()) / (n * (n - 1))
    sigma2 = (n1 * n2 / 12.0) * ((n + 1) - tie_term)
    if sigma2 <= 0:
        return u1, 1.0  # every value tied: the samples are indistinguishable
    diff = u1 - mu
    correction = 0.5 if diff < 0 else (-0.5 if diff > 0 else 0.0)
    z = (diff + correction) / math.sqrt(sigma2)
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return u1, min(1.0, max(0.0, p))


@dataclass
class SeriesDelta:
    """One series' verdict when diffing two documents.

    ``ratio`` is relative wall time ``current / baseline`` (> 1 is
    slower); ``speedup`` its reciprocal.  ``p_value`` is ``None`` when the
    series had no repeat samples and the verdict fell back to the pure
    threshold test on the scalar throughput.
    """

    key: str
    matrix: str = ""
    method: str = ""
    op: str = ""
    classification: str = "unchanged"  #: improved|regressed|unchanged|added|removed
    baseline_median: Optional[float] = None
    current_median: Optional[float] = None
    ratio: Optional[float] = None
    speedup: Optional[float] = None
    p_value: Optional[float] = None
    baseline_ci: Optional[Tuple[float, float]] = None
    current_ci: Optional[Tuple[float, float]] = None
    significant: bool = False


@dataclass
class ComparisonReport:
    """The full diff of two documents."""

    deltas: List[SeriesDelta] = field(default_factory=list)
    noise_threshold: float = DEFAULT_NOISE_THRESHOLD
    alpha: float = DEFAULT_ALPHA
    baseline_label: str = ""
    current_label: str = ""

    @property
    def regressions(self) -> List[SeriesDelta]:
        """Significant regressions only — what the gate acts on."""
        return [
            d for d in self.deltas if d.classification == "regressed" and d.significant
        ]

    @property
    def improvements(self) -> List[SeriesDelta]:
        return [
            d for d in self.deltas if d.classification == "improved" and d.significant
        ]

    def geomean_speedup(self, method: Optional[str] = None) -> float:
        """Geometric-mean speedup (baseline time / current time).

        1.0 means parity, > 1 means the current run is faster.  Restricted
        to ``method`` when given; only matched series with a finite
        positive speedup contribute (the paper's convention for failed
        runs).
        """
        vals = [
            d.speedup
            for d in self.deltas
            if d.speedup is not None and (method is None or d.method == method)
        ]
        return geometric_mean(vals)

    def methods(self) -> List[str]:
        return sorted({d.method for d in self.deltas if d.method})


def classify_samples(
    baseline: Sequence[float],
    current: Sequence[float],
    noise_threshold: float = DEFAULT_NOISE_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 0,
) -> SeriesDelta:
    """Classify one series from its two wall-clock sample sets.

    A delta counts as ``regressed``/``improved`` only when the median
    moved beyond ``noise_threshold`` *and* the Mann-Whitney test rejects
    "same distribution" at ``alpha`` — so one outlier sample cannot fail
    a gate, and a consistent small drift below the threshold cannot
    either.
    """
    base = np.asarray(baseline, dtype=np.float64)
    cur = np.asarray(current, dtype=np.float64)
    if base.size == 0 or cur.size == 0:
        raise ValueError("classify_samples needs non-empty sample sets")
    base_med = float(np.median(base))
    cur_med = float(np.median(cur))
    ratio = cur_med / base_med if base_med > 0 else float("inf")
    delta = SeriesDelta(
        key="",
        baseline_median=base_med,
        current_median=cur_med,
        ratio=ratio,
        speedup=(base_med / cur_med) if cur_med > 0 else None,
        baseline_ci=bootstrap_median_ci(base, alpha=alpha, seed=seed),
        current_ci=bootstrap_median_ci(cur, alpha=alpha, seed=seed + 1),
    )
    _, p = mann_whitney_u(base, cur)
    delta.p_value = p
    beyond = abs(ratio - 1.0) > noise_threshold
    if beyond and p < alpha:
        delta.classification = "regressed" if ratio > 1.0 else "improved"
        delta.significant = True
    else:
        delta.classification = "unchanged"
    return delta


def _scalar_delta(
    base: float, cur: float, noise_threshold: float
) -> Tuple[str, float, bool]:
    """Threshold-only classification for sample-free (scalar) series.

    ``base``/``cur`` are time-like (bigger is slower); returns
    (classification, ratio, significant).  Scalar verdicts are never
    "statistically significant" — they carry ``significant = beyond
    threshold`` so the gate still reacts to a model-level 2x slowdown.
    """
    if base <= 0 or cur <= 0:
        return "unchanged", float("nan"), False
    ratio = cur / base
    if ratio > 1.0 + noise_threshold:
        return "regressed", ratio, True
    if ratio < 1.0 - noise_threshold:
        return "improved", ratio, True
    return "unchanged", ratio, False


def compare_documents(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    noise_threshold: float = DEFAULT_NOISE_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 0,
) -> ComparisonReport:
    """Diff two result documents series-by-series.

    Series present on only one side classify as ``added``/``removed``
    (never significant — suite drift is reported, not gated).  Matched
    series compare on wall-clock samples when both sides have them,
    falling back to measured/estimated GFlops as an inverse-time scalar.
    """
    from repro.bench.schema import index_series, validate_document

    validate_document(baseline)
    validate_document(current)
    base_idx = index_series(baseline)
    cur_idx = index_series(current)
    report = ComparisonReport(
        noise_threshold=noise_threshold,
        alpha=alpha,
        baseline_label=baseline["meta"].get("label", ""),
        current_label=current["meta"].get("label", ""),
    )
    for key in sorted(set(base_idx) | set(cur_idx)):
        b, c = base_idx.get(key), cur_idx.get(key)
        if b is None or c is None:
            src = c if b is None else b
            report.deltas.append(
                SeriesDelta(
                    key=key,
                    matrix=src["matrix"],
                    method=src["method"],
                    op=src["op"],
                    classification="added" if b is None else "removed",
                )
            )
            continue
        b_samples = b.get("wall_seconds") or []
        c_samples = c.get("wall_seconds") or []
        if b_samples and c_samples:
            delta = classify_samples(
                b_samples, c_samples, noise_threshold=noise_threshold, alpha=alpha, seed=seed
            )
        else:
            # Scalar fallback: GFlops is inverse time, so invert into a
            # time-like quantity before the threshold test.
            b_g = float(b.get("gflops") or 0.0)
            c_g = float(c.get("gflops") or 0.0)
            delta = SeriesDelta(key=key)
            if b_g > 0 and c_g > 0:
                cls, ratio, sig = _scalar_delta(1.0 / b_g, 1.0 / c_g, noise_threshold)
                delta.classification = cls
                delta.ratio = ratio
                delta.speedup = c_g / b_g
                delta.significant = sig
                delta.baseline_median = 1.0 / b_g
                delta.current_median = 1.0 / c_g
        delta.key = key
        delta.matrix, delta.method, delta.op = c["matrix"], c["method"], c["op"]
        report.deltas.append(delta)
    return report


def _per_run_phases(profile: Dict[str, Any]) -> Dict[str, float]:
    """Phase seconds per recorded run (so shard/repeat counts divide out)."""
    runs = max(int(profile.get("runs", 0)), 1)
    return {
        name: float(ph.get("seconds", 0.0)) / runs
        for name, ph in profile.get("phases", {}).items()
    }


def _bands_by_id(profile: Dict[str, Any]) -> Dict[int, Dict[str, Any]]:
    return {int(b.get("band", -1)): b for b in profile.get("bands", [])}


def attribute_regressions(
    report: ComparisonReport,
    baseline: Dict[str, Any],
    current: Dict[str, Any],
) -> List[Dict[str, Any]]:
    """Blame each significant regression on a phase and a tile-row band.

    Joins the ``repro.profile/1`` artifacts embedded in both documents'
    series (``bench run`` embeds one per series).  Per regression:

    * **phase** — the pipeline phase whose per-run seconds grew the most
      between baseline and current (the *where did the time go* answer);
    * **band** — the tile-row band whose intermediate-product count grew
      the most; when the workload is unchanged (same input, same
      algorithm decisions), the current run's heaviest band is reported
      instead, flagged ``workload_changed: false``.

    Series without embedded profiles on both sides are skipped — the
    rendered report says so rather than guessing.
    """
    from repro.bench.schema import index_series

    base_idx = index_series(baseline)
    cur_idx = index_series(current)
    attributions: List[Dict[str, Any]] = []
    for delta in report.regressions:
        base_prof = (base_idx.get(delta.key) or {}).get("profile")
        cur_prof = (cur_idx.get(delta.key) or {}).get("profile")
        if not base_prof or not cur_prof:
            attributions.append({"key": delta.key, "profiled": False})
            continue
        entry: Dict[str, Any] = {"key": delta.key, "profiled": True}

        base_phases = _per_run_phases(base_prof)
        cur_phases = _per_run_phases(cur_prof)
        phase_deltas = {
            name: cur_phases.get(name, 0.0) - base_phases.get(name, 0.0)
            for name in set(base_phases) | set(cur_phases)
        }
        if phase_deltas:
            worst = max(phase_deltas, key=lambda k: phase_deltas[k])
            grew = sum(v for v in phase_deltas.values() if v > 0)
            entry["phase"] = {
                "name": worst,
                "base_s": base_phases.get(worst, 0.0),
                "cur_s": cur_phases.get(worst, 0.0),
                "delta_s": phase_deltas[worst],
                "share_of_growth": (
                    phase_deltas[worst] / grew if grew > 0 else 0.0
                ),
            }

        base_bands = _bands_by_id(base_prof)
        cur_bands = _bands_by_id(cur_prof)
        band_deltas = {
            band: int(cur_bands.get(band, {}).get("products", 0))
            - int(base_bands.get(band, {}).get("products", 0))
            for band in set(base_bands) | set(cur_bands)
        }
        changed = any(v != 0 for v in band_deltas.values())
        entry["workload_changed"] = changed
        pick = None
        if changed:
            pick = max(band_deltas, key=lambda k: band_deltas[k])
        elif cur_bands:
            pick = max(
                cur_bands, key=lambda k: int(cur_bands[k].get("products", 0))
            )
        if pick is not None:
            band = cur_bands.get(pick, base_bands.get(pick, {}))
            entry["band"] = {
                "band": pick,
                "tile_rows": band.get("tile_rows", [0, 0]),
                "base_products": int(base_bands.get(pick, {}).get("products", 0)),
                "cur_products": int(cur_bands.get(pick, {}).get("products", 0)),
                "delta_products": band_deltas.get(pick, 0),
            }
        attributions.append(entry)
    return attributions


def render_attribution(attributions: List[Dict[str, Any]]) -> str:
    """Human-readable blame lines for ``bench compare --attribute``."""
    if not attributions:
        return "attribution: no significant regressions to attribute"
    lines = ["attribution (phase and tile-row band per regression):"]
    for entry in attributions:
        if not entry.get("profiled"):
            lines.append(
                f"  {entry['key']}: no embedded profile on both sides — "
                "re-run both benches with a profile-enabled runner"
            )
            continue
        parts = []
        phase = entry.get("phase")
        if phase is not None:
            parts.append(
                f"phase {phase['name']} "
                f"{phase['base_s'] * 1e3:.3f} -> {phase['cur_s'] * 1e3:.3f} ms/run "
                f"({phase['delta_s'] * 1e3:+.3f}, "
                f"{phase['share_of_growth']:.0%} of the growth)"
            )
        band = entry.get("band")
        if band is not None:
            r0, r1 = band.get("tile_rows", [0, 0])
            if entry.get("workload_changed"):
                parts.append(
                    f"tile rows [{r0}, {r1}) products "
                    f"{band['base_products']} -> {band['cur_products']} "
                    f"({band['delta_products']:+d})"
                )
            else:
                parts.append(
                    f"workload unchanged; heaviest band tile rows "
                    f"[{r0}, {r1}) ({band['cur_products']} products)"
                )
        lines.append(f"  {entry['key']}: " + "; ".join(parts))
    return "\n".join(lines)


def planner_comparison(
    doc: Dict[str, Any],
    planned_method: str = "tilespgemm_planned",
    noise_threshold: float = DEFAULT_NOISE_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 0,
) -> Dict[str, Any]:
    """The adaptive-planner gate: one document, planned vs every static.

    Unlike :func:`compare_documents` (which matches identical series
    keys across two documents), this compares the *planned* method's
    series against every other method's series **within one document**,
    per ``(matrix, op)``.  For each static configuration it reports the
    per-matrix speedup ``static_median / planned_median`` and the
    geometric mean across matrices.

    The gate passes when, against every static configuration, the
    geomean speedup is >= 1.0 **and** no matrix regresses beyond the
    noise threshold with Mann-Whitney significance — i.e. the planner
    is at least as good as any static choice overall and never
    meaningfully worse on a single input.
    """
    from repro.bench.schema import validate_document

    validate_document(doc)
    planned: Dict[Tuple[str, str], Dict[str, Any]] = {}
    statics: Dict[str, Dict[Tuple[str, str], Dict[str, Any]]] = {}
    for series in doc.get("series", []):
        at = (series["matrix"], series["op"])
        if series["method"] == planned_method:
            planned[at] = series
        else:
            statics.setdefault(series["method"], {})[at] = series
    if not planned:
        raise ValueError(
            f"document has no {planned_method!r} series — run the "
            "'planner' bench suite"
        )

    configs: Dict[str, Dict[str, Any]] = {}
    all_passed = True
    for method in sorted(statics):
        rows: List[Dict[str, Any]] = []
        regressions: List[str] = []
        speedups: List[float] = []
        for at in sorted(planned):
            static_series = statics[method].get(at)
            if static_series is None:
                continue
            p_samples = planned[at].get("wall_seconds") or []
            s_samples = static_series.get("wall_seconds") or []
            if not p_samples or not s_samples:
                continue
            # baseline = the static config, current = the planner, so
            # "regressed" means the planner is slower beyond threshold
            # *and* the rank test rejects "same distribution".
            delta = classify_samples(
                s_samples,
                p_samples,
                noise_threshold=noise_threshold,
                alpha=alpha,
                seed=seed,
            )
            row = {
                "matrix": at[0],
                "op": at[1],
                "static_median_s": delta.baseline_median,
                "planned_median_s": delta.current_median,
                "speedup": delta.speedup,
                "classification": delta.classification,
                "p_value": delta.p_value,
                "significant": delta.significant,
            }
            rows.append(row)
            if delta.speedup is not None:
                speedups.append(delta.speedup)
            if delta.classification == "regressed" and delta.significant:
                regressions.append(f"{at[0]}:{at[1]}")
        geomean = geometric_mean(speedups)
        passed = geomean >= 1.0 and not regressions
        configs[method] = {
            "geomean_speedup": geomean,
            "rows": rows,
            "regressions": regressions,
            "passed": passed,
        }
        all_passed = all_passed and passed
    return {
        "planned_method": planned_method,
        "noise_threshold": noise_threshold,
        "alpha": alpha,
        "label": doc.get("meta", {}).get("label", ""),
        "configs": configs,
        "passed": all_passed,
    }


def render_planner_comparison(report: Dict[str, Any]) -> str:
    """Human-readable planner-gate report (``bench compare --planner``)."""
    from repro.analysis.reporting import format_table

    rows = []
    for method, cfg in sorted(report.get("configs", {}).items()):
        for row in cfg["rows"]:
            rows.append(
                [
                    f"{row['matrix']}:{row['op']}",
                    method,
                    f"{row['static_median_s'] * 1e3:.3f}"
                    if row["static_median_s"]
                    else "-",
                    f"{row['planned_median_s'] * 1e3:.3f}"
                    if row["planned_median_s"]
                    else "-",
                    f"{row['speedup']:.3f}x" if row["speedup"] else "-",
                    row["classification"]
                    + ("" if row["significant"] else " (ns)"),
                ]
            )
    text = format_table(
        ["matrix", "static config", "static ms", "planned ms", "speedup", "verdict"],
        rows or [["(no matched series)", "", "", "", "", ""]],
        title=(
            f"planner gate: {report.get('planned_method')} vs every static "
            f"configuration (threshold "
            f"{report.get('noise_threshold', 0.0) * 100:.0f}%)"
        ),
    )
    roll = [
        [
            method,
            f"{cfg['geomean_speedup']:.3f}x",
            "pass" if cfg["passed"] else "FAIL",
            ", ".join(cfg["regressions"]) or "-",
        ]
        for method, cfg in sorted(report.get("configs", {}).items())
    ]
    text += "\n\n" + format_table(
        ["static config", "geomean speedup", "gate", "regressions"],
        roll,
        title="planner vs static rollup (gate: geomean >= 1.0, no regression)",
    )
    text += "\n" + (
        "planner gate: PASS" if report.get("passed") else "planner gate: FAIL"
    )
    return text


def render_comparison(report: ComparisonReport, verbose: bool = False) -> str:
    """Human-readable table of a comparison (the ``bench compare`` output)."""
    from repro.analysis.reporting import format_table

    rows = []
    for d in report.deltas:
        if d.classification in ("added", "removed"):
            rows.append([d.key, d.classification, "-", "-", "-", "-"])
            continue
        if not verbose and d.classification == "unchanged":
            continue
        rows.append(
            [
                d.key,
                d.classification + ("" if d.significant else " (ns)"),
                f"{d.baseline_median * 1e3:.3f}" if d.baseline_median else "-",
                f"{d.current_median * 1e3:.3f}" if d.current_median else "-",
                f"{d.speedup:.3f}x" if d.speedup else "-",
                f"{d.p_value:.4f}" if d.p_value is not None else "-",
            ]
        )
    if not rows:
        rows.append(["(all series unchanged)", "", "", "", "", ""])
    text = format_table(
        ["series", "verdict", "base ms", "cur ms", "speedup", "p"],
        rows,
        title=(
            f"bench compare: {report.baseline_label or 'baseline'} -> "
            f"{report.current_label or 'current'} "
            f"(threshold {report.noise_threshold * 100:.0f}%, alpha {report.alpha})"
        ),
    )
    roll = [["(all)", f"{report.geomean_speedup():.3f}x"]]
    for m in report.methods():
        roll.append([m, f"{report.geomean_speedup(m):.3f}x"])
    text += "\n\n" + format_table(
        ["method", "geomean speedup"], roll, title="geomean speedup rollup"
    )
    counts = {}
    for d in report.deltas:
        counts[d.classification] = counts.get(d.classification, 0) + 1
    text += "\nverdicts: " + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    return text
