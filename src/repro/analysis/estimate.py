"""Sampling-based upfront estimation of a multiply (OCEAN-style).

The planner (:mod:`repro.runtime.planner`) and the serving tier's
admission gate need to know, *before* any symbolic work runs, roughly
how expensive ``C = A @ B`` will be and how its work is distributed over
A's tile rows.  Following the estimation-driven strategy selection of
OCEAN (PAPERS.md, "Fast Estimation-Based SpGEMM"), two quantities carry
almost all of that signal:

* the **intermediate-product count** ``products = sum_k nnz(a_*k) *
  nnz(b_k*)`` — exact, one vectorised pass over ``nnz(A)``;
* the **compression rate** ``products / nnz(C)`` — estimated by
  row sampling: for a deterministic, evenly spaced subset of A's rows
  the per-row ``nnz(C)`` is computed *exactly* (union of the B rows the
  sampled A row touches), and the sampled compression rate scales the
  exact product total into an nnz(C) estimate.

Total cost is ``O(nnz(A) + nnz(B) + sample_rows * nnz/row)`` — the
``O(sample * nnz / rows)`` sampling term of the OCEAN estimator plus two
linear passes — versus the ``O(products)`` of actually multiplying.

The per-tile-row product histogram is returned alongside, because
equalising *predicted products* (not row counts) across shards is what
removes stragglers from the sharded parallel engine.

This module is deliberately dependency-light: it accepts CSR or tiled
operands in any mix (same duck-typing contract as
:mod:`repro.serve.admission`) and imports nothing from the runtime or
serving layers, so both can build on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.calibration import compression_band

__all__ = [
    "MultiplyEstimate",
    "estimate_multiply",
    "row_products",
    "tile_row_products",
    "DEFAULT_SAMPLE_ROWS",
]

#: Rows sampled for the nnz(C)/compression estimate.  64 exact row
#: unions keep the estimator well under a millisecond on the ext
#: matrices while holding the compression-rate error to a few percent.
DEFAULT_SAMPLE_ROWS = 64


# --------------------------------------------------------------- row views
def _csr_view(m):
    """``(indptr, indices)`` row view of ``m`` (CSR or tiled).

    CSR operands are viewed in place.  Tiled operands reconstruct the
    per-row column lists once, in O(nnz) vectorised work: element ``e``
    of tile ``t`` in tile row ``r`` lives at global row
    ``r * T + rowidx[e]`` and global column
    ``tilecolidx[t] * T + colidx[e]``.
    """
    if hasattr(m, "indptr"):
        return m.indptr, m.indices
    tiles_per_row = np.diff(m.tileptr)
    tile_row_of_tile = np.repeat(np.arange(m.num_tile_rows), tiles_per_row)
    elem_tile = np.repeat(np.arange(m.num_tiles), np.diff(m.tilennz))
    rows = tile_row_of_tile[elem_tile] * m.tile_size + m.rowidx.astype(np.int64)
    cols = m.tilecolidx[elem_tile].astype(np.int64) * m.tile_size + m.colidx
    order = np.argsort(rows, kind="stable")
    indptr = np.zeros(m.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=m.shape[0]), out=indptr[1:])
    return indptr, cols[order]


def _tile_size_of(m, tile_size: Optional[int]) -> int:
    if tile_size is not None:
        return int(tile_size)
    return int(getattr(m, "tile_size", 16))


def _row_products(a_indptr, a_indices, b_indptr) -> np.ndarray:
    b_row_nnz = np.diff(b_indptr).astype(np.int64)
    per_elem = b_row_nnz[a_indices] if a_indices.size else np.zeros(0, np.int64)
    cum = np.zeros(len(per_elem) + 1, dtype=np.int64)
    np.cumsum(per_elem, out=cum[1:])
    return cum[a_indptr[1:]] - cum[a_indptr[:-1]]


def row_products(a, b) -> np.ndarray:
    """Exact intermediate products contributed by each row of ``a``.

    ``products[i] = sum_{k in a_i*} nnz(b_k*)`` — one gather over
    ``nnz(A)`` plus a segment sum, no multiply.
    """
    a_indptr, a_indices = _csr_view(a)
    b_indptr, _ = _csr_view(b)
    return _row_products(a_indptr, a_indices, b_indptr)


def _band_by_tile_row(per_row: np.ndarray, T: int) -> np.ndarray:
    num_tile_rows = (len(per_row) + T - 1) // T
    if num_tile_rows == 0:
        return np.zeros(0, dtype=np.int64)
    bands = np.arange(len(per_row), dtype=np.int64) // T
    return np.bincount(bands, weights=per_row, minlength=num_tile_rows).astype(
        np.int64
    )


def tile_row_products(a, b, tile_size: Optional[int] = None) -> np.ndarray:
    """Exact products per *tile row* of ``a`` — the shard cost weights.

    Length ``ceil(rows / tile_size)``; ``tile_size`` defaults to ``a``'s
    own when it is tiled.
    """
    return _band_by_tile_row(row_products(a, b), _tile_size_of(a, tile_size))


@dataclass(frozen=True)
class MultiplyEstimate:
    """The upfront shape of one multiply.

    Attributes
    ----------
    num_rows, rows_sampled:
        A's row count and how many rows the nnz(C) sample covered
        (``rows_sampled == num_rows`` makes the estimate exact).
    products:
        Exact intermediate-product count (``nnz(C) <= products``).
    est_nnz_c:
        Estimated output nonzeros: ``products / compression``.
    compression:
        Estimated compression rate ``products / nnz(C)`` (>= 1).
    band:
        The :data:`~repro.analysis.calibration.COMPRESSION_BANDS` label
        of ``compression`` — the key calibration reports index by.
    tile_row_products:
        Exact per-tile-row product histogram (shard cost weights).
    tile_size:
        Tile size the histogram was banded with.
    """

    num_rows: int
    rows_sampled: int
    products: int
    est_nnz_c: float
    compression: float
    band: str
    tile_row_products: np.ndarray
    tile_size: int

    def to_dict(self) -> Dict[str, object]:
        """Native-typed summary for plan artifacts (no arrays)."""
        return {
            "num_rows": int(self.num_rows),
            "rows_sampled": int(self.rows_sampled),
            "products": int(self.products),
            "est_nnz_c": float(self.est_nnz_c),
            "compression": float(self.compression),
            "band": self.band,
            "num_tile_rows": int(len(self.tile_row_products)),
            "tile_size": int(self.tile_size),
        }


def estimate_multiply(
    a,
    b,
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
    tile_size: Optional[int] = None,
) -> MultiplyEstimate:
    """Estimate ``a @ b`` by exact products + row-sampled compression.

    Deterministic: the sample is the ``sample_rows`` evenly spaced row
    indices (every row when ``num_rows <= sample_rows``, making
    ``est_nnz_c`` exact), so two calls on the same operands always
    produce the same estimate — a requirement for plan reproducibility
    and the byte-identity contract of planned parallel runs.
    """
    a_indptr, a_indices = _csr_view(a)
    b_indptr, b_indices = _csr_view(b)
    per_row = _row_products(a_indptr, a_indices, b_indptr)
    products = int(per_row.sum())
    num_rows = int(a.shape[0])
    T = _tile_size_of(a, tile_size)

    sample_rows = max(1, int(sample_rows))
    if num_rows <= sample_rows:
        sampled = np.arange(num_rows, dtype=np.int64)
    else:
        # Evenly spaced indices: distinct (sample_rows <= num_rows) and
        # deterministic; the compression-rate *ratio* transfers to the
        # unsampled rows.
        sampled = (np.arange(sample_rows, dtype=np.int64) * num_rows) // sample_rows

    sampled_products = 0
    sampled_nnz_c = 0
    for i in sampled:
        cols_a = a_indices[a_indptr[i] : a_indptr[i + 1]]
        if cols_a.size == 0:
            continue
        pieces = [
            b_indices[b_indptr[k] : b_indptr[k + 1]] for k in cols_a.tolist()
        ]
        touched = np.concatenate(pieces) if pieces else np.zeros(0, np.int64)
        sampled_products += int(touched.size)
        sampled_nnz_c += int(np.unique(touched).size)

    if sampled_products > 0:
        compression = sampled_products / max(sampled_nnz_c, 1)
    else:
        compression = 1.0  # nothing sampled produced output: assume no reuse
    compression = max(compression, 1.0)
    est_nnz_c = min(float(products), products / compression) if products else 0.0

    return MultiplyEstimate(
        num_rows=num_rows,
        rows_sampled=int(len(sampled)),
        products=products,
        est_nnz_c=est_nnz_c,
        compression=float(compression),
        band=compression_band(float(compression)),
        tile_row_products=_band_by_tile_row(per_row, T),
        tile_size=T,
    )
