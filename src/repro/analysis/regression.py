"""Linear-regression trend lines for the Figure 6 reproduction.

Figure 6 plots each method's GFlops against the matrix compression rate
(log10 x-axis) and overlays a linear regression per method; the paper
reads the slopes as "TileSpGEMM benefits most from higher compression
rates".  This module fits those lines and reports the fit quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["RegressionLine", "fit_loglinear", "geometric_mean"]


@dataclass(frozen=True)
class RegressionLine:
    """A fitted ``y = slope * log10(x) + intercept`` trend."""

    slope: float
    intercept: float
    r_value: float  #: Pearson correlation of (log10 x, y)
    n: int

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the trend at compression rates ``x``."""
        return self.slope * np.log10(np.asarray(x, dtype=np.float64)) + self.intercept


def fit_loglinear(x: Sequence[float], y: Sequence[float]) -> RegressionLine:
    """Least-squares fit of ``y`` against ``log10(x)``.

    Points with non-positive ``x`` or non-finite ``y`` are dropped (failed
    runs report 0 GFlops and must not drag the trend, matching how the
    paper's plots omit failed matrices).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    ok = (x > 0) & np.isfinite(y) & (y > 0)
    x, y = x[ok], y[ok]
    if x.size < 2:
        return RegressionLine(0.0, float(y[0]) if y.size else 0.0, 0.0, int(x.size))
    lx = np.log10(x)
    slope, intercept = np.polyfit(lx, y, 1)
    denom = lx.std() * y.std()
    r = float(np.corrcoef(lx, y)[0, 1]) if denom > 0 else 0.0
    return RegressionLine(float(slope), float(intercept), r, int(x.size))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean over the positive, finite entries.

    The paper reports method-over-method speedups as geometric means;
    zeros (failed runs) are excluded, as the paper excludes matrices a
    method cannot complete.
    """
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v) & (v > 0)]
    if v.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(v))))
