"""Cost-model calibration: was the estimate right, and where was it wrong?

The GPU execution model (:mod:`repro.gpu.costmodel`) prices every run it
sees; the workload profiler (:mod:`repro.obs.profile`) deposits one
**calibration sample** per estimate — the predicted per-kernel seconds
joined with the run's *measured* phase seconds and its compression rate
(``products / nnz(C)``).  This module turns those samples into the
prediction-error report the OCEAN line of work argues an
estimation-driven SpGEMM needs: per estimator family, per phase and per
compression-rate band,

* **signed bias** (``predicted − measured``; positive = the model
  over-prices), and
* **absolute error** (``Σ |predicted_i − measured_i|``, which unlike the
  bias cannot cancel across samples).

Measured times come from this CPU reproduction while predictions price a
modelled GPU, so the absolute *scale* of the error is expected and
uninteresting; what matters — and what :func:`check_calibration` gates —
is **structure** (every family that ran produced joinable, finite
samples) and **drift** (the error ratio moving against a baseline report
beyond a tolerated factor, which is how a stale cost model shows up in
CI after someone optimises a kernel).

Exports: Prometheus gauges (:func:`calibration_to_metrics`), Perfetto
counter tracks (:func:`emit_calibration_counters`), a rendered table
(:func:`render_calibration`), all driven by ``repro obs calibrate``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from repro.errors import CalibrationDriftError, InvalidInputError
from repro.obs.native import to_native

__all__ = [
    "CALIBRATION_SCHEMA",
    "COMPRESSION_BANDS",
    "calibrate_profile",
    "check_calibration",
    "calibration_to_metrics",
    "emit_calibration_counters",
    "render_calibration",
    "write_calibration",
    "load_calibration",
]

#: Version tag of the calibration-report document.
CALIBRATION_SCHEMA = "repro.calibration/1"

#: Compression-rate (products / nnz(C)) band edges and labels.  The rate
#: is >= 1 by construction; the paper's Figure 6 regime split motivates
#: the doubling buckets — accumulator behaviour changes with how much
#: the products compress.
COMPRESSION_BANDS = (
    (1.0, 2.0, "1-2"),
    (2.0, 4.0, "2-4"),
    (4.0, 8.0, "4-8"),
    (8.0, math.inf, "8+"),
)

#: Default drift gate: the per-family error ratio may move by at most
#: this factor against the baseline report before --check fails.
DEFAULT_TOLERANCE = 4.0


def compression_band(rate: float) -> str:
    """The :data:`COMPRESSION_BANDS` label containing ``rate``."""
    for lo, hi, label in COMPRESSION_BANDS:
        if lo <= rate < hi:
            return label
    return COMPRESSION_BANDS[0][2] if rate < 1.0 else COMPRESSION_BANDS[-1][2]


def _new_cell() -> Dict[str, float]:
    return {
        "samples": 0,
        "predicted_s": 0.0,
        "measured_s": 0.0,
        "bias_s": 0.0,
        "abs_error_s": 0.0,
    }


def _fold(cell: Dict[str, float], predicted: float, measured: float) -> None:
    cell["samples"] += 1
    cell["predicted_s"] += predicted
    cell["measured_s"] += measured
    cell["bias_s"] += predicted - measured
    cell["abs_error_s"] += abs(predicted - measured)


def _finish(cell: Dict[str, float]) -> Dict[str, float]:
    measured = cell["measured_s"]
    cell["ratio"] = cell["predicted_s"] / measured if measured > 0 else 0.0
    return cell


def calibrate_profile(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Build the prediction-error report from one profile artifact.

    ``doc`` is a ``repro.profile/1`` document (or any dict with a
    ``calibration`` sample list).  Per estimator family the report joins:

    * **total** — the estimate's end-to-end seconds vs the run's
      measured total;
    * **phases** — each predicted kernel whose name matches a measured
      phase (the TileSpGEMM estimator deliberately emits
      ``step1``/``step2``/``step3``/``malloc`` to line up with
      :class:`~repro.util.timing.PhaseTimer`; baseline estimators whose
      kernel names have no measured counterpart simply contribute no
      phase rows);
    * **compression_bands** — totals stratified by the sample's
      compression rate (:data:`COMPRESSION_BANDS`).

    Samples whose prediction is OOM / non-finite are tallied under
    ``skipped`` instead of polluting the error sums.
    """
    samples = doc.get("calibration")
    if samples is None:
        raise InvalidInputError(
            "document has no 'calibration' samples — was the profile "
            "recorded without any estimate_run call?"
        )
    families: Dict[str, Dict[str, Any]] = {}
    skipped = 0
    for sample in samples:
        predicted = float(sample.get("predicted_s", -1.0))
        measured = float(sample.get("measured_s", 0.0))
        if sample.get("oom") or predicted < 0 or not math.isfinite(predicted):
            skipped += 1
            continue
        family = str(sample.get("family", sample.get("method", "?")))
        report = families.setdefault(
            family,
            {
                "devices": set(),
                "total": _new_cell(),
                "phases": {},
                "compression_bands": {},
            },
        )
        report["devices"].add(str(sample.get("device", "?")))
        _fold(report["total"], predicted, measured)
        measured_phases = sample.get("measured_phases", {})
        for phase, pred_s in sample.get("predicted_phases", {}).items():
            if phase not in measured_phases:
                continue
            cell = report["phases"].setdefault(phase, _new_cell())
            _fold(cell, float(pred_s), float(measured_phases[phase]))
        rate = sample.get("compression")
        if rate is not None and float(rate) > 0:
            band = report["compression_bands"].setdefault(
                compression_band(float(rate)), _new_cell()
            )
            _fold(band, predicted, measured)
    for report in families.values():
        report["devices"] = sorted(report["devices"])
        _finish(report["total"])
        for cell in report["phases"].values():
            _finish(cell)
        for cell in report["compression_bands"].values():
            _finish(cell)
    return to_native(
        {
            "schema": CALIBRATION_SCHEMA,
            "samples": len(samples),
            "skipped": skipped,
            "families": {k: families[k] for k in sorted(families)},
        }
    )


def check_calibration(
    report: Dict[str, Any],
    baseline: Optional[Dict[str, Any]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Gate a calibration report; raises on structural breakage or drift.

    Structural checks (always): the report joined at least one sample,
    and every family's error sums are finite with positive measured
    time.  Drift check (with ``baseline``): for each family present in
    both reports, the prediction/measured ratio may move by at most a
    factor of ``tolerance`` either way.

    Returns the (empty) problem list on success; raises
    :class:`~repro.errors.CalibrationDriftError` (CLI exit code 13)
    otherwise.
    """
    if tolerance <= 1.0:
        raise InvalidInputError(f"tolerance must be > 1.0, got {tolerance}")
    problems: List[str] = []
    families = report.get("families", {})
    joined = int(report.get("samples", 0)) - int(report.get("skipped", 0))
    if not families or joined <= 0:
        problems.append("no joinable calibration samples in the profile")
    for family, rep in families.items():
        total = rep.get("total", {})
        for key in ("predicted_s", "measured_s", "bias_s", "abs_error_s"):
            value = total.get(key)
            if value is None or not math.isfinite(float(value)):
                problems.append(f"{family}: non-finite {key} ({value!r})")
        if float(total.get("measured_s", 0.0)) <= 0.0:
            problems.append(f"{family}: no measured time joined to predictions")
    if baseline is not None:
        base_families = baseline.get("families", {})
        for family, rep in families.items():
            base = base_families.get(family)
            if base is None:
                continue
            ratio = float(rep.get("total", {}).get("ratio", 0.0))
            base_ratio = float(base.get("total", {}).get("ratio", 0.0))
            if ratio <= 0.0 or base_ratio <= 0.0:
                continue
            drift = ratio / base_ratio
            if drift > tolerance or drift < 1.0 / tolerance:
                problems.append(
                    f"{family}: error ratio drifted {drift:.2f}x vs baseline "
                    f"(now {ratio:.3g}, was {base_ratio:.3g}, "
                    f"tolerance {tolerance:g}x)"
                )
    if problems:
        raise CalibrationDriftError(problems)
    return problems


def calibration_to_metrics(report: Dict[str, Any], metrics) -> None:
    """Export the report as Prometheus gauges on ``metrics``.

    One gauge sample per family (labels ``family``, ``phase="total"``)
    plus one per joined phase, so a scrape can alert on a single
    estimator going stale without parsing artifacts.
    """
    for family, rep in report.get("families", {}).items():
        cells = [("total", rep.get("total", {}))]
        cells += list(rep.get("phases", {}).items())
        for phase, cell in cells:
            labels = {"family": family, "phase": phase}
            metrics.set_gauge(
                "costmodel_predicted_seconds", float(cell.get("predicted_s", 0.0)), **labels
            )
            metrics.set_gauge(
                "costmodel_measured_seconds", float(cell.get("measured_s", 0.0)), **labels
            )
            metrics.set_gauge(
                "costmodel_bias_seconds", float(cell.get("bias_s", 0.0)), **labels
            )
            metrics.set_gauge(
                "costmodel_abs_error_seconds", float(cell.get("abs_error_s", 0.0)), **labels
            )
            metrics.set_gauge(
                "costmodel_error_ratio", float(cell.get("ratio", 0.0)), **labels
            )


def emit_calibration_counters(report: Dict[str, Any], tracer) -> None:
    """Emit the report onto Perfetto counter tracks via ``tracer``.

    Chrome trace-event ``ph="C"`` samples — one counter track per
    (family, quantity) — so a trace opened in https://ui.perfetto.dev
    shows the prediction error alongside the spans it explains.
    """
    for family, rep in report.get("families", {}).items():
        total = rep.get("total", {})
        tracer.counter(
            f"costmodel/{family}/bias_s",
            float(total.get("bias_s", 0.0)),
            cat="calibration",
        )
        tracer.counter(
            f"costmodel/{family}/abs_error_s",
            float(total.get("abs_error_s", 0.0)),
            cat="calibration",
        )
        tracer.counter(
            f"costmodel/{family}/error_ratio",
            float(total.get("ratio", 0.0)),
            cat="calibration",
        )
        for band, cell in sorted(rep.get("compression_bands", {}).items()):
            tracer.counter(
                f"costmodel/{family}/bias_s/compression_{band}",
                float(cell.get("bias_s", 0.0)),
                cat="calibration",
            )


def render_calibration(report: Dict[str, Any]) -> str:
    """Human-readable prediction-error tables, one block per family."""
    lines: List[str] = []
    joined = int(report.get("samples", 0)) - int(report.get("skipped", 0))
    lines.append(
        f"cost-model calibration: {joined} joined samples "
        f"({report.get('skipped', 0)} skipped) across "
        f"{len(report.get('families', {}))} estimator families"
    )
    header = (
        f"  {'':<18} {'n':>4} {'predicted s':>12} {'measured s':>12} "
        f"{'bias s':>12} {'abs err s':>12} {'ratio':>10}"
    )
    for family, rep in report.get("families", {}).items():
        devices = ", ".join(rep.get("devices", []))
        lines.append("")
        lines.append(f"family {family} (devices: {devices})")
        lines.append(header)
        rows = [("total", rep.get("total", {}))]
        rows += [
            (f"phase {p}", c) for p, c in sorted(rep.get("phases", {}).items())
        ]
        rows += [
            (f"compress {b}", c)
            for b, c in sorted(rep.get("compression_bands", {}).items())
        ]
        for label, cell in rows:
            lines.append(
                f"  {label:<18} {int(cell.get('samples', 0)):>4} "
                f"{cell.get('predicted_s', 0.0):>12.6f} "
                f"{cell.get('measured_s', 0.0):>12.6f} "
                f"{cell.get('bias_s', 0.0):>+12.6f} "
                f"{cell.get('abs_error_s', 0.0):>12.6f} "
                f"{cell.get('ratio', 0.0):>10.3g}"
            )
    return "\n".join(lines)


def write_calibration(report: Dict[str, Any], path) -> None:
    """Write one calibration report as indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def load_calibration(path) -> Dict[str, Any]:
    """Read a calibration report written by :func:`write_calibration`."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            report = json.load(fh)
        except json.JSONDecodeError as exc:
            raise InvalidInputError(
                f"calibration report {path} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(report, dict) or report.get("schema") != CALIBRATION_SCHEMA:
        raise InvalidInputError(
            f"calibration report {path} is not a {CALIBRATION_SCHEMA} document"
        )
    return report
