"""Terminal scatter plots for the figure benches.

The paper's Figure 6 is a scatter of GFlops against log10(compression
rate) with one panel per method.  The benches print their numbers as
tables; this module adds a compact ASCII scatter rendering so the shape —
the rising trend, the low-CR cluster, the outliers — is visible directly
in the bench output and in ``benchmarks/results/*.txt``, with no plotting
dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["ascii_scatter"]


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 64,
    height: int = 16,
    logx: bool = True,
    title: Optional[str] = None,
    xlabel: str = "x",
    ylabel: str = "y",
    marker: str = "o",
) -> str:
    """Render points as an ASCII scatter plot.

    Parameters
    ----------
    x, y:
        Point coordinates; non-finite or (with ``logx``) non-positive
        points are dropped.
    width, height:
        Plot area in character cells.
    logx:
        Log10-scale the x axis (the paper's compression-rate axis).
    title, xlabel, ylabel:
        Labels.
    marker:
        Character plotted for a point ('#' marks cells holding 2+ points).
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    ok = np.isfinite(x) & np.isfinite(y)
    if logx:
        ok &= x > 0
    x, y = x[ok], y[ok]

    lines: List[str] = []
    if title:
        lines.append(title)
    if x.size == 0:
        lines.append("(no points)")
        return "\n".join(lines)

    px = np.log10(x) if logx else x
    x_lo, x_hi = float(px.min()), float(px.max())
    y_lo, y_hi = float(min(y.min(), 0.0)), float(y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    cols = np.clip(((px - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int), 0, width - 1)
    rows = np.clip(((y - y_lo) / (y_hi - y_lo) * (height - 1)).round().astype(int), 0, height - 1)
    for c, r in zip(cols, rows):
        cell = grid[height - 1 - r][c]
        grid[height - 1 - r][c] = marker if cell == " " else "#"

    y_top = f"{y_hi:.4g}"
    y_bot = f"{y_lo:.4g}"
    label_w = max(len(y_top), len(y_bot), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(label_w)
        elif i == height - 1:
            prefix = y_bot.rjust(label_w)
        elif i == height // 2:
            prefix = ylabel.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_lo_label = f"{10 ** x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi:.3g}" if logx else f"{x_hi:.3g}"
    axis = f"{x_lo_label}{xlabel.center(width - len(x_lo_label) - len(x_hi_label))}{x_hi_label}"
    lines.append(" " * (label_w + 2) + axis)
    return "\n".join(lines)
