"""Runtime-breakdown normalisation (Figures 10 and 14).

Each algorithm times its own phases under names that reflect its structure
(TileSpGEMM: ``step1/step2/step3/malloc``; ESC: ``analysis/expansion/
sorting/compression``; …).  The breakdown figures need comparable buckets,
so this module maps every method's phases onto the paper's four:

* ``step1``  — layout / analysis work before the symbolic phase
* ``step2``  — symbolic (structure-determining) work
* ``step3``  — numeric work
* ``malloc`` — memory allocation

and provides helpers to extract the buckets either from measured wall
time (:func:`measured_breakdown`) or from the GPU cost model's kernel
estimates (:func:`estimated_breakdown`).
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import SpGEMMResult
from repro.gpu.costmodel import GPUEstimate

__all__ = ["BUCKETS", "measured_breakdown", "estimated_breakdown", "fractions"]

#: Canonical bucket order of the paper's Figure 10.
BUCKETS = ("step1", "step2", "step3", "malloc")

#: phase-name -> bucket, across all methods in the repository.
_PHASE_TO_BUCKET: Dict[str, str] = {
    # TileSpGEMM
    "step1": "step1",
    "step2": "step2",
    "step3": "step3",
    "malloc": "malloc",
    "format_conversion": "step1",
    # row-row baselines
    "analysis": "step1",
    "symbolic": "step2",
    "expansion": "step2",
    "sorting": "step3",
    "sort_compress": "step3",
    "compression": "step3",
    "numeric": "step3",
    # tSparse
    "tiling": "step1",
    "densify": "step2",
    "sparsify": "step3",
    "dense_tile_gemm": "step3",
    # misc
    "setup": "malloc",
}


def _bucket(phase: str) -> str:
    try:
        return _PHASE_TO_BUCKET[phase]
    except KeyError:
        raise KeyError(f"phase {phase!r} has no breakdown bucket mapping") from None


def measured_breakdown(result: SpGEMMResult) -> Dict[str, float]:
    """Wall-clock seconds per canonical bucket for one run."""
    out = {b: 0.0 for b in BUCKETS}
    for phase, sec in result.timer.seconds.items():
        out[_bucket(phase)] += sec
    return out


def estimated_breakdown(estimate: GPUEstimate) -> Dict[str, float]:
    """Cost-model seconds per canonical bucket for one estimated run."""
    out = {b: 0.0 for b in BUCKETS}
    for k in estimate.kernels:
        out[_bucket(k.name)] += k.seconds
    out["malloc"] += estimate.malloc_s
    return out


def fractions(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Normalise a bucket dict to fractions of its total (sums to 1)."""
    total = sum(breakdown.values())
    if total <= 0:
        return {k: 0.0 for k in breakdown}
    return {k: v / total for k, v in breakdown.items()}
