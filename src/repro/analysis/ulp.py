"""ULP / relative-error comparison for tier-2 backend conformance.

The fast-math conformance tier (:mod:`repro.backend.base`) keeps result
*structure* byte-identical but lets values drift within a declared
:class:`~repro.backend.base.ValueTolerance`.  This module is the
yardstick: a float comparator that measures error three ways — ULP
distance, absolute, and relative to an *accumulation scale* — and emits
a machine-readable per-array report the conformance harness aggregates
into its JSON artifact.

Why a scale term: reordering a float64 summation of ``n`` products
perturbs the result by up to ``~n·eps·Σ|products|`` — an error bounded
relative to the sum of *magnitudes*, not to the output value.  Under
catastrophic cancellation the output can be arbitrarily smaller than
``Σ|products|``, so plain relative error (and plain ULP distance) is
unbounded there no matter how good the backend is.
:func:`accumulation_scale` computes ``(|A| @ |B|)`` at each stored
output coordinate, which is exactly ``Σ|products|`` for that element;
passing it as ``scale`` makes the tolerance meaningful on the
cancellation corpus cases without loosening it anywhere else.

Non-finite values never pass by tolerance: a NaN/Inf element passes
only if its bit pattern matches the reference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.backend.base import ValueTolerance

__all__ = [
    "STRUCTURE_ARRAYS",
    "VALUE_ARRAY",
    "ValueComparison",
    "ulp_diff",
    "compare_values",
    "accumulation_scale",
    "conformance_report",
]

#: The TileMatrix arrays that must stay byte-identical in *both* tiers
#: (the dense/sparse accumulator split is observable through rowptr and
#: the local index layout, so it is covered by these).
STRUCTURE_ARRAYS = (
    "tileptr",
    "tilecolidx",
    "tilennz",
    "rowptr",
    "rowidx",
    "colidx",
    "mask",
)

#: The one array tier 2 judges by tolerance instead of bytes.
VALUE_ARRAY = "val"

#: ULP distance reported for a non-finite / sign mismatch (and the cap
#: for astronomically distant finite pairs): far beyond any sane bound.
_ULP_HUGE = np.int64(1) << 62


def _lexical_order(values: np.ndarray) -> np.ndarray:
    """Map float64 bit patterns onto a monotonically ordered int64 axis.

    Adjacent representable floats map to adjacent integers, so the
    difference of two mapped values *is* their ULP distance.  Negative
    floats (sign bit set) order in reverse of their magnitude bits,
    hence the reflection.
    """
    bits = np.ascontiguousarray(values, dtype=np.float64).view(np.int64)
    return np.where(bits < 0, -(bits & np.int64(0x7FFFFFFFFFFFFFFF)), bits)


def ulp_diff(ref: np.ndarray, got: np.ndarray) -> np.ndarray:
    """Elementwise ULP distance between two float64 arrays.

    Bit-identical elements (including NaN with the same payload) report
    0.  Pairs where exactly one side is non-finite, or NaNs with
    different patterns, report the :data:`_ULP_HUGE` sentinel — they
    can never pass a ULP threshold.  Distances are clamped to the
    sentinel, so the return value always fits int64 without overflow.
    """
    r = np.asarray(ref, dtype=np.float64)
    g = np.asarray(got, dtype=np.float64)
    lex_r = np.clip(_lexical_order(r), -_ULP_HUGE, _ULP_HUGE)
    lex_g = np.clip(_lexical_order(g), -_ULP_HUGE, _ULP_HUGE)
    d = np.abs(lex_r - lex_g)
    bit_equal = r.view(np.int64) == g.view(np.int64)
    unordered = ~(np.isfinite(r) & np.isfinite(g))
    d = np.where(unordered, _ULP_HUGE, np.minimum(d, _ULP_HUGE))
    return np.where(bit_equal, np.int64(0), d)


@dataclass
class ValueComparison:
    """Machine-readable verdict of one value-array comparison."""

    size: int
    bit_mismatches: int  #: elements whose bit patterns differ at all
    failures: int  #: elements outside the declared tolerance
    max_ulp: int
    mean_ulp: float
    max_abs: float
    max_rel: float  #: worst |got-ref| / max(|ref|, scale)
    worst_index: int  #: flat index of the largest-ULP element (-1 if none)
    tolerance: Dict[str, float] = field(default_factory=dict)
    within: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {
            "size": self.size,
            "bit_mismatches": self.bit_mismatches,
            "failures": self.failures,
            "max_ulp": self.max_ulp,
            "mean_ulp": self.mean_ulp,
            "max_abs": self.max_abs,
            "max_rel": self.max_rel,
            "worst_index": self.worst_index,
            "tolerance": dict(self.tolerance),
            "within": self.within,
        }


def compare_values(
    ref: np.ndarray,
    got: np.ndarray,
    tolerance: ValueTolerance,
    scale: Optional[np.ndarray] = None,
) -> ValueComparison:
    """Judge ``got`` against ``ref`` under a declared tolerance.

    An element passes when its bit pattern matches, its ULP distance is
    at most ``tolerance.max_ulp``, or ``|got-ref| <= atol + rtol *
    max(|ref|, scale)`` — ``scale`` being the per-element accumulation
    magnitude from :func:`accumulation_scale` (broadcastable; omitted
    means the plain relative test).  Shape mismatches fail wholesale.
    """
    r = np.asarray(ref, dtype=np.float64).reshape(-1)
    g = np.asarray(got, dtype=np.float64).reshape(-1)
    tol_dict = tolerance.to_dict()
    if r.shape != g.shape:
        return ValueComparison(
            size=int(r.size),
            bit_mismatches=int(r.size),
            failures=int(max(r.size, g.size, 1)),
            max_ulp=int(_ULP_HUGE),
            mean_ulp=float("inf"),
            max_abs=float("inf"),
            max_rel=float("inf"),
            worst_index=-1,
            tolerance=tol_dict,
            within=False,
        )
    if r.size == 0:
        return ValueComparison(
            size=0, bit_mismatches=0, failures=0, max_ulp=0, mean_ulp=0.0,
            max_abs=0.0, max_rel=0.0, worst_index=-1, tolerance=tol_dict,
        )
    ulp = ulp_diff(r, g)
    bit_equal = ulp == 0
    yard = np.abs(r)
    if scale is not None:
        yard = np.maximum(yard, np.abs(np.asarray(scale, dtype=np.float64)).reshape(-1))
    abs_err = np.where(bit_equal, 0.0, np.abs(g - r))
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(yard > 0, abs_err / yard, np.where(abs_err > 0, np.inf, 0.0))
    # The abs/rel escape applies to finite pairs only: an Inf reference
    # would make ``rtol * yard`` infinite and wave through -Inf or NaN.
    finite_pair = np.isfinite(r) & np.isfinite(g)
    ok = (
        bit_equal
        | (ulp <= tolerance.max_ulp)
        | (finite_pair & (abs_err <= tolerance.atol + tolerance.rtol * yard))
    )
    failures = int(np.count_nonzero(~ok))
    return ValueComparison(
        size=int(r.size),
        bit_mismatches=int(np.count_nonzero(~bit_equal)),
        failures=failures,
        max_ulp=int(ulp.max()),
        mean_ulp=float(ulp.mean()),
        max_abs=float(abs_err.max()),
        max_rel=float(rel.max()),
        worst_index=int(ulp.argmax()) if np.any(~bit_equal) else -1,
        tolerance=tol_dict,
        within=failures == 0,
    )


def _stored_coordinates(c) -> "tuple[np.ndarray, np.ndarray]":
    """Global (row, col) of every stored nonzero of a TileMatrix, in
    storage order — the order of ``c.val``."""
    t = c.tile_size
    elem_tile = c.tile_of_nonzero()
    tile_row = c.tile_rowidx()
    rows = tile_row[elem_tile].astype(np.int64) * t + c.rowidx.astype(np.int64)
    cols = c.tilecolidx[elem_tile].astype(np.int64) * t + c.colidx.astype(np.int64)
    return rows, cols


def accumulation_scale(a, b, c) -> np.ndarray:
    """Per-stored-element ``Σ|a_ik · b_kj|`` for the product ``C = A·B``.

    ``a`` and ``b`` are the input matrices (anything with ``to_dense``,
    or dense arrays); ``c`` the reference result TileMatrix.  The
    returned array aligns with ``c.val`` and is the natural error
    yardstick for any reordered accumulation of the same products.
    Densifies the inputs — corpus-sized matrices only.
    """
    da = np.abs(a.to_dense() if hasattr(a, "to_dense") else np.asarray(a))
    db = np.abs(b.to_dense() if hasattr(b, "to_dense") else np.asarray(b))
    magnitude = da.astype(np.float64) @ db.astype(np.float64)
    rows, cols = _stored_coordinates(c)
    return magnitude[rows, cols]


def conformance_report(
    ref_c,
    got_c,
    tolerance: ValueTolerance,
    scale: Optional[np.ndarray] = None,
    structure_arrays: Sequence[str] = STRUCTURE_ARRAYS,
) -> Dict[str, object]:
    """Full tier-2 verdict for one result pair, JSON-serialisable.

    ``structure`` maps each structural array to byte-identity; ``values``
    is the :class:`ValueComparison` for ``val``; ``ok`` requires both.
    """
    structure: Dict[str, bool] = {}
    for name in structure_arrays:
        r = np.asarray(getattr(ref_c, name))
        g = np.asarray(getattr(got_c, name))
        structure[name] = (
            r.dtype == g.dtype and r.shape == g.shape and r.tobytes() == g.tobytes()
        )
    values = compare_values(
        getattr(ref_c, VALUE_ARRAY), getattr(got_c, VALUE_ARRAY), tolerance, scale
    )
    return {
        "structure": structure,
        "structure_identical": all(structure.values()),
        "values": values.to_dict(),
        "ok": all(structure.values()) and values.within,
    }
