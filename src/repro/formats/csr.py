"""Compressed sparse row (CSR) matrix container and kernels.

CSR is the working format of every row-row baseline in this repository and
the source format of the CSR→tiled conversion the paper times in its
Figure 12.  The class stores the standard three arrays (``indptr``,
``indices``, ``val``) and provides exactly the operations the SpGEMM
algorithms need — nothing is delegated to SciPy, which is used only as a
test oracle.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.formats.coo import COOMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A sparse matrix in compressed sparse row storage.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    indptr:
        ``int64`` array of length ``nrows + 1``; row ``i`` owns the slice
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64`` column indices, sorted within each row.
    val:
        ``float64`` values aligned with ``indices``.
    check:
        When true (default) the invariants above are validated eagerly.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        val: np.ndarray,
        check: bool = True,
    ) -> None:
        self.shape: Tuple[int, int] = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.val = np.ascontiguousarray(val, dtype=np.float64)
        if check:
            self._validate()

    def _validate(self) -> None:
        nrows, ncols = self.shape
        if self.indptr.shape != (nrows + 1,):
            raise ValueError(
                f"indptr must have length nrows+1 = {nrows + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.val.size:
            raise ValueError("indices and val must have identical lengths")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= ncols:
                raise ValueError("column index out of bounds")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Build from COO triplets; duplicates are summed, rows sorted."""
        canon = coo.sum_duplicates()
        nrows = canon.shape[0]
        counts = np.bincount(canon.row, minlength=nrows)
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(canon.shape, indptr, canon.col, canon.val, check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Extract the sparse structure of a dense 2-D array."""
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Import from any SciPy sparse matrix (test/interop helper)."""
        m = mat.tocsr().sorted_indices()
        m.sum_duplicates()
        return cls(m.shape, m.indptr.astype(np.int64), m.indices.astype(np.int64), m.data.astype(np.float64))

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n-by-n identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, np.ones(n), check=False)

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        return cls(
            shape,
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            check=False,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row (length ``nrows``)."""
        return np.diff(self.indptr)

    def memory_bytes(self, index_bytes: int = 4, value_bytes: int = 8) -> int:
        """Space cost in bytes as the paper accounts it for Figure 11.

        The paper's CSR baseline stores 32-bit indices and 64-bit values,
        hence the defaults: ``(nrows+1 + nnz) * 4 + nnz * 8``.
        """
        return int((self.indptr.size + self.nnz) * index_bytes + self.nnz * value_bytes)

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(columns, values)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.val[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, columns, values)`` for every row."""
        for i in range(self.nrows):
            cols, vals = self.row(i)
            yield i, cols, vals

    def row_indices_expanded(self) -> np.ndarray:
        """Per-nonzero row index array (the COO ``row`` of this matrix)."""
        return np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_lengths())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """Return ``A^T`` in CSR form (a counting-sort transpose, O(nnz))."""
        nrows, ncols = self.shape
        counts = np.bincount(self.indices, minlength=ncols)
        indptr_t = np.zeros(ncols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_t[1:])
        # Stable sort by column gives the transpose's row-major order with
        # original rows (the transpose's columns) sorted within each row.
        order = np.argsort(self.indices, kind="stable")
        indices_t = self.row_indices_expanded()[order]
        val_t = self.val[order]
        return CSRMatrix((ncols, nrows), indptr_t, indices_t, val_t, check=False)

    def to_coo(self) -> COOMatrix:
        """Convert to COO triplets."""
        return COOMatrix(self.shape, self.row_indices_expanded(), self.indices, self.val)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self.row_indices_expanded(), self.indices] = self.val
        return dense

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (for test oracles)."""
        import scipy.sparse as sp

        return sp.csr_matrix((self.val, self.indices, self.indptr), shape=self.shape)

    def submatrix(self, row_range, col_range) -> "CSRMatrix":
        """Extract the dense index range ``[r0, r1) x [c0, c1)`` as a CSR block.

        Used by the distributed-SpGEMM extension to slice the owner blocks
        of a 2-D process grid; indices in the result are block-local.
        """
        r0, r1 = int(row_range[0]), int(row_range[1])
        c0, c1 = int(col_range[0]), int(col_range[1])
        if not (0 <= r0 <= r1 <= self.nrows and 0 <= c0 <= c1 <= self.ncols):
            raise ValueError("sub-matrix range out of bounds")
        lo, hi = self.indptr[r0], self.indptr[r1]
        cols = self.indices[lo:hi]
        keep = (cols >= c0) & (cols < c1)
        kept_csum = np.zeros(hi - lo + 1, dtype=np.int64)
        np.cumsum(keep, out=kept_csum[1:])
        indptr = kept_csum[self.indptr[r0 : r1 + 1] - lo]
        return CSRMatrix(
            (r1 - r0, c1 - c0),
            indptr,
            cols[keep] - c0,
            self.val[lo:hi][keep],
            check=False,
        )

    def prune(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop entries with ``abs(value) <= tol``, keeping structure valid."""
        keep = np.abs(self.val) > tol
        kept_csum = np.zeros(self.nnz + 1, dtype=np.int64)
        np.cumsum(keep, out=kept_csum[1:])
        indptr = kept_csum[self.indptr]
        return CSRMatrix(self.shape, indptr, self.indices[keep], self.val[keep], check=False)

    def scale_rows(self, scale: np.ndarray) -> "CSRMatrix":
        """Return ``diag(scale) @ A`` without changing the pattern."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.nrows,):
            raise ValueError("scale must have one entry per row")
        val = self.val * np.repeat(scale, self.row_lengths())
        return CSRMatrix(self.shape, self.indptr, self.indices, val, check=False)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def allclose(self, other: "CSRMatrix", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Numerically compare two matrices, ignoring explicit zeros.

        Patterns may differ by explicitly stored zeros (SpGEMM methods
        legitimately disagree about keeping cancelled entries), so the
        comparison is done on pruned canonical forms.
        """
        if self.shape != other.shape:
            return False
        a = self.prune(atol)
        b = other.prune(atol)
        if a.nnz != b.nnz:
            return False
        if not np.array_equal(a.indptr, b.indptr):
            return False
        if not np.array_equal(a.indices, b.indices):
            return False
        return bool(np.allclose(a.val, b.val, rtol=rtol, atol=atol))

    def pattern_equal(self, other: "CSRMatrix") -> bool:
        """True when both matrices store exactly the same positions."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
