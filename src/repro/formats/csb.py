"""Compressed Sparse Blocks (CSB) formats for the Figure 11 comparison.

The paper compares its tiled format's space cost against standard CSR and
against two compressed-sparse-block variants, *CSB-M* and *CSB-I*, from
Buluc et al.'s Combinatorial BLAS.  CSB partitions the matrix into
``beta``-by-``beta`` blocks and stores each nonzero's indices *relative to
its block*, so the per-nonzero index cost drops from one full-width column
index (CSR) to ``2 * ceil(log2 beta)`` bits.

The two variants differ in how block locations themselves are stored:

* **CSB-M** keeps a dense block-pointer grid: one offset per block position
  (``nblockrows * nblockcols + 1`` words).  Cheap when most blocks are
  occupied; the grid itself is the only overhead.
* **CSB-I** keeps an indexed list of the *non-empty* blocks only (block id
  plus offset per non-empty block), like a CSR over blocks.  Cheap for
  hypersparse matrices where most blocks are empty.

Both variants pack a nonzero's two local indices into a single smallest
machine word (Morton-style), exactly as the CombBLAS implementation packs
its ``lowbits``.  This module implements both variants with exact byte
accounting; the numeric payload is kept so the format round-trips, which
the tests rely on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.formats.coo import COOMatrix

__all__ = ["CSBMatrix", "default_block_size"]


def default_block_size(shape: Tuple[int, int]) -> int:
    """The CSB heuristic block size: a power of two near ``sqrt(n)``.

    Buluc et al. pick ``beta`` so the block count and block size balance;
    we round ``sqrt(max_dim)`` to the nearest power of two, clamped to
    [16, 65536].
    """
    n = max(int(shape[0]), int(shape[1]), 1)
    beta = 1 << max(int(round(np.log2(max(np.sqrt(n), 1.0)))), 0)
    return int(min(max(beta, 16), 1 << 16))


def _local_index_dtype(beta: int) -> np.dtype:
    """Smallest unsigned dtype holding a packed pair of local indices."""
    bits_per_dim = max(int(np.ceil(np.log2(beta))), 1)
    packed_bits = 2 * bits_per_dim
    if packed_bits <= 8:
        return np.dtype(np.uint8)
    if packed_bits <= 16:
        return np.dtype(np.uint16)
    if packed_bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


class CSBMatrix:
    """A sparse matrix in compressed-sparse-blocks storage.

    Parameters
    ----------
    coo:
        Source matrix (duplicates are summed).
    beta:
        Block edge length (power of two).  Defaults to
        :func:`default_block_size`.
    variant:
        ``"M"`` for the dense block-pointer grid, ``"I"`` for the indexed
        non-empty-block list.
    """

    def __init__(self, coo: COOMatrix, beta: int | None = None, variant: str = "M") -> None:
        if variant not in ("M", "I"):
            raise ValueError(f"variant must be 'M' or 'I', got {variant!r}")
        canon = coo.sum_duplicates()
        self.shape = canon.shape
        self.variant = variant
        self.beta = int(beta) if beta is not None else default_block_size(canon.shape)
        if self.beta <= 0 or (self.beta & (self.beta - 1)) != 0:
            raise ValueError(f"beta must be a positive power of two, got {self.beta}")

        self.nblockrows = -(-self.shape[0] // self.beta) if self.shape[0] else 0
        self.nblockcols = -(-self.shape[1] // self.beta) if self.shape[1] else 0

        shift = int(np.log2(self.beta))
        brow = canon.row >> shift
        bcol = canon.col >> shift
        lrow = (canon.row & (self.beta - 1)).astype(np.uint64)
        lcol = (canon.col & (self.beta - 1)).astype(np.uint64)

        block_id = brow * max(self.nblockcols, 1) + bcol
        order = np.argsort(block_id, kind="stable")
        self._block_id_sorted = block_id[order]
        bits = max(int(np.ceil(np.log2(self.beta))), 1)
        packed = (lrow[order] << np.uint64(bits)) | lcol[order]
        self.local = packed.astype(_local_index_dtype(self.beta))
        self.val = canon.val[order]

        nblocks_total = self.nblockrows * self.nblockcols
        if variant == "M":
            # Dense grid of offsets: blockptr[b] .. blockptr[b+1] delimits
            # block b's nonzeros in the sorted arrays.
            counts = np.bincount(self._block_id_sorted, minlength=nblocks_total) if canon.nnz else np.zeros(nblocks_total, dtype=np.int64)
            self.blockptr = np.zeros(nblocks_total + 1, dtype=np.int64)
            np.cumsum(counts, out=self.blockptr[1:])
            self.block_ids = None
        else:
            # Indexed list of non-empty blocks only.
            if canon.nnz:
                ids, counts = np.unique(self._block_id_sorted, return_counts=True)
            else:
                ids = np.empty(0, dtype=np.int64)
                counts = np.empty(0, dtype=np.int64)
            self.block_ids = ids
            self.blockptr = np.zeros(ids.size + 1, dtype=np.int64)
            np.cumsum(counts, out=self.blockptr[1:])

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.val.size)

    @property
    def num_nonempty_blocks(self) -> int:
        """Count of blocks containing at least one nonzero."""
        if self.variant == "I":
            return int(self.block_ids.size)
        return int(np.count_nonzero(np.diff(self.blockptr)))

    def memory_bytes(self, pointer_bytes: int = 4, value_bytes: int = 8) -> int:
        """Exact space cost in bytes under the paper's accounting.

        Block pointers/ids use 32-bit words (matching the paper's CSR
        accounting), local packed indices use their true storage width, and
        values use ``value_bytes``.
        """
        idx_bytes = self.local.dtype.itemsize * self.nnz
        val_bytes = value_bytes * self.nnz
        if self.variant == "M":
            struct_bytes = pointer_bytes * (self.nblockrows * self.nblockcols + 1)
        else:
            struct_bytes = pointer_bytes * (2 * self.block_ids.size + 1)
        return int(idx_bytes + val_bytes + struct_bytes)

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        """Reconstruct the COO triplets (round-trip support)."""
        bits = max(int(np.ceil(np.log2(self.beta))), 1)
        packed = self.local.astype(np.uint64)
        lrow = (packed >> np.uint64(bits)).astype(np.int64)
        lcol = (packed & np.uint64((1 << bits) - 1)).astype(np.int64)
        if self.variant == "M":
            nblocks_total = self.nblockrows * self.nblockcols
            lengths = np.diff(self.blockptr)
            block_of_nnz = np.repeat(np.arange(nblocks_total, dtype=np.int64), lengths)
        else:
            lengths = np.diff(self.blockptr)
            block_of_nnz = np.repeat(self.block_ids, lengths)
        nbc = max(self.nblockcols, 1)
        brow = block_of_nnz // nbc
        bcol = block_of_nnz % nbc
        row = brow * self.beta + lrow
        col = bcol * self.beta + lcol
        return COOMatrix(self.shape, row, col, self.val)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (via COO)."""
        return self.to_coo().to_dense()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSBMatrix(shape={self.shape}, nnz={self.nnz}, beta={self.beta}, "
            f"variant={self.variant!r})"
        )
