"""Sparse-matrix format substrate.

The paper's system sits on top of standard sparse storage: matrices arrive
in CSR (converted from MatrixMarket files), are compared for space against
the CSB-M / CSB-I compressed-sparse-block formats of Buluc et al., and are
converted into the paper's tiled format (which lives in :mod:`repro.core`).

This package implements that substrate from scratch on NumPy arrays:

* :class:`~repro.formats.coo.COOMatrix` — coordinate triplets, the exchange
  format used by the MatrixMarket reader and by format converters.
* :class:`~repro.formats.csr.CSRMatrix` — compressed sparse row storage with
  the kernels the algorithms need (transpose, row slicing, duplicate
  summing, dense conversion, exact byte accounting).
* :class:`~repro.formats.csb.CSBMatrix` — compressed sparse blocks in the
  two index-compression variants the paper benchmarks (CSB-M, CSB-I) for
  the Figure 11 space comparison.
* :mod:`~repro.formats.mtx` — MatrixMarket (``*.mtx``) reader/writer, the
  paper artifact's only input format.
"""

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csb import CSBMatrix
from repro.formats.mtx import read_mtx, write_mtx

__all__ = ["COOMatrix", "CSRMatrix", "CSBMatrix", "read_mtx", "write_mtx"]
