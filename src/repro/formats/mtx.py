"""MatrixMarket (``*.mtx``) reader and writer.

The paper's artifact consumes matrices exclusively in MatrixMarket
coordinate format downloaded from the SuiteSparse collection, so this
module implements the subset of the format that collection uses:

* ``matrix coordinate real|integer|pattern general|symmetric|skew-symmetric``
* comment lines starting with ``%``
* 1-based indices

``pattern`` entries get value 1.0, ``symmetric`` and ``skew-symmetric``
storage is expanded to the full matrix (off-diagonal mirror entries added,
negated for skew), matching what every SpGEMM library does on load.
"""

from __future__ import annotations

import io
import os
from typing import Union

import numpy as np

from repro.errors import InvalidInputError
from repro.formats.coo import COOMatrix

__all__ = ["read_mtx", "write_mtx"]

_SUPPORTED_FIELDS = {"real", "integer", "pattern", "double"}
_SUPPORTED_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_mtx(path_or_file: Union[str, os.PathLike, io.IOBase]) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a :class:`COOMatrix`.

    Parameters
    ----------
    path_or_file:
        File path or an open text-mode file object.

    Raises
    ------
    InvalidInputError
        On malformed headers, unsupported qualifiers (``complex``,
        ``hermitian``, ``array``), unparseable entries or out-of-range
        indices (a ``ValueError`` subclass, so old callers keep working).
    """
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "r", encoding="utf-8") as fh:
            return _read_stream(fh)
    return _read_stream(path_or_file)


def _read_stream(fh) -> COOMatrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise InvalidInputError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5:
        raise InvalidInputError(f"malformed header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = parts[:5]
    obj, fmt, field, symmetry = (s.lower() for s in (obj, fmt, field, symmetry))
    if obj != "matrix" or fmt != "coordinate":
        raise InvalidInputError(f"unsupported MatrixMarket object/format: {obj} {fmt}")
    if field not in _SUPPORTED_FIELDS:
        raise InvalidInputError(f"unsupported field type: {field}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise InvalidInputError(f"unsupported symmetry: {symmetry}")

    # Skip comments and blank lines to the size line.
    line = fh.readline()
    while line and (line.startswith("%") or not line.strip()):
        line = fh.readline()
    if not line:
        raise InvalidInputError("missing size line")
    size_parts = line.split()
    if len(size_parts) != 3:
        raise InvalidInputError(f"malformed size line: {line.strip()!r}")
    try:
        nrows, ncols, nnz = (int(p) for p in size_parts)
    except ValueError:
        raise InvalidInputError(f"non-integer size line: {line.strip()!r}") from None

    is_pattern = field == "pattern"
    body = fh.read()
    if nnz == 0:
        return COOMatrix((nrows, ncols), np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0))
    try:
        table = np.loadtxt(io.StringIO(body), ndmin=2, comments="%")
    except ValueError as exc:
        raise InvalidInputError(f"unparseable entry lines: {exc}") from None
    if table.shape[0] != nnz:
        raise InvalidInputError(f"expected {nnz} entries, file contains {table.shape[0]}")
    expected_cols = 2 if is_pattern else 3
    if table.shape[1] < expected_cols:
        raise InvalidInputError("entry lines have too few columns")
    row = table[:, 0].astype(np.int64) - 1
    col = table[:, 1].astype(np.int64) - 1
    val = np.ones(nnz, dtype=np.float64) if is_pattern else table[:, 2].astype(np.float64)

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = row != col
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        row, col = (
            np.concatenate([row, col[off_diag]]),
            np.concatenate([col, row[off_diag]]),
        )
        val = np.concatenate([val, sign * val[off_diag]])

    return COOMatrix((nrows, ncols), row, col, val)


def write_mtx(path_or_file: Union[str, os.PathLike, io.IOBase], matrix, comment: str = "") -> None:
    """Write a matrix (COO or CSR) as ``matrix coordinate real general``.

    Parameters
    ----------
    path_or_file:
        Destination path or open text-mode file object.
    matrix:
        A :class:`COOMatrix` or anything with ``to_coo()``.
    comment:
        Optional comment text emitted as ``%`` lines after the header.
    """
    coo = matrix if isinstance(matrix, COOMatrix) else matrix.to_coo()
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            _write_stream(fh, coo, comment)
    else:
        _write_stream(path_or_file, coo, comment)


def _write_stream(fh, coo: COOMatrix, comment: str) -> None:
    fh.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    fh.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
    chunks = []
    for r, c, v in zip(coo.row + 1, coo.col + 1, coo.val):
        chunks.append(f"{r} {c} {v:.17g}\n")
    fh.write("".join(chunks))
