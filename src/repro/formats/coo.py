"""Coordinate (COO) sparse matrix container.

COO is the exchange format of this library: the MatrixMarket reader
produces it, the synthetic workload generators produce it, and every other
format converts from/to it.  It stores three parallel arrays ``row``,
``col`` and ``val``; duplicates are permitted until
:meth:`COOMatrix.sum_duplicates` is called.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix stored as (row, col, value) triplets.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)`` of the matrix.
    row, col:
        Integer index arrays of equal length.  Stored as ``int64``.
    val:
        Values array of the same length.  Stored as ``float64`` unless
        another floating dtype is passed explicitly.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        row: np.ndarray,
        col: np.ndarray,
        val: np.ndarray,
    ) -> None:
        nrows, ncols = int(shape[0]), int(shape[1])
        if nrows < 0 or ncols < 0:
            raise ValueError(f"negative matrix dimensions: {shape}")
        self.shape: Tuple[int, int] = (nrows, ncols)
        self.row = np.ascontiguousarray(row, dtype=np.int64)
        self.col = np.ascontiguousarray(col, dtype=np.int64)
        self.val = np.ascontiguousarray(val)
        if self.val.dtype.kind != "f":
            self.val = self.val.astype(np.float64)
        if not (self.row.shape == self.col.shape == self.val.shape):
            raise ValueError("row, col and val must have identical lengths")
        if self.row.size:
            if self.row.min() < 0 or self.row.max() >= nrows:
                raise ValueError("row index out of bounds")
            if self.col.min() < 0 or self.col.max() >= ncols:
                raise ValueError("column index out of bounds")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: Tuple[int, int], dtype=np.float64) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.empty(0, dtype=np.int64)
        return cls(shape, z, z.copy(), np.empty(0, dtype=dtype))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Extract the nonzero pattern and values of a dense 2-D array."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        row, col = np.nonzero(dense)
        return cls(dense.shape, row, col, dense[row, col])

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (including any duplicates)."""
        return int(self.val.size)

    @property
    def dtype(self) -> np.dtype:
        return self.val.dtype

    def memory_bytes(self) -> int:
        """Exact bytes of the index and value arrays."""
        return int(self.row.nbytes + self.col.nbytes + self.val.nbytes)

    # ------------------------------------------------------------------
    # Canonicalisation
    # ------------------------------------------------------------------
    def sum_duplicates(self) -> "COOMatrix":
        """Return a copy with duplicate coordinates summed and sorted.

        Entries are sorted row-major.  Entries whose duplicates cancel to
        exactly zero are *kept* (as explicit zeros), matching the usual
        Sparse BLAS convention that SpGEMM does not perform numerical
        cancellation detection.
        """
        if self.nnz == 0:
            return COOMatrix(self.shape, self.row, self.col, self.val)
        order = np.lexsort((self.col, self.row))
        row, col, val = self.row[order], self.col[order], self.val[order]
        key_changes = np.empty(row.size, dtype=bool)
        key_changes[0] = True
        np.not_equal(row[1:], row[:-1], out=key_changes[1:])
        np.logical_or(key_changes[1:], col[1:] != col[:-1], out=key_changes[1:])
        starts = np.flatnonzero(key_changes)
        summed = np.add.reduceat(val, starts)
        return COOMatrix(self.shape, row[starts], col[starts], summed)

    def prune(self, tol: float = 0.0) -> "COOMatrix":
        """Drop entries with ``abs(value) <= tol``."""
        keep = np.abs(self.val) > tol
        return COOMatrix(self.shape, self.row[keep], self.col[keep], self.val[keep])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "COOMatrix":
        """Return the transpose (swaps row/col arrays; O(nnz))."""
        return COOMatrix((self.shape[1], self.shape[0]), self.col, self.row, self.val)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float array (sums duplicates)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.row, self.col), self.val)
        return dense

    def to_csr(self):
        """Convert to :class:`repro.formats.csr.CSRMatrix`."""
        from repro.formats.csr import CSRMatrix

        return CSRMatrix.from_coo(self)

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` (for test oracles)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.val, (self.row, self.col)), shape=self.shape
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"
        )
