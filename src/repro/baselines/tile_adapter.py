"""Registry adapters running TileSpGEMM under the common baseline API.

The benches iterate over all methods through the
:mod:`repro.baselines.base` registry; these adapters wrap
:func:`repro.core.tilespgemm.tile_spgemm` (and its sharded parallel
variant, :func:`repro.runtime.parallel.parallel_tile_spgemm`) so
TileSpGEMM appears alongside the baselines with the same CSR-in /
CSR-out signature, while preserving its richer statistics and the tiled
result.

Registered methods:

* ``tilespgemm`` — the serial three-step algorithm;
* ``tilespgemm_par2`` / ``tilespgemm_par4`` — the sharded engine on a
  2- / 4-worker thread pool (byte-identical output; the parallel scaling
  suite benchmarks these against the serial method);
* ``tilespgemm_planned`` — the estimation-driven planner
  (:func:`repro.runtime.planner.plan_execution`) choosing the whole
  configuration per run; the planning cost is deliberately *inside* the
  timed region, so the ``planner`` bench suite's comparison against the
  static methods is honest about overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import SpGEMMResult, register
from repro.core.tile_matrix import TILE, TileMatrix
from repro.core.tilespgemm import tile_spgemm
from repro.formats.csr import CSRMatrix

__all__ = [
    "tilespgemm_adapter",
    "tilespgemm_par2_adapter",
    "tilespgemm_par4_adapter",
    "tilespgemm_planned_adapter",
]


def _run_adapter(method: str, engine, a, b, tile_size, a_tiled, b_tiled, kwargs):
    """Common adapter body: tile CSR inputs (outside the engine's timed
    phases when pre-tiled operands are passed, matching the paper's
    resident-format assumption), run ``engine``, adapt the result.

    A ``backend=`` entry in ``kwargs`` (registered kernel-backend name or
    :class:`~repro.backend.KernelSet`) flows through to the engine; the
    engine records the resolved name in ``stats["backend"]``, so bench
    documents and the conformance suite can see which kernels ran."""
    timer_extra = None
    if a_tiled is None or b_tiled is None:
        from repro.util.timing import PhaseTimer

        timer_extra = PhaseTimer()
        with timer_extra.phase("format_conversion"):
            if a_tiled is None:
                a_tiled = TileMatrix.from_csr(a, tile_size)
            if b_tiled is None:
                b_tiled = a_tiled if b is a else TileMatrix.from_csr(b, tile_size)
    result = engine(a_tiled, b_tiled, **kwargs)
    if timer_extra is not None:
        result.timer.merge(timer_extra)
    c_csr = result.c.to_csr()
    out = SpGEMMResult(
        c=c_csr,
        method=method,
        timer=result.timer,
        alloc=result.alloc,
        stats=dict(result.stats),
    )
    out.stats["c_tiled"] = result.c
    out.stats["tile_result"] = result
    return out


@register("tilespgemm")
def tilespgemm_adapter(
    a: CSRMatrix,
    b: CSRMatrix,
    tile_size: int = TILE,
    a_tiled: Optional[TileMatrix] = None,
    b_tiled: Optional[TileMatrix] = None,
    backend=None,
    **kwargs,
) -> SpGEMMResult:
    """Run TileSpGEMM on CSR inputs and report an :class:`SpGEMMResult`.

    The tiled-format conversion happens outside the timed phases when
    pre-tiled inputs are passed (``a_tiled``/``b_tiled``), matching the
    paper's assumption that matrices already live in the tiled format;
    otherwise the conversion is recorded as the ``format_conversion``
    phase (Figure 12's quantity).  ``backend`` selects the kernel
    backend (see :mod:`repro.backend`); ``None`` keeps the ambient
    default, so suites that sweep backends via
    :func:`repro.backend.use_backend` cover this adapter too.
    """
    if backend is not None:
        kwargs["backend"] = backend
    return _run_adapter("tilespgemm", tile_spgemm, a, b, tile_size, a_tiled, b_tiled, kwargs)


def _make_parallel_adapter(workers: int):
    method = f"tilespgemm_par{workers}"

    @register(method)
    def adapter(
        a: CSRMatrix,
        b: CSRMatrix,
        tile_size: int = TILE,
        a_tiled: Optional[TileMatrix] = None,
        b_tiled: Optional[TileMatrix] = None,
        backend=None,
        **kwargs,
    ) -> SpGEMMResult:
        from repro.runtime.parallel import parallel_tile_spgemm

        if backend is not None:
            kwargs["backend"] = backend

        def engine(at, bt, **kw):
            return parallel_tile_spgemm(at, bt, workers=workers, **kw)

        return _run_adapter(method, engine, a, b, tile_size, a_tiled, b_tiled, kwargs)

    adapter.__name__ = f"tilespgemm_par{workers}_adapter"
    adapter.__doc__ = (
        f"TileSpGEMM on a {workers}-worker thread pool "
        "(sharded engine; output byte-identical to ``tilespgemm``)."
    )
    return adapter


tilespgemm_par2_adapter = _make_parallel_adapter(2)
tilespgemm_par4_adapter = _make_parallel_adapter(4)


@register("tilespgemm_planned")
def tilespgemm_planned_adapter(
    a: CSRMatrix,
    b: CSRMatrix,
    tile_size: int = TILE,
    a_tiled: Optional[TileMatrix] = None,
    b_tiled: Optional[TileMatrix] = None,
    backend=None,
    **kwargs,
) -> SpGEMMResult:
    """TileSpGEMM under an estimation-driven plan (adaptive execution).

    Derives an :class:`~repro.runtime.planner.ExecutionPlan` per call —
    worker count, executor, cost-weighted shard boundaries, accumulator
    threshold, backend — and runs the sharded engine under it.  The
    planning pass runs inside the timed region so benchmark comparisons
    charge its cost; the plan lands in ``stats["plan"]`` (and the
    ambient workload profiler), letting ``obs profile`` attribute wins.
    """
    from repro.runtime.parallel import parallel_tile_spgemm
    from repro.runtime.planner import plan_execution

    if backend is not None:
        kwargs["backend"] = backend

    def engine(at, bt, **kw):
        plan = plan_execution(at, bt, backend=kw.get("backend"))
        return parallel_tile_spgemm(at, bt, plan=plan, **kw)

    return _run_adapter(
        "tilespgemm_planned", engine, a, b, tile_size, a_tiled, b_tiled, kwargs
    )
