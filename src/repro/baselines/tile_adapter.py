"""Registry adapter running TileSpGEMM under the common baseline API.

The benches iterate over all methods through the
:mod:`repro.baselines.base` registry; this adapter wraps
:func:`repro.core.tilespgemm.tile_spgemm` so TileSpGEMM appears alongside
the baselines with the same CSR-in / CSR-out signature, while preserving
its richer statistics and the tiled result.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import SpGEMMResult, register
from repro.core.tile_matrix import TILE, TileMatrix
from repro.core.tilespgemm import tile_spgemm
from repro.formats.csr import CSRMatrix

__all__ = ["tilespgemm_adapter"]


@register("tilespgemm")
def tilespgemm_adapter(
    a: CSRMatrix,
    b: CSRMatrix,
    tile_size: int = TILE,
    a_tiled: Optional[TileMatrix] = None,
    b_tiled: Optional[TileMatrix] = None,
    **kwargs,
) -> SpGEMMResult:
    """Run TileSpGEMM on CSR inputs and report an :class:`SpGEMMResult`.

    The tiled-format conversion happens outside the timed phases when
    pre-tiled inputs are passed (``a_tiled``/``b_tiled``), matching the
    paper's assumption that matrices already live in the tiled format;
    otherwise the conversion is recorded as the ``format_conversion``
    phase (Figure 12's quantity).
    """
    timer_extra = None
    if a_tiled is None or b_tiled is None:
        from repro.util.timing import PhaseTimer

        timer_extra = PhaseTimer()
        with timer_extra.phase("format_conversion"):
            if a_tiled is None:
                a_tiled = TileMatrix.from_csr(a, tile_size)
            if b_tiled is None:
                b_tiled = TileMatrix.from_csr(b, tile_size)
    result = tile_spgemm(a_tiled, b_tiled, **kwargs)
    if timer_extra is not None:
        result.timer.merge(timer_extra)
    c_csr = result.c.to_csr()
    out = SpGEMMResult(
        c=c_csr,
        method="tilespgemm",
        timer=result.timer,
        alloc=result.alloc,
        stats=dict(result.stats),
    )
    out.stats["c_tiled"] = result.c
    out.stats["tile_result"] = result
    return out
