"""Common result type and registry for all SpGEMM implementations.

The paper compares TileSpGEMM against five libraries; this repository
implements each library's *strategy* from scratch (see DESIGN.md for the
mapping).  Every implementation — baselines and TileSpGEMM alike — reports
through the same :class:`SpGEMMResult` shape so the benches can iterate
over methods generically.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = [
    "SpGEMMResult",
    "register",
    "get_algorithm",
    "available_algorithms",
    "flops_of_product",
    "notify_step",
]


def _current_obs():
    """The active observability context, or ``None``.

    Looked up through ``sys.modules`` (the same idiom ``notify_step``
    uses for the runtime context): if :mod:`repro.obs` was never
    imported, nobody can have enabled tracing, and the baselines stay
    importable without it.
    """
    mod = sys.modules.get("repro.obs.context")
    if mod is None:
        return None
    obs = mod.current_obs()
    return obs if obs.enabled else None


#: Per-call phase-span holders (one per live instrumented kernel call,
#: innermost last), driven by the ``notify_step`` markers every baseline
#: already emits — hooking this module once gives all eight baselines
#: per-kernel-phase spans without touching them.
_PHASE_SPANS: list = []


def notify_step(name: str) -> None:
    """Report entering kernel phase ``name`` to the active fault plan.

    A no-op unless the caller runs inside a
    :func:`repro.runtime.context.execution_context` with a fault plan —
    looked up through ``sys.modules`` so the baselines stay importable
    without the runtime package.  The plan may raise a typed error here;
    that is the injection point the resilience tests use.

    When an observability context is active *and* the call happens inside
    a registered algorithm, the marker also rotates the current
    kernel-phase span: the previous phase's span is closed and one named
    ``name`` is opened (closed at the latest when the algorithm returns).
    """
    if _PHASE_SPANS:
        holder = _PHASE_SPANS[-1]
        if holder["cm"] is not None:
            holder["cm"].__exit__(None, None, None)
            holder["cm"] = None
        obs = _current_obs()
        if obs is not None:
            cm = obs.tracer.span(name, cat="kernel.phase", method=holder["method"])
            cm.__enter__()
            holder["cm"] = cm
    mod = sys.modules.get("repro.runtime.context")
    if mod is not None:
        mod.note_step(name)


@dataclass
class SpGEMMResult:
    """Outcome of one SpGEMM run of any method.

    Attributes
    ----------
    c:
        The product in CSR form.
    method:
        Registry name of the algorithm that produced it.
    timer:
        Wall-clock seconds per phase (phase names are method-specific but
        always include ``numeric``; ``malloc`` collects allocation time).
    alloc:
        Logical device-memory ledger (drives the Figure 9 bench).
    stats:
        Cost-model inputs: per-row/per-tile work arrays and scalar counts.
        Common keys: ``flops``, ``num_products``, ``nnz_c``.
    """

    c: CSRMatrix
    method: str
    timer: PhaseTimer
    alloc: AllocationTracker
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def flops(self) -> int:
        """Floating point operations (2x intermediate products)."""
        return int(self.stats.get("flops", 0))

    def gflops(self, seconds: Optional[float] = None) -> float:
        """Throughput in GFlops for the given (default: measured) time."""
        t = self.timer.total if seconds is None else seconds
        return self.flops / t / 1e9 if t > 0 else 0.0


_REGISTRY: Dict[str, Callable[..., SpGEMMResult]] = {}


def _instrumented(name: str, fn: Callable[..., SpGEMMResult]) -> Callable[..., SpGEMMResult]:
    """Wrap a registered algorithm with the observability hooks.

    One wrapper at the registry — not eight edits in the baselines —
    gives every method a ``spgemm:<name>`` span, per-phase child spans
    (rotated by :func:`notify_step`) and the common result counters.
    Disabled observability costs one ``sys.modules`` lookup per call.
    """
    import functools

    @functools.wraps(fn)
    def run(a, b, *args, **kwargs):
        obs = _current_obs()
        if obs is None:
            return fn(a, b, *args, **kwargs)
        holder = {"cm": None, "method": name}
        _PHASE_SPANS.append(holder)
        try:
            with obs.tracer.span(
                "spgemm:" + name,
                cat="kernel",
                nnz_a=int(getattr(a, "nnz", 0)),
                nnz_b=int(getattr(b, "nnz", 0)),
            ):
                try:
                    result = fn(a, b, *args, **kwargs)
                finally:
                    # Close the last rotated phase span *inside* the
                    # kernel span, so spans unwind strictly LIFO even
                    # when the algorithm (or an injected fault) raises.
                    if holder["cm"] is not None:
                        holder["cm"].__exit__(None, None, None)
                        holder["cm"] = None
        finally:
            _PHASE_SPANS.pop()
        metrics = obs.metrics
        metrics.inc("spgemm_calls_total", method=name)
        metrics.inc("spgemm_products_total", int(result.stats.get("num_products", 0)), method=name)
        metrics.inc("spgemm_nnz_c_total", int(result.stats.get("nnz_c", 0)), method=name)
        return result

    return run


def register(name: str):
    """Class/function decorator adding an algorithm to the registry.

    The callable must accept ``(a: CSRMatrix, b: CSRMatrix, **kwargs)`` and
    return an :class:`SpGEMMResult`.  The registry entry is wrapped with
    the observability hooks (span + counters per call) once, here — the
    decorated function itself is returned unwrapped, so direct imports
    behave exactly as written.
    """

    def wrap(fn):
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} registered twice")
        _REGISTRY[name] = _instrumented(name, fn)
        return fn

    return wrap


def get_algorithm(name: str) -> Callable[..., SpGEMMResult]:
    """Look up a registered SpGEMM implementation by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown SpGEMM algorithm {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_algorithms() -> tuple:
    """Names of all registered algorithms, sorted."""
    return tuple(sorted(_REGISTRY))


def flops_of_product(a: CSRMatrix, b: CSRMatrix) -> int:
    """Flop count of ``A @ B``: ``2 * sum_k nnz(a_*k) * nnz(b_k*)``.

    This is the paper's ``#flops`` (Table 2): two operations (multiply and
    add) per intermediate product.
    """
    b_row_len = np.diff(b.indptr)
    return int(2 * b_row_len[a.indices].sum()) if a.nnz else 0
