"""Common result type and registry for all SpGEMM implementations.

The paper compares TileSpGEMM against five libraries; this repository
implements each library's *strategy* from scratch (see DESIGN.md for the
mapping).  Every implementation — baselines and TileSpGEMM alike — reports
through the same :class:`SpGEMMResult` shape so the benches can iterate
over methods generically.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = [
    "SpGEMMResult",
    "register",
    "get_algorithm",
    "available_algorithms",
    "flops_of_product",
    "notify_step",
]


def notify_step(name: str) -> None:
    """Report entering kernel phase ``name`` to the active fault plan.

    A no-op unless the caller runs inside a
    :func:`repro.runtime.context.execution_context` with a fault plan —
    looked up through ``sys.modules`` so the baselines stay importable
    without the runtime package.  The plan may raise a typed error here;
    that is the injection point the resilience tests use.
    """
    mod = sys.modules.get("repro.runtime.context")
    if mod is not None:
        mod.note_step(name)


@dataclass
class SpGEMMResult:
    """Outcome of one SpGEMM run of any method.

    Attributes
    ----------
    c:
        The product in CSR form.
    method:
        Registry name of the algorithm that produced it.
    timer:
        Wall-clock seconds per phase (phase names are method-specific but
        always include ``numeric``; ``malloc`` collects allocation time).
    alloc:
        Logical device-memory ledger (drives the Figure 9 bench).
    stats:
        Cost-model inputs: per-row/per-tile work arrays and scalar counts.
        Common keys: ``flops``, ``num_products``, ``nnz_c``.
    """

    c: CSRMatrix
    method: str
    timer: PhaseTimer
    alloc: AllocationTracker
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def flops(self) -> int:
        """Floating point operations (2x intermediate products)."""
        return int(self.stats.get("flops", 0))

    def gflops(self, seconds: Optional[float] = None) -> float:
        """Throughput in GFlops for the given (default: measured) time."""
        t = self.timer.total if seconds is None else seconds
        return self.flops / t / 1e9 if t > 0 else 0.0


_REGISTRY: Dict[str, Callable[..., SpGEMMResult]] = {}


def register(name: str):
    """Class/function decorator adding an algorithm to the registry.

    The callable must accept ``(a: CSRMatrix, b: CSRMatrix, **kwargs)`` and
    return an :class:`SpGEMMResult`.
    """

    def wrap(fn):
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    return wrap


def get_algorithm(name: str) -> Callable[..., SpGEMMResult]:
    """Look up a registered SpGEMM implementation by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown SpGEMM algorithm {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_algorithms() -> tuple:
    """Names of all registered algorithms, sorted."""
    return tuple(sorted(_REGISTRY))


def flops_of_product(a: CSRMatrix, b: CSRMatrix) -> int:
    """Flop count of ``A @ B``: ``2 * sum_k nnz(a_*k) * nnz(b_k*)``.

    This is the paper's ``#flops`` (Table 2): two operations (multiply and
    add) per intermediate product.
    """
    b_row_len = np.diff(b.indptr)
    return int(2 * b_row_len[a.indices].sum()) if a.nnz else 0
