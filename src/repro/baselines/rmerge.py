"""RMerge-like SpGEMM: hierarchical row merging (Gremse et al.).

The paper's related-work §5 lists *merging* as the third sparse-accumulator
family (Gremse et al.'s RMerge, SIAM SISC'15/'18): each output row is
produced by repeatedly merging pairs of sorted scaled rows of ``B`` —
``ceil(log2(len(a_i*)))`` rounds of two-way sorted merges, never a hash
table and never a full sort.  On GPUs the two-way merges map well onto
warps for short rows, which is why RMerge variants backed bhSPARSE's
medium bins.

This implementation performs the genuine hierarchical merge: every round
halves the number of per-row sorted lists by merging adjacent pairs
(vectorised across the whole matrix at once — all rows' lists advance one
round per pass), with duplicate column indices combined at each merge.
Cost statistics record the rounds and merged-element traffic for the GPU
model.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._expand import row_upper_bounds
from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.arrays import concat_ranges
from repro.util.timing import PhaseTimer

__all__ = ["rmerge_spgemm"]


def _merge_round(
    seg_of: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> tuple:
    """One merge round: combine adjacent segment pairs.

    ``seg_of`` assigns every element to a (row-local) sorted segment; the
    round maps segment ``s`` to ``s // 2`` and re-sorts within the merged
    segments, summing duplicate columns.  A stable counting argument makes
    this equivalent to all the per-row two-way merges of the round.
    """
    new_seg = seg_of >> 1
    # Sort by (segment, column); stable so prior order breaks ties cheaply.
    order = np.lexsort((cols, new_seg))
    new_seg = new_seg[order]
    cols = cols[order]
    vals = vals[order]
    # Combine duplicates within each merged segment.
    if cols.size:
        first = np.empty(cols.size, dtype=bool)
        first[0] = True
        np.logical_or(
            new_seg[1:] != new_seg[:-1], cols[1:] != cols[:-1], out=first[1:]
        )
        starts = np.flatnonzero(first)
        vals = np.add.reduceat(vals, starts)
        cols = cols[starts]
        new_seg = new_seg[starts]
    return new_seg, cols, vals


@register("rmerge")
def rmerge_spgemm(a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
    """Multiply ``a @ b`` by hierarchical two-way row merging."""
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()
    shape = (a.shape[0], b.shape[1])

    alloc.set_phase("analysis")
    notify_step("analysis")
    with timer.phase("analysis"):
        ub = row_upper_bounds(a, b)
        row_lists = np.diff(a.indptr)  # lists to merge per row = len(a_i*)
        rounds = int(np.ceil(np.log2(max(row_lists.max(initial=1), 1)))) if a.nnz else 0
    with timer.phase("malloc"):
        alloc.alloc("row_upper_bounds", ub.size * 4)
        # Double-buffered merge workspace (ping-pong lists).
        alloc.alloc("merge_buffers", int(ub.sum()) * 12 * 2)

    # ------------------------------------------------- initial scaled lists
    notify_step("numeric")
    with timer.phase("numeric"):
        b_row_len = np.diff(b.indptr)
        rep = b_row_len[a.indices] if a.nnz else np.empty(0, dtype=np.int64)
        b_pos = concat_ranges(b.indptr[a.indices], rep)
        cols = b.indices[b_pos]
        vals = np.repeat(a.val, rep) * b.val[b_pos]
        # Global segment id: (output row, list index within the row).
        list_of = np.repeat(np.arange(a.nnz, dtype=np.int64), rep)
        row_of_list = a.row_indices_expanded()
        # Position of each A nonzero within its row = its list index.
        list_pos = np.arange(a.nnz, dtype=np.int64) - a.indptr[row_of_list]
        max_lists = int(row_lists.max(initial=1))
        pow2 = 1 << max(rounds, 0)
        seg_of = row_of_list[list_of] * pow2 + list_pos[list_of]

        merge_elements = 0
        for _ in range(rounds):
            merge_elements += cols.size
            seg_of, cols, vals = _merge_round(seg_of, cols, vals)

        # After `rounds` halvings the per-row list index has shifted away
        # entirely: seg_of == (row * pow2 + pos) >> rounds == row.
        out_rows = seg_of
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(out_rows, minlength=shape[0]), out=indptr[1:])
        c = CSRMatrix(shape, indptr, cols, vals, check=False)
    with timer.phase("malloc"):
        alloc.alloc("C_indptr", indptr.size * 4)
        alloc.alloc("C_indices", c.nnz * 4)
        alloc.alloc("C_val", c.nnz * 8)
    alloc.free("merge_buffers")

    flops = flops_of_product(a, b)
    return SpGEMMResult(
        c=c,
        method="rmerge",
        timer=timer,
        alloc=alloc,
        stats={
            "flops": flops,
            "num_products": flops // 2,
            "nnz_c": c.nnz,
            "row_upper_bounds": ub,
            "merge_rounds": rounds,
            "merge_elements": merge_elements,
        },
    )
