"""Dense-row sparse accumulator (SPA) SpGEMM — the cuSPARSE-class baseline.

Gilbert, Moler & Schreiber's SPA is the oldest accumulator design: each
output row is accumulated in a *dense* working vector of length ``ncols``
plus an occupancy flag array, then gathered into sparse form.  NVIDIA's
closed-source cuSPARSE is commonly understood to combine dense-style
accumulation with vendor tuning; the paper cannot inspect it, so — as
DESIGN.md documents — this SPA implementation stands in for the
"dense-accumulator vendor library" point of comparison.

The defining costs reproduced here:

* a dense working row per parallel worker (``ncols`` values + flags) —
  charged to the allocator scaled by the device's resident worker count,
  which is why SPA-style methods run out of memory on wide matrices
  (cuSPARSE fails on several paper matrices);
* every product is a random write into the dense row;
* gathering touches the whole occupancy structure.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._expand import row_upper_bounds
from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.arrays import concat_ranges
from repro.util.timing import PhaseTimer

__all__ = ["spa_spgemm"]

#: Modelled number of concurrently resident worker rows (one dense SPA
#: each).  Real GPU libraries keep roughly this many thread blocks alive.
RESIDENT_WORKERS: int = 256


@register("cusparse_spa")
def spa_spgemm(a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
    """Multiply ``a @ b`` row by row with a dense-row accumulator."""
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()
    nrows, ncols = a.shape[0], b.shape[1]

    alloc.set_phase("setup")
    with timer.phase("malloc"):
        workers = min(RESIDENT_WORKERS, max(nrows, 1))
        # value + stamp per dense-row slot, per resident worker.
        alloc.alloc("dense_rows", workers * ncols * 8)
        alloc.alloc("occupancy_stamps", workers * ncols * 4)

    dense = np.zeros(ncols, dtype=np.float64)
    b_row_len = np.diff(b.indptr)

    indptr = np.zeros(nrows + 1, dtype=np.int64)
    cols_out = []
    vals_out = []
    alloc.set_phase("numeric")
    notify_step("numeric")
    with timer.phase("numeric"):
        for i in range(nrows):
            lo, hi = a.indptr[i], a.indptr[i + 1]
            if lo == hi:
                indptr[i + 1] = indptr[i]
                continue
            cols_a = a.indices[lo:hi]
            rep = b_row_len[cols_a]
            b_pos = concat_ranges(b.indptr[cols_a], rep)
            cand = b.indices[b_pos]
            prod = np.repeat(a.val[lo:hi], rep) * b.val[b_pos]
            # Scatter-add into the dense row (the SPA insert/add).
            np.add.at(dense, cand, prod)
            touched = np.unique(cand)
            cols_out.append(touched)
            vals_out.append(dense[touched])
            dense[touched] = 0.0
            indptr[i + 1] = indptr[i] + touched.size

    with timer.phase("malloc"):
        nnz_c = int(indptr[-1])
        alloc.alloc("C_indptr", indptr.size * 4)
        alloc.alloc("C_indices", nnz_c * 4)
        alloc.alloc("C_val", nnz_c * 8)

    indices = np.concatenate(cols_out) if cols_out else np.empty(0, dtype=np.int64)
    val = np.concatenate(vals_out) if vals_out else np.empty(0, dtype=np.float64)
    c = CSRMatrix((nrows, ncols), indptr, indices, val, check=False)

    flops = flops_of_product(a, b)
    return SpGEMMResult(
        c=c,
        method="cusparse_spa",
        timer=timer,
        alloc=alloc,
        stats={
            "flops": flops,
            "num_products": flops // 2,
            "nnz_c": c.nnz,
            "row_upper_bounds": row_upper_bounds(a, b),
            "dense_row_bytes": ncols * 12,
            "resident_workers": min(RESIDENT_WORKERS, max(nrows, 1)),
        },
    )
