"""bhSPARSE-like SpGEMM: expansion, sorting, compression (ESC).

Liu & Vinter's bhSPARSE (IPDPS'14 / JPDC'15) is the paper's second
comparison library.  Its pipeline:

1. **analysis** — compute each output row's upper-bound size and sort the
   rows into 38 bins by that bound; each bin gets a kernel specialised for
   its size class (tiny rows use registers, medium rows heaps in shared
   memory, huge rows the ESC path in global memory with *progressive*
   allocation).
2. **expansion** — materialise every intermediate product in a global
   buffer.  This allocation is proportional to ``flops/2`` and is exactly
   the space blow-up the paper's Figure 9 shows for bhSPARSE.
3. **sorting** — sort products by (row, column).
4. **compression** — segmented reduction merges duplicates; then the
   result is copied into an exactly-sized ``C``.

This implementation performs the real ESC pipeline vectorised (the values
are produced by genuine expansion + sort + reduce), reproduces the 38-bin
analysis for the load-balance statistics, and charges the allocator for
the full intermediate buffer plus bhSPARSE's progressive re-allocation of
long rows (allocate, outgrow, double — modelled as one extra half-size
allocation on the bins that exceed the shared-memory class).
"""

from __future__ import annotations

import numpy as np

from repro.baselines._expand import compress_sorted, expand_products, row_upper_bounds
from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = ["esc_spgemm", "BIN_BOUNDS"]

#: bhSPARSE's 38 bin upper bounds on the row's intermediate-product count:
#: 0..32 one bin each, then doubling classes, then the "huge" bin.
BIN_BOUNDS: np.ndarray = np.concatenate(
    [np.arange(0, 33), [64, 128, 256, 512, 1024]]
).astype(np.int64)

#: Rows whose upper bound exceeds this use the global-memory ESC path with
#: progressive allocation (bhSPARSE's last bins).
SHARED_LIMIT: int = 256


def bin_rows(upper_bounds: np.ndarray) -> np.ndarray:
    """Assign every row to its bhSPARSE bin; returns bin ids (0..37)."""
    return np.searchsorted(BIN_BOUNDS, upper_bounds, side="left").astype(np.int64)


@register("bhsparse_esc")
def esc_spgemm(a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
    """Multiply ``a @ b`` with the ESC pipeline (bhSPARSE strategy)."""
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()

    # ------------------------------------------------------------ analysis
    alloc.set_phase("analysis")
    notify_step("analysis")
    with timer.phase("analysis"):
        ub = row_upper_bounds(a, b)
        bins = bin_rows(ub)
        bin_hist = np.bincount(bins, minlength=BIN_BOUNDS.size + 1)
    with timer.phase("malloc"):
        alloc.alloc("row_upper_bounds", ub.size * 4)
        alloc.alloc("bin_ids", bins.size * 4)

    # ----------------------------------------------------------- expansion
    total_products = int(ub.sum())
    alloc.set_phase("expansion")
    with timer.phase("malloc"):
        # The defining allocation of ESC: the full intermediate buffer
        # (column index + value per product).
        alloc.alloc("intermediate_cols", total_products * 4)
        alloc.alloc("intermediate_vals", total_products * 8)
        # Progressive allocation: long rows outgrow their first buffer and
        # bhSPARSE re-allocates; charge one extra half-size buffer over the
        # products owned by global-memory rows.
        long_products = int(ub[ub > SHARED_LIMIT].sum())
        if long_products:
            alloc.alloc("progressive_realloc", long_products * 6)
    notify_step("expansion")
    with timer.phase("expansion"):
        rows, cols, vals = expand_products(a, b)

    # --------------------------------------------------- sorting + compress
    alloc.set_phase("sort_compress")
    notify_step("sorting")
    with timer.phase("sorting"):
        key = rows * b.shape[1] + cols
        order = np.argsort(key, kind="stable")
    notify_step("compression")
    with timer.phase("compression"):
        c = compress_sorted(
            rows[order],
            cols[order],
            vals[order],
            (a.shape[0], b.shape[1]),
            assume_sorted=True,
        )
    with timer.phase("malloc"):
        alloc.alloc("C_indptr", (c.nrows + 1) * 4)
        alloc.alloc("C_indices", c.nnz * 4)
        alloc.alloc("C_val", c.nnz * 8)
    # The intermediate buffers are released once C is materialised.
    alloc.free("intermediate_cols")
    alloc.free("intermediate_vals")
    if total_products and long_products:
        alloc.free("progressive_realloc")

    flops = flops_of_product(a, b)
    return SpGEMMResult(
        c=c,
        method="bhsparse_esc",
        timer=timer,
        alloc=alloc,
        stats={
            "flops": flops,
            "num_products": total_products,
            "nnz_c": c.nnz,
            "row_upper_bounds": ub,
            "bin_histogram": bin_hist,
            "global_memory_rows": int((ub > SHARED_LIMIT).sum()),
            "intermediate_bytes": total_products * 12,
        },
    )
