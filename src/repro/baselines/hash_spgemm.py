"""NSPARSE-like SpGEMM: two-phase hashing with row binning.

Nagasaka et al.'s NSPARSE (the paper's third comparison library) runs the
row-row formulation in two passes:

1. **symbolic** — per output row, insert the candidate column indices into
   a hash table to count the row's exact nonzeros; rows are first grouped
   into size bins so each bin's kernel can size its shared-memory table,
   and rows whose table exceeds shared memory fall back to global-memory
   tables (the expensive case the paper calls out).
2. ``C`` is then allocated *exactly* — no intermediate product buffer —
   and a second **numeric** pass re-enumerates the products, hashing
   (column, value) pairs with atomic adds, then compacts tables to rows.

Here the two passes are performed for real (the candidate enumeration runs
twice, as on the GPU), with the accumulation done by NumPy sort/reduce.
The hash-probe behaviour that the sort replaces is accounted explicitly:
per-row table sizes (next power of two above ``2 * upper_bound``), load
factors, and the standard linear-probing expected probe counts feed the
stats that the GPU cost model charges for table traffic.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._expand import (
    compress_sorted,
    expand_pattern,
    expand_products,
    row_upper_bounds,
)
from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = ["hash_spgemm", "hash_table_sizes", "expected_probes"]

#: Shared-memory capacity NSPARSE assumes per thread block (entries).  Rows
#: whose hash table exceeds this use global-memory tables.
SHARED_TABLE_ENTRIES: int = 8192

#: NSPARSE's symbolic bins (upper bound on row nnz): powers of two.
SYMBOLIC_BINS: np.ndarray = 2 ** np.arange(5, 14, dtype=np.int64)  # 32 .. 8192


def hash_table_sizes(upper_bounds: np.ndarray) -> np.ndarray:
    """Per-row hash table size: next power of two >= 2x the upper bound."""
    ub = np.maximum(np.asarray(upper_bounds, dtype=np.int64), 1)
    return (2 ** np.ceil(np.log2(2 * ub))).astype(np.int64)


def expected_probes(occupied: np.ndarray, table_size: np.ndarray) -> np.ndarray:
    """Expected probes per insertion under linear probing.

    Knuth's classic estimate for a successful search at load factor
    ``alpha``: ``(1 + 1 / (1 - alpha)) / 2``.  Load factors are clamped
    below 1 to keep the estimate finite for pathological rows.
    """
    alpha = np.clip(
        np.asarray(occupied, dtype=np.float64) / np.maximum(table_size, 1), 0.0, 0.97
    )
    return (1.0 + 1.0 / (1.0 - alpha)) / 2.0


@register("nsparse_hash")
def hash_spgemm(a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
    """Multiply ``a @ b`` with the two-phase hash strategy (NSPARSE)."""
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()
    shape = (a.shape[0], b.shape[1])

    # ------------------------------------------------------------ analysis
    alloc.set_phase("analysis")
    notify_step("analysis")
    with timer.phase("analysis"):
        ub = row_upper_bounds(a, b)
        table = hash_table_sizes(ub)
        sym_bins = np.searchsorted(SYMBOLIC_BINS, ub, side="left")
        global_rows = table > SHARED_TABLE_ENTRIES
    with timer.phase("malloc"):
        alloc.alloc("row_upper_bounds", ub.size * 4)
        alloc.alloc("symbolic_bins", ub.size * 4)
        # Global-memory hash tables for rows that do not fit shared memory
        # (column index + value slot per entry).
        global_table_entries = int(table[global_rows].sum())
        if global_table_entries:
            alloc.alloc("global_hash_tables", global_table_entries * 12)

    # ------------------------------------------------------------ symbolic
    alloc.set_phase("symbolic")
    notify_step("symbolic")
    with timer.phase("symbolic"):
        rows_p, cols_p = expand_pattern(a, b)
        key = rows_p * shape[1] + cols_p
        uniq = np.unique(key)
        row_nnz = np.bincount(uniq // shape[1], minlength=shape[0])
    with timer.phase("malloc"):
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=indptr[1:])
        nnz_c = int(indptr[-1])
        alloc.alloc("C_indptr", indptr.size * 4)
        alloc.alloc("C_indices", nnz_c * 4)
        alloc.alloc("C_val", nnz_c * 8)

    # ------------------------------------------------------------- numeric
    alloc.set_phase("numeric")
    notify_step("numeric")
    with timer.phase("numeric"):
        rows, cols, vals = expand_products(a, b)
        c = compress_sorted(rows, cols, vals, shape)
    if global_table_entries:
        alloc.free("global_hash_tables")

    if c.nnz != nnz_c:
        raise AssertionError("symbolic and numeric phases disagree on nnz(C)")

    flops = flops_of_product(a, b)
    occupied = c.row_lengths()
    probes = expected_probes(occupied, table)
    return SpGEMMResult(
        c=c,
        method="nsparse_hash",
        timer=timer,
        alloc=alloc,
        stats={
            "flops": flops,
            "num_products": flops // 2,
            "nnz_c": c.nnz,
            "row_upper_bounds": ub,
            "hash_table_sizes": table,
            "expected_probes_per_insert": probes,
            "symbolic_bin_histogram": np.bincount(sym_bins, minlength=SYMBOLIC_BINS.size + 1),
            "global_memory_rows": int(global_rows.sum()),
        },
    )
