"""Heap (priority-queue) accumulator SpGEMM.

The heap accumulator — Azad et al. on CPUs, Liu & Vinter's medium-row bins
on GPUs — merges the ``len(a_i*)`` sorted candidate rows of ``B`` with a
k-way heap, emitting output columns in order and summing equal heads.  Its
complexity is ``O(products * log(len(a_i*)))`` but it needs no hash table
and no post-sort, which made it attractive for mid-size rows.

This is a faithful per-row Python implementation over :mod:`heapq`; it is
the slowest vectorisation class in the repository and is used for
correctness cross-checks and the accumulator-comparison bench rather than
the large sweeps.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = ["heap_spgemm"]


@register("heap_merge")
def heap_spgemm(a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
    """Multiply ``a @ b`` with a per-row k-way heap merge."""
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()
    nrows = a.shape[0]

    indptr = np.zeros(nrows + 1, dtype=np.int64)
    cols_out = []
    vals_out = []
    max_heap = 0
    notify_step("numeric")
    with timer.phase("numeric"):
        for i in range(nrows):
            lo, hi = a.indptr[i], a.indptr[i + 1]
            # Seed the heap with the first element of each scaled B row.
            heap = []
            for t in range(lo, hi):
                j = a.indices[t]
                blo, bhi = b.indptr[j], b.indptr[j + 1]
                if blo < bhi:
                    heap.append((int(b.indices[blo]), int(blo), int(bhi), float(a.val[t])))
            heapq.heapify(heap)
            max_heap = max(max_heap, len(heap))
            row_cols = []
            row_vals = []
            while heap:
                col, pos, end, scale = heapq.heappop(heap)
                v = scale * b.val[pos]
                if row_cols and row_cols[-1] == col:
                    row_vals[-1] += v
                else:
                    row_cols.append(col)
                    row_vals.append(v)
                pos += 1
                if pos < end:
                    heapq.heappush(heap, (int(b.indices[pos]), pos, end, scale))
            cols_out.append(np.asarray(row_cols, dtype=np.int64))
            vals_out.append(np.asarray(row_vals, dtype=np.float64))
            indptr[i + 1] = indptr[i] + len(row_cols)

    indices = np.concatenate(cols_out) if cols_out else np.empty(0, dtype=np.int64)
    val = np.concatenate(vals_out) if vals_out else np.empty(0, dtype=np.float64)
    c = CSRMatrix((a.shape[0], b.shape[1]), indptr, indices, val, check=False)

    alloc.set_phase("numeric")
    alloc.alloc("heap_workspace", max_heap * 24)
    alloc.alloc("C_indptr", indptr.size * 4)
    alloc.alloc("C_indices", c.nnz * 4)
    alloc.alloc("C_val", c.nnz * 8)
    flops = flops_of_product(a, b)
    return SpGEMMResult(
        c=c,
        method="heap_merge",
        timer=timer,
        alloc=alloc,
        stats={
            "flops": flops,
            "num_products": flops // 2,
            "nnz_c": c.nnz,
            "max_heap_size": max_heap,
        },
    )
