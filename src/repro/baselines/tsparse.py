"""tSparse-like SpGEMM: dense tile multiplication (tensor-core strategy).

Zachariadis et al.'s tSparse stores matrices as tiles like TileSpGEMM, but
multiplies matched tile pairs as *dense* 16x16 GEMMs on the GPU's tensor
cores (half-precision inputs), converting each resulting dense tile back
to sparse form.  The paper's Figures 13/14 show why this loses to sparse
tile multiplication on sparse tiles: the dense products waste the tiles'
sparsity (``T^3`` MACs per pair regardless of tile population), and the
repeated resizing of the dense result buffers makes its memory-allocation
phase dominant.

This implementation performs genuine dense tile GEMMs with batched
``matmul`` over the matched pairs (chunked to bound memory), and charges
the allocator for the densified tile buffers.  A ``dtype`` knob mimics the
half-precision mode of the original library (used by the Figure 13 bench);
correctness tests run it in float64.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.core.pairs import enumerate_pairs_expand
from repro.core.tile_matrix import TILE, TileMatrix
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = ["tsparse_spgemm", "densify_tiles"]


def densify_tiles(m: TileMatrix, dtype=np.float64) -> np.ndarray:
    """Expand every stored tile into a dense ``(num_tiles, T, T)`` array."""
    T = m.tile_size
    dense = np.zeros((m.num_tiles, T, T), dtype=dtype)
    if m.nnz:
        dense[m.tile_of_nonzero(), m.rowidx, m.colidx] = m.val.astype(dtype)
    return dense


@register("tsparse")
def tsparse_spgemm(
    a: CSRMatrix,
    b: CSRMatrix,
    tile_size: int = TILE,
    dtype=np.float64,
    chunk_pairs: int = 1 << 14,
    a_tiled: Optional[TileMatrix] = None,
    b_tiled: Optional[TileMatrix] = None,
) -> SpGEMMResult:
    """Multiply ``a @ b`` with dense tile-pair GEMMs (tSparse strategy).

    Parameters
    ----------
    a, b:
        Inputs in CSR form (tiled forms are built here, like tSparse's own
        conversion step; pass ``a_tiled``/``b_tiled`` to reuse existing
        conversions).
    dtype:
        Computation dtype of the dense tile GEMMs.  ``np.float16`` mimics
        the tensor-core half-precision mode of the original library.
    chunk_pairs:
        Tile pairs multiplied per batched GEMM call (bounds peak memory).
    """
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()
    T = tile_size

    alloc.set_phase("tiling")
    notify_step("tiling")
    with timer.phase("tiling"):
        at = a_tiled if a_tiled is not None else TileMatrix.from_csr(a, T)
        bt = b_tiled if b_tiled is not None else TileMatrix.from_csr(b, T)
        pairs = enumerate_pairs_expand(at, bt)
    itemsize = np.dtype(dtype).itemsize
    with timer.phase("malloc"):
        alloc.alloc("dense_tiles_A", at.num_tiles * T * T * itemsize)
        alloc.alloc("dense_tiles_B", bt.num_tiles * T * T * itemsize)
        # tSparse resizes C's dense tile buffer as candidate tiles appear;
        # model the documented repeated-resize behaviour as 1.5x the final
        # size having been live at the peak.
        alloc.alloc("dense_tiles_C", int(pairs.num_c_tiles * T * T * itemsize * 1.5))

    notify_step("densify")
    with timer.phase("densify"):
        dense_a = densify_tiles(at, dtype)
        dense_b = densify_tiles(bt, dtype)

    num_c = pairs.num_c_tiles
    dense_c = np.zeros((num_c, T, T), dtype=np.float64)
    slots = pairs.pair_c_slot()
    notify_step("numeric")
    with timer.phase("numeric"):
        for start in range(0, pairs.num_pairs, chunk_pairs):
            end = min(start + chunk_pairs, pairs.num_pairs)
            prod = np.matmul(
                dense_a[pairs.pair_a[start:end]], dense_b[pairs.pair_b[start:end]]
            )
            np.add.at(dense_c, slots[start:end], prod.astype(np.float64))

    notify_step("sparsify")
    with timer.phase("sparsify"):
        tile_slot, r, ccol = np.nonzero(dense_c)
        rows = pairs.c_tilerow[tile_slot] * T + r
        cols = pairs.c_tilecol[tile_slot] * T + ccol
        vals = dense_c[tile_slot, r, ccol]
        from repro.formats.coo import COOMatrix

        c = COOMatrix((a.shape[0], b.shape[1]), rows, cols, vals).to_csr()
    with timer.phase("malloc"):
        alloc.alloc("C_indptr", (c.nrows + 1) * 4)
        alloc.alloc("C_indices", c.nnz * 4)
        alloc.alloc("C_val", c.nnz * 8)
    alloc.free("dense_tiles_A")
    alloc.free("dense_tiles_B")
    alloc.free("dense_tiles_C")

    flops = flops_of_product(a, b)
    return SpGEMMResult(
        c=c,
        method="tsparse",
        timer=timer,
        alloc=alloc,
        stats={
            "flops": flops,
            "num_products": flops // 2,
            "nnz_c": c.nnz,
            "num_pairs": pairs.num_pairs,
            "dense_macs": pairs.num_pairs * T * T * T,
            "num_c_tiles": num_c,
            "tile_size": T,
        },
    )
