"""spECK-like SpGEMM: lightweight analysis + hierarchical hash kernels.

Parger et al.'s spECK (PPoPP'20) is the strongest row-row competitor in
the paper.  Its distinguishing ideas, reproduced here:

* a *lightweight preprocessing* pass — cheap per-row upper bounds and a
  global maximum, no full expansion — chooses per-row strategies from a
  small decision matrix (the paper's "lightweight analysis");
* rows are partitioned hierarchically into bins sized to the actual work
  so warp/block assignment is balanced (spECK's main edge over NSPARSE);
* hash tables live in shared memory for all but the very longest rows;
  only those spill to global-memory tables, so the temporary footprint is
  far smaller than bhSPARSE's full expansion (visible in Figure 9);
* symbolic counting and numeric accumulation are fused per bin (one
  enumeration feeds the count and the values), unlike NSPARSE's two full
  passes.

The numeric kernel here enumerates the products once and accumulates with
a sort/reduce; the analysis, binning, spill accounting and allocation
behaviour follow the strategy above and feed the GPU cost model.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._expand import compress_sorted, expand_products, row_upper_bounds
from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = ["speck_spgemm"]

#: spECK keeps rows in shared-memory hash tables up to this many entries
#: (larger than NSPARSE thanks to its tighter table layout).
SHARED_TABLE_ENTRIES: int = 8192

#: Fixed global-memory spill pool.  Unlike NSPARSE, spECK does not allocate
#: per-row global tables; rows that outgrow shared memory stream through a
#: small preallocated pool in waves — the design choice that keeps its
#: temporary footprint low in the paper's Figure 9.
GLOBAL_SPILL_POOL_BYTES: int = 4 << 20

#: Hierarchical bin boundaries on the row upper bound (work classes).
BIN_BOUNDS: np.ndarray = np.array(
    [0, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384], dtype=np.int64
)


@register("speck")
def speck_spgemm(a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
    """Multiply ``a @ b`` with the spECK strategy."""
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()
    shape = (a.shape[0], b.shape[1])

    # ------------------------------------------------- lightweight analysis
    alloc.set_phase("analysis")
    notify_step("analysis")
    with timer.phase("analysis"):
        ub = row_upper_bounds(a, b)
        bins = np.searchsorted(BIN_BOUNDS, ub, side="left")
        bin_hist = np.bincount(bins, minlength=BIN_BOUNDS.size + 1)
        spill_rows = ub > SHARED_TABLE_ENTRIES
    with timer.phase("malloc"):
        alloc.alloc("row_upper_bounds", ub.size * 4)
        alloc.alloc("row_bins", ub.size * 1)  # spECK packs bin ids tightly
        spill_entries = int(ub[spill_rows].sum())
        if spill_entries:
            alloc.alloc("global_spill_pool", GLOBAL_SPILL_POOL_BYTES)

    # ------------------------------------------- fused symbolic + numeric
    alloc.set_phase("numeric")
    notify_step("numeric")
    with timer.phase("numeric"):
        rows, cols, vals = expand_products(a, b)
        c = compress_sorted(rows, cols, vals, shape)
    with timer.phase("malloc"):
        alloc.alloc("C_indptr", (c.nrows + 1) * 4)
        alloc.alloc("C_indices", c.nnz * 4)
        alloc.alloc("C_val", c.nnz * 8)
    if spill_entries:
        alloc.free("global_spill_pool")

    flops = flops_of_product(a, b)
    return SpGEMMResult(
        c=c,
        method="speck",
        timer=timer,
        alloc=alloc,
        stats={
            "flops": flops,
            "num_products": flops // 2,
            "nnz_c": c.nnz,
            "row_upper_bounds": ub,
            "bin_histogram": bin_hist,
            "global_memory_rows": int(spill_rows.sum()),
        },
    )
