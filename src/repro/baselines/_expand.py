"""Shared vectorised row-expansion kernels for the row-row baselines.

Every row-row SpGEMM ultimately enumerates the intermediate products
``a_ij * b_jk``; the baselines differ in *when* they enumerate them (one
pass or two), *where* they put them (global expansion buffer, hash table,
dense row) and how they bin rows for load balance.  The helpers here
implement the common enumeration in NumPy so each baseline module can
focus on its strategy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.util.arrays import concat_ranges

__all__ = [
    "row_upper_bounds",
    "expand_products",
    "expand_pattern",
    "compress_sorted",
]


def row_upper_bounds(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Per-row intermediate-product counts of ``A @ B``.

    This is the quantity every library's analysis phase computes first
    (nnz of the *expanded* row, before accumulation merges duplicates).
    """
    b_row_len = np.diff(b.indptr)
    ub = np.zeros(a.shape[0], dtype=np.int64)
    if a.nnz:
        np.add.at(ub, a.row_indices_expanded(), b_row_len[a.indices])
    return ub


def expand_products(
    a: CSRMatrix, b: CSRMatrix
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Enumerate every intermediate product of ``A @ B``.

    Returns ``(rows, cols, vals)`` of length ``flops / 2``: the COO
    triplets *before* duplicate accumulation, in (A-nonzero, B-row) order.
    """
    b_row_len = np.diff(b.indptr)
    rep = b_row_len[a.indices] if a.nnz else np.empty(0, dtype=np.int64)
    rows = np.repeat(a.row_indices_expanded(), rep)
    b_pos = concat_ranges(b.indptr[a.indices], rep)
    cols = b.indices[b_pos]
    vals = np.repeat(a.val, rep) * b.val[b_pos]
    return rows, cols, vals


def expand_pattern(a: CSRMatrix, b: CSRMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Pattern-only variant of :func:`expand_products` (symbolic phases)."""
    b_row_len = np.diff(b.indptr)
    rep = b_row_len[a.indices] if a.nnz else np.empty(0, dtype=np.int64)
    rows = np.repeat(a.row_indices_expanded(), rep)
    cols = b.indices[concat_ranges(b.indptr[a.indices], rep)]
    return rows, cols


def compress_sorted(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: Tuple[int, int],
    assume_sorted: bool = False,
) -> CSRMatrix:
    """Sort intermediate products by (row, col) and sum duplicates.

    The *sort* and *compress* stages of the ESC pipeline; also the closing
    stage of the two-pass methods once their products are enumerated.
    With ``assume_sorted=True`` the (row, col) keys must already be in
    non-decreasing order and only the compression is performed.
    """
    nrows, ncols = shape
    if rows.size == 0:
        return CSRMatrix.empty(shape)
    key = rows * ncols + cols
    if assume_sorted:
        key_s = key
        vals_s = np.asarray(vals)
    else:
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        vals_s = vals[order]
    new = np.empty(key_s.size, dtype=bool)
    new[0] = True
    np.not_equal(key_s[1:], key_s[:-1], out=new[1:])
    starts = np.flatnonzero(new)
    out_key = key_s[starts]
    out_val = np.add.reduceat(vals_s, starts)
    out_rows = out_key // ncols
    out_cols = out_key % ncols
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_rows, minlength=nrows), out=indptr[1:])
    return CSRMatrix(shape, indptr, out_cols, out_val, check=False)
