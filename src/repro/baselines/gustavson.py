"""Reference row-row SpGEMM (Gustavson 1978) — the paper's Algorithm 1.

This is the plainest possible rendition of the row-row formulation: for
every row ``a_i*``, scale the rows ``b_j*`` by the nonzeros ``a_ij`` and
accumulate into ``c_i*`` with a per-row dictionary.  It is deliberately
unoptimised — its role is to be an *obviously correct* oracle for the
tests (alongside SciPy) and the didactic starting point the three
performance issues of §2.2 are told against.

The three annotated performance issues of the paper's Algorithm 1 map
directly onto this code:

* issue 1 — the outer loop's iterations have wildly uneven cost;
* issue 2 — ``len(acc)`` is unknown until the row finishes, so a real
  parallel implementation must guess an allocation;
* issue 3 — the dictionary is the sparse accumulator whose design the
  whole SpGEMM literature argues about.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInputError
from repro.baselines.base import SpGEMMResult, flops_of_product, notify_step, register
from repro.formats.csr import CSRMatrix
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = ["gustavson_spgemm"]


@register("gustavson")
def gustavson_spgemm(a: CSRMatrix, b: CSRMatrix) -> SpGEMMResult:
    """Multiply ``a @ b`` row by row with a dict accumulator."""
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    timer = PhaseTimer()
    alloc = AllocationTracker()
    nrows = a.shape[0]

    indptr = np.zeros(nrows + 1, dtype=np.int64)
    cols_out = []
    vals_out = []
    notify_step("numeric")
    with timer.phase("numeric"):
        for i in range(nrows):
            acc: dict = {}
            lo, hi = a.indptr[i], a.indptr[i + 1]
            for t in range(lo, hi):
                j = a.indices[t]
                aij = a.val[t]
                blo, bhi = b.indptr[j], b.indptr[j + 1]
                for s in range(blo, bhi):
                    k = b.indices[s]
                    v = aij * b.val[s]
                    if k in acc:
                        acc[k] += v
                    else:
                        acc[k] = v
            if acc:
                keys = np.fromiter(acc.keys(), dtype=np.int64, count=len(acc))
                order = np.argsort(keys)
                cols_out.append(keys[order])
                vals_out.append(
                    np.fromiter(acc.values(), dtype=np.float64, count=len(acc))[order]
                )
            indptr[i + 1] = indptr[i] + len(acc)

    indices = np.concatenate(cols_out) if cols_out else np.empty(0, dtype=np.int64)
    val = np.concatenate(vals_out) if vals_out else np.empty(0, dtype=np.float64)
    c = CSRMatrix((a.shape[0], b.shape[1]), indptr, indices, val, check=False)

    alloc.set_phase("numeric")
    alloc.alloc("C_indptr", indptr.size * 4)
    alloc.alloc("C_indices", indices.size * 4)
    alloc.alloc("C_val", val.size * 8)
    flops = flops_of_product(a, b)
    return SpGEMMResult(
        c=c,
        method="gustavson",
        timer=timer,
        alloc=alloc,
        stats={"flops": flops, "num_products": flops // 2, "nnz_c": c.nnz},
    )
