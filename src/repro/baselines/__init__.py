"""From-scratch implementations of every SpGEMM method the paper compares.

Importing this package registers all algorithms in the
:mod:`repro.baselines.base` registry:

========================  ====================================================
registry name             strategy (paper counterpart)
========================  ====================================================
``gustavson``             dict-accumulator row-row reference (Algorithm 1)
``cusparse_spa``          dense-row sparse accumulator (cuSPARSE-class)
``bhsparse_esc``          expansion/sort/compression + 38-bin analysis
                          (bhSPARSE)
``nsparse_hash``          two-phase hash with row binning (NSPARSE)
``speck``                 lightweight analysis + hierarchical hash (spECK)
``heap_merge``            per-row k-way heap merge (accumulator study)
``rmerge``                hierarchical two-way row merging (RMerge)
``tsparse``               dense tile-pair GEMMs (tSparse, tensor-core style)
``tilespgemm``            this paper's method, adapted to the common API
========================  ====================================================
"""

from repro.baselines.base import (
    SpGEMMResult,
    available_algorithms,
    flops_of_product,
    get_algorithm,
    register,
)
from repro.baselines.gustavson import gustavson_spgemm
from repro.baselines.spa import spa_spgemm
from repro.baselines.esc import esc_spgemm
from repro.baselines.hash_spgemm import hash_spgemm
from repro.baselines.speck import speck_spgemm
from repro.baselines.heap import heap_spgemm
from repro.baselines.rmerge import rmerge_spgemm
from repro.baselines.tsparse import tsparse_spgemm
from repro.baselines.tile_adapter import tilespgemm_adapter

__all__ = [
    "SpGEMMResult",
    "available_algorithms",
    "flops_of_product",
    "get_algorithm",
    "register",
    "gustavson_spgemm",
    "spa_spgemm",
    "esc_spgemm",
    "hash_spgemm",
    "speck_spgemm",
    "heap_spgemm",
    "rmerge_spgemm",
    "tsparse_spgemm",
    "tilespgemm_adapter",
]
