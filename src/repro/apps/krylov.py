"""Krylov solvers on the tiled format: CG and AMG-preconditioned CG.

The production pattern for the paper's AMG workload: the SpGEMM-built
hierarchy serves as a *preconditioner* inside conjugate gradients, with
every matrix-vector product running as tiled SpMV on the resident
operators.  This closes the full chain the paper motivates — SpGEMM setup
(TileSpGEMM) → V-cycle preconditioner → Krylov solve — inside one format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.apps.amg_solver import AMGSolver
from repro.core.spmv import tile_spmv
from repro.core.tile_matrix import TileMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["CGResult", "conjugate_gradient", "amg_preconditioned_cg"]


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: List[float]

    @property
    def final_relative_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")


def conjugate_gradient(
    a: CSRMatrix,
    b: np.ndarray,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iters: int = 1000,
) -> CGResult:
    """(Preconditioned) conjugate gradients for SPD ``A x = b``.

    Parameters
    ----------
    a:
        Symmetric positive-definite operator (held as tiled SpMV inside).
    b:
        Right-hand side.
    preconditioner:
        Callable approximating ``A^-1`` (e.g. one AMG V-cycle); identity
        when omitted.
    x0, tol, max_iters:
        Initial guess, relative-residual tolerance and iteration cap.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("CG needs a square operator")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (a.shape[0],):
        raise ValueError("right-hand side length mismatch")
    # Repeated solves with the same operator (e.g. a time-stepping loop)
    # reuse one tiled form through the content-addressed cache.
    from repro.runtime.tilecache import get_tile_cache

    at = get_tile_cache().tile(a)
    apply_m = preconditioner if preconditioner is not None else (lambda r: r)

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - tile_spmv(at, x)
    z = apply_m(r)
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(np.zeros_like(b), 0, True, [0.0])
    history = [float(np.linalg.norm(r)) / b_norm]
    if history[0] < tol:
        return CGResult(x, 0, True, history)

    for it in range(1, max_iters + 1):
        ap = tile_spmv(at, p)
        p_ap = float(p @ ap)
        if p_ap <= 0:
            # Not SPD (or numerical breakdown): stop honestly.
            return CGResult(x, it - 1, False, history)
        alpha = rz / p_ap
        x = x + alpha * p
        r = r - alpha * ap
        rel = float(np.linalg.norm(r)) / b_norm
        history.append(rel)
        if rel < tol:
            return CGResult(x, it, True, history)
        z = apply_m(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return CGResult(x, max_iters, False, history)


def amg_preconditioned_cg(
    a: CSRMatrix,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iters: int = 200,
    solver: Optional[AMGSolver] = None,
    **amg_kwargs,
) -> CGResult:
    """CG preconditioned by one AMG V-cycle per application.

    Parameters
    ----------
    a, b, tol, max_iters:
        As in :func:`conjugate_gradient`.
    solver:
        A prebuilt :class:`~repro.apps.amg_solver.AMGSolver` (reuse the
        SpGEMM setup across solves); built here otherwise.
    amg_kwargs:
        Forwarded to :class:`AMGSolver` when one is built.
    """
    amg = solver if solver is not None else AMGSolver(a, **amg_kwargs)

    def precond(r: np.ndarray) -> np.ndarray:
        return amg._vcycle(0, r)

    return conjugate_gradient(a, b, preconditioner=precond, tol=tol, max_iters=max_iters)
