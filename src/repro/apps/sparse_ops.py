"""Element-wise sparse operations the applications need around SpGEMM.

The motivating applications of the paper's introduction (AMG, triangle
counting, Markov clustering) all combine SpGEMM with a few element-wise
kernels — Hadamard products, column scaling, pruning.  These are
implemented here over :class:`~repro.formats.csr.CSRMatrix` so the
application layer stays free of SciPy.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix

__all__ = [
    "hadamard",
    "column_sums",
    "scale_columns",
    "normalize_columns",
    "elementwise_power",
    "add",
]


def hadamard(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Element-wise product ``A .* B`` (pattern intersection)."""
    if a.shape != b.shape:
        raise ValueError("shape mismatch for Hadamard product")
    ncols = a.shape[1]
    key_a = a.row_indices_expanded() * ncols + a.indices
    key_b = b.row_indices_expanded() * ncols + b.indices
    pos_b = np.searchsorted(key_b, key_a)
    pos_b = np.minimum(pos_b, max(key_b.size - 1, 0))
    if key_b.size:
        match = key_b[pos_b] == key_a
    else:
        match = np.zeros(key_a.size, dtype=bool)
    vals = np.where(match, a.val * (b.val[pos_b] if key_b.size else 0.0), 0.0)
    keep = match
    kept_csum = np.zeros(a.nnz + 1, dtype=np.int64)
    np.cumsum(keep, out=kept_csum[1:])
    indptr = kept_csum[a.indptr]
    return CSRMatrix(a.shape, indptr, a.indices[keep], vals[keep], check=False)


def column_sums(a: CSRMatrix) -> np.ndarray:
    """Per-column sum of values."""
    return np.bincount(a.indices, weights=a.val, minlength=a.shape[1])


def scale_columns(a: CSRMatrix, scale: np.ndarray) -> CSRMatrix:
    """Return ``A @ diag(scale)`` without changing the pattern."""
    scale = np.asarray(scale, dtype=np.float64)
    if scale.shape != (a.shape[1],):
        raise ValueError("scale must have one entry per column")
    return CSRMatrix(a.shape, a.indptr, a.indices, a.val * scale[a.indices], check=False)


def normalize_columns(a: CSRMatrix) -> CSRMatrix:
    """Scale each column to sum to 1 (column-stochastic normalisation).

    Columns summing to zero are left untouched.
    """
    sums = column_sums(a)
    inv = np.where(np.abs(sums) > 0, 1.0 / np.where(sums == 0, 1.0, sums), 0.0)
    return scale_columns(a, inv)


def elementwise_power(a: CSRMatrix, power: float) -> CSRMatrix:
    """Raise every stored value to ``power`` (MCL's inflation kernel)."""
    return CSRMatrix(a.shape, a.indptr, a.indices, np.power(a.val, power), check=False)


def add(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sparse matrix addition ``A + B``."""
    if a.shape != b.shape:
        raise ValueError("shape mismatch for addition")
    from repro.formats.coo import COOMatrix

    rows = np.concatenate([a.row_indices_expanded(), b.row_indices_expanded()])
    cols = np.concatenate([a.indices, b.indices])
    vals = np.concatenate([a.val, b.val])
    return COOMatrix(a.shape, rows, cols, vals).to_csr()
