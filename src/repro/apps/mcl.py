"""Markov clustering (MCL) — the paper's machine-learning SpGEMM workload.

MCL alternates *expansion* (squaring the column-stochastic matrix — an
SpGEMM) with *inflation* (element-wise powering + renormalisation) and
pruning until the matrix reaches a doubly-idempotent state whose nonzero
structure encodes the clusters.  HipMCL scales exactly this loop with
distributed SpGEMM; here the expansion runs through any registered method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.sparse_ops import add, elementwise_power, normalize_columns
from repro.formats.csr import CSRMatrix
from repro.runtime.tilecache import cached_algorithm

__all__ = ["MCLResult", "markov_clustering"]


@dataclass
class MCLResult:
    """Outcome of a Markov-clustering run."""

    clusters: List[List[int]]
    iterations: int
    converged: bool
    total_spgemm_flops: int


def _self_looped(a: CSRMatrix) -> CSRMatrix:
    """Add unit self loops (MCL's standard preprocessing)."""
    return add(a, CSRMatrix.identity(a.shape[0]))


def markov_clustering(
    a: CSRMatrix,
    inflation: float = 2.0,
    max_iters: int = 40,
    prune_tol: float = 1e-6,
    convergence_tol: float = 1e-8,
    method: str = "tilespgemm",
) -> MCLResult:
    """Cluster the graph with adjacency ``a`` by the MCL process.

    Parameters
    ----------
    a:
        Square adjacency matrix (weights allowed; must be non-negative).
    inflation:
        Inflation exponent (2.0 is the classic default; higher splits
        clusters more aggressively).
    max_iters:
        Iteration cap.
    prune_tol:
        Entries at or below this are dropped after each inflation.
    convergence_tol:
        Converged when the matrix change (max absolute difference on the
        union pattern) falls below this.
    method:
        Registered SpGEMM method for the expansion step.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("MCL needs a square adjacency matrix")
    if a.nnz and a.val.min() < 0:
        raise ValueError("MCL needs non-negative weights")
    spgemm = cached_algorithm(method)
    m = normalize_columns(_self_looped(a))
    total_flops = 0
    converged = False
    it = 0
    for it in range(1, max_iters + 1):
        res = spgemm(m, m)  # expansion
        total_flops += res.flops
        expanded = res.c
        inflated = normalize_columns(elementwise_power(expanded.prune(0.0), inflation))
        pruned = normalize_columns(inflated.prune(prune_tol))
        diff = _max_abs_difference(m, pruned)
        m = pruned
        if diff < convergence_tol:
            converged = True
            break
    return MCLResult(
        clusters=_interpret_clusters(m),
        iterations=it,
        converged=converged,
        total_spgemm_flops=total_flops,
    )


def _max_abs_difference(a: CSRMatrix, b: CSRMatrix) -> float:
    """Max |a - b| over the union of the two patterns."""
    from repro.formats.coo import COOMatrix

    rows = np.concatenate([a.row_indices_expanded(), b.row_indices_expanded()])
    cols = np.concatenate([a.indices, b.indices])
    vals = np.concatenate([a.val, -b.val])
    if rows.size == 0:
        return 0.0
    diff = COOMatrix(a.shape, rows, cols, vals).sum_duplicates()
    return float(np.abs(diff.val).max()) if diff.nnz else 0.0


def _interpret_clusters(m: CSRMatrix) -> List[List[int]]:
    """Read clusters off the converged matrix: attractors are rows with
    nonzeros; each column joins the attractor(s) holding its mass."""
    n = m.shape[0]
    owner = np.full(n, -1, dtype=np.int64)
    # Column j belongs to the row with its largest value.
    rows = m.row_indices_expanded()
    for t in np.argsort(m.val):  # ascending; later (larger) writes win
        owner[m.indices[t]] = rows[t]
    clusters: dict = {}
    for j in range(n):
        clusters.setdefault(int(owner[j]) if owner[j] >= 0 else j, []).append(j)
    return sorted(clusters.values())
