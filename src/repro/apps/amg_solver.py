"""A complete AMG solver on tiled operators: V-cycles over the hierarchy.

:mod:`repro.apps.amg` builds the hierarchy with SpGEMM (the paper's
workload); this module closes the loop into an actual solver so the AMG
example demonstrates end-to-end value: weighted-Jacobi smoothing and
residuals run as tiled SpMV (:mod:`repro.core.spmv`) on the *same* tiled
operators the SpGEMM setup produced — the residency argument the paper
makes for its format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.amg import AMGHierarchy, build_hierarchy
from repro.core.spmv import tile_spmv
from repro.core.tile_matrix import TileMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["AMGSolveResult", "AMGSolver"]


@dataclass
class AMGSolveResult:
    """Outcome of an AMG solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: List[float]

    @property
    def final_relative_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")

    def convergence_factor(self) -> float:
        """Geometric-mean per-cycle residual reduction."""
        h = self.residual_history
        if len(h) < 2 or h[0] <= 0:
            return float("nan")
        return float((h[-1] / h[0]) ** (1.0 / (len(h) - 1)))


class AMGSolver:
    """Aggregation AMG with weighted-Jacobi smoothing and V-cycles.

    Parameters
    ----------
    a:
        The fine-level operator (square, with nonzero diagonal).
    max_levels, min_coarse, spgemm_method:
        Forwarded to :func:`repro.apps.amg.build_hierarchy` (the SpGEMM
        setup phase the paper measures).
    omega:
        Jacobi damping (2/3 is the classic choice for Poisson problems).
    presmooth, postsmooth:
        Smoothing sweeps per cycle on each side.
    smoothed_aggregation:
        Build the hierarchy with smoothed-aggregation prolongators (one
        extra SpGEMM per level; much faster convergence).  Default on.
    smoother:
        ``"jacobi"`` (weighted Jacobi via tiled SpMV) or ``"gauss_seidel"``
        (forward Gauss-Seidel via the level-scheduled sparse triangular
        solve, :func:`repro.core.sptrsv.sptrsv`).
    """

    def __init__(
        self,
        a: CSRMatrix,
        max_levels: int = 10,
        min_coarse: int = 24,
        spgemm_method: str = "tilespgemm",
        omega: float = 2.0 / 3.0,
        presmooth: int = 1,
        postsmooth: int = 1,
        smoothed_aggregation: bool = True,
        smoother: str = "jacobi",
    ) -> None:
        self.hierarchy: AMGHierarchy = build_hierarchy(
            a,
            max_levels=max_levels,
            min_coarse=min_coarse,
            method=spgemm_method,
            smoothed=smoothed_aggregation,
        )
        if smoother not in ("jacobi", "gauss_seidel"):
            raise ValueError("smoother must be 'jacobi' or 'gauss_seidel'")
        self.smoother = smoother
        self.omega = float(omega)
        self.presmooth = int(presmooth)
        self.postsmooth = int(postsmooth)
        # Resident tiled operators + transfer operators per level.
        self._a_tiled: List[TileMatrix] = []
        self._p_tiled: List[Optional[TileMatrix]] = []
        self._r_tiled: List[Optional[TileMatrix]] = []
        self._inv_diag: List[np.ndarray] = []
        for level in self.hierarchy.levels:
            self._a_tiled.append(TileMatrix.from_csr(level.a))
            diag = self._diagonal(level.a)
            if np.any(diag == 0):
                raise ValueError("AMG Jacobi smoothing needs a nonzero diagonal")
            self._inv_diag.append(1.0 / diag)
            if level.p is not None:
                self._p_tiled.append(TileMatrix.from_csr(level.p))
                self._r_tiled.append(TileMatrix.from_csr(level.p.transpose()))
            else:
                self._p_tiled.append(None)
                self._r_tiled.append(None)
        # Lower-triangular parts (L + D) for Gauss-Seidel sweeps.
        self._lower: List[Optional[CSRMatrix]] = []
        if smoother == "gauss_seidel":
            import numpy as _np

            for level in self.hierarchy.levels:
                rows = level.a.row_indices_expanded()
                keep = level.a.indices <= rows
                kept = _np.zeros(level.a.nnz + 1, dtype=_np.int64)
                _np.cumsum(keep, out=kept[1:])
                self._lower.append(
                    CSRMatrix(
                        level.a.shape,
                        kept[level.a.indptr],
                        level.a.indices[keep],
                        level.a.val[keep],
                        check=False,
                    )
                )
        else:
            self._lower = [None] * len(self.hierarchy.levels)
        # Dense solve on the coarsest level.
        self._coarse_dense = self.hierarchy.levels[-1].a.to_dense()

    @staticmethod
    def _diagonal(a: CSRMatrix) -> np.ndarray:
        diag = np.zeros(a.shape[0])
        rows = a.row_indices_expanded()
        on_diag = rows == a.indices
        diag[rows[on_diag]] = a.val[on_diag]
        return diag

    # ------------------------------------------------------------------
    def _smooth(self, level: int, x: np.ndarray, b: np.ndarray, sweeps: int) -> np.ndarray:
        a = self._a_tiled[level]
        if self.smoother == "gauss_seidel":
            from repro.core.sptrsv import sptrsv

            lower = self._lower[level]
            for _ in range(sweeps):
                # x <- x + (L + D)^-1 (b - A x): one forward GS sweep.
                x = x + sptrsv(lower, b - tile_spmv(a, x))
            return x
        inv_d = self._inv_diag[level]
        for _ in range(sweeps):
            x = x + self.omega * inv_d * (b - tile_spmv(a, x))
        return x

    def _vcycle(self, level: int, b: np.ndarray) -> np.ndarray:
        if level == len(self._a_tiled) - 1:
            return np.linalg.solve(
                self._coarse_dense + 1e-12 * np.eye(self._coarse_dense.shape[0]), b
            )
        x = np.zeros_like(b)
        x = self._smooth(level, x, b, self.presmooth)
        residual = b - tile_spmv(self._a_tiled[level], x)
        coarse_b = tile_spmv(self._r_tiled[level], residual)
        coarse_x = self._vcycle(level + 1, coarse_b)
        x = x + tile_spmv(self._p_tiled[level], coarse_x)
        return self._smooth(level, x, b, self.postsmooth)

    # ------------------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        tol: float = 1e-8,
        max_cycles: int = 60,
    ) -> AMGSolveResult:
        """Solve ``A x = b`` by repeated V-cycles.

        Parameters
        ----------
        b:
            Right-hand side.
        x0:
            Initial guess (zero by default).
        tol:
            Relative-residual stopping tolerance.
        max_cycles:
            V-cycle budget.
        """
        b = np.asarray(b, dtype=np.float64)
        a0 = self._a_tiled[0]
        if b.shape != (a0.shape[0],):
            raise ValueError("right-hand side length mismatch")
        x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
        b_norm = np.linalg.norm(b)
        if b_norm == 0:
            return AMGSolveResult(x=np.zeros_like(b), iterations=0, converged=True,
                                  residual_history=[0.0])
        history = [float(np.linalg.norm(b - tile_spmv(a0, x)) / b_norm)]
        for it in range(1, max_cycles + 1):
            residual = b - tile_spmv(a0, x)
            x = x + self._vcycle(0, residual)
            rel = float(np.linalg.norm(b - tile_spmv(a0, x)) / b_norm)
            history.append(rel)
            if rel < tol:
                return AMGSolveResult(x=x, iterations=it, converged=True,
                                      residual_history=history)
        return AMGSolveResult(x=x, iterations=max_cycles, converged=False,
                              residual_history=history)
