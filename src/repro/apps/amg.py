"""Algebraic-multigrid setup on top of TileSpGEMM (Galerkin products).

The paper's headline application domain: AMG solvers spend their setup
phase in SpGEMM, computing the Galerkin triple product ``A_coarse =
R A P`` on every level (the paper also notes AMG chains SpGEMMs, which is
why it assumes matrices already live in the tiled format).  This module
implements a compact aggregation-based AMG setup:

* :func:`aggregation_prolongator` — piecewise-constant prolongation from a
  greedy neighbourhood aggregation of the matrix graph;
* :func:`galerkin_product` — ``R (A P)`` via two SpGEMM calls with any
  registered method (TileSpGEMM by default);
* :func:`build_hierarchy` — the full multi-level setup loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.runtime.tilecache import cached_algorithm

__all__ = [
    "AMGLevel",
    "AMGHierarchy",
    "aggregation_prolongator",
    "smoothed_prolongator",
    "galerkin_product",
    "build_hierarchy",
]


@dataclass
class AMGLevel:
    """One level of the hierarchy: operator + grid-transfer operators."""

    a: CSRMatrix
    p: Optional[CSRMatrix] = None  #: prolongation to this level's fine grid
    spgemm_flops: int = 0  #: SpGEMM work spent building the next level


@dataclass
class AMGHierarchy:
    """The multigrid hierarchy produced by :func:`build_hierarchy`."""

    levels: List[AMGLevel]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def operator_complexity(self) -> float:
        """Sum of per-level nnz over the fine level's nnz (AMG health metric)."""
        fine = max(self.levels[0].a.nnz, 1)
        return sum(l.a.nnz for l in self.levels) / fine

    @property
    def total_spgemm_flops(self) -> int:
        return sum(l.spgemm_flops for l in self.levels)


def aggregation_prolongator(a: CSRMatrix, seed: int = 0) -> CSRMatrix:
    """Greedy neighbourhood aggregation -> piecewise-constant prolongator.

    Nodes are visited in random order; an unaggregated node grabs all its
    unaggregated neighbours to form an aggregate.  Leftover nodes join any
    aggregated neighbour (or form singletons).  ``P[i, agg(i)] = 1``.
    """
    n = a.shape[0]
    agg = np.full(n, -1, dtype=np.int64)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    next_agg = 0
    for i in order:
        if agg[i] >= 0:
            continue
        cols, _ = a.row(i)
        free = [j for j in cols if agg[j] < 0]
        agg[i] = next_agg
        for j in free:
            agg[j] = next_agg
        next_agg += 1
    # Attach stragglers (can only happen with empty rows).
    for i in range(n):
        if agg[i] < 0:
            agg[i] = next_agg
            next_agg += 1
    indptr = np.arange(n + 1, dtype=np.int64)
    return CSRMatrix((n, next_agg), indptr, agg, np.ones(n), check=False)


def smoothed_prolongator(
    a: CSRMatrix,
    tentative: CSRMatrix,
    omega: float = 2.0 / 3.0,
    method: str = "tilespgemm",
) -> CSRMatrix:
    """Smoothed-aggregation prolongator: ``P = (I - omega D^-1 A) P_tent``.

    One damped-Jacobi smoothing sweep applied to the tentative (piecewise
    constant) prolongator — the classic smoothed-aggregation AMG
    construction.  It costs one extra SpGEMM per level, which is exactly
    the kind of setup work the paper's AMG motivation is about, and it
    improves V-cycle convergence substantially over plain aggregation.
    """
    diag = np.zeros(a.shape[0])
    rows = a.row_indices_expanded()
    on_diag = rows == a.indices
    diag[rows[on_diag]] = a.val[on_diag]
    if np.any(diag == 0):
        raise ValueError("smoothed aggregation needs a nonzero diagonal")
    scaled = a.scale_rows(omega / diag)  # omega * D^-1 A
    spgemm = cached_algorithm(method)
    ap = spgemm(scaled, tentative).c
    # P = P_tent - (omega D^-1 A) P_tent
    from repro.apps.sparse_ops import add

    neg = CSRMatrix(ap.shape, ap.indptr, ap.indices, -ap.val, check=False)
    return add(tentative, neg).prune(1e-14)


def galerkin_product(
    a: CSRMatrix, p: CSRMatrix, method: str = "tilespgemm"
) -> CSRMatrix:
    """The Galerkin coarse operator ``P^T A P`` via two SpGEMMs."""
    spgemm: Callable = cached_algorithm(method)
    ap = spgemm(a, p).c
    r = p.transpose()
    return spgemm(r, ap).c


def build_hierarchy(
    a: CSRMatrix,
    max_levels: int = 10,
    min_coarse: int = 16,
    method: str = "tilespgemm",
    smoothed: bool = False,
    seed: int = 0,
) -> AMGHierarchy:
    """Run the AMG setup: aggregate, build P, Galerkin-coarsen, repeat.

    Parameters
    ----------
    a:
        The fine-level operator (square).
    max_levels:
        Upper bound on hierarchy depth.
    min_coarse:
        Stop once the operator is at most this large.
    method:
        Registered SpGEMM method used for the triple products.
    smoothed:
        Use smoothed aggregation (:func:`smoothed_prolongator`): one more
        SpGEMM per level, markedly better V-cycle convergence.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("AMG needs a square operator")
    spgemm = cached_algorithm(method)
    levels = [AMGLevel(a=a)]
    current = a
    for level in range(max_levels - 1):
        if current.shape[0] <= min_coarse:
            break
        p = aggregation_prolongator(current, seed=seed + level)
        if smoothed:
            p = smoothed_prolongator(current, p, method=method)
        if p.shape[1] >= current.shape[0]:
            break  # aggregation stalled; coarsening would not shrink
        ap_res = spgemm(current, p)
        rap_res = spgemm(p.transpose(), ap_res.c)
        levels[-1].p = p
        levels[-1].spgemm_flops = ap_res.flops + rap_res.flops
        current = rap_res.c
        levels.append(AMGLevel(a=current))
    return AMGHierarchy(levels=levels)
