"""Similarity graphs via SpGEMM: co-occurrence and cosine similarity.

Another of SpGEMM's classic data-mining uses (the paper's database /
machine-learning motivations): for an item-feature incidence matrix ``A``,
the Gram product ``A Aᵀ`` counts shared features per item pair, and row
normalisation turns the counts into cosine similarities.  One SpGEMM plus
element-wise scaling.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import get_algorithm
from repro.formats.csr import CSRMatrix

__all__ = ["cooccurrence", "cosine_similarity", "top_k_neighbors"]


def cooccurrence(a: CSRMatrix, method: str = "tilespgemm") -> CSRMatrix:
    """Shared-feature counts ``A Aᵀ`` for binary incidence ``A``."""
    return get_algorithm(method)(a, a.transpose()).c


def cosine_similarity(
    a: CSRMatrix, method: str = "tilespgemm", drop_self: bool = True
) -> CSRMatrix:
    """Pairwise cosine similarity of the rows of ``A``.

    ``S = D^-1/2 (A Aᵀ) D^-1/2`` with ``D`` the row-norm squares; entries
    lie in [-1, 1] (exactly 1 on duplicated rows).

    Parameters
    ----------
    a:
        Item-feature matrix (any real weights).
    method:
        Registered SpGEMM method for the Gram product.
    drop_self:
        Remove the diagonal (an item's similarity to itself).
    """
    gram = cooccurrence(a, method=method)
    norms = np.sqrt(np.maximum(np.bincount(
        a.row_indices_expanded(), weights=a.val**2, minlength=a.shape[0]
    ), 0.0))
    inv = np.where(norms > 0, 1.0 / np.where(norms == 0, 1.0, norms), 0.0)
    scaled = gram.scale_rows(inv)
    from repro.apps.sparse_ops import scale_columns

    s = scale_columns(scaled, inv)
    if drop_self:
        rows = s.row_indices_expanded()
        keep = rows != s.indices
        kept_csum = np.zeros(s.nnz + 1, dtype=np.int64)
        np.cumsum(keep, out=kept_csum[1:])
        s = CSRMatrix(
            s.shape, kept_csum[s.indptr], s.indices[keep], s.val[keep], check=False
        )
    return s


def top_k_neighbors(similarity: CSRMatrix, k: int) -> CSRMatrix:
    """Keep each row's ``k`` strongest entries (a k-NN graph)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    rows_out = []
    cols_out = []
    vals_out = []
    lengths = np.zeros(similarity.nrows, dtype=np.int64)
    for i in range(similarity.nrows):
        cols, vals = similarity.row(i)
        if cols.size > k:
            top = np.argpartition(vals, -k)[-k:] if k else np.empty(0, dtype=np.int64)
            order = top[np.argsort(cols[top])]
        else:
            order = np.arange(cols.size)
        rows_out.append(np.full(order.size, i, dtype=np.int64))
        cols_out.append(cols[order])
        vals_out.append(vals[order])
        lengths[i] = order.size
    indptr = np.zeros(similarity.nrows + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    return CSRMatrix(
        similarity.shape,
        indptr,
        np.concatenate(cols_out) if cols_out else np.empty(0, dtype=np.int64),
        np.concatenate(vals_out) if vals_out else np.empty(0, dtype=np.float64),
        check=False,
    )
