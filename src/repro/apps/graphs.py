"""Graph algorithms on SpGEMM: triangle counting and 2-hop BFS frontiers.

Triangle counting is one of the paper's motivating GraphBLAS workloads:
``#triangles = sum(L .* (L @ L)) `` for the strictly-lower-triangular part
``L`` of an undirected adjacency matrix — one masked SpGEMM.
"""

from __future__ import annotations

import numpy as np

from repro.apps.sparse_ops import hadamard
from repro.baselines.base import get_algorithm
from repro.formats.csr import CSRMatrix

__all__ = ["bfs_levels", "lower_triangle", "pagerank", "triangle_count", "two_hop_frontier"]


def lower_triangle(a: CSRMatrix) -> CSRMatrix:
    """Strictly lower-triangular pattern of ``A`` with unit values."""
    rows = a.row_indices_expanded()
    keep = a.indices < rows
    kept_csum = np.zeros(a.nnz + 1, dtype=np.int64)
    np.cumsum(keep, out=kept_csum[1:])
    return CSRMatrix(
        a.shape, kept_csum[a.indptr], a.indices[keep], np.ones(int(keep.sum())), check=False
    )


def triangle_count(a: CSRMatrix, method: str = "tilespgemm", fused: bool = False) -> int:
    """Count triangles of the undirected graph with adjacency ``A``.

    Uses the masked-SpGEMM formulation ``sum(L .* (L L))`` where ``L`` is
    the strictly lower triangle; self-loops and edge weights are ignored.

    Parameters
    ----------
    a:
        Adjacency matrix (symmetric pattern assumed).
    method:
        Registered SpGEMM method for the two-phase path.
    fused:
        Use the tiled masked-SpGEMM extension
        (:func:`repro.core.masked.masked_tile_spgemm`): the mask is applied
        inside the multiplication instead of as a separate Hadamard pass.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("adjacency matrix must be square")
    l = lower_triangle(a)
    if fused:
        from repro.core import TileMatrix
        from repro.core.masked import masked_tile_spgemm

        lt = TileMatrix.from_csr(l)
        res = masked_tile_spgemm(lt, lt, lt)
        return int(round(res.c.val.sum()))
    ll = get_algorithm(method)(l, l).c
    masked = hadamard(ll, l)
    return int(round(masked.val.sum()))


def pagerank(
    a: CSRMatrix,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iters: int = 200,
) -> np.ndarray:
    """PageRank by power iteration on the resident tiled matrix.

    The SpMV companion workload: once the adjacency lives in tiled form
    (for SpGEMM analytics), ranking runs on the same structure via
    :func:`repro.core.spmv.tile_spmv`.  Dangling nodes redistribute their
    mass uniformly; returns the stationary distribution (sums to 1).
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("PageRank needs a square adjacency matrix")
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must lie in (0, 1)")
    n = a.shape[0]
    if n == 0:
        return np.empty(0)
    from repro.core.spmv import tile_spmv
    from repro.core.tile_matrix import TileMatrix

    # Column-stochastic transition: normalise each row, then transpose.
    row_sums = np.zeros(n)
    np.add.at(row_sums, a.row_indices_expanded(), np.abs(a.val))
    inv = np.where(row_sums > 0, 1.0 / np.where(row_sums == 0, 1.0, row_sums), 0.0)
    transition = TileMatrix.from_csr(a.scale_rows(inv).transpose())
    dangling = row_sums == 0

    rank = np.full(n, 1.0 / n)
    for _ in range(max_iters):
        dangling_mass = float(rank[dangling].sum())
        new_rank = (
            damping * (tile_spmv(transition, rank) + dangling_mass / n)
            + (1.0 - damping) / n
        )
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank
        rank = new_rank
    return rank


def bfs_levels(a: CSRMatrix, source: int) -> np.ndarray:
    """Breadth-first distances by algebraic frontier expansion.

    The paper's GraphBLAS BFS motivation: the frontier advances by one
    SpMV per level on the resident tiled matrix (``frontier' = Aᵀ
    frontier``, masked by the unvisited set).  Returns hop distances from
    ``source`` (-1 for unreachable vertices).
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("BFS needs a square adjacency matrix")
    n = a.shape[0]
    if not 0 <= source < n:
        raise ValueError("source vertex out of range")
    from repro.core.spmv import tile_spmv
    from repro.core.tile_matrix import TileMatrix

    at = TileMatrix.from_csr(a.transpose())
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.zeros(n)
    frontier[source] = 1.0
    level = 0
    while frontier.any():
        level += 1
        reached = tile_spmv(at, frontier) != 0
        fresh = reached & (dist < 0)
        if not fresh.any():
            break
        dist[fresh] = level
        frontier = fresh.astype(np.float64)
    return dist


def two_hop_frontier(a: CSRMatrix, method: str = "tilespgemm") -> CSRMatrix:
    """All 2-hop reachability (``A^2`` pattern) — the BFS doubling step.

    Breadth-first search by matrix algebra advances frontiers with
    SpGEMM/SpMV; squaring the adjacency gives every vertex's two-hop
    neighbourhood in one multiplication.
    """
    c = get_algorithm(method)(a, a).c
    return c.prune(0.0)
