"""Motivating applications of the paper's introduction, built on SpGEMM:
algebraic multigrid setup, triangle counting, and Markov clustering."""

from repro.apps.amg_solver import AMGSolveResult, AMGSolver
from repro.apps.amg import (
    AMGHierarchy,
    AMGLevel,
    aggregation_prolongator,
    build_hierarchy,
    galerkin_product,
    smoothed_prolongator,
)
from repro.apps.graphs import bfs_levels, lower_triangle, pagerank, triangle_count, two_hop_frontier
from repro.apps.krylov import CGResult, amg_preconditioned_cg, conjugate_gradient
from repro.apps.similarity import cooccurrence, cosine_similarity, top_k_neighbors
from repro.apps.mcl import MCLResult, markov_clustering
from repro.apps.sparse_ops import (
    add,
    column_sums,
    elementwise_power,
    hadamard,
    normalize_columns,
    scale_columns,
)

__all__ = [
    "AMGHierarchy",
    "AMGSolver",
    "AMGSolveResult",
    "AMGLevel",
    "MCLResult",
    "CGResult",
    "amg_preconditioned_cg",
    "conjugate_gradient",
    "cooccurrence",
    "cosine_similarity",
    "top_k_neighbors",
    "add",
    "aggregation_prolongator",
    "build_hierarchy",
    "column_sums",
    "elementwise_power",
    "galerkin_product",
    "smoothed_prolongator",
    "hadamard",
    "bfs_levels",
    "lower_triangle",
    "pagerank",
    "markov_clustering",
    "normalize_columns",
    "scale_columns",
    "triangle_count",
    "two_hop_frontier",
]
