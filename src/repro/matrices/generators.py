"""Synthetic sparse-matrix generators: scaled analogues of SuiteSparse.

The paper evaluates on 142 SuiteSparse matrices spanning a few structural
families; with the collection unavailable offline, these generators
produce laptop-scale matrices of the same families (DESIGN.md documents
the substitution).  What each figure actually keys on is preserved:

* **FEM / banded** (pdb1HYS, cant, pwtk, af_shell10 …) — wide dense-ish
  bands, uniform row lengths, high compression rate;
* **stencil meshes** (mc2depi) — 5/7-point Laplacian patterns, compression
  rate near 1.5;
* **power-law graphs** (webbase-1M, scircuit, wiki-Vote …) — Zipf degree
  tails with a handful of enormous rows: the paper's load-imbalance
  motivation;
* **block-dense** (gupta3, TSOPF, SiO2 …) — dense blocks embedded in a
  sparse frame: very high compression rates and the memory blow-ups that
  kill the expansion-based baselines;
* **hypersparse** (cop20k_A-like) — nonzeros scattered so nearly every
  16x16 tile holds only a few entries: TileSpGEMM's documented worst case;
* **R-MAT** — Kronecker-style graphs for the full-dataset sweep.

Every generator takes an explicit seed, returns a
:class:`~repro.formats.coo.COOMatrix`, and is deterministic given its
arguments.
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix

__all__ = [
    "banded",
    "stencil_2d",
    "stencil_3d",
    "random_uniform",
    "powerlaw",
    "rmat",
    "block_dense",
    "block_band",
    "hypersparse",
    "grouped_scatter",
    "clustered_columns",
    "permute_symmetric",
]


def _values(rng: np.random.Generator, size: int) -> np.ndarray:
    """Nonzero values: uniform in [0.5, 1.5] to avoid accidental zeros."""
    return rng.uniform(0.5, 1.5, size=size)


def banded(n: int, half_bandwidth: int, fill: float = 1.0, seed: int = 0) -> COOMatrix:
    """A square band matrix with the given half bandwidth.

    ``fill`` is the fraction of in-band positions kept (1.0 = dense band).
    FEM stiffness matrices are well modelled by ``fill`` around 0.5-1.0.
    """
    if half_bandwidth < 0:
        raise ValueError("half_bandwidth must be non-negative")
    rng = np.random.default_rng(seed)
    offsets = np.arange(-half_bandwidth, half_bandwidth + 1)
    rows_parts = []
    cols_parts = []
    for off in offsets:
        r = np.arange(max(0, -off), min(n, n - off), dtype=np.int64)
        if fill < 1.0:
            keep = rng.random(r.size) < fill
            r = r[keep]
        rows_parts.append(r)
        cols_parts.append(r + off)
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return COOMatrix((n, n), rows, cols, _values(rng, rows.size))


def stencil_2d(nx: int, ny: int) -> COOMatrix:
    """The 5-point Laplacian stencil on an ``nx`` x ``ny`` grid.

    This is the mc2depi-class pattern (epidemiology random walk on a
    lattice): ~5 nonzeros per row, compression rate about 1.8.
    """
    n = nx * ny
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = idx // nx
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0)]
    for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        jx, jy = ix + dx, iy + dy
        ok = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny)
        rows.append(idx[ok])
        cols.append(jy[ok] * nx + jx[ok])
        vals.append(np.full(int(ok.sum()), -1.0))
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def stencil_3d(nx: int, ny: int, nz: int) -> COOMatrix:
    """The 7-point Laplacian stencil on an ``nx`` x ``ny`` x ``nz`` grid."""
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 6.0)]
    for dx, dy, dz in (
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
    ):
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        ok = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny) & (jz >= 0) & (jz < nz)
        rows.append(idx[ok])
        cols.append((jz[ok] * ny + jy[ok]) * nx + jx[ok])
        vals.append(np.full(int(ok.sum()), -1.0))
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def random_uniform(n: int, nnz_per_row: float, seed: int = 0) -> COOMatrix:
    """Uniformly random square matrix with the given mean row length."""
    rng = np.random.default_rng(seed)
    total = int(round(n * nnz_per_row))
    rows = rng.integers(0, n, size=total, dtype=np.int64)
    cols = rng.integers(0, n, size=total, dtype=np.int64)
    return COOMatrix((n, n), rows, cols, _values(rng, total)).sum_duplicates()


def powerlaw(
    n: int,
    avg_degree: float,
    exponent: float = 2.1,
    max_degree: int | None = None,
    hubs: int = 0,
    hub_in_fraction: float = 0.0,
    seed: int = 0,
) -> COOMatrix:
    """A power-law (Zipf-tail) graph adjacency matrix.

    Row degrees follow a truncated Zipf distribution with the given
    exponent, rescaled to the requested average — a few rows get thousands
    of nonzeros while the bulk get a handful, reproducing the webbase-1M
    row-length histogram of the paper's §2.3 at small scale.  Column
    targets are also Zipf-distributed (popular pages), giving the
    power-law-squared fill-in explosion.
    """
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(int(n * 0.4), 4)
    # Zipf-distributed out-degrees rescaled to the requested average.
    raw = rng.zipf(exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, max_degree)
    degrees = np.clip(np.round(raw * (avg_degree / raw.mean())), 1, max_degree).astype(
        np.int64
    )
    hub_ids = np.empty(0, dtype=np.int64)
    if hubs:
        # Plant explicit full-width hub rows: webbase-1M's handful of rows
        # that dominate the row-row methods' runtime (paper §2.3).
        hub_ids = rng.choice(n, size=min(hubs, n), replace=False).astype(np.int64)
        degrees[hub_ids] = max_degree
    total = int(degrees.sum())
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    # Column targets: a popular-page Zipf head mixed with a uniform body,
    # so hub rows do not collapse to a handful of duplicate targets.
    popular = rng.random(total) < 0.3
    ranks = np.arange(1, n + 1, dtype=np.float64)
    col_weights = ranks ** (-exponent)
    col_weights /= col_weights.sum()
    perm = rng.permutation(n)
    cols = np.where(
        popular,
        perm[rng.choice(n, size=total, p=col_weights)],
        rng.integers(0, n, size=total),
    )
    if hub_ids.size and hub_in_fraction > 0:
        # Hubs attract in-links (popular pages): redirecting a fraction of
        # all edges onto the hub columns makes every row that cites a hub a
        # heavy row of ``A^2`` — the quadratic amplification that produces
        # webbase-1M's >100k-operation rows.
        redirect = rng.random(total) < hub_in_fraction
        cols[redirect] = hub_ids[rng.integers(0, hub_ids.size, size=int(redirect.sum()))]
    return COOMatrix((n, n), rows, cols, _values(rng, total)).sum_duplicates()


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> COOMatrix:
    """An R-MAT (recursive Kronecker) graph with ``2**scale`` vertices."""
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for level in range(scale):
        r = rng.random(m)
        bit_r = (r >= ab).astype(np.int64)
        r2 = rng.random(m)
        thresh = np.where(bit_r == 0, a / ab, c / max(1.0 - ab, 1e-12))
        bit_c = (r2 >= thresh).astype(np.int64)
        rows |= bit_r << level
        cols |= bit_c << level
    return COOMatrix((n, n), rows, cols, _values(rng, m)).sum_duplicates()


def block_dense(
    n: int, block: int, blocks_per_row: int = 1, seed: int = 0
) -> COOMatrix:
    """Dense ``block`` x ``block`` blocks scattered on a block grid.

    The gupta3/TSOPF class: a sparse frame of fully dense blocks, giving
    very high compression rates (``C = A^2`` reuses each block ``block``
    times) and enormous intermediate-product counts for row-row methods.
    """
    rng = np.random.default_rng(seed)
    nb = n // block
    if nb == 0:
        raise ValueError("n must be at least one block")
    rows_parts = []
    cols_parts = []
    local = np.arange(block, dtype=np.int64)
    lr = np.repeat(local, block)
    lc = np.tile(local, block)
    for bi in range(nb):
        targets = set()
        targets.add(bi)  # diagonal block keeps A^2 well defined
        choices = rng.choice(nb, size=min(blocks_per_row, nb), replace=False)
        targets.update(int(x) for x in choices)
        for bj in targets:
            rows_parts.append(bi * block + lr)
            cols_parts.append(bj * block + lc)
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return COOMatrix((n, n), rows, cols, _values(rng, rows.size)).sum_duplicates()


def block_band(n: int, block: int, block_bandwidth: int = 1, seed: int = 0) -> COOMatrix:
    """A band of dense blocks (SiO2/pkustk class: clustered dense band)."""
    rng = np.random.default_rng(seed)
    nb = n // block
    local = np.arange(block, dtype=np.int64)
    lr = np.repeat(local, block)
    lc = np.tile(local, block)
    rows_parts = []
    cols_parts = []
    for bi in range(nb):
        for bj in range(max(0, bi - block_bandwidth), min(nb, bi + block_bandwidth + 1)):
            rows_parts.append(bi * block + lr)
            cols_parts.append(bj * block + lc)
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return COOMatrix((n, n), rows, cols, _values(rng, rows.size))


def hypersparse(n: int, nnz_per_row: float = 2.0, seed: int = 0) -> COOMatrix:
    """Scattered nonzeros far apart: nearly every 16x16 tile holds one.

    The cop20k_A/scircuit class, TileSpGEMM's documented worst case: the
    per-tile overhead dominates because tiles carry almost no work.
    """
    rng = np.random.default_rng(seed)
    total = int(n * nnz_per_row)
    rows = rng.integers(0, n, size=total, dtype=np.int64)
    # Spread columns with a large stride so tiles rarely share nonzeros.
    cols = (rows * 7919 + rng.integers(0, n, size=total, dtype=np.int64) * 127) % n
    return COOMatrix((n, n), rows, cols, _values(rng, total)).sum_duplicates()


def permute_symmetric(coo: COOMatrix, seed: int = 0) -> COOMatrix:
    """Apply a random symmetric permutation ``P A P^T``.

    A symmetric permutation preserves every SpGEMM statistic of
    ``C = A^2`` (flops, nnz(C), compression rate: ``(PAP^T)^2 =
    P A^2 P^T``) while destroying all spatial locality — nonzeros that sat
    in a dense band scatter across the whole tile grid.  This is exactly
    the cop20k_A profile the paper discusses: a moderate compression rate
    carried by a hypersparse tile population, TileSpGEMM's worst case.
    """
    if coo.shape[0] != coo.shape[1]:
        raise ValueError("symmetric permutation needs a square matrix")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(coo.shape[0]).astype(np.int64)
    return COOMatrix(coo.shape, perm[coo.row], perm[coo.col], coo.val)


def grouped_scatter(n: int, nnz_per_row: int, group: int = 4, seed: int = 0) -> COOMatrix:
    """Scattered rows whose column sets repeat in groups of ``group`` rows.

    Every group of ``group`` consecutive rows shares one scattered column
    set, so ``A^2`` merges each group's products ``group``-fold: the
    compression rate lands near ``group`` while the nonzeros stay spread
    out (about one per 16x16 tile) — the cop20k_A profile of a moderate
    compression rate on a hypersparse tile population.
    """
    rng = np.random.default_rng(seed)
    num_groups = -(-n // group)
    group_cols = rng.integers(0, n, size=(num_groups, nnz_per_row), dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), nnz_per_row)
    cols = group_cols[np.arange(n) // group].reshape(-1)
    return COOMatrix((n, n), rows, cols, _values(rng, rows.size)).sum_duplicates()


def clustered_columns(
    n: int, nnz_per_row: int, cluster_width: int, seed: int = 0
) -> COOMatrix:
    """Rows draw their nonzeros from a shared narrow column cluster.

    Chemistry-style matrices (SiO2, conf5 QCD): groups of rows hit the
    same column window, so ``A^2`` merges many products into few outputs —
    high compression rate with moderate row lengths.
    """
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n, dtype=np.int64), nnz_per_row)
    centers = (np.arange(n, dtype=np.int64) // cluster_width) * cluster_width
    offsets = rng.integers(0, cluster_width, size=rows.size, dtype=np.int64)
    cols = (centers[rows] + offsets) % n
    return COOMatrix((n, n), rows, cols, _values(rng, rows.size)).sum_duplicates()
