"""Synthetic workload generators and the paper's named matrix suites."""

from repro.matrices import generators
from repro.matrices.suite import (
    MatrixSpec,
    MatrixStats,
    PaperStats,
    asymmetric_6,
    full_dataset,
    get_matrix,
    matrix_stats,
    representative_18,
    tsparse_16,
)

__all__ = [
    "generators",
    "MatrixSpec",
    "MatrixStats",
    "PaperStats",
    "asymmetric_6",
    "full_dataset",
    "get_matrix",
    "matrix_stats",
    "representative_18",
    "tsparse_16",
]
