"""The named matrix suites of the paper, as scaled synthetic analogues.

Three suites drive the benches:

* :func:`representative_18` — Table 2's 18 representative matrices.  Each
  analogue targets its original's *structure class* and *compression rate*
  (the quantity Figure 6 plots against); the paper's original statistics
  are carried along so the Table 2 bench can print paper-vs-measured.
* :func:`tsparse_16` — the 16-matrix dataset of the tSparse comparison
  (Figures 13/14).
* :func:`full_dataset` — the stand-in for "all 142 square matrices with
  >= 1 Gflop": a parameter sweep across the six structure families
  covering compression rates from ~1 to ~140.

All suites are deterministic; matrices build lazily and are cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.matrices import generators as gen

__all__ = [
    "MatrixSpec",
    "PaperStats",
    "MatrixStats",
    "matrix_stats",
    "representative_18",
    "asymmetric_6",
    "tsparse_16",
    "full_dataset",
    "get_matrix",
    "WEBBASE_ANALOG",
]


@dataclass(frozen=True)
class PaperStats:
    """The original matrix's statistics as printed in the paper's Table 2."""

    n: int
    nnz: int
    flops: float  #: flops of C = A^2
    nnz_c: int
    compression_rate: float


@dataclass(frozen=True)
class MatrixStats:
    """Measured statistics of a (synthetic) matrix for ``C = A^2``."""

    n: int
    nnz: int
    flops: int
    nnz_c: int
    compression_rate: float


@dataclass(frozen=True)
class MatrixSpec:
    """A named workload: generator + category + paper reference data."""

    name: str
    category: str  #: fem | stencil | powerlaw | block | hypersparse | random | clustered
    build: Callable[[], COOMatrix] = field(repr=False)
    paper: Optional[PaperStats] = None
    asymmetric: bool = False

    def matrix(self) -> CSRMatrix:
        """Build (cached) and return the matrix in CSR form."""
        return _build_cached(self.name, self.build)


@lru_cache(maxsize=None)
def _cached_call(name: str) -> CSRMatrix:  # pragma: no cover - see _build_cached
    raise RuntimeError("populated via _build_cached")


_CACHE: Dict[str, CSRMatrix] = {}


def _build_cached(name: str, build: Callable[[], COOMatrix]) -> CSRMatrix:
    if name not in _CACHE:
        _CACHE[name] = build().to_csr()
    return _CACHE[name]


def matrix_stats(a: CSRMatrix) -> MatrixStats:
    """Measure n, nnz, flops, nnz(A^2) and the compression rate.

    The compression rate follows the paper's definition: the number of
    intermediate products (``flops / 2``) divided by ``nnz(C)``.
    """
    from repro.baselines._expand import expand_pattern
    from repro.baselines.base import flops_of_product

    flops = flops_of_product(a, a)
    rows, cols = expand_pattern(a, a)
    nnz_c = int(np.unique(rows * a.shape[1] + cols).size) if rows.size else 0
    cr = (flops / 2.0) / nnz_c if nnz_c else 0.0
    return MatrixStats(
        n=a.shape[0], nnz=a.nnz, flops=flops, nnz_c=nnz_c, compression_rate=cr
    )


# ----------------------------------------------------------------------
# Table 2: the 18 representative matrices
# ----------------------------------------------------------------------

#: Name of the webbase-1M analogue (used by the motivation bench).
WEBBASE_ANALOG = "webbase-1M"


def representative_18() -> List[MatrixSpec]:
    """Scaled analogues of the paper's Table 2, in the paper's order."""
    P = PaperStats
    return [
        MatrixSpec(
            "pdb1HYS", "fem",
            lambda: gen.banded(3600, 30, fill=1.0, seed=101),
            P(36_000, 4_300_000, 1.1e9, 19_600_000, 28.34),
        ),
        MatrixSpec(
            "consph", "fem",
            lambda: gen.banded(4000, 26, fill=0.85, seed=102),
            P(83_000, 6_000_000, 927.7e6, 26_500_000, 17.48),
        ),
        MatrixSpec(
            "cant", "fem",
            lambda: gen.banded(3100, 20, fill=0.80, seed=103),
            P(62_000, 4_000_000, 539.0e6, 17_400_000, 15.45),
        ),
        MatrixSpec(
            "pwtk", "fem",
            lambda: gen.banded(5400, 24, fill=0.90, seed=104),
            P(218_000, 11_600_000, 1.3e9, 32_800_000, 19.10),
        ),
        MatrixSpec(
            "rma10", "fem",
            lambda: gen.banded(2300, 25, fill=0.85, seed=105),
            P(47_000, 2_400_000, 313.0e6, 7_900_000, 19.81),
            asymmetric=True,
        ),
        MatrixSpec(
            "conf5_4-8x8-05", "clustered",
            lambda: gen.clustered_columns(2500, 39, 224, seed=106),
            P(49_000, 1_900_000, 149.5e6, 10_900_000, 6.85),
            asymmetric=True,
        ),
        MatrixSpec(
            "shipsec1", "fem",
            lambda: gen.banded(4700, 26, fill=0.85, seed=107),
            P(140_000, 7_800_000, 901.3e6, 24_100_000, 18.71),
        ),
        MatrixSpec(
            "mac_econ_fwd500", "random",
            lambda: gen.random_uniform(6500, 6.2, seed=108),
            P(206_000, 1_300_000, 15.1e6, 6_700_000, 1.13),
            asymmetric=True,
        ),
        MatrixSpec(
            "mc2depi", "stencil",
            lambda: gen.stencil_2d(120, 100),
            P(525_000, 2_100_000, 16.8e6, 5_200_000, 1.60),
            asymmetric=True,
        ),
        MatrixSpec(
            "cop20k_A", "hypersparse",
            lambda: gen.permute_symmetric(
                gen.banded(11000, 4, fill=0.95, seed=110), seed=110
            ),
            P(121_000, 2_600_000, 159.8e6, 18_700_000, 4.27),
        ),
        MatrixSpec(
            "scircuit", "powerlaw",
            lambda: gen.powerlaw(8500, 6.0, exponent=1.8, max_degree=300, seed=111),
            P(170_000, 1_000_000, 17.4e6, 5_200_000, 1.66),
            asymmetric=True,
        ),
        MatrixSpec(
            WEBBASE_ANALOG, "powerlaw",
            lambda: gen.powerlaw(
                24000, 3.4, exponent=2.2, max_degree=9000, hubs=3,
                hub_in_fraction=0.012, seed=112,
            ),
            P(1_000_005, 3_100_000, 139.0e6, 51_100_000, 1.36),
            asymmetric=True,
        ),
        MatrixSpec(
            "af_shell10", "fem",
            lambda: gen.banded(7300, 18, fill=0.85, seed=113),
            P(1_500_000, 52_700_000, 3.68e9, 142_700_000, 12.90),
        ),
        MatrixSpec(
            "pkustk12", "block",
            lambda: gen.block_dense(3000, 6, blocks_per_row=12, seed=114),
            P(94_000, 7_500_000, 5.4e9, 474_800_000, 5.65),
        ),
        MatrixSpec(
            "SiO2", "block",
            lambda: gen.block_band(2448, 136, block_bandwidth=0, seed=115),
            P(155_000, 11_300_000, 28.5e9, 104_800_000, 136.03),
        ),
        MatrixSpec(
            "case39", "block",
            lambda: gen.block_dense(2000, 10, blocks_per_row=8, seed=116),
            P(40_000, 1_000_000, 8.1e9, 404_700_000, 10.00),
        ),
        MatrixSpec(
            "TSOPF_FS_b300_c2", "block",
            lambda: gen.block_band(4020, 67, block_bandwidth=0, seed=117),
            P(56_000, 8_800_000, 107.9e9, 805_700_000, 66.96),
        ),
        MatrixSpec(
            "gupta3", "block",
            lambda: gen.block_band(2034, 113, block_bandwidth=0, seed=118),
            P(17_000, 9_300_000, 61.4e9, 270_900_000, 113.40),
        ),
    ]


def asymmetric_6() -> List[MatrixSpec]:
    """The six asymmetric matrices of Figure 8, in the paper's order."""
    order = ["rma10", "conf5_4-8x8-05", "mac_econ_fwd500", "mc2depi", "scircuit", WEBBASE_ANALOG]
    by_name = {s.name: s for s in representative_18()}
    return [by_name[n] for n in order]


# ----------------------------------------------------------------------
# The tSparse 16-matrix dataset (Figures 13/14)
# ----------------------------------------------------------------------


def tsparse_16() -> List[MatrixSpec]:
    """Scaled analogues of the 16 matrices of the tSparse paper."""
    return [
        MatrixSpec("mc2depi", "stencil", lambda: gen.stencil_2d(120, 100)),
        MatrixSpec(
            WEBBASE_ANALOG, "powerlaw",
            lambda: gen.powerlaw(
                24000, 3.4, exponent=2.2, max_degree=9000, hubs=3,
                hub_in_fraction=0.012, seed=112,
            ),
            asymmetric=True,
        ),
        MatrixSpec("cage12", "random", lambda: gen.random_uniform(5200, 8.0, seed=201), asymmetric=True),
        MatrixSpec("dawson5", "fem", lambda: gen.banded(2600, 13, fill=0.55, seed=202)),
        MatrixSpec("lock1074", "fem", lambda: gen.banded(1074, 24, fill=0.7, seed=203)),
        MatrixSpec(
            "patents_main", "powerlaw",
            lambda: gen.powerlaw(9000, 3.0, exponent=1.6, max_degree=120, seed=204),
            asymmetric=True,
        ),
        MatrixSpec("struct3", "fem", lambda: gen.banded(5000, 11, fill=0.5, seed=205)),
        MatrixSpec(
            "wiki-Vote", "powerlaw",
            lambda: gen.powerlaw(2000, 12.0, exponent=1.9, max_degree=700, seed=206),
            asymmetric=True,
        ),
        MatrixSpec("bcsstk30", "fem", lambda: gen.banded(2900, 28, fill=0.95, seed=207)),
        MatrixSpec("nemeth21", "fem", lambda: gen.banded(2400, 25, fill=1.0, seed=208)),
        MatrixSpec("pcrystk03", "fem", lambda: gen.banded(2500, 23, fill=0.6, seed=209)),
        MatrixSpec("pct20stif", "fem", lambda: gen.banded(2600, 26, fill=0.85, seed=210)),
        MatrixSpec("pkustk06", "block", lambda: gen.block_dense(2700, 6, blocks_per_row=10, seed=211)),
        MatrixSpec("pli", "fem", lambda: gen.banded(2200, 20, fill=0.6, seed=212)),
        MatrixSpec(
            "net50", "powerlaw",
            lambda: gen.powerlaw(3700, 9.0, exponent=1.7, max_degree=500, seed=213),
            asymmetric=True,
        ),
        MatrixSpec(
            "web-NotreDame", "powerlaw",
            lambda: gen.powerlaw(6000, 4.0, exponent=2.0, max_degree=1500, seed=214),
            asymmetric=True,
        ),
    ]


# ----------------------------------------------------------------------
# The full-dataset sweep (Figure 6's 142-matrix stand-in)
# ----------------------------------------------------------------------


def full_dataset(max_matrices: Optional[int] = None) -> List[MatrixSpec]:
    """A structured sweep across all families and compression rates.

    48 matrices by default: the Figure 6 stand-in for "all 142 square
    SuiteSparse matrices with >= 1 Gflop" (scaled down ~1000x in flops).
    ``max_matrices`` truncates deterministically (for quick bench runs).
    """
    specs: List[MatrixSpec] = []

    def add(name: str, category: str, build: Callable[[], COOMatrix], asym: bool = False) -> None:
        specs.append(MatrixSpec(name, category, build, asymmetric=asym))

    # FEM-like bands across width/fill (compression rates ~8 .. ~30).
    for i, (n, hb, fill) in enumerate(
        [
            (2400, 12, 0.9), (3000, 16, 0.9), (3600, 20, 0.9), (4200, 24, 0.9),
            (4800, 28, 0.9), (5400, 32, 0.9), (3200, 20, 0.6), (4000, 26, 0.7),
            (4800, 30, 0.8), (3000, 36, 1.0), (3600, 44, 1.0), (2600, 24, 1.0),
        ]
    ):
        add(f"band_n{n}_w{hb}_f{int(fill * 100)}", "fem",
            lambda n=n, hb=hb, fill=fill, i=i: gen.banded(n, hb, fill=fill, seed=300 + i))

    # Power-law graphs (compression rates ~1.2 .. ~3, heavy imbalance).
    for i, (n, deg, expo, mx) in enumerate(
        [
            (6000, 3.0, 2.2, 2500), (8000, 4.0, 2.0, 2000), (10000, 3.5, 2.1, 3500),
            (7000, 6.0, 1.9, 1200), (5000, 8.0, 1.8, 900), (9000, 5.0, 2.0, 2800),
            (4000, 10.0, 1.7, 700), (12000, 3.0, 2.3, 4500),
        ]
    ):
        add(f"powerlaw_n{n}_d{deg}", "powerlaw",
            lambda n=n, deg=deg, expo=expo, mx=mx, i=i: gen.powerlaw(
                n, deg, exponent=expo, max_degree=mx, seed=400 + i),
            asym=True)

    # Uniform random (compression ~1).
    for i, (n, deg) in enumerate(
        [(5000, 5.0), (6500, 8.0), (8000, 6.0), (4000, 12.0), (10000, 4.0), (7000, 10.0)]
    ):
        add(f"random_n{n}_d{deg}", "random",
            lambda n=n, deg=deg, i=i: gen.random_uniform(n, deg, seed=500 + i), asym=True)

    # Stencil meshes (compression ~1.8).
    for i, dims in enumerate([(100, 100), (150, 80), (20, 25, 24), (16, 18, 20)]):
        if len(dims) == 2:
            add(f"stencil2d_{dims[0]}x{dims[1]}", "stencil",
                lambda d=dims: gen.stencil_2d(*d))
        else:
            add(f"stencil3d_{dims[0]}x{dims[1]}x{dims[2]}", "stencil",
                lambda d=dims: gen.stencil_3d(*d))

    # Block-dense matrices (compression ~block size: 12 .. ~128).
    for i, (n, blk, bpr) in enumerate(
        [
            (2400, 12, 4), (2800, 16, 3), (3200, 24, 2), (2400, 48, 1),
            (2048, 64, 1), (2560, 96, 0), (2304, 128, 0), (3000, 32, 2),
        ]
    ):
        if bpr == 0:
            add(f"blockband_n{n}_b{blk}", "block",
                lambda n=n, blk=blk, i=i: gen.block_band(n, blk, 0, seed=600 + i))
        else:
            add(f"blockdense_n{n}_b{blk}_r{bpr}", "block",
                lambda n=n, blk=blk, bpr=bpr, i=i: gen.block_dense(n, blk, bpr, seed=600 + i))

    # Column-clustered (chemistry-like, compression ~4 .. ~20).
    for i, (n, k, w) in enumerate(
        [(2500, 20, 40), (3000, 30, 80), (2000, 40, 160), (3500, 24, 48),
         (2800, 36, 120), (2200, 48, 96)]
    ):
        add(f"clustered_n{n}_k{k}_w{w}", "clustered",
            lambda n=n, k=k, w=w, i=i: gen.clustered_columns(n, k, w, seed=700 + i))

    # Hypersparse (TileSpGEMM's worst case): permuted bands keep the
    # compression rate but scatter nonzeros across the tile grid.
    for i, (n, hb) in enumerate([(9000, 3), (11000, 4), (8000, 6), (12000, 2)]):
        add(f"hypersparse_n{n}_w{hb}", "hypersparse",
            lambda n=n, hb=hb, i=i: gen.permute_symmetric(
                gen.banded(n, hb, fill=0.95, seed=800 + i), seed=800 + i))

    if max_matrices is not None:
        specs = specs[: max(int(max_matrices), 0)]
    return specs


def get_matrix(name: str) -> CSRMatrix:
    """Build a suite matrix by name (searches all three suites)."""
    for suite in (representative_18(), tsparse_16(), full_dataset()):
        for spec in suite:
            if spec.name == name:
                return spec.matrix()
    raise KeyError(f"unknown suite matrix {name!r}")
